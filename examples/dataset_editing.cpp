// Dataset Editor walkthrough — the first demo scenario of the paper (Sec. 3,
// "Using the Dataset Editor"): load a ready-to-use RT-dataset, edit attribute
// names and record values, plot attribute histograms, export to a file.
//
// Build & run:  ./build/examples/example_dataset_editing [out_dir]

#include <cstdio>
#include <string>

#include "csv/csv.h"
#include "datagen/synthetic.h"
#include "export/exporter.h"
#include "frontend/dataset_editor.h"

using namespace secreta;

namespace {

int Fail(const Status& status) {
  fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";

  // A "ready-to-use RT-dataset": write one to disk, then load it through the
  // editor exactly like a user-supplied CSV file.
  SyntheticOptions gen;
  gen.num_records = 400;
  gen.num_items = 40;
  gen.seed = 7;
  auto dataset = GenerateRtDataset(gen);
  if (!dataset.ok()) return Fail(dataset.status());
  std::string input_path = out_dir + "/demo_rt_dataset.csv";
  if (auto st = ExportDataset(dataset.value(), input_path); !st.ok()) {
    return Fail(st);
  }

  DatasetEditor editor;
  if (auto st = editor.Load(input_path); !st.ok()) return Fail(st);
  printf("loaded %s: %zu records, %zu attributes\n", input_path.c_str(),
         editor.dataset().num_records(),
         editor.dataset().schema().num_attributes());

  // Edit attribute names (top-left pane of Fig. 2).
  if (auto st = editor.RenameAttribute("Items", "Diagnoses"); !st.ok()) {
    return Fail(st);
  }
  // Edit values in some records.
  if (auto st = editor.SetCell(0, "Age", "34"); !st.ok()) return Fail(st);
  if (auto st = editor.SetCell(1, "Diagnoses", "i001 i002 i003"); !st.ok()) {
    return Fail(st);
  }
  // Add and delete rows.
  if (auto st = editor.AddRow({"29", "F", "origin03", "occ02", "i004 i005"});
      !st.ok()) {
    return Fail(st);
  }
  if (auto st = editor.DeleteRow(2); !st.ok()) return Fail(st);

  // Analyze: histograms of any attribute (bottom pane of Fig. 2).
  for (const char* attr : {"Age", "Gender", "Diagnoses"}) {
    auto text = editor.HistogramText(attr, 40);
    if (!text.ok()) return Fail(text.status());
    if (std::string(attr) == "Age") {
      printf("(Age histogram has %zu buckets; skipping ASCII dump)\n",
             editor.HistogramOf("Age")->size());
    } else {
      printf("\n%s", text->c_str());
    }
  }

  // Overwrite the existing dataset with the modified one, or export anew.
  std::string edited_path = out_dir + "/demo_rt_dataset_edited.csv";
  if (auto st = editor.Save(edited_path); !st.ok()) return Fail(st);
  printf("\nsaved edited dataset to %s (%zu records)\n", edited_path.c_str(),
         editor.dataset().num_records());
  return 0;
}
