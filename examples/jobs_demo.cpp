// The SECRETA job service end to end: submit the full T20 grid (all 4x5
// relational x transaction combinations) as asynchronous jobs, watch the
// queue drain progressively, print per-job metrics, then resubmit the grid
// to show the content-addressed result cache replaying every report without
// re-executing. Also demonstrates cancellation of a queued job.
//
// (Formerly the secreta_jobd binary; the daemon name now belongs to the
// network server in secreta_jobd.cpp, and this batch walkthrough lives on
// as example_jobs_demo.)
//
//   ./build/examples/example_jobs_demo

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/string_util.h"
#include "datagen/synthetic.h"
#include "engine/registry.h"
#include "export/json_export.h"
#include "frontend/session.h"
#include "service/job_scheduler.h"
#include "service/result_cache.h"

using namespace secreta;

namespace {

void Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Check(Result<T> result, const char* what) {
  if (!result.ok()) Fail(result.status(), what);
  return std::move(result).value();
}

void PrintJobs(const JobScheduler& scheduler) {
  std::printf("  %-4s %-10s %-6s %-7s %-8s %-8s %s\n", "id", "state", "prio",
              "cache", "queue_s", "run_s", "label");
  for (const JobInfo& job : scheduler.ListJobs()) {
    std::printf("  %-4llu %-10s %-6d %-7s %-8.3f %-8.3f %s\n",
                static_cast<unsigned long long>(job.id),
                JobStateToString(job.state), job.priority,
                job.from_cache ? "hit" : "-", job.queue_seconds,
                job.run_seconds, job.label.c_str());
  }
}

std::vector<uint64_t> SubmitGrid(JobScheduler* scheduler,
                                 const EngineInputs& inputs,
                                 const Workload* workload,
                                 uint64_t dataset_fp) {
  std::vector<uint64_t> ids;
  for (const std::string& rel : RelationalAlgorithmNames()) {
    for (const std::string& txn : TransactionAlgorithmNames()) {
      AlgorithmConfig config;
      config.mode = AnonMode::kRt;
      config.relational_algorithm = rel;
      config.transaction_algorithm = txn;
      config.merger = MergerKind::kRTmerger;
      config.params.k = 5;
      config.params.m = 2;
      config.params.delta = 0.35;
      JobOptions options;
      // The fingerprint is O(dataset); computing it once for the whole batch
      // is the intended amortization.
      options.dataset_fingerprint = dataset_fp;
      ids.push_back(Check(
          scheduler->Submit(inputs, config, workload, options), "submit"));
    }
  }
  return ids;
}

}  // namespace

int main() {
  std::printf("== jobs_demo: async job service demo ==\n\n");

  // Stage a session exactly like the CLI would: dataset, hierarchies,
  // workload, then inputs bound once for async use.
  SecretaSession session;
  SyntheticOptions gen;
  gen.num_records = 1200;
  gen.seed = 2014;
  {
    Status status = session.SetDataset(
        Check(Result<Dataset>(GenerateRtDataset(gen)), "generate"));
    if (!status.ok()) Fail(status, "set dataset");
    if (Status s = session.AutoGenerateHierarchies(); !s.ok()) {
      Fail(s, "hierarchies");
    }
    WorkloadGenOptions wopts;
    wopts.num_queries = 50;
    if (Status s = session.GenerateQueryWorkload(wopts); !s.ok()) {
      Fail(s, "workload");
    }
  }
  AlgorithmConfig probe;
  probe.mode = AnonMode::kRt;
  EngineInputs inputs = Check(session.PrepareInputs(probe), "prepare inputs");
  const Workload* workload = session.workload_or_null();
  const uint64_t dataset_fp = DatasetFingerprint(session.dataset());

  SchedulerOptions scheduler_options;
  scheduler_options.num_workers = 4;
  scheduler_options.max_queue = 64;
  scheduler_options.cache_capacity = 128;
  JobScheduler scheduler(scheduler_options);

  // --- Batch 1: the T20 grid, cold -----------------------------------------
  std::printf("submitting the T20 grid (%zu jobs, %zu workers)...\n",
              RelationalAlgorithmNames().size() *
                  TransactionAlgorithmNames().size(),
              scheduler_options.num_workers);
  std::vector<uint64_t> ids =
      SubmitGrid(&scheduler, inputs, workload, dataset_fp);

  // Progressive status polling — what a dashboard would do.
  while (scheduler.num_queued() + scheduler.num_running() > 0) {
    std::printf("  queued=%zu running=%zu\n", scheduler.num_queued(),
                scheduler.num_running());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  scheduler.WaitAll();
  std::printf("\ncold batch finished; per-job metrics:\n");
  PrintJobs(scheduler);

  // --- Cancellation demo ----------------------------------------------------
  // A low-priority job behind a fresh batch stays queued long enough to be
  // cancelled deterministically most of the time.
  {
    AlgorithmConfig config;
    config.mode = AnonMode::kRt;
    config.relational_algorithm = "Cluster";
    config.transaction_algorithm = "Apriori";
    config.params.k = 7;  // not in the cache
    JobOptions options;
    options.priority = -100;
    options.use_cache = false;
    options.dataset_fingerprint = dataset_fp;
    uint64_t victim =
        Check(scheduler.Submit(inputs, config, workload, options), "submit");
    Status cancel = scheduler.CancelJob(victim);
    JobInfo info = Check(scheduler.WaitJob(victim), "wait");
    std::printf("\ncancel demo: job %llu -> %s (%s)\n",
                static_cast<unsigned long long>(victim),
                JobStateToString(info.state),
                cancel.ok() ? "cancel accepted" : cancel.ToString().c_str());
  }

  // --- Batch 2: identical resubmission, served from the cache ---------------
  std::printf("\nresubmitting the identical grid...\n");
  SubmitGrid(&scheduler, inputs, workload, dataset_fp);
  scheduler.WaitAll();
  uint64_t hits = scheduler.cache().hits();
  std::printf("cache hits after resubmission: %llu of %zu jobs\n",
              static_cast<unsigned long long>(hits), ids.size());

  std::printf("\nservice metrics:\n%s\n",
              ServiceMetricsToJson(scheduler.MetricsSnapshot()).c_str());
  return 0;
}
