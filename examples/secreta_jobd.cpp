// secreta_jobd: the SECRETA serving daemon. Publishes anonymized releases of
// one or more datasets into a DatasetCatalog, then answers COUNT queries
// over TCP (serve protocol, src/serve/) until SIGINT/SIGTERM.
//
//   ./build/examples/secreta_jobd --listen 7474
//   ./build/examples/secreta_jobd --listen 0 --records 500
//       --tenant admin:admin-token:direct
//       --tenant demo:demo-token:anonymized:25   (flags continue one line)
//
// Defaults stage a self-contained demo: one synthetic RT dataset published
// as "demo" under Cluster+Apriori (k=5, m=2), an admin tenant with direct
// access, and an "analyst" tenant limited to anonymized counts at a modest
// rate. Query it with the scripted client:
//
//   ./build/examples/example_serve_client --port 7474
//       --token demo-token count demo "Age:20..39"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/synthetic.h"
#include "kernels/kernels.h"
#include "obs/slow_query_log.h"
#include "obs/trace_tail.h"
#include "serve/catalog.h"
#include "serve/http_metrics.h"
#include "serve/server.h"
#include "serve/session.h"
#include "service/job_scheduler.h"

using namespace secreta;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "secreta_jobd: %s: %s\n", what,
               status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Check(Result<T> result, const char* what) {
  if (!result.ok()) Fail(result.status(), what);
  return std::move(result).value();
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: secreta_jobd --listen PORT [options]\n"
      "  --listen PORT        TCP port (0 = ephemeral, printed at startup)\n"
      "  --bind ADDR          bind address (default 127.0.0.1)\n"
      "  --tenant SPEC        name:token:access[:qps[:burst]]; repeatable.\n"
      "                       default: admin:admin-token:direct and\n"
      "                       demo:demo-token:anonymized:25\n"
      "  --dataset NAME       publish a synthetic dataset under NAME;\n"
      "                       repeatable (default: demo)\n"
      "  --records N          records per synthetic dataset (default 1500)\n"
      "  --seed N             synthetic data seed (default 2014)\n"
      "  --workers N          scheduler workers (default 4)\n"
      "  --max-connections N  concurrent client connections (default 8)\n"
      "  --deadline SECONDS   per-query deadline (default 5)\n"
      "  --idle-timeout SECONDS  drop idle connections (default 300)\n"
      "  --kernels TIER       force the SIMD kernel tier (scalar, avx2, neon)\n"
      "                       instead of the CPU-detected best; the\n"
      "                       SECRETA_KERNELS env var is a fallback\n"
      "  --metrics-listen PORT   serve Prometheus text format over HTTP at\n"
      "                       /metrics on PORT (0 = ephemeral, printed at\n"
      "                       startup; same bind address as --bind)\n"
      "  --slow-query-log PATH   append slow COUNTs as JSONL to PATH\n"
      "  --slow-query-threshold SECONDS  a COUNT at or above this is slow\n"
      "                       (default 0.25; 0 logs every COUNT)\n"
      "  --trace-tail N       keep the last N slow/error request traces\n"
      "                       (default 256)\n"
      "  --trace-tail-out PATH   dump pinned traces as JSONL on shutdown\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  bool have_listen = false;
  ServerOptions server_options;
  SchedulerOptions scheduler_options;
  scheduler_options.num_workers = 4;
  SyntheticOptions gen;
  gen.num_records = 1500;
  gen.seed = 2014;
  std::vector<std::string> tenant_specs;
  std::vector<std::string> dataset_names;
  bool have_metrics_listen = false;
  HttpMetricsOptions metrics_options;
  std::string slow_query_log_path;
  std::string trace_tail_out;
  size_t trace_tail_capacity = 0;  // 0 = keep the default

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "secreta_jobd: %s needs a value\n", flag);
        Usage();
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--listen") == 0) {
      server_options.port = static_cast<uint16_t>(std::atoi(next("--listen")));
      have_listen = true;
    } else if (std::strcmp(argv[i], "--bind") == 0) {
      server_options.bind_address = next("--bind");
    } else if (std::strcmp(argv[i], "--tenant") == 0) {
      tenant_specs.push_back(next("--tenant"));
    } else if (std::strcmp(argv[i], "--dataset") == 0) {
      dataset_names.push_back(next("--dataset"));
    } else if (std::strcmp(argv[i], "--records") == 0) {
      gen.num_records = static_cast<size_t>(std::atol(next("--records")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      gen.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      scheduler_options.num_workers =
          static_cast<size_t>(std::atol(next("--workers")));
    } else if (std::strcmp(argv[i], "--max-connections") == 0) {
      server_options.max_connections =
          static_cast<size_t>(std::atol(next("--max-connections")));
    } else if (std::strcmp(argv[i], "--deadline") == 0) {
      server_options.admission.default_deadline_seconds =
          std::atof(next("--deadline"));
    } else if (std::strcmp(argv[i], "--idle-timeout") == 0) {
      server_options.idle_timeout_seconds = std::atof(next("--idle-timeout"));
    } else if (std::strcmp(argv[i], "--metrics-listen") == 0) {
      metrics_options.port =
          static_cast<uint16_t>(std::atoi(next("--metrics-listen")));
      have_metrics_listen = true;
    } else if (std::strcmp(argv[i], "--slow-query-log") == 0) {
      slow_query_log_path = next("--slow-query-log");
    } else if (std::strcmp(argv[i], "--slow-query-threshold") == 0) {
      server_options.slow_query_threshold_seconds =
          std::atof(next("--slow-query-threshold"));
    } else if (std::strcmp(argv[i], "--trace-tail") == 0) {
      trace_tail_capacity = static_cast<size_t>(std::atol(next("--trace-tail")));
    } else if (std::strcmp(argv[i], "--trace-tail-out") == 0) {
      trace_tail_out = next("--trace-tail-out");
    } else if (std::strcmp(argv[i], "--kernels") == 0) {
      if (Status s = kernels::SetTier(next("--kernels")); !s.ok()) {
        Fail(s, "set --kernels tier");
      }
    } else {
      std::fprintf(stderr, "secreta_jobd: unknown flag %s\n", argv[i]);
      Usage();
    }
  }
  if (!have_listen) Usage();
  std::printf("simd kernels: %s tier\n", kernels::ActiveTierName());
  if (tenant_specs.empty()) {
    tenant_specs = {"admin:admin-token:direct",
                    "demo:demo-token:anonymized:25"};
  }
  if (dataset_names.empty()) dataset_names = {"demo"};

  TenantRegistry tenants;
  for (const std::string& spec : tenant_specs) {
    TenantConfig config = Check(ParseTenantSpec(spec), "parse --tenant");
    if (Status s = tenants.AddTenant(config); !s.ok()) Fail(s, "add tenant");
    std::printf("tenant %-12s access=%-10s qps=%s\n", config.name.c_str(),
                AccessLevelToString(config.access),
                config.quota_qps > 0
                    ? std::to_string(config.quota_qps).c_str()
                    : "unlimited");
  }

  DatasetCatalog catalog;
  ReleaseOptions release;
  release.config.mode = AnonMode::kRt;
  release.config.relational_algorithm = "Cluster";
  release.config.transaction_algorithm = "Apriori";
  release.config.params.k = 5;
  release.config.params.m = 2;
  for (size_t i = 0; i < dataset_names.size(); ++i) {
    SyntheticOptions per = gen;
    per.seed = gen.seed + i;  // distinct data per published name
    Dataset dataset = Check(GenerateRtDataset(per), "generate dataset");
    auto published = Check(
        catalog.Publish(dataset_names[i], std::move(dataset), release),
        "publish");
    std::printf("published %-12s records=%zu version=%llu config=%s\n",
                published->name().c_str(), published->num_records(),
                static_cast<unsigned long long>(published->version()),
                published->config_label().c_str());
  }

  if (trace_tail_capacity > 0) {
    TraceTail::Global().SetCapacity(trace_tail_capacity);
  }
  if (!slow_query_log_path.empty()) {
    if (Status s = SlowQueryLog::Global().Open(
            slow_query_log_path, server_options.slow_query_threshold_seconds);
        !s.ok()) {
      Fail(s, "open --slow-query-log");
    }
    std::printf("slow-query log: %s (threshold %.3fs)\n",
                slow_query_log_path.c_str(),
                server_options.slow_query_threshold_seconds);
  }

  JobScheduler scheduler(scheduler_options);
  QueryServer server(&catalog, &tenants, &scheduler, server_options);
  if (Status s = server.Start(); !s.ok()) Fail(s, "start server");

  std::unique_ptr<HttpMetricsServer> metrics_server;
  if (have_metrics_listen) {
    metrics_options.bind_address = server_options.bind_address;
    metrics_server = std::make_unique<HttpMetricsServer>(metrics_options);
    if (Status s = metrics_server->Start(); !s.ok()) {
      Fail(s, "start --metrics-listen endpoint");
    }
    std::printf("metrics endpoint: http://%s:%u/metrics\n",
                metrics_options.bind_address.c_str(),
                static_cast<unsigned>(metrics_server->port()));
  }
  std::printf("secreta_jobd listening on %s:%u (%zu connection slots)\n",
              server_options.bind_address.c_str(),
              static_cast<unsigned>(server.port()),
              server_options.max_connections);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("signal received; shutting down...\n");
  if (metrics_server) metrics_server->Stop();
  server.Stop();
  if (!trace_tail_out.empty()) {
    if (Status s = TraceTail::Global().WriteJsonl(trace_tail_out); !s.ok()) {
      std::fprintf(stderr, "secreta_jobd: write --trace-tail-out: %s\n",
                   s.ToString().c_str());
    } else {
      std::printf("trace tail: %zu pinned traces -> %s\n",
                  TraceTail::Global().Snapshot().size(),
                  trace_tail_out.c_str());
    }
  }
  SlowQueryLog::Global().Close();
  std::printf("secreta_jobd stopped cleanly\n");
  return 0;
}
