// Evaluation-mode walkthrough — the second demo scenario of the paper
// (Sec. 3, "Evaluating a method for RT-datasets"):
//   1. set the parameters k, m, delta;
//   2. pick one relational algorithm, one transaction algorithm and a
//      bounding method;
//   3. run the anonymization, inspect the summary and the anonymized output;
//   4. generate the four Fig. 3 visualizations:
//      (a) ARE for varying delta (fixed k and m),
//      (b) runtime of the algorithm and its phases,
//      (c) frequencies of generalized values in a relational attribute,
//      (d) relative error of item frequencies.
//
// Build & run:  ./build/examples/example_evaluation_mode

#include <algorithm>
#include <cstdio>

#include "datagen/synthetic.h"
#include "frontend/session.h"
#include "metrics/frequency.h"
#include "viz/ascii_plot.h"

using namespace secreta;

namespace {

int Fail(const Status& status) {
  fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // Session setup: dataset + hierarchies + workload (Configuration/Queries
  // Editors).
  SecretaSession session;
  SyntheticOptions gen;
  gen.num_records = 2000;
  gen.seed = 31;
  auto dataset = GenerateRtDataset(gen);
  if (!dataset.ok()) return Fail(dataset.status());
  if (auto st = session.SetDataset(std::move(dataset).value()); !st.ok()) {
    return Fail(st);
  }
  if (auto st = session.AutoGenerateHierarchies(); !st.ok()) return Fail(st);
  WorkloadGenOptions wl;
  wl.num_queries = 60;
  if (auto st = session.GenerateQueryWorkload(wl); !st.ok()) return Fail(st);

  // Step 1-2: parameters and algorithms (the Fig. 3 top-left pane).
  AlgorithmConfig config;
  config.mode = AnonMode::kRt;
  config.relational_algorithm = "Incognito";  // relational attribute side
  config.transaction_algorithm = "COAT";      // transaction attribute side
  config.merger = MergerKind::kTmerger;       // bounding method
  config.params.k = 5;
  config.params.m = 2;
  config.params.delta = 0.3;

  // Step 3: run; the "message box with a summary of results".
  auto report = session.Evaluate(config);
  if (!report.ok()) return Fail(report.status());
  printf("=== summary: %s ===\n", config.Label().c_str());
  printf("guarantee %s %s | GCP %.4f | UL %.4f | ARE %.4f | %.3fs\n\n",
         report->guarantee_name.c_str(), report->guarantee_ok ? "OK" : "FAIL",
         report->gcp, report->ul, report->are, report->run.runtime_seconds);

  // The anonymized dataset appears in the output area.
  auto anonymized = session.Materialize(*report);
  if (!anonymized.ok()) return Fail(anonymized.status());
  auto rows = anonymized->ToCsv();
  printf("anonymized output (first 4 records):\n");
  for (size_t r = 0; r < rows.size() && r < 5; ++r) {
    std::string line;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      line += (c ? " | " : "") + rows[r][c];
    }
    printf("  %.100s\n", line.c_str());
  }

  // Step 4(a): ARE for varying delta, fixed k and m.
  auto sweep = session.EvaluateSweep(config, {"delta", 0.1, 0.5, 0.2});
  if (!sweep.ok()) return Fail(sweep.status());
  auto are_series = sweep->Extract("are");
  if (!are_series.ok()) return Fail(are_series.status());
  PlotOptions options;
  options.title = "(a) ARE vs delta (k=5, m=2)";
  printf("\n%s", RenderLineChart({*are_series}, options).c_str());

  // Step 4(b): time per phase.
  printf("\n(b) phase runtimes:\n%s",
         RenderBars({report->run.phases.phases().begin(),
                     report->run.phases.phases().end()})
             .c_str());

  // Step 4(c): frequency of generalized values in a relational attribute.
  auto origin = anonymized->ColumnByName("Origin");
  if (!origin.ok()) return Fail(origin.status());
  Histogram hist = ValueHistogram(*anonymized, origin.value());
  hist.resize(std::min<size_t>(hist.size(), 10));
  printf("\n(c) generalized Origin values:\n%s", RenderHistogram(hist).c_str());

  // Step 4(d): relative error of item frequencies.
  std::vector<std::vector<ItemId>> original;
  for (size_t r = 0; r < session.dataset().num_records(); ++r) {
    original.push_back(session.dataset().items(r).raw());
  }
  double mean_err = MeanItemFrequencyError(
      *report->run.transaction, original, session.dataset().item_dictionary());
  printf("\n(d) mean item-frequency relative error: %.4f\n", mean_err);
  return 0;
}
