// Scripted client for secreta_jobd: one subcommand per invocation, exit 0
// on success. CI's serve-smoke job drives the whole protocol through this
// binary — handshake, anonymized and direct COUNTs, quota hammering, the
// metrics snapshot, and a clean goodbye.
//
//   example_serve_client --port P --token T list
//   example_serve_client --port P --token T count DATASET QUERY [ACCESS]
//   example_serve_client --port P --token T hammer DATASET QUERY N
//   example_serve_client --port P --token T metrics [--watch S [N]]
//   example_serve_client --port P --token T traces
//   example_serve_client --port P --token T ping
//
// Failures print "error: <Code>: <message>" (plus "retry_after_ms=..." when
// the server sent a backpressure hint) to stderr and exit 1.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"

using namespace secreta;

namespace {

[[noreturn]] void FailStatus(const Status& status) {
  std::fprintf(stderr, "error: %s", status.ToString().c_str());
  if (status.has_retry_after()) {
    std::fprintf(stderr, " retry_after_ms=%d",
                 static_cast<int>(status.retry_after_seconds() * 1000));
  }
  std::fprintf(stderr, "\n");
  std::exit(1);
}

void Check(const Status& status) {
  if (!status.ok()) FailStatus(status);
}

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) FailStatus(result.status());
  return std::move(result).value();
}

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: serve_client --port P --token T [--host H] "
               "[--client NAME] SUBCOMMAND\n"
               "  list\n"
               "  count DATASET QUERY [ACCESS]\n"
               "  hammer DATASET QUERY N\n"
               "  metrics [--watch SECONDS [ROUNDS]]\n"
               "  traces\n"
               "  ping\n");
  std::exit(2);
}

// Parses the "name value" lines Metrics() returns into a map for delta math.
std::map<std::string, double> ParseMetricLines(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    out[line.substr(0, space)] = std::atof(line.c_str() + space + 1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string token;
  std::string client_name = "serve_client";
  uint16_t port = 0;
  int i = 1;
  for (; i < argc && std::strncmp(argv[i], "--", 2) == 0; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_client: %s needs a value\n", flag);
        Usage();
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (std::strcmp(argv[i], "--token") == 0) {
      token = next("--token");
    } else if (std::strcmp(argv[i], "--client") == 0) {
      client_name = next("--client");
    } else {
      std::fprintf(stderr, "serve_client: unknown flag %s\n", argv[i]);
      Usage();
    }
  }
  if (i >= argc || port == 0 || token.empty()) Usage();
  std::string command = argv[i++];
  std::vector<std::string> args(argv + i, argv + argc);

  ServeClient client;
  Check(client.Connect(host, port));
  Check(client.Hello(token, client_name));

  if (command == "list") {
    for (const ServeDatasetInfo& info : Check(client.ListDatasets())) {
      std::printf("%s records=%llu version=%llu config=%s\n",
                  info.name.c_str(),
                  static_cast<unsigned long long>(info.records),
                  static_cast<unsigned long long>(info.version),
                  info.config.c_str());
    }
  } else if (command == "count") {
    if (args.size() < 2 || args.size() > 3) Usage();
    ServeClient::CountResult result = Check(client.Count(
        args[0], args[1], args.size() == 3 ? args[2] : std::string()));
    std::printf("count=%.6f cached=%s server_seconds=%.6f\n", result.count,
                result.cached ? "true" : "false", result.server_seconds);
  } else if (command == "hammer") {
    if (args.size() != 3) Usage();
    int n = std::atoi(args[2].c_str());
    int ok = 0, rejected = 0, failed = 0;
    for (int q = 0; q < n; ++q) {
      Result<ServeClient::CountResult> result = client.Count(args[0], args[1]);
      if (result.ok()) {
        ++ok;
      } else if (result.status().code() == StatusCode::kResourceExhausted) {
        ++rejected;
      } else {
        ++failed;
        std::fprintf(stderr, "hammer query %d: %s\n", q,
                     result.status().ToString().c_str());
      }
    }
    std::printf("hammer ok=%d rejected=%d failed=%d\n", ok, rejected, failed);
    if (failed > 0) std::exit(1);
  } else if (command == "metrics") {
    if (!args.empty() && args[0] == "--watch") {
      double interval = args.size() > 1 ? std::atof(args[1].c_str()) : 2.0;
      int rounds = args.size() > 2 ? std::atoi(args[2].c_str()) : 1;
      if (interval <= 0 || rounds < 1) Usage();
      std::map<std::string, double> prev =
          ParseMetricLines(Check(client.Metrics()));
      for (int round = 0; round < rounds; ++round) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
        std::map<std::string, double> now =
            ParseMetricLines(Check(client.Metrics()));
        std::printf("-- watch %d/%d (%.1fs) --\n", round + 1, rounds,
                    interval);
        bool changed = false;
        for (const auto& [name, value] : now) {
          auto it = prev.find(name);
          double before = it == prev.end() ? 0 : it->second;
          if (value == before) continue;
          changed = true;
          std::printf("%s %+g (%.1f/s)\n", name.c_str(), value - before,
                      (value - before) / interval);
        }
        if (!changed) std::printf("(no change)\n");
        prev = std::move(now);
      }
    } else {
      std::printf("%s", Check(client.Metrics()).c_str());
    }
  } else if (command == "traces") {
    for (const RequestTrace& trace : Check(client.AdminTraces())) {
      std::printf(
          "trace_id=%llu tenant=%s dataset=%s shape=\"%s\" outcome=%s "
          "queue=%.6fs run=%.6fs total=%.6fs cached=%s slow=%s error=%s "
          "tier=%s\n",
          static_cast<unsigned long long>(trace.trace_id),
          trace.tenant.c_str(), trace.dataset.c_str(),
          trace.query_shape.c_str(), trace.outcome.c_str(),
          trace.queue_seconds, trace.run_seconds, trace.total_seconds,
          trace.cached ? "true" : "false", trace.slow ? "true" : "false",
          trace.error ? "true" : "false", trace.kernel_tier.c_str());
    }
  } else if (command == "ping") {
    Check(client.Ping());
    std::printf("pong\n");
  } else {
    Usage();
  }

  Check(client.Bye());
  return 0;
}
