// Standalone audit utility: verify the privacy guarantee of an anonymized
// CSV from its published form alone (what a data recipient can check).
//
//   ./build/examples/example_audit_tool <anonymized.csv> <k> <m> [global]
//
// Exit code 0 iff the file passes (k-anonymity over its relational columns
// and k^m-anonymity over its transaction column; with "global" the k^m check
// runs dataset-wide instead of per relational class).
//
// Without arguments, runs a self-demo: anonymizes a synthetic dataset and
// audits both the original (fails) and the output (passes).

#include <cstdio>
#include <cstring>

#include "common/string_util.h"
#include "core/audit.h"
#include "datagen/synthetic.h"
#include "frontend/session.h"

using namespace secreta;

namespace {

int PrintAudit(const AuditReport& report, int k, int m) {
  printf("k-anonymity (k=%d):   %s (min class %zu)\n", k,
         report.k_anonymous ? "OK" : "VIOLATED", report.min_class_size);
  printf("k^m-anonymity (m=%d): %s\n", m,
         report.km_anonymous ? "OK" : "VIOLATED");
  printf("details: %s\n", report.details.c_str());
  return report.k_anonymous && report.km_anonymous ? 0 : 2;
}

int SelfDemo() {
  printf("-- self demo: raw vs anonymized --\n");
  SecretaSession session;
  SyntheticOptions gen;
  gen.num_records = 800;
  gen.seed = 55;
  auto dataset = GenerateRtDataset(gen);
  if (!dataset.ok()) return 1;
  Dataset original = dataset.value();
  if (!session.SetDataset(std::move(dataset).value()).ok()) return 1;
  if (!session.AutoGenerateHierarchies().ok()) return 1;
  AlgorithmConfig config;
  config.mode = AnonMode::kRt;
  config.params.k = 5;
  config.params.m = 2;
  auto report = session.Evaluate(config);
  if (!report.ok()) return 1;
  auto anonymized = session.Materialize(*report);
  if (!anonymized.ok()) return 1;

  printf("\nraw data:\n");
  auto raw_audit = AuditAnonymizedDataset(original, 5, 2, true);
  if (!raw_audit.ok()) return 1;
  PrintAudit(*raw_audit, 5, 2);  // expected: VIOLATED

  printf("\nanonymized output (%s):\n", config.Label().c_str());
  auto anon_audit = AuditAnonymizedDataset(*anonymized, 5, 2, true);
  if (!anon_audit.ok()) return 1;
  return PrintAudit(*anon_audit, 5, 2);  // expected: OK
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return SelfDemo();
  if (argc < 4) {
    fprintf(stderr, "usage: %s <anonymized.csv> <k> <m> [global]\n", argv[0]);
    return 1;
  }
  auto dataset = Dataset::LoadFile(argv[1]);
  if (!dataset.ok()) {
    fprintf(stderr, "cannot load %s: %s\n", argv[1],
            dataset.status().ToString().c_str());
    return 1;
  }
  auto k = ParseInt(argv[2]);
  auto m = ParseInt(argv[3]);
  if (!k.ok() || !m.ok()) {
    fprintf(stderr, "k and m must be integers\n");
    return 1;
  }
  bool per_class = !(argc > 4 && std::strcmp(argv[4], "global") == 0);
  auto audit = AuditAnonymizedDataset(*dataset, static_cast<int>(k.value()),
                                      static_cast<int>(m.value()), per_class);
  if (!audit.ok()) {
    fprintf(stderr, "audit failed: %s\n", audit.status().ToString().c_str());
    return 1;
  }
  return PrintAudit(*audit, static_cast<int>(k.value()),
                    static_cast<int>(m.value()));
}
