// Comparison-mode walkthrough — the third demo scenario of the paper
// (Sec. 3, "Comparing methods for RT-datasets"):
//   (a) select algorithms for each attribute type and a bounding method,
//   (b) set the fixed parameter values,
//   (c) choose a varying parameter with start/end/step;
// each such choice forms a configuration added to the experimenter area;
// after running, the selected graphs appear in the plotting area.
//
// Build & run:  ./build/examples/example_comparison_mode

#include <cstdio>

#include "datagen/synthetic.h"
#include "export/exporter.h"
#include "frontend/session.h"
#include "viz/ascii_plot.h"

using namespace secreta;

namespace {

int Fail(const Status& status) {
  fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  SecretaSession session;
  SyntheticOptions gen;
  gen.num_records = 1500;
  gen.seed = 13;
  auto dataset = GenerateRtDataset(gen);
  if (!dataset.ok()) return Fail(dataset.status());
  if (auto st = session.SetDataset(std::move(dataset).value()); !st.ok()) {
    return Fail(st);
  }
  if (auto st = session.AutoGenerateHierarchies(); !st.ok()) return Fail(st);
  WorkloadGenOptions wl;
  wl.num_queries = 40;
  if (auto st = session.GenerateQueryWorkload(wl); !st.ok()) return Fail(st);

  // The experimenter area: three configurations sharing the varying
  // parameter k in [2, 10] step 4.
  std::vector<AlgorithmConfig> configs(3);
  configs[0].relational_algorithm = "Cluster";
  configs[0].transaction_algorithm = "Apriori";
  configs[0].merger = MergerKind::kRTmerger;
  configs[1].relational_algorithm = "Cluster";
  configs[1].transaction_algorithm = "PCTA";
  configs[1].merger = MergerKind::kRTmerger;
  configs[2].relational_algorithm = "TopDown";
  configs[2].transaction_algorithm = "LRA";
  configs[2].merger = MergerKind::kRmerger;
  for (auto& config : configs) {
    config.mode = AnonMode::kRt;
    config.params.m = 2;
    config.params.delta = 0.3;
  }
  ParamSweep sweep{"k", 2, 10, 4};

  printf("comparing %zu configurations over %s...\n\n", configs.size(),
         sweep.parameter.c_str());
  auto results = session.Compare(configs, sweep);
  if (!results.ok()) return Fail(results.status());

  // Plotting area: one chart per metric, one line per configuration.
  for (const char* metric : {"are", "gcp", "ul", "runtime"}) {
    std::vector<Series> series;
    for (const auto& result : *results) {
      auto s = result.Extract(metric);
      if (!s.ok()) return Fail(s.status());
      s->name = result.base.relational_algorithm + "+" +
                result.base.transaction_algorithm;
      series.push_back(std::move(*s));
    }
    PlotOptions options;
    options.title = std::string(metric) + " vs k";
    printf("%s\n", RenderLineChart(series, options).c_str());
    // Data Export Module: the same series as CSV + gnuplot script.
    std::string base = std::string("comparison_") + metric;
    if (auto st = ExportSeries(series, base + ".csv", base + ".gp",
                               options.title);
        !st.ok()) {
      return Fail(st);
    }
  }
  printf("series exported to comparison_<metric>.{csv,gp}\n");
  return 0;
}
