// The SECRETA command-line application: interactive REPL or script runner.
//
//   ./build/examples/example_secreta_cli               # interactive
//   ./build/examples/example_secreta_cli script.txt    # run a command file
//
// Observability flags (may precede or follow the script path):
//   --trace-out <file>     enable the span tracer; on exit write the collected
//                          spans as Chrome trace-event JSON (open the file in
//                          chrome://tracing or https://ui.perfetto.dev)
//   --metrics-out <file>   on exit write the global metrics registry snapshot
//                          (counters, gauges, latency histograms) as JSON
//
// Robustness flags:
//   --faults <spec>        arm the fault injector (requires a build with
//                          -DSECRETA_FAULTS=ON); spec grammar is
//                          site:action:arg[,site:action:arg...], e.g.
//                          sweep.point:fail:0.05 — see
//                          src/robust/fault_injection.h. The SECRETA_FAULTS
//                          environment variable is a fallback for the flag;
//                          SECRETA_FAULT_SEED (integer) seeds the
//                          probabilistic triggers deterministically.
//   --mem-budget-mb <n>    soft memory budget: the engine sheds optional
//                          work (ARE query workload, distribution copies)
//                          instead of exceeding it, and flags affected
//                          reports as degraded
//
// Performance flags:
//   --kernels <tier>       force the SIMD kernel tier (scalar, avx2, neon)
//                          instead of the CPU-detected best; the
//                          SECRETA_KERNELS environment variable is a fallback
//                          for the flag
//
// Try:
//   generate 2000
//   hierarchies auto
//   workload gen 50
//   mode rt
//   algo rel Cluster
//   algo txn Apriori
//   merger RTmerger
//   param k 5
//   run
//   sweep delta 0.1 0.5 0.2
//   save-output anon.csv

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "export/json_export.h"
#include "frontend/cli.h"
#include "kernels/kernels.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "robust/memory_budget.h"

namespace {

// Writes trace/metrics files (if requested) before exit. Returns the process
// exit code, folding in any export failure.
int Finish(int code, const std::string& trace_out,
           const std::string& metrics_out) {
  if (!trace_out.empty()) {
    secreta::Status status = secreta::Tracer::Get().WriteChromeTrace(trace_out);
    if (!status.ok()) {
      std::cerr << "cannot write trace: " << status.ToString() << "\n";
      if (code == 0) code = 1;
    }
  }
  if (!metrics_out.empty()) {
    std::string json = secreta::MetricsSnapshotToJson(
        secreta::MetricsRegistry::Global().Snapshot());
    secreta::Status status = secreta::WriteJsonFile(json, metrics_out);
    if (!status.ok()) {
      std::cerr << "cannot write metrics: " << status.ToString() << "\n";
      if (code == 0) code = 1;
    }
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string script_path;
  std::string trace_out;
  std::string metrics_out;
  std::string fault_spec;
  std::string kernel_tier;
  size_t mem_budget_mb = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if ((arg == "--trace-out" || arg == "--metrics-out") && i + 1 < argc) {
      (arg == "--trace-out" ? trace_out : metrics_out) = argv[++i];
    } else if (arg.rfind("--faults=", 0) == 0) {
      fault_spec = arg.substr(9);
    } else if (arg == "--faults" && i + 1 < argc) {
      fault_spec = argv[++i];
    } else if (arg.rfind("--mem-budget-mb=", 0) == 0) {
      mem_budget_mb = static_cast<size_t>(std::atoll(arg.c_str() + 16));
    } else if (arg == "--mem-budget-mb" && i + 1 < argc) {
      mem_budget_mb = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg.rfind("--kernels=", 0) == 0) {
      kernel_tier = arg.substr(10);
    } else if (arg == "--kernels" && i + 1 < argc) {
      kernel_tier = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--trace-out FILE] [--metrics-out FILE]"
                << " [--faults SPEC] [--mem-budget-mb N]"
                << " [--kernels TIER] [script]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    } else {
      script_path = arg;
    }
  }
  if (!kernel_tier.empty()) {
    secreta::Status status = secreta::kernels::SetTier(kernel_tier);
    if (!status.ok()) {
      std::cerr << "bad --kernels tier: " << status.ToString() << "\n";
      return 1;
    }
  }
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("SECRETA_FAULTS")) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    if (!secreta::FaultInjector::CompiledIn()) {
      std::cerr << "--faults requires a build with -DSECRETA_FAULTS=ON "
                   "(the fault sites are compiled out)\n";
      return 1;
    }
    uint64_t seed = 0;
    if (const char* env = std::getenv("SECRETA_FAULT_SEED")) {
      seed = static_cast<uint64_t>(std::atoll(env));
    }
    secreta::Status status =
        secreta::FaultInjector::Global().Configure(fault_spec, seed);
    if (!status.ok()) {
      std::cerr << "bad fault spec: " << status.ToString() << "\n";
      return 1;
    }
    std::cerr << "fault injection armed: " << fault_spec << "\n";
  }
  if (!trace_out.empty()) secreta::Tracer::Get().Enable();

  secreta::CommandLineInterface cli(&std::cout);
  secreta::MemoryBudget budget(mem_budget_mb * 1024 * 1024);
  if (mem_budget_mb > 0) cli.session().set_memory_budget(&budget);
  if (!script_path.empty()) {
    std::ifstream script(script_path);
    if (!script) {
      std::cerr << "cannot open script: " << script_path << "\n";
      return Finish(1, trace_out, metrics_out);
    }
    size_t failures = cli.RunScript(script, /*stop_on_error=*/true);
    return Finish(failures == 0 ? 0 : 1, trace_out, metrics_out);
  }
  std::cout << "SECRETA CLI — type 'help' for commands, 'quit' to leave\n";
  std::string line;
  while (!cli.done()) {
    std::cout << "secreta> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    secreta::Status status = cli.Execute(line);
    if (!status.ok()) std::cout << "error: " << status.ToString() << "\n";
  }
  return Finish(0, trace_out, metrics_out);
}
