// The SECRETA command-line application: interactive REPL or script runner.
//
//   ./build/examples/example_secreta_cli               # interactive
//   ./build/examples/example_secreta_cli script.txt    # run a command file
//
// Try:
//   generate 2000
//   hierarchies auto
//   workload gen 50
//   mode rt
//   algo rel Cluster
//   algo txn Apriori
//   merger RTmerger
//   param k 5
//   run
//   sweep delta 0.1 0.5 0.2
//   save-output anon.csv

#include <fstream>
#include <iostream>

#include "frontend/cli.h"

int main(int argc, char** argv) {
  secreta::CommandLineInterface cli(&std::cout);
  if (argc > 1) {
    std::ifstream script(argv[1]);
    if (!script) {
      std::cerr << "cannot open script: " << argv[1] << "\n";
      return 1;
    }
    size_t failures = cli.RunScript(script, /*stop_on_error=*/true);
    return failures == 0 ? 0 : 1;
  }
  std::cout << "SECRETA CLI — type 'help' for commands, 'quit' to leave\n";
  std::string line;
  while (!cli.done()) {
    std::cout << "secreta> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    secreta::Status status = cli.Execute(line);
    if (!status.ok()) std::cout << "error: " << status.ToString() << "\n";
  }
  return 0;
}
