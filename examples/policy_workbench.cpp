// Policy workbench — the Configuration Editor / Policy Specification Module
// in action (paper Sec. 2.1-2.2): privacy and utility policies for COAT and
// PCTA, loaded from files or generated automatically, and their effect on
// utility. Also demonstrates the rho-uncertainty extension the paper lists
// as future work.
//
// Build & run:  ./build/examples/example_policy_workbench

#include <cstdio>

#include "algo/transaction/rho_uncertainty.h"
#include "datagen/synthetic.h"
#include "engine/registry.h"
#include "metrics/information_loss.h"
#include "policy/policy_generator.h"
#include "policy/policy_io.h"

using namespace secreta;

namespace {

int Fail(const Status& status) {
  fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  SyntheticOptions gen;
  gen.num_records = 1200;
  gen.num_items = 60;
  gen.seed = 101;
  auto dataset_or = GenerateTransactionDataset(gen);
  if (!dataset_or.ok()) return Fail(dataset_or.status());
  Dataset dataset = std::move(dataset_or).value();
  auto context_or = TransactionContext::Create(dataset, nullptr);
  if (!context_or.ok()) return Fail(context_or.status());
  const TransactionContext& context = context_or.value();

  std::vector<std::vector<ItemId>> original;
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    original.push_back(dataset.items(r).raw());
  }
  size_t num_items = dataset.item_dictionary().size();

  // 1. Generate a privacy policy (protect the frequent head) and a utility
  //    policy (items of similar frequency may merge).
  PrivacyGenOptions pg;
  pg.strategy = PrivacyStrategy::kFrequentItems;
  pg.frequent_fraction = 0.3;
  auto privacy = GeneratePrivacyPolicy(dataset, pg);
  if (!privacy.ok()) return Fail(privacy.status());
  for (auto& constraint : privacy->constraints) constraint.k = 10;
  UtilityGenOptions ug;
  ug.strategy = UtilityStrategy::kFrequencyBands;
  ug.band_size = 6;
  auto utility = GenerateUtilityPolicy(dataset, ug);
  if (!utility.ok()) return Fail(utility.status());
  printf("privacy policy: %zu constraints (k=10 each)\n", privacy->size());
  printf("utility policy: %zu frequency bands\n\n",
         utility->constraints.size());

  // 2. Policies are files too (upload/download in the GUI).
  if (auto st = SavePrivacyPolicyFile(*privacy, dataset, "privacy_policy.txt");
      !st.ok()) {
    return Fail(st);
  }
  if (auto st = SaveUtilityPolicyFile(*utility, dataset, "utility_policy.txt");
      !st.ok()) {
    return Fail(st);
  }
  auto reloaded = LoadPrivacyPolicyFile("privacy_policy.txt", dataset);
  if (!reloaded.ok()) return Fail(reloaded.status());
  printf("policies written to privacy_policy.txt / utility_policy.txt and "
         "reloaded (%zu constraints)\n\n",
         reloaded->size());

  // 3. COAT vs PCTA under the same policies.
  AnonParams params;
  params.k = 10;
  for (const char* name : {"COAT", "PCTA"}) {
    auto algo = MakeTransactionAnonymizer(name, *privacy, *utility);
    if (!algo.ok()) return Fail(algo.status());
    auto recoding = (*algo)->Anonymize(context, params);
    if (!recoding.ok()) return Fail(recoding.status());
    bool sat_p = SatisfiesPrivacyPolicy(*privacy, *recoding, params.k);
    bool sat_u = SatisfiesUtilityPolicy(*utility, *recoding);
    printf("%-5s UL=%.4f suppressed=%zu privacy=%s utility=%s\n", name,
           TransactionUl(*recoding, original, num_items),
           recoding->suppressed_occurrences, sat_p ? "OK" : "VIOLATED",
           sat_u ? "OK" : "VIOLATED");
  }

  // 4. Future-work extension: rho-uncertainty via global suppression.
  RhoUncertaintyAnonymizer rho_algo;
  params.rho = 0.4;
  params.m = 2;
  auto rho_out = rho_algo.Anonymize(context, params);
  if (!rho_out.ok()) return Fail(rho_out.status());
  printf("\nrho-uncertainty (rho=%.2f, m=%d): UL=%.4f, %zu occurrences "
         "suppressed\n",
         params.rho, params.m,
         TransactionUl(*rho_out, original, num_items),
         rho_out->suppressed_occurrences);
  return 0;
}
