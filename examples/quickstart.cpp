// Quickstart: generate a small RT-dataset, anonymize it with the default RT
// combination (Cluster + Apriori bounded by RTmerger), and print the utility
// report plus a peek at the anonymized records.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>

#include "datagen/synthetic.h"
#include "frontend/session.h"

using namespace secreta;  // examples favour brevity

int main() {
  SecretaSession session;

  // 1. Load data (here: synthetic; SecretaSession::LoadDatasetFile loads CSV).
  SyntheticOptions gen;
  gen.num_records = 1000;
  gen.seed = 42;
  auto dataset = GenerateRtDataset(gen);
  if (!dataset.ok()) {
    fprintf(stderr, "datagen failed: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if (auto st = session.SetDataset(std::move(dataset).value()); !st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Configuration Editor: auto-generate hierarchies; Queries Editor:
  //    auto-generate a workload for ARE.
  if (auto st = session.AutoGenerateHierarchies(); !st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  WorkloadGenOptions wl;
  wl.num_queries = 50;
  if (auto st = session.GenerateQueryWorkload(wl); !st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Evaluation mode: one RT configuration.
  AlgorithmConfig config;
  config.mode = AnonMode::kRt;
  config.relational_algorithm = "Cluster";
  config.transaction_algorithm = "Apriori";
  config.merger = MergerKind::kRTmerger;
  config.params.k = 5;
  config.params.m = 2;
  config.params.delta = 0.3;

  auto report = session.Evaluate(config);
  if (!report.ok()) {
    fprintf(stderr, "run failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  printf("== %s ==\n", config.Label().c_str());
  printf("guarantee %s: %s\n", report->guarantee_name.c_str(),
         report->guarantee_ok ? "OK" : "VIOLATED");
  printf("GCP (relational loss)      %.4f\n", report->gcp);
  printf("UL (transaction loss)      %.4f\n", report->ul);
  printf("ARE (query error)          %.4f\n", report->are);
  printf("runtime                    %.3fs\n", report->run.runtime_seconds);
  printf("clusters %zu -> %zu after %zu merges\n", report->run.initial_clusters,
         report->run.final_clusters, report->run.merges);
  for (const auto& [phase, seconds] : report->run.phases.phases()) {
    printf("  phase %-12s %.3fs\n", phase.c_str(), seconds);
  }

  // 4. Materialize and show a few anonymized records.
  auto anonymized = session.Materialize(*report);
  if (!anonymized.ok()) {
    fprintf(stderr, "%s\n", anonymized.status().ToString().c_str());
    return 1;
  }
  auto table = anonymized->ToCsv();
  printf("\nfirst anonymized records:\n");
  for (size_t r = 0; r < table.size() && r < 6; ++r) {
    for (size_t c = 0; c < table[r].size(); ++c) {
      printf("%s%s", c > 0 ? " | " : "  ", table[r][c].c_str());
    }
    printf("\n");
  }
  return 0;
}
