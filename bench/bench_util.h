// Shared helpers for the SECRETA benchmark/figure harnesses.

#ifndef SECRETA_BENCH_BENCH_UTIL_H_
#define SECRETA_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "frontend/session.h"

namespace secreta::bench {

/// The benchmark RT-dataset (shape chosen to mirror the paper's demo data:
/// demographic QIDs + skewed diagnosis-style items).
Dataset BenchDataset(size_t num_records, uint64_t seed = 2014);

/// Session preloaded with the bench dataset, auto-generated hierarchies and a
/// query workload.
SecretaSession MakeSession(size_t num_records, size_t workload_queries = 100,
                           uint64_t seed = 2014);

/// Directory for CSV/gnuplot outputs (created on demand): "bench_out/".
std::string OutDir();

/// Prints a row of fixed-width columns to stdout.
void PrintRow(const std::vector<std::string>& cells);

/// Prints a separator matching PrintRow's layout.
void PrintRule(size_t columns);

/// Aborts with a message if `status` is not OK (bench harnesses fail fast).
void CheckOk(const Status& status, const char* what);

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

}  // namespace secreta::bench

#endif  // SECRETA_BENCH_BENCH_UTIL_H_
