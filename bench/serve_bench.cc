// SERVB — the serving benchmark: sustained anonymized-COUNT throughput of
// the full online stack (TCP framing -> handshake -> admission -> catalog ->
// indexed estimation) under concurrent clients. Emits BENCH_service.json
// (CWD) with every number.
//
// Two published releases are measured: "bench" with the answer LRU disabled
// (every query pays estimation against the recoding — the honest query-
// engine throughput) and "bench_cached" with the LRU on (steady-state
// dashboard traffic). Correctness rides along: every concurrent client
// must receive byte-identical counts to a serial warm-up pass, and the
// anonymized/direct split is spot-checked against the in-process release.
//
// Default ("full") mode runs 8 clients x 200 queries and exits nonzero
// unless the concurrent uncached run sustains >= 100 queries/second with
// zero failures and zero mismatches. `--quick` shrinks sizes for CI smoke
// (no QPS floor: CI machines are noisy; correctness still gates).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "csv/csv.h"
#include "datagen/synthetic.h"
#include "export/json_export.h"
#include "obs/metric_names.h"
#include "obs/metrics_registry.h"
#include "obs/slow_query_log.h"
#include "query/workload_generator.h"
#include "serve/catalog.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/session.h"
#include "service/job_scheduler.h"

using namespace secreta;

namespace {

struct RunStats {
  double seconds = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t mismatched = 0;
  double qps() const { return seconds > 0 ? ok / seconds : 0; }
};

// Fires `clients` threads, each with its own connection, each issuing
// `per_client` COUNTs round-robin over `queries`; answers are compared
// byte-for-byte (as doubles parsed from identical wire strings) against
// `reference`.
RunStats HammerConcurrently(uint16_t port, const std::string& token,
                            const std::string& dataset,
                            const std::vector<std::string>& queries,
                            const std::vector<double>& reference,
                            size_t clients, size_t per_client) {
  std::atomic<uint64_t> ok{0}, failed{0}, mismatched{0};
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client;
      if (!client.Connect("127.0.0.1", port).ok() ||
          !client.Hello(token, "serve_bench").ok()) {
        failed.fetch_add(per_client);
        return;
      }
      for (size_t q = 0; q < per_client; ++q) {
        size_t which = (c * 31 + q) % queries.size();
        Result<ServeClient::CountResult> result =
            client.Count(dataset, queries[which]);
        if (!result.ok()) {
          failed.fetch_add(1);
          continue;
        }
        if (result->count != reference[which]) {
          mismatched.fetch_add(1);
          continue;
        }
        ok.fetch_add(1);
      }
      client.Bye().IgnoreError();  // bench teardown; server closes anyway
    });
  }
  for (std::thread& t : threads) t.join();
  RunStats stats;
  stats.seconds = watch.ElapsedSeconds();
  stats.ok = ok.load();
  stats.failed = failed.load();
  stats.mismatched = mismatched.load();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  size_t clients = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = static_cast<size_t>(std::atol(argv[++i]));
    }
  }
  const size_t records = quick ? 800 : 5000;
  const size_t pool_queries = quick ? 16 : 48;
  const size_t per_client = quick ? 25 : 200;

  printf("== SERVB: serving throughput (%zu records, %zu clients, %zu "
         "queries each)%s ==\n",
         records, clients, per_client, quick ? " [quick]" : "");

  // --- Stage: dataset, workload pool, two releases, tenants, server --------
  SyntheticOptions gen;
  gen.num_records = records;
  gen.seed = 2014;
  Dataset dataset = bench::CheckOk(GenerateRtDataset(gen), "generate");
  WorkloadGenOptions wopts;
  wopts.num_queries = pool_queries;
  wopts.seed = 7;
  Workload workload =
      bench::CheckOk(GenerateWorkload(dataset, wopts), "workload");
  std::vector<std::string> queries;
  for (const CountQuery& query : workload.queries()) {
    queries.push_back(query.ToString());
  }

  ReleaseOptions uncached;
  uncached.config.mode = AnonMode::kRt;
  uncached.config.relational_algorithm = "Cluster";
  uncached.config.transaction_algorithm = "Apriori";
  uncached.config.params.k = 5;
  uncached.config.params.m = 2;
  uncached.answer_cache_capacity = 0;
  ReleaseOptions cached = uncached;
  cached.answer_cache_capacity = 1024;

  DatasetCatalog catalog;
  Stopwatch publish_watch;
  bench::CheckOk(
      catalog.Publish("bench", std::move(dataset), uncached).status(),
      "publish");
  double publish_seconds = publish_watch.ElapsedSeconds();
  Dataset dataset2 = bench::CheckOk(GenerateRtDataset(gen), "generate2");
  auto release_cached = bench::CheckOk(
      catalog.Publish("bench_cached", std::move(dataset2), cached),
      "publish cached");

  TenantRegistry tenants;
  TenantConfig bench_tenant;
  bench_tenant.name = "bench";
  bench_tenant.token = "bench-token";
  bench_tenant.access = AccessLevel::kDirect;  // also used for oracle checks
  bench::CheckOk(tenants.AddTenant(bench_tenant), "tenant");

  SchedulerOptions scheduler_options;
  scheduler_options.num_workers = clients;
  scheduler_options.max_queue = 4096;
  JobScheduler scheduler(scheduler_options);

  ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  server_options.max_connections = clients + 1;
  server_options.admission.default_deadline_seconds = 30;
  QueryServer server(&catalog, &tenants, &scheduler, server_options);
  bench::CheckOk(server.Start(), "start server");
  printf("server on port %u, published \"bench\" in %.2fs\n",
         static_cast<unsigned>(server.port()), publish_seconds);

  // --- Serial warm-up: reference answers + serial QPS baseline -------------
  std::vector<double> reference(queries.size());
  double serial_qps = 0;
  {
    ServeClient client;
    bench::CheckOk(client.Connect("127.0.0.1", server.port()), "connect");
    bench::CheckOk(client.Hello("bench-token", "warmup"), "hello");
    // Spot-check the access split: direct == in-process direct answer.
    ServeClient::CountResult direct = bench::CheckOk(
        client.Count("bench", queries[0], "direct"), "direct count");
    PublishedRelease::CountAnswer oracle = bench::CheckOk(
        bench::CheckOk(catalog.Get("bench"), "get")
            ->CountLine(queries[0], AccessLevel::kDirect),
        "oracle");
    // The wire carries %.12g; exact counts are integers, so equality holds.
    if (direct.count != oracle.count) {
      fprintf(stderr, "FAIL: direct count %.17g != oracle %.17g\n",
              direct.count, oracle.count);
      return 1;
    }
    Stopwatch watch;
    for (size_t i = 0; i < queries.size(); ++i) {
      reference[i] = bench::CheckOk(client.Count("bench", queries[i]),
                                    "reference count")
                         .count;
    }
    serial_qps = queries.size() / watch.ElapsedSeconds();
    // Warm the cached release too, so its timed run measures LRU hits.
    for (const std::string& query : queries) {
      (void)bench::CheckOk(client.Count("bench_cached", query), "warm cache");
    }
    bench::CheckOk(client.Bye(), "bye");
  }

  // --- Timed concurrent runs -----------------------------------------------
  RunStats uncached_run =
      HammerConcurrently(server.port(), "bench-token", "bench", queries,
                         reference, clients, per_client);
  RunStats cached_run =
      HammerConcurrently(server.port(), "bench-token", "bench_cached",
                         queries, reference, clients, per_client);

  server.Stop();

  // --- Telemetry-overhead runs ---------------------------------------------
  // Same uncached workload, alternating between a telemetry-off server
  // (default slow threshold, nothing ever pinned or logged) and a
  // telemetry-on server that treats every COUNT as slow (threshold 0):
  // every query is pinned in the trace tail AND written to the slow-query
  // JSONL log. The runs are paired back-to-back and the gate compares the
  // best of each side, which cancels process-lifetime drift (allocator
  // state, scheduler history, frequency scaling) that a single early
  // baseline vs. late telemetry run would misattribute to telemetry; what
  // remains is the true cost of the pipeline at its most verbose setting.
  ServerOptions telemetry_options = server_options;
  telemetry_options.slow_query_threshold_seconds = 0;
  const std::string slow_log_path = "BENCH_slow_queries.jsonl";
  bench::CheckOk(SlowQueryLog::Global().Open(slow_log_path, 0),
                 "open slow-query log");
  const int telemetry_reps = quick ? 1 : 3;
  RunStats baseline_run;   // best-qps rep, telemetry off
  RunStats telemetry_run;  // best-qps rep, telemetry on
  RunStats paired_totals;  // ok/failed/mismatched over every paired run
  for (int rep = 0; rep < telemetry_reps; ++rep) {
    {
      QueryServer off_server(&catalog, &tenants, &scheduler, server_options);
      bench::CheckOk(off_server.Start(), "start telemetry-off server");
      RunStats run =
          HammerConcurrently(off_server.port(), "bench-token", "bench",
                             queries, reference, clients, per_client);
      off_server.Stop();
      if (run.qps() > baseline_run.qps()) baseline_run = run;
      paired_totals.ok += run.ok;
      paired_totals.failed += run.failed;
      paired_totals.mismatched += run.mismatched;
    }
    {
      QueryServer on_server(&catalog, &tenants, &scheduler, telemetry_options);
      bench::CheckOk(on_server.Start(), "start telemetry-on server");
      RunStats run =
          HammerConcurrently(on_server.port(), "bench-token", "bench",
                             queries, reference, clients, per_client);
      on_server.Stop();
      if (run.qps() > telemetry_run.qps()) telemetry_run = run;
      paired_totals.ok += run.ok;
      paired_totals.failed += run.failed;
      paired_totals.mismatched += run.mismatched;
    }
  }
  // Records accumulate across every telemetry-on rep (the log stays open).
  uint64_t slow_records = SlowQueryLog::Global().records_written();
  SlowQueryLog::Global().Close();
  const double telemetry_overhead =
      baseline_run.qps() > 0 ? 1.0 - telemetry_run.qps() / baseline_run.qps()
                             : 0;

  uint64_t cache_hits = 0;
  for (const auto& [key, value] :
       MetricsRegistry::Global().Snapshot().counters) {
    // Summed over the per-dataset label values.
    if (key.name == metric_names::kServeCacheHits) cache_hits += value;
  }

  printf("serial            %8.0f qps\n", serial_qps);
  printf("concurrent        %8.0f qps  (ok=%llu failed=%llu mismatched=%llu)\n",
         uncached_run.qps(), (unsigned long long)uncached_run.ok,
         (unsigned long long)uncached_run.failed,
         (unsigned long long)uncached_run.mismatched);
  printf("concurrent+cache  %8.0f qps  (lru hits=%llu)\n", cached_run.qps(),
         (unsigned long long)cache_hits);
  printf("telemetry-off     %8.0f qps  (best of %d paired reps)\n",
         baseline_run.qps(), telemetry_reps);
  printf("telemetry-on      %8.0f qps  (overhead %+.1f%%, %llu slow records)\n",
         telemetry_run.qps(), telemetry_overhead * 100.0,
         (unsigned long long)slow_records);

  JsonWriter w;
  w.BeginObject();
  w.Key("records");
  w.Int(static_cast<int64_t>(records));
  w.Key("pool_queries");
  w.Int(static_cast<int64_t>(pool_queries));
  w.Key("clients");
  w.Int(static_cast<int64_t>(clients));
  w.Key("queries_per_client");
  w.Int(static_cast<int64_t>(per_client));
  w.Key("quick");
  w.Bool(quick);
  w.Key("publish_seconds");
  w.Number(publish_seconds);
  w.Key("serial_qps");
  w.Number(serial_qps);
  w.Key("concurrent_qps");
  w.Number(uncached_run.qps());
  w.Key("concurrent_cached_qps");
  w.Number(cached_run.qps());
  w.Key("telemetry_baseline_qps");
  w.Number(baseline_run.qps());
  w.Key("telemetry_qps");
  w.Number(telemetry_run.qps());
  w.Key("telemetry_overhead_fraction");
  w.Number(telemetry_overhead);
  w.Key("telemetry_reps");
  w.Int(telemetry_reps);
  w.Key("slow_query_records");
  w.Int(static_cast<int64_t>(slow_records));
  w.Key("queries_ok");
  w.Int(static_cast<int64_t>(uncached_run.ok + cached_run.ok +
                             paired_totals.ok));
  w.Key("queries_failed");
  w.Int(static_cast<int64_t>(uncached_run.failed + cached_run.failed +
                             paired_totals.failed));
  w.Key("queries_mismatched");
  w.Int(static_cast<int64_t>(uncached_run.mismatched + cached_run.mismatched +
                             paired_totals.mismatched));
  w.Key("answer_cache_hits");
  w.Int(static_cast<int64_t>(cache_hits));
  w.EndObject();
  const std::string path = "BENCH_service.json";
  bench::CheckOk(csv::WriteFile(path, w.TakeString()), "json");
  printf("wrote %s\n", path.c_str());

  const uint64_t all_failed =
      uncached_run.failed + cached_run.failed + paired_totals.failed;
  const uint64_t all_mismatched = uncached_run.mismatched +
                                  cached_run.mismatched +
                                  paired_totals.mismatched;
  if (all_failed > 0) {
    fprintf(stderr, "FAIL: %llu queries failed\n",
            (unsigned long long)all_failed);
    return 1;
  }
  if (all_mismatched > 0) {
    fprintf(stderr, "FAIL: %llu counts diverged from the serial reference\n",
            (unsigned long long)all_mismatched);
    return 1;
  }
  if (!quick && uncached_run.qps() < 100.0) {
    fprintf(stderr, "FAIL: sustained %.0f qps < required 100 qps\n",
            uncached_run.qps());
    return 1;
  }
  if (!quick && telemetry_overhead > 0.05) {
    fprintf(stderr,
            "FAIL: telemetry-on run lost %.1f%% qps vs telemetry-off "
            "(limit 5%%)\n",
            telemetry_overhead * 100.0);
    return 1;
  }
  (void)release_cached;
  return 0;
}
