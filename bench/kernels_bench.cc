// KERNB — the kernel-layer benchmark: micro gates for the dispatched SIMD
// kernels and end-to-end A/B gates for the optimized anonymization
// algorithms. Emits BENCH_kernels.json (CWD) with every number.
//
// Three families of checks, all of which also assert correctness:
//  - micro: the active tier's fused AND+popcount / ANDNOT+popcount /
//    popcount-range / sorted-intersection kernels against the scalar
//    reference, on identical inputs (results must match exactly; on an AVX2
//    host the fused AND+popcount must run >= 4x the scalar loop — the gate
//    relaxes to >= 1x-within-noise when only the scalar tier exists);
//  - end-to-end: Incognito (packed-key counting vs the original
//    map-of-vector-keys scan) and COAT (posting-list ItemsetSupport vs the
//    original full-record scan) timed optimized-vs-reference on the same
//    data, outputs compared field-for-field — the full run requires >= 2x
//    on both;
//  - determinism: each parallelized algorithm (Incognito, Cluster, TopDown,
//    COAT) run with the shared pool and with pool=nullptr must produce
//    byte-identical recodings.
//
// `--quick` shrinks sizes for CI smoke and drops the 2x end-to-end floor
// (small inputs don't amortize setup; correctness still gates). The micro
// gate always applies: it is scale-independent.

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "algo/relational/cluster.h"
#include "algo/relational/incognito.h"
#include "algo/relational/topdown.h"
#include "algo/transaction/coat.h"
#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "csv/csv.h"
#include "export/json_export.h"
#include "hierarchy/hierarchy_builder.h"
#include "kernels/kernels.h"
#include "policy/policy_generator.h"

using namespace secreta;

namespace {

// Best-of-`trials` seconds for one rep of `fn` (which runs `reps` kernel
// calls internally); best-of filters scheduler noise so even the
// scalar-vs-scalar ratio stays near 1.0.
template <typename Fn>
double BestSeconds(int trials, Fn&& fn) {
  double best = 0;
  for (int t = 0; t < trials; ++t) {
    Stopwatch watch;
    fn();
    double s = watch.ElapsedSeconds();
    if (t == 0 || s < best) best = s;
  }
  return best;
}

bool SameRelational(const RelationalRecoding& a, const RelationalRecoding& b) {
  if (a.num_records() != b.num_records() || a.num_qi() != b.num_qi()) {
    return false;
  }
  for (size_t r = 0; r < a.num_records(); ++r) {
    for (size_t qi = 0; qi < a.num_qi(); ++qi) {
      if (a.at(r, qi) != b.at(r, qi)) return false;
    }
  }
  return true;
}

bool SameTransaction(const TransactionRecoding& a,
                     const TransactionRecoding& b) {
  if (a.records != b.records || a.item_map != b.item_map ||
      a.suppressed_occurrences != b.suppressed_occurrences ||
      a.gens.size() != b.gens.size()) {
    return false;
  }
  for (size_t g = 0; g < a.gens.size(); ++g) {
    if (a.gens[g].label != b.gens[g].label ||
        a.gens[g].covers != b.gens[g].covers) {
      return false;
    }
  }
  return true;
}

int g_failures = 0;

void Gate(bool ok, const char* what) {
  if (!ok) {
    fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const bool avx2 = kernels::TierAvailable(kernels::Tier::kAvx2);
  const bool neon = kernels::TierAvailable(kernels::Tier::kNeon);
  const bool simd = avx2 || neon;
  printf("== KERNB: kernel + algorithm speedup gates (tier=%s)%s ==\n",
         kernels::ActiveTierName(), quick ? " [quick]" : "");

  // --- Micro: dispatched kernels vs the scalar reference -------------------
  const size_t words = 1 << 16;  // 512 KiB per operand
  const int reps = quick ? 20 : 200;
  std::mt19937_64 rng(2014);
  std::vector<uint64_t> a(words), b(words);
  for (size_t i = 0; i < words; ++i) {
    a[i] = rng();
    b[i] = rng();
  }
  // Sorted u32 lists with ~50% density over a shared universe.
  std::vector<uint32_t> la, lb;
  for (uint32_t v = 0; v < (quick ? 1u << 15 : 1u << 17); ++v) {
    if (rng() & 1) la.push_back(v);
    if (rng() & 1) lb.push_back(v);
  }

  volatile uint64_t sink = 0;  // defeat dead-code elimination
  uint64_t want_and = kernels::scalar::AndPopcount(a.data(), b.data(), words);
  uint64_t want_andnot =
      kernels::scalar::AndNotPopcount(a.data(), b.data(), words);
  uint64_t want_pop = kernels::scalar::PopcountRange(a.data(), words);
  size_t want_isect = kernels::scalar::IntersectCount(la.data(), la.size(),
                                                      lb.data(), lb.size());
  Gate(kernels::AndPopcount(a.data(), b.data(), words) == want_and,
       "AndPopcount diverges from scalar reference");
  Gate(kernels::AndNotPopcount(a.data(), b.data(), words) == want_andnot,
       "AndNotPopcount diverges from scalar reference");
  Gate(kernels::PopcountRange(a.data(), words) == want_pop,
       "PopcountRange diverges from scalar reference");
  Gate(kernels::IntersectCount(la.data(), la.size(), lb.data(), lb.size()) ==
           want_isect,
       "IntersectCount diverges from scalar reference");

  struct MicroRow {
    const char* name;
    double scalar_s;
    double active_s;
    double speedup() const { return active_s > 0 ? scalar_s / active_s : 0; }
  };
  std::vector<MicroRow> micro;
  auto time_pair = [&](const char* name, auto scalar_fn, auto active_fn) {
    MicroRow row{name, 0, 0};
    row.scalar_s = BestSeconds(5, [&] {
      uint64_t acc = 0;
      for (int r = 0; r < reps; ++r) acc += scalar_fn();
      sink = sink + acc;
    });
    row.active_s = BestSeconds(5, [&] {
      uint64_t acc = 0;
      for (int r = 0; r < reps; ++r) acc += active_fn();
      sink = sink + acc;
    });
    micro.push_back(row);
  };
  time_pair(
      "and_popcount",
      [&] { return kernels::scalar::AndPopcount(a.data(), b.data(), words); },
      [&] { return kernels::AndPopcount(a.data(), b.data(), words); });
  time_pair(
      "andnot_popcount",
      [&] {
        return kernels::scalar::AndNotPopcount(a.data(), b.data(), words);
      },
      [&] { return kernels::AndNotPopcount(a.data(), b.data(), words); });
  time_pair(
      "popcount_range",
      [&] { return kernels::scalar::PopcountRange(a.data(), words); },
      [&] { return kernels::PopcountRange(a.data(), words); });
  time_pair(
      "intersect_count",
      [&] {
        return kernels::scalar::IntersectCount(la.data(), la.size(), lb.data(),
                                               lb.size());
      },
      [&] {
        return kernels::IntersectCount(la.data(), la.size(), lb.data(),
                                       lb.size());
      });

  bench::PrintRow({"kernel", "scalar", "active", "speedup"});
  bench::PrintRule(4);
  for (const MicroRow& row : micro) {
    char scalar_c[32], active_c[32], speed_c[32];
    snprintf(scalar_c, sizeof scalar_c, "%.2fms", row.scalar_s * 1e3);
    snprintf(active_c, sizeof active_c, "%.2fms", row.active_s * 1e3);
    snprintf(speed_c, sizeof speed_c, "%.2fx", row.speedup());
    bench::PrintRow({row.name, scalar_c, active_c, speed_c});
  }
  // The headline micro gate: fused AND+popcount. A SIMD tier must deliver
  // >= 4x; a scalar-only host compares the dispatcher against the same code,
  // so only dispatch overhead could lose — allow 10% noise.
  double and_speedup = micro[0].speedup();
  Gate(and_speedup >= (simd ? 4.0 : 0.9),
       simd ? "AND+popcount speedup below the 4x SIMD gate"
            : "dispatched AND+popcount slower than calling scalar directly");

  // --- End-to-end: Incognito, optimized vs reference scan ------------------
  const size_t records = quick ? 4000 : 100000;
  printf("\nend-to-end A/B at %zu records (k=5, m=2)\n", records);
  AnonParams params;
  params.k = 5;
  params.m = 2;
  Dataset dataset = bench::BenchDataset(records);
  auto hierarchies = bench::CheckOk(BuildAllColumnHierarchies(dataset),
                                    "build hierarchies");
  auto rel_context = bench::CheckOk(
      RelationalContext::Create(dataset, hierarchies), "relational context");
  auto tx_context = bench::CheckOk(
      TransactionContext::Create(dataset, nullptr), "transaction context");

  double incognito_opt_s = 0, incognito_ref_s = 0;
  bool incognito_identical = false;
  {
    IncognitoAnonymizer algo;
    Stopwatch watch;
    RelationalRecoding optimized =
        bench::CheckOk(algo.Anonymize(rel_context, params), "incognito");
    incognito_opt_s = watch.ElapsedSeconds();
    algo.set_use_reference_impl(true);
    watch = Stopwatch();
    RelationalRecoding reference =
        bench::CheckOk(algo.Anonymize(rel_context, params), "incognito ref");
    incognito_ref_s = watch.ElapsedSeconds();
    incognito_identical = SameRelational(optimized, reference);
  }
  Gate(incognito_identical, "Incognito optimized != reference recoding");

  // --- End-to-end: COAT (constraint mode), optimized vs reference ----------
  PrivacyGenOptions privacy_options;
  privacy_options.strategy = PrivacyStrategy::kRandomItemsets;
  privacy_options.num_itemsets = quick ? 40 : 200;
  privacy_options.max_itemset_size = 2;
  privacy_options.seed = 11;
  PrivacyPolicy privacy = bench::CheckOk(
      GeneratePrivacyPolicy(dataset, privacy_options), "privacy policy");
  UtilityGenOptions utility_options;  // frequency bands
  UtilityPolicy utility = bench::CheckOk(
      GenerateUtilityPolicy(dataset, utility_options), "utility policy");

  double coat_opt_s = 0, coat_ref_s = 0;
  bool coat_identical = false;
  {
    CoatAnonymizer optimized_algo(privacy, utility);
    Stopwatch watch;
    TransactionRecoding optimized =
        bench::CheckOk(optimized_algo.Anonymize(tx_context, params), "coat");
    coat_opt_s = watch.ElapsedSeconds();
    CoatAnonymizer reference_algo(privacy, utility);
    reference_algo.set_use_reference_impl(true);
    watch = Stopwatch();
    TransactionRecoding reference = bench::CheckOk(
        reference_algo.Anonymize(tx_context, params), "coat ref");
    coat_ref_s = watch.ElapsedSeconds();
    coat_identical = SameTransaction(optimized, reference);
  }
  Gate(coat_identical, "COAT optimized != reference recoding");

  double incognito_speedup =
      incognito_opt_s > 0 ? incognito_ref_s / incognito_opt_s : 0;
  double coat_speedup = coat_opt_s > 0 ? coat_ref_s / coat_opt_s : 0;
  printf("Incognito  opt %.3fs  ref %.3fs  speedup %.2fx  identical=%s\n",
         incognito_opt_s, incognito_ref_s, incognito_speedup,
         incognito_identical ? "yes" : "NO");
  printf("COAT       opt %.3fs  ref %.3fs  speedup %.2fx  identical=%s\n",
         coat_opt_s, coat_ref_s, coat_speedup,
         coat_identical ? "yes" : "NO");
  if (!quick) {
    Gate(incognito_speedup >= 2.0, "Incognito end-to-end speedup below 2x");
    Gate(coat_speedup >= 2.0, "COAT end-to-end speedup below 2x");
  }

  // --- Determinism: pool vs serial must be byte-identical ------------------
  const size_t par_records = quick ? 2000 : 20000;
  Dataset par_data = bench::BenchDataset(par_records, /*seed=*/7);
  auto par_hier = bench::CheckOk(BuildAllColumnHierarchies(par_data),
                                 "parallel hierarchies");
  auto par_rel = bench::CheckOk(RelationalContext::Create(par_data, par_hier),
                                "parallel relational context");
  auto par_tx = bench::CheckOk(TransactionContext::Create(par_data, nullptr),
                               "parallel transaction context");
  ThreadPool& pool = SharedEvalPool();
  auto check_rel = [&](RelationalAnonymizer& algo, const char* name) {
    algo.set_pool(nullptr);
    RelationalRecoding serial =
        bench::CheckOk(algo.Anonymize(par_rel, params), name);
    algo.set_pool(&pool);
    RelationalRecoding parallel =
        bench::CheckOk(algo.Anonymize(par_rel, params), name);
    char what[96];
    snprintf(what, sizeof what, "%s parallel != serial recoding", name);
    Gate(SameRelational(serial, parallel), what);
    printf("%-10s parallel == serial: %s\n", name,
           SameRelational(serial, parallel) ? "yes" : "NO");
  };
  IncognitoAnonymizer incognito;
  ClusterAnonymizer cluster;
  TopDownAnonymizer topdown;
  check_rel(incognito, "Incognito");
  check_rel(cluster, "Cluster");
  check_rel(topdown, "TopDown");
  bool coat_par_identical = false;
  {
    CoatAnonymizer coat;  // k^m mode exercises the sharded count tree
    coat.set_pool(nullptr);
    TransactionRecoding serial =
        bench::CheckOk(coat.Anonymize(par_tx, params), "coat serial");
    coat.set_pool(&pool);
    TransactionRecoding parallel =
        bench::CheckOk(coat.Anonymize(par_tx, params), "coat parallel");
    coat_par_identical = SameTransaction(serial, parallel);
    Gate(coat_par_identical, "COAT parallel != serial recoding");
    printf("%-10s parallel == serial: %s\n", "COAT",
           coat_par_identical ? "yes" : "NO");
  }

  // --- JSON ---------------------------------------------------------------
  JsonWriter w;
  w.BeginObject();
  w.Key("tier");
  w.String(kernels::ActiveTierName());
  w.Key("avx2_available");
  w.Bool(avx2);
  w.Key("neon_available");
  w.Bool(neon);
  w.Key("quick");
  w.Bool(quick);
  w.Key("micro_words");
  w.Int(static_cast<int64_t>(words));
  for (const MicroRow& row : micro) {
    w.Key(std::string(row.name) + "_speedup");
    w.Number(row.speedup());
  }
  w.Key("records");
  w.Int(static_cast<int64_t>(records));
  w.Key("incognito_optimized_seconds");
  w.Number(incognito_opt_s);
  w.Key("incognito_reference_seconds");
  w.Number(incognito_ref_s);
  w.Key("incognito_speedup");
  w.Number(incognito_speedup);
  w.Key("incognito_identical");
  w.Bool(incognito_identical);
  w.Key("coat_optimized_seconds");
  w.Number(coat_opt_s);
  w.Key("coat_reference_seconds");
  w.Number(coat_ref_s);
  w.Key("coat_speedup");
  w.Number(coat_speedup);
  w.Key("coat_identical");
  w.Bool(coat_identical);
  w.Key("parallel_identical");
  w.Bool(coat_par_identical && g_failures == 0);
  w.Key("gates_passed");
  w.Bool(g_failures == 0);
  w.EndObject();
  const std::string path = "BENCH_kernels.json";
  bench::CheckOk(csv::WriteFile(path, w.TakeString()), "json");
  printf("wrote %s\n", path.c_str());
  (void)sink;

  if (g_failures > 0) {
    fprintf(stderr, "FAIL: %d kernel gate(s) failed\n", g_failures);
    return 1;
  }
  printf("all kernel gates passed\n");
  return 0;
}
