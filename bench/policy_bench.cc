// POL — Policy Specification Module study (paper Sec. 2.2). Compares COAT
// and PCTA under automatically generated policies: privacy strategies
// (all-items / frequent-items / random-itemsets) crossed with utility
// strategies (unrestricted / frequency-bands / hierarchy-level), reporting
// UL, item-frequency error and runtime. Shows the paper's point that policy
// choice drives the utility/privacy trade-off of the constraint-based
// algorithms.
// Outputs: stdout table and bench_out/policy_bench.csv.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "csv/csv.h"
#include "engine/registry.h"
#include "hierarchy/hierarchy_builder.h"
#include "metrics/frequency.h"
#include "metrics/information_loss.h"

using namespace secreta;

namespace {

const char* PrivacyName(PrivacyStrategy s) {
  switch (s) {
    case PrivacyStrategy::kAllItems:
      return "all-items";
    case PrivacyStrategy::kFrequentItems:
      return "frequent";
    case PrivacyStrategy::kRandomItemsets:
      return "random-sets";
  }
  return "?";
}

const char* UtilityName(UtilityStrategy s) {
  switch (s) {
    case UtilityStrategy::kUnrestricted:
      return "unrestricted";
    case UtilityStrategy::kFrequencyBands:
      return "freq-bands";
    case UtilityStrategy::kHierarchyLevel:
      return "hier-level";
  }
  return "?";
}

}  // namespace

int main() {
  printf("== POL: COAT/PCTA under generated policies ==\n\n");
  Dataset dataset = bench::BenchDataset(2500);
  Hierarchy item_hierarchy =
      std::move(BuildItemHierarchy(dataset)).ValueOrDie();
  auto txn_context = std::move(
      TransactionContext::Create(dataset, &item_hierarchy)).ValueOrDie();
  std::vector<std::vector<ItemId>> original;
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    original.push_back(dataset.items(r).raw());
  }

  csv::CsvTable table{{"algorithm", "privacy", "utility", "constraints",
                       "ul", "item_freq_error", "runtime_s", "satisfied"}};
  bench::PrintRow({"algo/privacy/utility", "constr", "UL", "freqErr",
                   "runtime", "OK"});
  bench::PrintRule(6);
  for (PrivacyStrategy ps :
       {PrivacyStrategy::kAllItems, PrivacyStrategy::kFrequentItems,
        PrivacyStrategy::kRandomItemsets}) {
    PrivacyGenOptions pg;
    pg.strategy = ps;
    pg.frequent_fraction = 0.25;
    pg.num_itemsets = 80;
    pg.max_itemset_size = 2;
    auto privacy = bench::CheckOk(GeneratePrivacyPolicy(dataset, pg), "privacy");
    for (UtilityStrategy us :
         {UtilityStrategy::kUnrestricted, UtilityStrategy::kFrequencyBands,
          UtilityStrategy::kHierarchyLevel}) {
      UtilityGenOptions ug;
      ug.strategy = us;
      ug.band_size = 10;
      ug.hierarchy_depth = 1;
      auto utility = bench::CheckOk(
          GenerateUtilityPolicy(dataset, ug, &item_hierarchy), "utility");
      for (const char* algo_name : {"COAT", "PCTA"}) {
        auto algo = bench::CheckOk(
            MakeTransactionAnonymizer(algo_name, privacy, utility), "algo");
        AnonParams params;
        params.k = 5;
        Stopwatch watch;
        auto recoding =
            bench::CheckOk(algo->Anonymize(txn_context, params), "run");
        double runtime = watch.ElapsedSeconds();
        double ul = TransactionUl(recoding, original,
                                  dataset.item_dictionary().size());
        double freq_err = MeanItemFrequencyError(
            recoding, original, dataset.item_dictionary());
        bool ok = SatisfiesPrivacyPolicy(privacy, recoding, params.k) &&
                  SatisfiesUtilityPolicy(utility, recoding);
        std::string label = std::string(algo_name) + "/" + PrivacyName(ps) +
                            "/" + UtilityName(us);
        bench::PrintRow({label, std::to_string(privacy.size()),
                         StrFormat("%.4f", ul), StrFormat("%.4f", freq_err),
                         StrFormat("%.3fs", runtime), ok ? "yes" : "NO"});
        table.push_back({algo_name, PrivacyName(ps), UtilityName(us),
                         std::to_string(privacy.size()), StrFormat("%.6f", ul),
                         StrFormat("%.6f", freq_err),
                         StrFormat("%.6f", runtime), ok ? "1" : "0"});
      }
    }
  }
  bench::CheckOk(csv::WriteFile(bench::OutDir() + "/policy_bench.csv",
                                csv::WriteCsv(table)),
                 "export");
  printf("\nwritten to %s/policy_bench.csv\n", bench::OutDir().c_str());
  return 0;
}
