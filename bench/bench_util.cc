#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace secreta::bench {

Dataset BenchDataset(size_t num_records, uint64_t seed) {
  SyntheticOptions options;
  options.num_records = num_records;
  options.num_items = 120;
  options.num_origins = 24;
  options.num_occupations = 12;
  options.item_skew = 1.1;
  options.seed = seed;
  return std::move(GenerateRtDataset(options)).ValueOrDie();
}

SecretaSession MakeSession(size_t num_records, size_t workload_queries,
                           uint64_t seed) {
  SecretaSession session;
  CheckOk(session.SetDataset(BenchDataset(num_records, seed)), "dataset");
  CheckOk(session.AutoGenerateHierarchies(), "hierarchies");
  WorkloadGenOptions wl;
  wl.num_queries = workload_queries;
  wl.seed = seed + 1;
  CheckOk(session.GenerateQueryWorkload(wl), "workload");
  return session;
}

std::string OutDir() {
  std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    printf("%s%-*s", i == 0 ? "" : " | ", i == 0 ? 28 : 10, cells[i].c_str());
  }
  printf("\n");
}

void PrintRule(size_t columns) {
  printf("%s", std::string(28, '-').c_str());
  for (size_t i = 1; i < columns; ++i) printf("-+-%s", std::string(10, '-').c_str());
  printf("\n");
}

void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "bench setup failed (%s): %s\n", what,
            status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace secreta::bench
