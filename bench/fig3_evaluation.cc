// FIG3 — Evaluation mode (paper Fig. 3 and Sec. 3, "Evaluating a method for
// RT-datasets"). One method (Cluster + Apriori under RTmerger) evaluated with
// all four demo visualizations:
//  (a) ARE for varying delta (fixed k, m), plus ARE vs k and vs m;
//  (b) runtime and per-phase breakdown;
//  (c) frequency of generalized values in a relational attribute;
//  (d) relative error of transaction item frequencies.
// Outputs: stdout (ASCII charts + tables) and bench_out/fig3_*.{csv,gp}.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "csv/csv.h"
#include "export/exporter.h"
#include "hierarchy/hierarchy_builder.h"
#include "metrics/frequency.h"
#include "metrics/information_loss.h"
#include "viz/ascii_plot.h"

using namespace secreta;

namespace {

AlgorithmConfig DemoConfig() {
  AlgorithmConfig config;
  config.mode = AnonMode::kRt;
  config.relational_algorithm = "Cluster";
  config.transaction_algorithm = "Apriori";
  config.merger = MergerKind::kRTmerger;
  config.params.k = 5;
  config.params.m = 2;
  config.params.delta = 0.35;
  return config;
}

void SweepAndPlot(SecretaSession& session, const AlgorithmConfig& config,
                  const ParamSweep& sweep, const std::string& tag) {
  auto result =
      bench::CheckOk(session.EvaluateSweep(config, sweep), "sweep");
  std::vector<Series> series;
  for (const char* metric : {"are", "gcp", "ul"}) {
    series.push_back(
        bench::CheckOk(result.Extract(metric), "extract"));
  }
  PlotOptions options;
  options.title = "FIG3a: ARE/GCP/UL vs " + sweep.parameter;
  printf("%s\n", RenderLineChart(series, options).c_str());
  bench::CheckOk(ExportSeries(series, bench::OutDir() + "/fig3a_" + tag + ".csv",
                              bench::OutDir() + "/fig3a_" + tag + ".gp",
                              options.title),
                 "export");
  bench::CheckOk(
      ExportSweepTable(result, bench::OutDir() + "/fig3a_" + tag + "_table.csv"),
      "table");
  bench::PrintRow({"point (" + sweep.parameter + ")", "ARE", "GCP", "UL",
                   "runtime"});
  bench::PrintRule(5);
  for (const auto& point : result.points) {
    bench::PrintRow({std::to_string(point.value),
                     StrFormat("%.4f", point.report.are),
                     StrFormat("%.4f", point.report.gcp),
                     StrFormat("%.4f", point.report.ul),
                     StrFormat("%.3fs", point.report.run.runtime_seconds)});
  }
  printf("\n");
}

}  // namespace

int main() {
  printf("== FIG3: Evaluation mode — Cluster+Apriori/RTmerger ==\n\n");
  SecretaSession session = bench::MakeSession(4000);
  AlgorithmConfig config = DemoConfig();

  // (a) varying-parameter execution: delta, then k, then m.
  SweepAndPlot(session, config, {"delta", 0.05, 0.65, 0.15}, "delta");
  SweepAndPlot(session, config, {"k", 2, 12, 2}, "k");
  SweepAndPlot(session, config, {"m", 1, 3, 1}, "m");

  // Single-parameter execution for (b)-(d).
  auto report = bench::CheckOk(session.Evaluate(config), "evaluate");
  printf("FIG3b: runtime breakdown (total %.3fs, guarantee %s: %s)\n",
         report.run.runtime_seconds, report.guarantee_name.c_str(),
         report.guarantee_ok ? "OK" : "VIOLATED");
  std::vector<std::pair<std::string, double>> phases(
      report.run.phases.phases().begin(), report.run.phases.phases().end());
  printf("%s\n", RenderBars(phases).c_str());
  printf("clusters: %zu initial -> %zu final after %zu merges\n\n",
         report.run.initial_clusters, report.run.final_clusters,
         report.run.merges);

  // Per-attribute relational loss (where the generalization budget went).
  {
    auto hierarchies =
        std::move(BuildAllColumnHierarchies(session.dataset())).ValueOrDie();
    auto ctx = std::move(
        RelationalContext::Create(session.dataset(), hierarchies)).ValueOrDie();
    std::vector<double> per_attr =
        RecodingGcpPerAttribute(ctx, *report.run.relational);
    std::vector<std::pair<std::string, double>> bars;
    for (size_t qi = 0; qi < per_attr.size(); ++qi) {
      size_t attr = session.dataset().AttributeOfColumn(ctx.qi_column(qi));
      bars.emplace_back(session.dataset().schema().attribute(attr).name,
                        per_attr[qi]);
    }
    PlotOptions bar_options;
    bar_options.title = "per-attribute NCP (relational loss breakdown)";
    printf("%s\n", RenderBars(bars, bar_options).c_str());
  }

  // (c) frequencies of generalized values in a relational attribute. Rebuild
  // the contexts the way the session does, via Materialize-side helpers.
  auto anonymized = bench::CheckOk(session.Materialize(report), "materialize");
  auto origin_col = bench::CheckOk(anonymized.ColumnByName("Origin"), "Origin");
  Histogram gen_hist = ValueHistogram(anonymized, origin_col);
  Histogram shown(gen_hist.begin(),
                  gen_hist.begin() + std::min<size_t>(gen_hist.size(), 14));
  PlotOptions gen_options;
  gen_options.title = "FIG3c: generalized values of Origin (top shown)";
  printf("%s\n", RenderHistogram(shown, gen_options).c_str());

  // (d) relative error between original and anonymized item frequencies.
  std::vector<std::vector<ItemId>> original;
  for (size_t r = 0; r < session.dataset().num_records(); ++r) {
    original.push_back(session.dataset().items(r).raw());
  }
  auto errors =
      ItemFrequencyError(*report.run.transaction, original,
                         session.dataset().item_dictionary());
  double mean = 0;
  double worst = 0;
  for (const auto& [_, err] : errors) {
    mean += err;
    worst = std::max(worst, err);
  }
  mean /= static_cast<double>(errors.size());
  printf("FIG3d: item frequency relative error: mean=%.4f worst=%.4f\n",
         mean, worst);
  csv::CsvTable table{{"item", "relative_error"}};
  for (const auto& [label, err] : errors) {
    table.push_back({label, StrFormat("%.6f", err)});
  }
  bench::CheckOk(csv::WriteFile(bench::OutDir() + "/fig3d_item_freq_error.csv",
                                csv::WriteCsv(table)),
                 "fig3d export");
  printf("\nseries and tables written under %s/\n", bench::OutDir().c_str());
  return 0;
}
