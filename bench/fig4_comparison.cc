// FIG4 — Comparison mode (paper Fig. 4 and Sec. 3, "Comparing methods for
// RT-datasets"). Several configurations — different transaction algorithms
// and bounding methods under the same relational algorithm — are executed
// over the same varying parameter (k), in parallel threads, and their ARE /
// UL / GCP / runtime series are rendered side by side.
// Outputs: stdout and bench_out/fig4_*.{csv,gp}.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "export/exporter.h"
#include "viz/ascii_plot.h"

using namespace secreta;

int main() {
  printf("== FIG4: Comparison mode — methods side by side, varying k ==\n\n");
  SecretaSession session = bench::MakeSession(3000);

  std::vector<AlgorithmConfig> configs;
  auto add = [&](const char* txn, MergerKind merger) {
    AlgorithmConfig config;
    config.mode = AnonMode::kRt;
    config.relational_algorithm = "Cluster";
    config.transaction_algorithm = txn;
    config.merger = merger;
    config.params.m = 2;
    config.params.delta = 0.35;
    configs.push_back(config);
  };
  add("Apriori", MergerKind::kRTmerger);
  add("COAT", MergerKind::kRTmerger);
  add("PCTA", MergerKind::kRTmerger);
  add("LRA", MergerKind::kRmerger);
  add("VPA", MergerKind::kTmerger);

  ParamSweep sweep{"k", 2, 10, 2};
  auto results = bench::CheckOk(session.Compare(configs, sweep), "compare");

  for (const char* metric : {"are", "ul", "gcp", "runtime"}) {
    std::vector<Series> series;
    for (const auto& result : results) {
      Series s = bench::CheckOk(result.Extract(metric), "extract");
      s.name = result.base.relational_algorithm + "+" +
               result.base.transaction_algorithm + "/" +
               MergerKindToString(result.base.merger);
      series.push_back(std::move(s));
    }
    PlotOptions options;
    options.title = std::string("FIG4: ") + metric + " vs k";
    printf("%s\n", RenderLineChart(series, options).c_str());
    bench::CheckOk(
        ExportSeries(series, bench::OutDir() + "/fig4_" + metric + ".csv",
                     bench::OutDir() + "/fig4_" + metric + ".gp",
                     options.title),
        "export");
  }

  // Tabular summary at the largest k.
  bench::PrintRow({"configuration", "ARE", "UL", "GCP", "runtime", "OK"});
  bench::PrintRule(6);
  for (const auto& result : results) {
    const auto& point = result.points.back();
    bench::PrintRow(
        {result.base.relational_algorithm + "+" +
             result.base.transaction_algorithm + "/" +
             MergerKindToString(result.base.merger),
         StrFormat("%.4f", point.report.are),
         StrFormat("%.4f", point.report.ul),
         StrFormat("%.4f", point.report.gcp),
         StrFormat("%.3fs", point.report.run.runtime_seconds),
         point.report.guarantee_ok ? "yes" : "NO"});
  }
  printf("\nseries written under %s/\n", bench::OutDir().c_str());
  return 0;
}
