// T20 — the paper's "20 different combinations of algorithms to anonymize
// RT-datasets" claim (Sec. 1): the full 4 relational x 5 transaction grid,
// run under each of the 3 bounding methods (60 cells). Every cell reports
// GCP, UL, ARE, runtime and whether (k, k^m)-anonymity was verified.
// Outputs: stdout table and bench_out/t20_combinations.csv.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "csv/csv.h"
#include "engine/registry.h"

using namespace secreta;

int main() {
  printf("== T20: all 4x5 RT combinations x 3 bounding methods ==\n\n");
  SecretaSession session = bench::MakeSession(1500);
  csv::CsvTable table{{"relational", "transaction", "merger", "gcp", "ul",
                       "are", "runtime_s", "guarantee_ok"}};
  size_t combinations = 0;
  size_t violations = 0;
  for (const std::string& merger_name : MergerNames()) {
    printf("-- bounding method: %s --\n", merger_name.c_str());
    bench::PrintRow({"combination", "GCP", "UL", "ARE", "runtime", "OK"});
    bench::PrintRule(6);
    for (const std::string& rel : RelationalAlgorithmNames()) {
      for (const std::string& txn : TransactionAlgorithmNames()) {
        AlgorithmConfig config;
        config.mode = AnonMode::kRt;
        config.relational_algorithm = rel;
        config.transaction_algorithm = txn;
        config.merger = bench::CheckOk(ParseMergerKind(merger_name), "merger");
        config.params.k = 5;
        config.params.m = 2;
        config.params.delta = 0.35;
        auto report = bench::CheckOk(session.Evaluate(config), "evaluate");
        ++combinations;
        if (!report.guarantee_ok) ++violations;
        bench::PrintRow({rel + "+" + txn,
                         StrFormat("%.4f", report.gcp),
                         StrFormat("%.4f", report.ul),
                         StrFormat("%.4f", report.are),
                         StrFormat("%.3fs", report.run.runtime_seconds),
                         report.guarantee_ok ? "yes" : "NO"});
        table.push_back({rel, txn, merger_name, StrFormat("%.6f", report.gcp),
                         StrFormat("%.6f", report.ul),
                         StrFormat("%.6f", report.are),
                         StrFormat("%.6f", report.run.runtime_seconds),
                         report.guarantee_ok ? "1" : "0"});
      }
    }
    printf("\n");
  }
  bench::CheckOk(csv::WriteFile(bench::OutDir() + "/t20_combinations.csv",
                                csv::WriteCsv(table)),
                 "export");
  printf("ran %zu combination cells (20 unique pairs x 3 mergers), "
         "%zu guarantee violations\n",
         combinations, violations);
  return violations == 0 ? 0 : 1;
}
