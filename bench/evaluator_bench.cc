// EVALB — the evaluation-pipeline benchmark: scan oracles vs the indexed
// (BindWorkload + Are) path, serial vs parallel, and the serial vs parallel
// full-report fan-out. Emits BENCH_evaluator.json (CWD) with every number.
//
// Default ("full") mode runs the acceptance configuration — 100k records,
// 1000 queries — and exits nonzero unless the indexed+parallel ARE path is
// at least 5x faster than the scan path. `--quick` shrinks the sizes for CI
// smoke runs (no speedup requirement: tiny inputs don't amortize threads).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/guarantees.h"
#include "core/recoding.h"
#include "datagen/synthetic.h"
#include "engine/evaluator.h"
#include "export/json_export.h"
#include "hierarchy/hierarchy_builder.h"
#include "metrics/distribution_metrics.h"
#include "metrics/frequency.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"
#include "query/query_evaluator.h"
#include "query/workload_generator.h"

using namespace secreta;

namespace {

// Pair-groups the item domain into a global TransactionRecoding — a cheap
// stand-in for an anonymizer output (running one at 100k records would
// dominate the benchmark).
TransactionRecoding PairGroupedRecoding(const Dataset& ds) {
  TransactionRecoding recoding;
  size_t num_items = ds.item_dictionary().size();
  recoding.item_map.assign(num_items, kSuppressedGen);
  for (size_t start = 0; start < num_items; start += 2) {
    std::vector<ItemId> covers{static_cast<ItemId>(start)};
    if (start + 1 < num_items) covers.push_back(static_cast<ItemId>(start + 1));
    int32_t gen = recoding.AddGen("g" + std::to_string(start), covers);
    for (ItemId item : covers) {
      recoding.item_map[static_cast<size_t>(item)] = gen;
    }
  }
  for (size_t r = 0; r < ds.num_records(); ++r) {
    std::vector<int32_t> rec;
    for (ItemId item : ds.items(r).raw()) {
      rec.push_back(recoding.item_map[static_cast<size_t>(item)]);
    }
    std::sort(rec.begin(), rec.end());
    rec.erase(std::unique(rec.begin(), rec.end()), rec.end());
    recoding.records.push_back(std::move(rec));
  }
  return recoding;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const size_t num_records = quick ? 5000 : 100000;
  const size_t num_queries = quick ? 200 : 1000;
  printf("== EVALB: evaluation pipeline (%zu records, %zu queries, %s) ==\n\n",
         num_records, num_queries, quick ? "quick" : "full");

  SyntheticOptions gen;
  gen.num_records = num_records;
  gen.demographic_skew = 0.6;
  gen.seed = 2014;
  Dataset dataset = bench::CheckOk(GenerateRtDataset(gen), "dataset");
  auto hierarchies =
      bench::CheckOk(BuildAllColumnHierarchies(dataset), "hierarchies");
  RelationalContext rel_ctx =
      bench::CheckOk(RelationalContext::Create(dataset, hierarchies), "context");
  QueryEvaluator evaluator =
      bench::CheckOk(QueryEvaluator::Create(dataset, &rel_ctx), "evaluator");

  std::vector<int> levels(rel_ctx.num_qi(), 1);
  RelationalRecoding rel = ApplyFullDomainLevels(rel_ctx, levels);
  TransactionRecoding txn = PairGroupedRecoding(dataset);

  WorkloadGenOptions wopt;
  wopt.num_queries = num_queries;
  wopt.relational_clauses = 2;
  wopt.items_per_query = 2;
  wopt.seed = 42;
  Workload workload = bench::CheckOk(GenerateWorkload(dataset, wopt), "workload");

  // --- Exact counts: scan oracle vs indexed bind (includes index build).
  Stopwatch scan_exact_watch;
  std::vector<double> scan_exact;
  scan_exact.reserve(workload.size());
  for (const CountQuery& q : workload.queries()) {
    scan_exact.push_back(bench::CheckOk(evaluator.ExactCount(q), "exact"));
  }
  double scan_exact_seconds = scan_exact_watch.ElapsedSeconds();

  Stopwatch bind_watch;
  BoundWorkload bound = bench::CheckOk(
      evaluator.BindWorkload(workload, &SharedEvalPool()), "bind");
  double bind_seconds = bind_watch.ElapsedSeconds();
  for (size_t i = 0; i < workload.size(); ++i) {
    if (bound.exact_count(i) != scan_exact[i]) {
      fprintf(stderr, "FAIL: exact-count mismatch at query %zu\n", i);
      return 1;
    }
  }

  // --- ARE: scan path (per-query oracle loop, the pre-index evaluation),
  // indexed serial, indexed parallel.
  Stopwatch scan_are_watch;
  double scan_total = 0;
  std::vector<double> scan_estimated;
  scan_estimated.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    double est = bench::CheckOk(
        evaluator.EstimatedCount(workload.queries()[i], &rel, &txn), "est");
    scan_estimated.push_back(est);
    scan_total +=
        std::fabs(scan_exact[i] - est) / std::max(scan_exact[i], 1.0);
  }
  double scan_are = scan_total / static_cast<double>(workload.size());
  double scan_are_seconds = scan_are_watch.ElapsedSeconds() + scan_exact_seconds;

  Stopwatch serial_watch;
  AreReport serial = bench::CheckOk(
      evaluator.Are(bound, &rel, &txn, nullptr, nullptr), "serial are");
  double serial_are_seconds = serial_watch.ElapsedSeconds();

  Stopwatch parallel_watch;
  AreReport parallel = bench::CheckOk(
      evaluator.Are(bound, &rel, &txn, &SharedEvalPool(), nullptr),
      "parallel are");
  double parallel_are_seconds = parallel_watch.ElapsedSeconds();

  if (serial.are != scan_are || parallel.are != scan_are) {
    fprintf(stderr, "FAIL: ARE mismatch scan=%.17g serial=%.17g par=%.17g\n",
            scan_are, serial.are, parallel.are);
    return 1;
  }
  for (size_t i = 0; i < workload.size(); ++i) {
    if (serial.estimated[i] != scan_estimated[i] ||
        parallel.estimated[i] != scan_estimated[i]) {
      fprintf(stderr, "FAIL: estimate mismatch at query %zu\n", i);
      return 1;
    }
  }

  double serial_speedup = scan_are_seconds / serial_are_seconds;
  double parallel_speedup = scan_are_seconds / parallel_are_seconds;
  double bound_parallel_speedup =
      scan_are_seconds / (bind_seconds + parallel_are_seconds);

  // --- Full report: serial metric loop (the pre-pipeline evaluator) vs the
  // parallel BuildReport fan-out over a shared EvalContext.
  EngineInputs inputs;
  inputs.dataset = &dataset;
  inputs.relational = &rel_ctx;
  auto make_run = [&]() {
    RunResult run;
    run.config.mode = AnonMode::kRelational;
    run.config.params.k = 5;
    run.relational = rel;
    run.transaction = txn;
    return run;
  };

  Stopwatch serial_report_watch;
  {
    RunResult run = make_run();
    EvaluationReport report;
    report.gcp = RecodingGcp(rel_ctx, *run.relational);
    EquivalenceClasses classes = GroupByRecoding(*run.relational);
    report.discernibility = Discernibility(classes);
    report.cavg = AverageClassSize(classes, run.config.params.k);
    report.entropy_loss = NonUniformEntropyLoss(rel_ctx, *run.relational);
    report.kl_relational = MeanKlDivergence(rel_ctx, *run.relational);
    std::vector<std::vector<ItemId>> original;
    original.reserve(dataset.num_records());
    for (size_t r = 0; r < dataset.num_records(); ++r) {
      original.push_back(dataset.items(r).raw());
    }
    report.ul = TransactionUl(*run.transaction, original,
                              dataset.item_dictionary().size());
    report.item_freq_error = MeanItemFrequencyError(
        *run.transaction, original, dataset.item_dictionary());
    report.kl_items = ItemKlDivergence(*run.transaction, original,
                                       dataset.item_dictionary().size());
    double total = 0;
    for (size_t i = 0; i < workload.size(); ++i) {
      double exact =
          bench::CheckOk(evaluator.ExactCount(workload.queries()[i]), "exact");
      double est = bench::CheckOk(
          evaluator.EstimatedCount(workload.queries()[i], &*run.relational,
                                   &*run.transaction),
          "est");
      total += std::fabs(exact - est) / std::max(exact, 1.0);
    }
    report.are = total / static_cast<double>(workload.size());
    report.guarantee_ok = IsKAnonymous(*run.relational, run.config.params.k);
  }
  double serial_report_seconds = serial_report_watch.ElapsedSeconds();

  EvalContext eval =
      bench::CheckOk(EvalContext::Create(inputs, &workload), "eval context");
  Stopwatch parallel_report_watch;
  EvaluationReport report = bench::CheckOk(
      BuildReport(inputs, make_run(), eval), "parallel report");
  double parallel_report_seconds = parallel_report_watch.ElapsedSeconds();
  if (report.are != scan_are) {
    fprintf(stderr, "FAIL: BuildReport ARE mismatch\n");
    return 1;
  }
  double report_speedup = serial_report_seconds / parallel_report_seconds;

  // --- Tracer overhead on the report path: the span macros are always
  // compiled in, so "disabled" is the production default (a span costs one
  // relaxed atomic load) and "enabled" additionally records every span.
  // Best-of-3 each to damp scheduler noise.
  auto best_report_seconds = [&]() {
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      EvaluationReport traced = bench::CheckOk(
          BuildReport(inputs, make_run(), eval), "traced report");
      double seconds = watch.ElapsedSeconds();
      if (traced.are != scan_are) {
        fprintf(stderr, "FAIL: traced BuildReport ARE mismatch\n");
        exit(1);
      }
      if (rep == 0 || seconds < best) best = seconds;
    }
    return best;
  };
  Tracer::Get().Disable();
  double untraced_report_seconds = best_report_seconds();
  Tracer::Get().Reset();
  Tracer::Get().Enable();
  double traced_report_seconds = best_report_seconds();
  size_t traced_spans = Tracer::Get().num_events();
  Tracer::Get().Disable();
  Tracer::Get().Reset();
  double traced_overhead_pct =
      (traced_report_seconds / untraced_report_seconds - 1.0) * 100.0;

  bench::PrintRow({"measurement", "seconds", "speedup vs scan"});
  bench::PrintRule(3);
  bench::PrintRow({"scan exact counts", StrFormat("%.3f", scan_exact_seconds),
                   ""});
  bench::PrintRow({"bind workload (indexed)", StrFormat("%.3f", bind_seconds),
                   ""});
  bench::PrintRow({"scan ARE (exact+est)", StrFormat("%.3f", scan_are_seconds),
                   "1.00x"});
  bench::PrintRow({"indexed ARE serial", StrFormat("%.3f", serial_are_seconds),
                   StrFormat("%.2fx", serial_speedup)});
  bench::PrintRow({"indexed ARE parallel",
                   StrFormat("%.3f", parallel_are_seconds),
                   StrFormat("%.2fx", parallel_speedup)});
  bench::PrintRow({"bind + parallel ARE",
                   StrFormat("%.3f", bind_seconds + parallel_are_seconds),
                   StrFormat("%.2fx", bound_parallel_speedup)});
  bench::PrintRule(3);
  bench::PrintRow({"serial full report",
                   StrFormat("%.3f", serial_report_seconds), "1.00x"});
  bench::PrintRow({"parallel full report",
                   StrFormat("%.3f", parallel_report_seconds),
                   StrFormat("%.2fx", report_speedup)});
  bench::PrintRule(3);
  bench::PrintRow({"report, tracer disabled",
                   StrFormat("%.3f", untraced_report_seconds), ""});
  bench::PrintRow({"report, tracer enabled",
                   StrFormat("%.3f", traced_report_seconds),
                   StrFormat("%+.1f%%", traced_overhead_pct)});
  printf("\nARE = %.6f over %zu queries; parallel throughput %.0f queries/s\n",
         scan_are, workload.size(),
         static_cast<double>(workload.size()) / parallel_are_seconds);
  printf("tracer: %zu spans recorded, enabled overhead %+.1f%%\n",
         traced_spans, traced_overhead_pct);

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("evaluator");
  w.Key("mode");
  w.String(quick ? "quick" : "full");
  w.Key("num_records");
  w.Int(static_cast<int64_t>(num_records));
  w.Key("num_queries");
  w.Int(static_cast<int64_t>(workload.size()));
  w.Key("are");
  w.Number(scan_are);
  w.Key("scan_exact_seconds");
  w.Number(scan_exact_seconds);
  w.Key("bind_seconds");
  w.Number(bind_seconds);
  w.Key("scan_are_seconds");
  w.Number(scan_are_seconds);
  w.Key("serial_are_seconds");
  w.Number(serial_are_seconds);
  w.Key("parallel_are_seconds");
  w.Number(parallel_are_seconds);
  w.Key("serial_are_speedup");
  w.Number(serial_speedup);
  w.Key("parallel_are_speedup");
  w.Number(parallel_speedup);
  w.Key("bind_plus_parallel_speedup");
  w.Number(bound_parallel_speedup);
  w.Key("serial_report_seconds");
  w.Number(serial_report_seconds);
  w.Key("parallel_report_seconds");
  w.Number(parallel_report_seconds);
  w.Key("report_speedup");
  w.Number(report_speedup);
  w.Key("untraced_report_seconds");
  w.Number(untraced_report_seconds);
  w.Key("traced_report_seconds");
  w.Number(traced_report_seconds);
  w.Key("traced_overhead_pct");
  w.Number(traced_overhead_pct);
  w.Key("traced_spans");
  w.Int(static_cast<int64_t>(traced_spans));
  w.Key("evaluation_seconds");
  w.Number(report.evaluation_seconds);
  w.Key("queries_per_second");
  w.Number(report.queries_per_second);
  w.EndObject();
  const std::string path = "BENCH_evaluator.json";
  bench::CheckOk(csv::WriteFile(path, w.TakeString()), "json");
  printf("wrote %s\n", path.c_str());

  if (!quick && parallel_speedup < 5.0) {
    fprintf(stderr,
            "FAIL: indexed+parallel ARE speedup %.2fx < required 5x\n",
            parallel_speedup);
    return 1;
  }
  return 0;
}
