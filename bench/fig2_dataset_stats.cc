// FIG2 — Dataset Editor visualizations (paper Fig. 2).
//
// Regenerates the bottom-pane histograms of the main screen: value-frequency
// histograms of each relational attribute and of the transaction items, for
// the demo RT-dataset, plus an edit round-trip (the Sec. 3 walkthrough).
// Outputs: stdout (ASCII) and bench_out/fig2_*.csv.

#include <cstdio>

#include "bench/bench_util.h"
#include "csv/csv.h"
#include "data/dataset_stats.h"
#include "frontend/dataset_editor.h"
#include "viz/ascii_plot.h"

using namespace secreta;

int main() {
  printf("== FIG2: Dataset Editor — attribute histograms ==\n\n");
  DatasetEditor editor(bench::BenchDataset(5000));

  // Histograms for every attribute (Fig. 2 lets the user pick any).
  for (const auto& spec : editor.dataset().schema().attributes()) {
    auto hist = bench::CheckOk(editor.HistogramOf(spec.name), "histogram");
    // Show at most 16 buckets in the terminal; full data goes to CSV.
    Histogram shown(hist.begin(),
                    hist.begin() + std::min<size_t>(hist.size(), 16));
    PlotOptions options;
    options.title = "frequency of " + spec.name +
                    (hist.size() > shown.size() ? " (top 16 shown)" : "");
    printf("%s\n", RenderHistogram(shown, options).c_str());
    csv::CsvTable table{{"value", "count"}};
    for (const auto& bucket : hist) {
      table.push_back({bucket.label, std::to_string(bucket.count)});
    }
    bench::CheckOk(
        csv::WriteFile(bench::OutDir() + "/fig2_hist_" + spec.name + ".csv",
                       csv::WriteCsv(table)),
        "csv export");
  }

  // Numeric summary of Age (the editor's analysis pane).
  auto age_col = bench::CheckOk(editor.dataset().ColumnByName("Age"), "Age");
  auto summary =
      bench::CheckOk(SummarizeNumeric(editor.dataset(), age_col), "summary");
  printf("Age summary: min=%.0f max=%.0f mean=%.2f stddev=%.2f distinct=%zu\n\n",
         summary.min, summary.max, summary.mean, summary.stddev,
         summary.distinct);

  // Edit round-trip: rename, edit a value, add/delete rows, export (Sec. 3).
  bench::CheckOk(editor.RenameAttribute("Occupation", "Job"), "rename");
  bench::CheckOk(editor.SetCell(0, "Gender", "F"), "edit cell");
  bench::CheckOk(editor.AddRow({"33", "M", "origin01", "occ01", "i001 i002"}),
                 "add row");
  bench::CheckOk(editor.DeleteRow(1), "delete row");
  std::string path = bench::OutDir() + "/fig2_edited_dataset.csv";
  bench::CheckOk(editor.Save(path), "save");
  printf("edited dataset written to %s (%zu records)\n", path.c_str(),
         editor.dataset().num_records());
  return 0;
}
