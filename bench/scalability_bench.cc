// SCAL — efficiency of the 9 algorithms (paper Sec. 2.2: the system reports
// runtime for single and varying parameter execution). google-benchmark
// micro-benchmarks: each algorithm against dataset size, plus Incognito vs
// QI count and Apriori vs m (its known exponential knob).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <numeric>
#include <optional>

#include "algo/transaction/count_tree.h"
#include "bench/bench_util.h"
#include "engine/registry.h"
#include "hierarchy/hierarchy_builder.h"

namespace secreta::bench {
namespace {

struct Fixture {
  Dataset dataset;
  std::vector<Hierarchy> hierarchies;
  Hierarchy item_hierarchy;
  std::optional<RelationalContext> rel;
  std::optional<TransactionContext> txn;

  explicit Fixture(size_t n) : dataset(BenchDataset(n)) {
    hierarchies =
        std::move(BuildAllColumnHierarchies(dataset)).ValueOrDie();
    item_hierarchy = std::move(BuildItemHierarchy(dataset)).ValueOrDie();
    rel.emplace(std::move(
        RelationalContext::Create(dataset, hierarchies)).ValueOrDie());
    txn.emplace(std::move(
        TransactionContext::Create(dataset, &item_hierarchy)).ValueOrDie());
  }
};

Fixture& SharedFixture(size_t n) {
  static std::map<size_t, std::unique_ptr<Fixture>> cache;
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<Fixture>(n);
  return *slot;
}

void BM_Relational(benchmark::State& state, const std::string& name) {
  Fixture& fx = SharedFixture(static_cast<size_t>(state.range(0)));
  auto algo = std::move(MakeRelationalAnonymizer(name)).ValueOrDie();
  AnonParams params;
  params.k = 5;
  for (auto _ : state) {
    auto result = algo->Anonymize(*fx.rel, params);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.dataset.num_records()));
}

void BM_Transaction(benchmark::State& state, const std::string& name) {
  Fixture& fx = SharedFixture(static_cast<size_t>(state.range(0)));
  auto algo = std::move(MakeTransactionAnonymizer(name)).ValueOrDie();
  AnonParams params;
  params.k = 5;
  params.m = 2;
  for (auto _ : state) {
    auto result = algo->Anonymize(*fx.txn, params);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.dataset.num_records()));
}

void BM_AprioriVsM(benchmark::State& state) {
  Fixture& fx = SharedFixture(1000);
  auto algo = std::move(MakeTransactionAnonymizer("Apriori")).ValueOrDie();
  AnonParams params;
  params.k = 5;
  params.m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = algo->Anonymize(*fx.txn, params);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

// Count-tree vs hash-enumeration support counting (the [10] Sec. 5 claim).
void BM_CountTree(benchmark::State& state) {
  Fixture& fx = SharedFixture(2000);
  std::vector<std::vector<int32_t>> records;
  for (size_t r = 0; r < fx.dataset.num_records(); ++r) {
    const auto& items = fx.dataset.items(r).raw();
    records.emplace_back(items.begin(), items.end());
  }
  int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CountTree tree(records, m);
    auto violations = tree.FindViolations(5, 1);
    benchmark::DoNotOptimize(violations);
  }
}

void BM_NaiveCounting(benchmark::State& state) {
  Fixture& fx = SharedFixture(2000);
  std::vector<std::vector<int32_t>> records;
  for (size_t r = 0; r < fx.dataset.num_records(); ++r) {
    const auto& items = fx.dataset.items(r).raw();
    records.emplace_back(items.begin(), items.end());
  }
  int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto violations = FindKmViolations(records, 5, m, nullptr, 1);
    benchmark::DoNotOptimize(violations);
  }
}

void BM_RtPipeline(benchmark::State& state) {
  Fixture& fx = SharedFixture(static_cast<size_t>(state.range(0)));
  auto rel = std::move(MakeRelationalAnonymizer("Cluster")).ValueOrDie();
  auto txn = std::move(MakeTransactionAnonymizer("Apriori")).ValueOrDie();
  RtAnonymizer rt(rel, txn, MergerKind::kRTmerger);
  AnonParams params;
  params.k = 5;
  params.m = 2;
  params.delta = 0.35;
  for (auto _ : state) {
    auto result = rt.Anonymize(*fx.rel, *fx.txn, params);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

}  // namespace
}  // namespace secreta::bench

int main(int argc, char** argv) {
  using secreta::bench::BM_AprioriVsM;
  using secreta::bench::BM_Relational;
  using secreta::bench::BM_RtPipeline;
  using secreta::bench::BM_Transaction;
  for (const std::string& name : secreta::RelationalAlgorithmNames()) {
    benchmark::RegisterBenchmark(("BM_Relational/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_Relational(s, name);
                                 })
        ->Arg(500)
        ->Arg(2000)
        ->Unit(benchmark::kMillisecond);
  }
  for (const std::string& name : secreta::TransactionAlgorithmNames()) {
    benchmark::RegisterBenchmark(("BM_Transaction/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_Transaction(s, name);
                                 })
        ->Arg(500)
        ->Arg(2000)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("BM_Apriori_vs_m", BM_AprioriVsM)
      ->DenseRange(1, 3)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("BM_CountTree",
                               secreta::bench::BM_CountTree)
      ->DenseRange(1, 3)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("BM_NaiveCounting",
                               secreta::bench::BM_NaiveCounting)
      ->DenseRange(1, 3)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("BM_RtPipeline", BM_RtPipeline)
      ->Arg(500)
      ->Arg(2000)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
