// ABL2 — partitioning ablations of the Terrovitis family ([10]) plus
// Incognito pruning effectiveness:
//  - LRA: utility/runtime vs the number of horizontal partitions;
//  - VPA: utility/runtime vs the number of vertical domain parts;
//  - Incognito: lattice nodes scanned vs skipped by the two prunings.
// Outputs: stdout + bench_out/ablation_partitions_*.csv.

#include <cstdio>

#include "algo/relational/incognito.h"
#include "bench/bench_util.h"
#include "common/string_util.h"
#include "export/exporter.h"
#include "hierarchy/hierarchy_builder.h"

using namespace secreta;

int main() {
  printf("== ABL2: LRA/VPA partitioning + Incognito pruning ==\n\n");
  SecretaSession session = bench::MakeSession(3000);

  // LRA partitions sweep.
  AlgorithmConfig lra;
  lra.mode = AnonMode::kTransaction;
  lra.transaction_algorithm = "LRA";
  lra.params.k = 5;
  lra.params.m = 2;
  auto lra_sweep = bench::CheckOk(
      session.EvaluateSweep(lra, {"lra_partitions", 1, 17, 4}), "lra sweep");
  printf("LRA: partitions vs UL / item-frequency error / runtime\n");
  bench::PrintRow({"partitions", "UL", "freqErr", "runtime"});
  bench::PrintRule(4);
  for (const auto& point : lra_sweep.points) {
    bench::PrintRow({StrFormat("%.0f", point.value),
                     StrFormat("%.4f", point.report.ul),
                     StrFormat("%.4f", point.report.item_freq_error),
                     StrFormat("%.3fs", point.report.run.runtime_seconds)});
  }
  bench::CheckOk(ExportSweepTable(
                     lra_sweep, bench::OutDir() + "/ablation_partitions_lra.csv"),
                 "lra export");

  // VPA parts sweep.
  AlgorithmConfig vpa = lra;
  vpa.transaction_algorithm = "VPA";
  auto vpa_sweep = bench::CheckOk(
      session.EvaluateSweep(vpa, {"vpa_parts", 1, 9, 2}), "vpa sweep");
  printf("\nVPA: domain parts vs UL / item-frequency error / runtime\n");
  bench::PrintRow({"parts", "UL", "freqErr", "runtime"});
  bench::PrintRule(4);
  for (const auto& point : vpa_sweep.points) {
    bench::PrintRow({StrFormat("%.0f", point.value),
                     StrFormat("%.4f", point.report.ul),
                     StrFormat("%.4f", point.report.item_freq_error),
                     StrFormat("%.3fs", point.report.run.runtime_seconds)});
  }
  bench::CheckOk(ExportSweepTable(
                     vpa_sweep, bench::OutDir() + "/ablation_partitions_vpa.csv"),
                 "vpa export");

  // Incognito pruning effectiveness across k.
  printf("\nIncognito: lattice work split by pruning (4 QIDs)\n");
  bench::PrintRow({"k", "lattice", "scanned", "inherited", "subset-pruned"});
  bench::PrintRule(5);
  Dataset dataset = bench::BenchDataset(3000);
  auto hierarchies =
      std::move(BuildAllColumnHierarchies(dataset)).ValueOrDie();
  auto ctx = std::move(RelationalContext::Create(dataset, hierarchies))
                 .ValueOrDie();
  IncognitoAnonymizer incognito;
  csv::CsvTable table{{"k", "lattice", "scanned", "inherited", "subset_pruned"}};
  for (int k : {2, 5, 10, 25, 50}) {
    AnonParams params;
    params.k = k;
    IncognitoStats stats;
    bench::CheckOk(
        incognito.MinimalAnonymousLevels(ctx, params, &stats).status(),
        "incognito");
    bench::PrintRow({StrFormat("%d", k),
                     std::to_string(stats.lattice_nodes),
                     std::to_string(stats.scanned),
                     std::to_string(stats.inherited),
                     std::to_string(stats.pruned_by_subset)});
    table.push_back({std::to_string(k), std::to_string(stats.lattice_nodes),
                     std::to_string(stats.scanned),
                     std::to_string(stats.inherited),
                     std::to_string(stats.pruned_by_subset)});
  }
  bench::CheckOk(
      csv::WriteFile(bench::OutDir() + "/ablation_incognito_pruning.csv",
                     csv::WriteCsv(table)),
      "incognito export");
  printf("\nwritten under %s/\n", bench::OutDir().c_str());
  return 0;
}
