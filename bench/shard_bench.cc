// SHARD — the out-of-core acceptance benchmark: convert a large synthetic
// RT-dataset to SBC1, anonymize it shard-by-shard from the binary file in a
// child process whose peak RSS is measured, resume it from the checkpoint,
// and audit the merged release. Emits BENCH_shard.json (CWD).
//
// Default ("full") mode runs the acceptance configuration — 1M records,
// 8 range shards — and exits nonzero unless
//   * the gated child's peak RSS stays below 50% of the dataset's in-memory
//     footprint (Dataset::MemoryBytes()),
//   * the resumed re-run reproduces the release byte-for-byte, and
//   * the merged release passes the k-anonymity / k^m-anonymity audit.
// `--quick` shrinks to 30k records for CI smoke runs: the identity and audit
// checks still apply, but the RSS gate is reported without being enforced
// (fixed process overheads dominate tiny datasets).
//
// The gated phase runs in a child process (`--phase=run`, spawned via this
// binary's own argv[0]) so the parent's dataset generation does not pollute
// the high-water mark that getrusage() reports.

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "csv/csv.h"
#include "data/column_provider.h"
#include "data/format.h"
#include "data/mmap_file.h"
#include "engine/sharded_runner.h"
#include "export/json_export.h"

using namespace secreta;

namespace {

AlgorithmConfig BenchConfig() {
  AlgorithmConfig config;
  config.mode = AnonMode::kRt;
  config.relational_algorithm = "Cluster";
  config.transaction_algorithm = "COAT";
  config.merger = MergerKind::kRTmerger;
  config.params.k = 5;
  config.params.m = 2;
  return config;
}

size_t PeakRssBytes() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<size_t>(usage.ru_maxrss) * 1024;  // Linux: KiB
}

// ---------------------------------------------------------------------------
// Child phase: the gated out-of-core run. Reads only the SBC1 file, writes
// the release CSV + checkpoint, never materializes the merged dataset, and
// reports its own numbers through a flat key=value stats file.

int RunPhase(const std::string& in, const std::string& ckpt,
             const std::string& out, const std::string& stats_path) {
  std::unique_ptr<ColumnProvider> provider =
      bench::CheckOk(OpenColumnProvider(in), "open provider");
  ShardedRunOptions options;
  options.checkpoint_path = ckpt;
  options.output_path = out;
  options.materialize_result = false;
  options.audit = false;
  ShardedRunResult result = bench::CheckOk(
      RunShardedAnonymization(*provider, BenchConfig(), options), "run");

  std::ofstream stats(stats_path, std::ios::trunc);
  stats << "peak_rss_bytes " << PeakRssBytes() << "\n"
        << "num_records " << result.num_records << "\n"
        << "num_shards " << result.plan.num_shards() << "\n"
        << "resumed_shards " << result.resumed_shards << "\n"
        << "anonymize_seconds " << StrFormat("%a", result.anonymize_seconds)
        << "\n"
        << "total_seconds " << StrFormat("%a", result.total_seconds) << "\n"
        << "weighted_gcp " << StrFormat("%a", result.weighted_gcp) << "\n"
        << "release_fp " << StrFormat("%016llx", (unsigned long long)
                                      result.release_fingerprint)
        << "\n";
  return stats.good() ? 0 : 1;
}

std::map<std::string, std::string> ReadStats(const std::string& path) {
  std::map<std::string, std::string> stats;
  std::ifstream in(path);
  std::string key, value;
  while (in >> key >> value) stats[key] = value;
  if (stats.empty()) {
    fprintf(stderr, "FAIL: empty stats file %s\n", path.c_str());
    exit(1);
  }
  return stats;
}

int SpawnPhase(const std::string& self, const std::string& phase_args) {
  std::string command = "\"" + self + "\" " + phase_args;
  return std::system(command.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string phase, in, ckpt, out, stats_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto take = [&](const char* prefix, std::string* dst) {
      if (arg.rfind(prefix, 0) == 0) {
        *dst = arg.substr(std::strlen(prefix));
        return true;
      }
      return false;
    };
    if (arg == "--quick") quick = true;
    else if (take("--phase=", &phase) || take("--in=", &in) ||
             take("--ckpt=", &ckpt) || take("--out=", &out) ||
             take("--stats=", &stats_path)) {
    } else {
      fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (phase == "run") return RunPhase(in, ckpt, out, stats_path);
  if (!phase.empty()) {
    fprintf(stderr, "unknown phase %s\n", phase.c_str());
    return 2;
  }

  const size_t num_records = quick ? 30000 : 1000000;
  // Full mode uses finer shards: the gated child's peak is dominated by one
  // shard's engine working set, so more shards = flatter high-water mark.
  const size_t num_shards = quick ? 8 : 32;
  printf("== SHARD: out-of-core sharded run (%zu records, %zu shards, %s) ==\n\n",
         num_records, num_shards, quick ? "quick" : "full");

  const std::string dir = bench::OutDir();
  const std::string sbc_path = dir + "/shard_bench.sbc";
  const std::string ckpt_path = dir + "/shard_bench.ckpt";
  const std::string release_path = dir + "/shard_bench_release.csv";
  const std::string stats1 = dir + "/shard_bench_stats1.txt";
  const std::string stats2 = dir + "/shard_bench_stats2.txt";
  std::remove(ckpt_path.c_str());

  // Phase 1 (parent): generate + convert. The full dataset lives here — and
  // only here; the gated child never holds more than one shard.
  size_t baseline_bytes = 0;
  uint64_t content_fp = 0;
  double convert_seconds = 0;
  {
    Dataset dataset = bench::BenchDataset(num_records);
    baseline_bytes = dataset.MemoryBytes();
    Stopwatch watch;
    BinaryWriteOptions options;
    options.num_shards = num_shards;
    bench::CheckOk(WriteBinaryDataset(dataset, sbc_path, options), "convert");
    convert_seconds = watch.ElapsedSeconds();
    content_fp = DatasetContentFingerprint(dataset);
  }
  const size_t file_bytes =
      bench::CheckOk(MmapFile::FileSize(sbc_path), "file size");
  printf("converted: %zu bytes on disk, %zu bytes in memory (%.2fs)\n",
         file_bytes, baseline_bytes, convert_seconds);

  // Phase 2 (child): the gated out-of-core anonymize + evaluate.
  const std::string self = argv[0];
  if (SpawnPhase(self, StrFormat(
          "--phase=run --in=%s --ckpt=%s --out=%s --stats=%s",
          sbc_path.c_str(), ckpt_path.c_str(), release_path.c_str(),
          stats1.c_str())) != 0) {
    fprintf(stderr, "FAIL: gated run child failed\n");
    return 1;
  }
  auto run = ReadStats(stats1);
  const size_t peak_rss = std::stoull(run["peak_rss_bytes"]);
  const double rss_ratio =
      static_cast<double>(peak_rss) / static_cast<double>(baseline_bytes);
  printf("gated run: peak RSS %zu bytes = %.1f%% of in-memory footprint, "
         "anonymize %.2fs, gcp %.4f, release %s\n",
         peak_rss, 100.0 * rss_ratio,
         std::strtod(run["anonymize_seconds"].c_str(), nullptr),
         std::strtod(run["weighted_gcp"].c_str(), nullptr),
         run["release_fp"].c_str());

  // Phase 3 (child): resume from the checkpoint — every shard must replay
  // from disk and the merged bytes must not move.
  if (SpawnPhase(self, StrFormat(
          "--phase=run --in=%s --ckpt=%s --out=%s --stats=%s",
          sbc_path.c_str(), ckpt_path.c_str(), release_path.c_str(),
          stats2.c_str())) != 0) {
    fprintf(stderr, "FAIL: resume child failed\n");
    return 1;
  }
  auto resumed = ReadStats(stats2);
  const bool all_resumed =
      resumed["resumed_shards"] == std::to_string(num_shards);
  const bool byte_identical = run["release_fp"] == resumed["release_fp"];
  printf("resume: %s/%zu shards replayed, release %s (%s)\n",
         resumed["resumed_shards"].c_str(), num_shards,
         resumed["release_fp"].c_str(),
         byte_identical ? "byte-identical" : "MISMATCH");

  // Phase 4 (parent): audit the merged release. Resumes the same checkpoint
  // with materialization on — the engine never re-runs.
  std::unique_ptr<ColumnProvider> provider =
      bench::CheckOk(OpenColumnProvider(sbc_path), "reopen provider");
  ShardedRunOptions audit_options;
  audit_options.checkpoint_path = ckpt_path;
  ShardedRunResult audited = bench::CheckOk(
      RunShardedAnonymization(*provider, BenchConfig(), audit_options),
      "audit run");
  const bool audit_ok = audited.audit.has_value() &&
                        audited.audit->k_anonymous &&
                        audited.audit->km_anonymous;
  const bool audit_identical =
      StrFormat("%016llx",
                (unsigned long long)audited.release_fingerprint) ==
      run["release_fp"];
  printf("audit: k-anonymity %s, k^m-anonymity %s, min class %zu\n",
         audit_ok && audited.audit->k_anonymous ? "OK" : "VIOLATED",
         audit_ok && audited.audit->km_anonymous ? "OK" : "VIOLATED",
         audited.audit.has_value() ? audited.audit->min_class_size
                                   : static_cast<size_t>(0));

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("shard");
  w.Key("mode");
  w.String(quick ? "quick" : "full");
  w.Key("num_records");
  w.Int(static_cast<int64_t>(num_records));
  w.Key("num_shards");
  w.Int(static_cast<int64_t>(num_shards));
  w.Key("content_fingerprint");
  w.String(StrFormat("%016llx", (unsigned long long)content_fp));
  w.Key("dataset_memory_bytes");
  w.Int(static_cast<int64_t>(baseline_bytes));
  w.Key("binary_file_bytes");
  w.Int(static_cast<int64_t>(file_bytes));
  w.Key("convert_seconds");
  w.Number(convert_seconds);
  w.Key("run_peak_rss_bytes");
  w.Int(static_cast<int64_t>(peak_rss));
  w.Key("run_rss_ratio");
  w.Number(rss_ratio);
  w.Key("anonymize_seconds");
  w.Number(std::strtod(run["anonymize_seconds"].c_str(), nullptr));
  w.Key("total_seconds");
  w.Number(std::strtod(run["total_seconds"].c_str(), nullptr));
  w.Key("weighted_gcp");
  w.Number(std::strtod(run["weighted_gcp"].c_str(), nullptr));
  w.Key("release_fingerprint");
  w.String(run["release_fp"]);
  w.Key("resume_byte_identical");
  w.Bool(all_resumed && byte_identical && audit_identical);
  w.Key("audit_k_anonymous");
  w.Bool(audited.audit.has_value() && audited.audit->k_anonymous);
  w.Key("audit_km_anonymous");
  w.Bool(audited.audit.has_value() && audited.audit->km_anonymous);
  w.Key("rss_gate_enforced");
  w.Bool(!quick);
  w.EndObject();
  const std::string path = "BENCH_shard.json";
  bench::CheckOk(csv::WriteFile(path, w.TakeString()), "json");
  printf("wrote %s\n", path.c_str());

  if (!all_resumed || !byte_identical || !audit_identical) {
    fprintf(stderr, "FAIL: resumed run is not byte-identical\n");
    return 1;
  }
  if (!audit_ok) {
    fprintf(stderr, "FAIL: merged release failed the anonymity audit\n");
    return 1;
  }
  if (!quick && rss_ratio >= 0.5) {
    fprintf(stderr,
            "FAIL: gated peak RSS is %.1f%% of the in-memory footprint "
            "(required < 50%%)\n",
            100.0 * rss_ratio);
    return 1;
  }
  return 0;
}
