// Job-service benchmark: scheduler throughput on the T20 grid (all 4x5
// relational x transaction combinations submitted as one batch) and the
// speedup of the content-addressed ResultCache on an identical resubmission.
// The acceptance bar is a >= 10x faster warm batch; in practice cache hits
// complete at Submit time, so the observed factor is orders of magnitude.
// Outputs: stdout table and bench_out/service_bench.csv.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "csv/csv.h"
#include "engine/registry.h"
#include "service/job_scheduler.h"
#include "service/result_cache.h"

using namespace secreta;

namespace {

std::vector<uint64_t> SubmitGrid(JobScheduler* scheduler,
                                 const EngineInputs& inputs,
                                 const Workload* workload,
                                 uint64_t dataset_fp) {
  std::vector<uint64_t> ids;
  for (const std::string& rel : RelationalAlgorithmNames()) {
    for (const std::string& txn : TransactionAlgorithmNames()) {
      AlgorithmConfig config;
      config.mode = AnonMode::kRt;
      config.relational_algorithm = rel;
      config.transaction_algorithm = txn;
      config.merger = MergerKind::kRTmerger;
      config.params.k = 5;
      config.params.m = 2;
      config.params.delta = 0.35;
      JobOptions options;
      options.dataset_fingerprint = dataset_fp;  // amortized once per batch
      ids.push_back(bench::CheckOk(
          scheduler->Submit(inputs, config, workload, options), "submit"));
    }
  }
  return ids;
}

}  // namespace

int main() {
  printf("== service_bench: scheduler throughput + cache speedup ==\n\n");
  SecretaSession session = bench::MakeSession(1500);
  AlgorithmConfig probe;
  probe.mode = AnonMode::kRt;
  EngineInputs inputs =
      bench::CheckOk(session.PrepareInputs(probe), "prepare inputs");
  const Workload* workload = session.workload_or_null();

  Stopwatch fingerprint_watch;
  const uint64_t dataset_fp = DatasetFingerprint(session.dataset());
  double fingerprint_seconds = fingerprint_watch.ElapsedSeconds();

  SchedulerOptions options;
  options.num_workers = 4;
  options.max_queue = 64;
  options.cache_capacity = 128;
  JobScheduler scheduler(options);

  // Cold batch: every job executes the engine.
  Stopwatch cold_watch;
  std::vector<uint64_t> cold_ids =
      SubmitGrid(&scheduler, inputs, workload, dataset_fp);
  scheduler.WaitAll();
  double cold_seconds = cold_watch.ElapsedSeconds();

  // Warm batch: identical submissions, all served from the cache.
  Stopwatch warm_watch;
  std::vector<uint64_t> warm_ids =
      SubmitGrid(&scheduler, inputs, workload, dataset_fp);
  scheduler.WaitAll();
  double warm_seconds = warm_watch.ElapsedSeconds();

  size_t warm_hits = 0;
  for (uint64_t id : warm_ids) {
    JobInfo info = bench::CheckOk(scheduler.GetJob(id), "job");
    if (info.from_cache) ++warm_hits;
  }
  double speedup = warm_seconds > 0 ? cold_seconds / warm_seconds : 0;

  bench::PrintRow({"batch", "jobs", "wall_s", "jobs_per_s", "cache_hits"});
  bench::PrintRule(5);
  bench::PrintRow({"cold", StrFormat("%zu", cold_ids.size()),
                   StrFormat("%.3f", cold_seconds),
                   StrFormat("%.1f", cold_ids.size() / cold_seconds), "0"});
  bench::PrintRow({"warm", StrFormat("%zu", warm_ids.size()),
                   StrFormat("%.6f", warm_seconds),
                   StrFormat("%.0f", warm_ids.size() / warm_seconds),
                   StrFormat("%zu", warm_hits)});
  printf("\ndataset fingerprint: %.6fs (computed once per batch)\n",
         fingerprint_seconds);
  printf("cache speedup: %.1fx (%s the 10x acceptance bar)\n", speedup,
         speedup >= 10 ? "meets" : "BELOW");

  ServiceMetricsSnapshot metrics = scheduler.MetricsSnapshot();
  printf("queue wait mean %.4fs, execution mean %.4fs over %llu executed "
         "jobs\n",
         metrics.queue_wait.mean_seconds(), metrics.execution.mean_seconds(),
         static_cast<unsigned long long>(metrics.execution.count));

  csv::CsvTable table{{"batch", "jobs", "wall_seconds", "jobs_per_second",
                       "cache_hits", "speedup"}};
  table.push_back({"cold", StrFormat("%zu", cold_ids.size()),
                   StrFormat("%.6f", cold_seconds),
                   StrFormat("%.2f", cold_ids.size() / cold_seconds), "0",
                   "1.0"});
  table.push_back({"warm", StrFormat("%zu", warm_ids.size()),
                   StrFormat("%.6f", warm_seconds),
                   StrFormat("%.2f", warm_ids.size() / warm_seconds),
                   StrFormat("%zu", warm_hits), StrFormat("%.2f", speedup)});
  bench::CheckOk(csv::WriteFile(bench::OutDir() + "/service_bench.csv",
                                csv::WriteCsv(table)),
                 "export");
  if (warm_hits != warm_ids.size()) {
    printf("ERROR: expected every warm job to hit the cache\n");
    return 1;
  }
  return speedup >= 10 ? 0 : 1;
}
