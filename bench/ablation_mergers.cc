// ABL — design ablation (DESIGN.md experiment index): the bounding-method
// choice, swept over delta. For each merger, the GCP/UL trade-off curve is
// produced with the same relational and transaction algorithms, verifying
// the expected shapes: Rmerger minimizes relational dilation, Tmerger
// minimizes transaction loss, RTmerger sits between; smaller delta means
// more merging (higher GCP, lower UL).
// Outputs: stdout + bench_out/ablation_mergers_*.{csv,gp}.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "engine/registry.h"
#include "export/exporter.h"
#include "viz/ascii_plot.h"

using namespace secreta;

int main() {
  printf("== ABL: bounding-method ablation over delta ==\n\n");
  SecretaSession session = bench::MakeSession(2500);
  ParamSweep sweep{"delta", 0.05, 0.65, 0.15};

  std::vector<AlgorithmConfig> configs;
  for (const std::string& merger : MergerNames()) {
    AlgorithmConfig config;
    config.mode = AnonMode::kRt;
    config.relational_algorithm = "Cluster";
    config.transaction_algorithm = "Apriori";
    config.merger = bench::CheckOk(ParseMergerKind(merger), "merger");
    config.params.k = 5;
    config.params.m = 2;
    configs.push_back(config);
  }
  auto results = bench::CheckOk(session.Compare(configs, sweep), "compare");

  for (const char* metric : {"gcp", "ul", "are"}) {
    std::vector<Series> series;
    for (const auto& result : results) {
      Series s = bench::CheckOk(result.Extract(metric), "extract");
      s.name = MergerKindToString(result.base.merger);
      series.push_back(std::move(s));
    }
    PlotOptions options;
    options.title = std::string("ABL: ") + metric + " vs delta, by merger";
    printf("%s\n", RenderLineChart(series, options).c_str());
    bench::CheckOk(ExportSeries(series,
                                bench::OutDir() + "/ablation_mergers_" +
                                    metric + ".csv",
                                bench::OutDir() + "/ablation_mergers_" +
                                    metric + ".gp",
                                options.title),
                   "export");
  }

  bench::PrintRow({"merger @ delta", "merges", "GCP", "UL", "ARE"});
  bench::PrintRule(5);
  for (const auto& result : results) {
    for (const auto& point : result.points) {
      bench::PrintRow(
          {std::string(MergerKindToString(result.base.merger)) + " @ " +
               StrFormat("%.2f", point.value),
           std::to_string(point.report.run.merges),
           StrFormat("%.4f", point.report.gcp),
           StrFormat("%.4f", point.report.ul),
           StrFormat("%.4f", point.report.are)});
    }
  }

  // Second ablation: the relational clustering choice feeding the pipeline.
  printf("\n-- relational-algorithm ablation (fixed delta=0.35) --\n");
  bench::PrintRow({"relational algo", "clusters", "GCP", "UL", "runtime"});
  bench::PrintRule(5);
  for (const std::string& rel : RelationalAlgorithmNames()) {
    AlgorithmConfig config;
    config.mode = AnonMode::kRt;
    config.relational_algorithm = rel;
    config.transaction_algorithm = "Apriori";
    config.merger = MergerKind::kRTmerger;
    config.params.k = 5;
    config.params.m = 2;
    config.params.delta = 0.35;
    auto report = bench::CheckOk(session.Evaluate(config), "evaluate");
    bench::PrintRow({rel,
                     StrFormat("%zu->%zu", report.run.initial_clusters,
                               report.run.final_clusters),
                     StrFormat("%.4f", report.gcp),
                     StrFormat("%.4f", report.ul),
                     StrFormat("%.3fs", report.run.runtime_seconds)});
  }
  printf("\nwritten under %s/\n", bench::OutDir().c_str());
  return 0;
}
