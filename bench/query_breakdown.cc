// QBRK — ARE broken down by query type (relational-only, item-only, mixed),
// per bounding method. The RT model predicts a crossover: Rmerger (minimal
// relational dilation) should answer relational queries best, Tmerger
// (minimal transaction loss) item queries, RTmerger in between — the
// query-level view of the Fig. 3/4 utility indicators.
// Outputs: stdout table + bench_out/query_breakdown.csv.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "csv/csv.h"
#include "datagen/synthetic.h"
#include "engine/registry.h"
#include "hierarchy/hierarchy_builder.h"
#include "query/query_evaluator.h"
#include "query/workload_generator.h"

using namespace secreta;

int main() {
  printf("== QBRK: ARE by query type, per bounding method ==\n");
  printf("(skewed demographics: uniform-assumption estimates now pay for "
         "generalization)\n\n");
  SyntheticOptions gen;
  gen.num_records = 2500;
  gen.demographic_skew = 0.9;  // uniform marginals would make ARE(rel) free
  gen.seed = 2014;
  SecretaSession session;
  bench::CheckOk(
      session.SetDataset(std::move(GenerateRtDataset(gen)).ValueOrDie()),
      "dataset");
  bench::CheckOk(session.AutoGenerateHierarchies(), "hierarchies");
  const Dataset& dataset = session.dataset();

  // Three workloads: relational-only, item-only, mixed.
  WorkloadGenOptions rel_options;
  rel_options.num_queries = 60;
  rel_options.relational_clauses = 2;
  rel_options.items_per_query = 0;
  rel_options.seed = 71;
  auto rel_workload =
      bench::CheckOk(GenerateWorkload(dataset, rel_options), "rel workload");
  WorkloadGenOptions item_options;
  item_options.num_queries = 60;
  item_options.relational_clauses = 0;
  item_options.items_per_query = 2;
  item_options.seed = 72;
  auto item_workload =
      bench::CheckOk(GenerateWorkload(dataset, item_options), "item workload");
  WorkloadGenOptions mixed_options;
  mixed_options.num_queries = 60;
  mixed_options.relational_clauses = 1;
  mixed_options.items_per_query = 1;
  mixed_options.seed = 73;
  auto mixed_workload = bench::CheckOk(GenerateWorkload(dataset, mixed_options),
                                       "mixed workload");

  csv::CsvTable table{
      {"merger", "are_relational", "are_items", "are_mixed", "gcp", "ul"}};
  bench::PrintRow({"merger", "ARE(rel)", "ARE(item)", "ARE(mix)", "GCP", "UL"});
  bench::PrintRule(6);
  for (const std::string& merger_name : MergerNames()) {
    AlgorithmConfig config;
    config.mode = AnonMode::kRt;
    config.relational_algorithm = "Cluster";
    config.transaction_algorithm = "Apriori";
    config.merger = bench::CheckOk(ParseMergerKind(merger_name), "merger");
    config.params.k = 5;
    config.params.m = 2;
    config.params.delta = 0.15;  // force real merging so mergers differ
    auto report = bench::CheckOk(session.Evaluate(config), "evaluate");
    // Re-evaluate ARE per workload against the run's recodings. The session
    // rebuilt its contexts during Evaluate; rebuild them here identically.
    auto hierarchies =
        std::move(BuildAllColumnHierarchies(dataset)).ValueOrDie();
    auto rel_ctx =
        std::move(RelationalContext::Create(dataset, hierarchies)).ValueOrDie();
    auto evaluator =
        std::move(QueryEvaluator::Create(dataset, &rel_ctx)).ValueOrDie();
    const RelationalRecoding* rel = &*report.run.relational;
    const TransactionRecoding* txn = &*report.run.transaction;
    double ares[3];
    const Workload* workloads[3] = {&rel_workload, &item_workload,
                                    &mixed_workload};
    for (int w = 0; w < 3; ++w) {
      ares[w] =
          std::move(evaluator.Are(*workloads[w], rel, txn)).ValueOrDie().are;
    }
    bench::PrintRow({merger_name, StrFormat("%.4f", ares[0]),
                     StrFormat("%.4f", ares[1]), StrFormat("%.4f", ares[2]),
                     StrFormat("%.4f", report.gcp),
                     StrFormat("%.4f", report.ul)});
    table.push_back({merger_name, StrFormat("%.6f", ares[0]),
                     StrFormat("%.6f", ares[1]), StrFormat("%.6f", ares[2]),
                     StrFormat("%.6f", report.gcp),
                     StrFormat("%.6f", report.ul)});
  }
  bench::CheckOk(csv::WriteFile(bench::OutDir() + "/query_breakdown.csv",
                                csv::WriteCsv(table)),
                 "export");
  printf("\nExpected: GCP strictly ordered Rmerger < RTmerger < Tmerger and UL "
         "strictly ordered\nTmerger < RTmerger < Rmerger; the per-query ARE "
         "follows directionally (Tmerger best\non item queries, Rmerger ahead "
         "of Tmerger on relational queries) with greedy noise.\n");
  return 0;
}
