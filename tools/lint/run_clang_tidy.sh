#!/usr/bin/env bash
# Runs clang-tidy over the given files (default: every .cc under src/) using
# the repo's .clang-tidy config and a compile_commands.json.
#
#   tools/lint/run_clang_tidy.sh [-p BUILD_DIR] [files...]
#
# Generate the compilation database first:
#   cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
#
# CI (lint.yml) calls this with only the files changed by the PR and caches
# results keyed on the compile_commands.json hash.

set -euo pipefail

build_dir=build
while getopts "p:" opt; do
  case "$opt" in
    p) build_dir="$OPTARG" ;;
    *) echo "usage: $0 [-p build_dir] [files...]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$repo_root"

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "error: $build_dir/compile_commands.json not found;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not on PATH" >&2
  exit 2
fi

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  mapfile -t files < <(find src -name '*.cc' | sort)
fi
if [[ ${#files[@]} -eq 0 ]]; then
  echo "nothing to check"
  exit 0
fi

# run-clang-tidy parallelizes when available; fall back to a serial loop.
if command -v run-clang-tidy >/dev/null 2>&1; then
  printf '%s\n' "${files[@]}" |
    xargs run-clang-tidy -p "$build_dir" -quiet
else
  status=0
  for f in "${files[@]}"; do
    clang-tidy -p "$build_dir" --quiet "$f" || status=1
  done
  exit "$status"
fi
