#!/usr/bin/env python3
"""SECRETA privacy-boundary flow linter.

Companion to the Sensitive<T> taint wrappers (src/common/sensitive.h) and
the SECRETA_SENSITIVE / SECRETA_DECLASSIFIES annotations
(src/common/annotations.h). The compiler already blocks *implicit* flows of
raw microdata — a Sensitive value cannot convert, stream, or compare its way
into a serving response. This linter closes the *explicit* escape hatches so
that unwrapping raw data stays an engine-side privilege and declassification
stays a short, reviewed list:

  serve-raw-include   Files under src/serve/ must not directly include the
                      raw-data headers (data/dataset.h, data/format.h,
                      data/column_provider.h, data/dataset_ops.h,
                      data/mmap_file.h). The sole exception is
                      serve/catalog.h + serve/catalog.cc — the serving side's
                      sanctioned crossing (PublishedRelease::Create, which
                      anonymizes before anything escapes). Every other serve
                      file sees released data only through catalog.h.

  obs-no-sensitive    src/obs/ (metrics, traces, slow-query log, Prometheus
                      text) must never reach common/sensitive.h through the
                      include graph, transitively, and must never spell
                      Sensitive / SensitiveSpan / .raw(). Telemetry is the
                      easiest exfiltration channel — a metric label is a
                      public string — so the whole module is taint-free by
                      construction.

  sensitive-raw       `.raw()` (the Sensitive/SensitiveSpan unwrap) may be
                      spelled only in the engine-side modules
                      (src/{algo,common,core,csv,data,datagen,engine,
                      frontend,hierarchy,kernels,metrics,policy,query}/).
                      The boundary-external modules (src/serve/, src/obs/)
                      must go through Declassify() inside an annotated
                      declassifier instead. tests/, bench/ and examples/ are
                      trusted harness code and exempt.

  declassify-audit    Every Declassify( call site must (a) live in a file on
                      the closed declassifier list below, (b) be preceded
                      within a few lines by a `// declassify:` comment
                      stating the guarantee that justifies the crossing, and
                      (c) sit in a file whose paired header (or the file
                      itself) carries SECRETA_DECLASSIFIES. Adding a new
                      declassifier therefore requires editing DECLASSIFIER_
                      FILES here — a one-line diff that code review cannot
                      miss.

  declassifies-inventory
                      Conversely, every SECRETA_DECLASSIFIES annotation must
                      appear only in declassifier files (or the macro's own
                      definition), so the annotation keeps meaning "this is
                      one of the N sanctioned crossings" rather than
                      decaying into decoration.

Run from the repo root (or pass --root). Exits non-zero with one
"path:line: rule: message" diagnostic per violation. Suppress a single line
with a trailing `// lint:allow <rule>` comment and a reason.

Wired into ctest as `lint.check_privacy_flow` (label: lint) plus the
WILL_FAIL `lint.privacy_flow_detects` test, which runs this script against
tools/lint/testdata/privacy_violation/ and passes only if the seeded
violations are caught — proving the linter itself is still live.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Headers whose inclusion grants access to raw microdata accessors.
RAW_DATA_HEADERS = {
    "data/dataset.h",
    "data/dataset_ops.h",
    "data/column_provider.h",
    "data/format.h",
    "data/mmap_file.h",
}

# The serving side's sanctioned crossing: anonymizes before anything escapes.
SERVE_RAW_EXCEPTIONS = {"src/serve/catalog.h", "src/serve/catalog.cc"}

# Engine-side modules where unwrapping a Sensitive value with .raw() is part
# of the job (the algorithms *compute on* raw microdata; what they must not
# do is ship it out, which the serve/obs rules cover).
RAW_ALLOWED_MODULES = {
    "algo", "common", "core", "csv", "data", "datagen", "engine",
    "frontend", "hierarchy", "kernels", "metrics", "policy", "query",
}

# The closed list of declassifiers. A Declassify( call or a
# SECRETA_DECLASSIFIES annotation anywhere else is a violation: extending
# the privacy boundary requires a diff to this list.
DECLASSIFIER_FILES = {
    "src/core/recoding.h",
    "src/core/recoding.cc",
    "src/serve/catalog.h",
    "src/serve/catalog.cc",
}

# Files that may mention the annotation machinery without being
# declassifiers themselves (the macro definition and the wrapper types).
ANNOTATION_DEFINITION_FILES = {
    "src/common/annotations.h",
    "src/common/sensitive.h",
}

SENSITIVE_HEADER = "common/sensitive.h"

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
ALLOW_RE = re.compile(r"//\s*lint:allow\s+([\w-]+)")
RAW_UNWRAP_RE = re.compile(r"\.raw\s*\(\s*\)")
SENSITIVE_TOKEN_RE = re.compile(r"\b(Sensitive|SensitiveSpan)\s*<")
DECLASSIFY_CALL_RE = re.compile(r"(^|[^\w:])Declassify\s*\(")
DECLASSIFIES_TOKEN_RE = re.compile(r"\bSECRETA_DECLASSIFIES\b")
DECLASSIFY_COMMENT_RE = re.compile(r"//\s*declassify:")

# How far above a Declassify( call the justifying `// declassify:` comment
# may sit (comments usually span 2-4 lines).
DECLASSIFY_COMMENT_WINDOW = 8


def strip_comments(line: str) -> str:
    """Removes // comments and a best-effort pass at string literals."""
    line = re.sub(r'"([^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def allowed(raw_line: str, rule: str) -> bool:
    m = ALLOW_RE.search(raw_line)
    return m is not None and m.group(1) == rule


def read_lines(path: Path) -> list[str]:
    return path.read_text(encoding="utf-8", errors="replace").splitlines()


def build_include_graph(root: Path) -> dict[str, set[str]]:
    """Maps src-relative path -> set of src-relative quoted includes."""
    graph: dict[str, set[str]] = {}
    src = root / "src"
    for path in sorted(src.rglob("*.h")) + sorted(src.rglob("*.cc")):
        rel = path.relative_to(src).as_posix()
        targets: set[str] = set()
        for line in read_lines(path):
            m = INCLUDE_RE.match(line)
            if m and (src / m.group(1)).exists():
                targets.add(m.group(1))
        graph[rel] = targets
    return graph


def reaches(graph: dict[str, set[str]], start: str, goal: str) -> bool:
    """True if `goal` is reachable from `start` in the include graph."""
    seen: set[str] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.get(node, ()))
    return False


def module_of(rel: str) -> str | None:
    """Top-level src/ module of a repo-relative path, or None."""
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def check_file(root: Path, path: Path, rel: str,
               graph: dict[str, set[str]], errors: list[str]) -> None:
    module = module_of(rel)
    is_serve = module == "serve"
    is_obs = module == "obs"
    lines = read_lines(path)

    has_declassifies = any(DECLASSIFIES_TOKEN_RE.search(strip_comments(l))
                           for l in lines)
    # A .cc inherits the annotation from its paired header: the convention
    # is to annotate the declaration, not the definition.
    if not has_declassifies and rel.endswith(".cc"):
        header = path.with_suffix(".h")
        if header.exists():
            has_declassifies = any(
                DECLASSIFIES_TOKEN_RE.search(strip_comments(l))
                for l in read_lines(header))

    for lineno, raw in enumerate(lines, start=1):
        code = strip_comments(raw)

        m = INCLUDE_RE.match(raw)
        if (m and is_serve and rel not in SERVE_RAW_EXCEPTIONS
                and m.group(1) in RAW_DATA_HEADERS):
            if not allowed(raw, "serve-raw-include"):
                errors.append(
                    f"{rel}:{lineno}: serve-raw-include: serve/ sees "
                    f'released data only through serve/catalog.h; including '
                    f'"{m.group(1)}" here bypasses the privacy boundary')

        if is_obs:
            if m and m.group(1) == SENSITIVE_HEADER:
                errors.append(
                    f"{rel}:{lineno}: obs-no-sensitive: telemetry code must "
                    "never include common/sensitive.h — a metric label or "
                    "trace tag is a public string")
            if SENSITIVE_TOKEN_RE.search(code) or RAW_UNWRAP_RE.search(code):
                if not allowed(raw, "obs-no-sensitive"):
                    errors.append(
                        f"{rel}:{lineno}: obs-no-sensitive: Sensitive "
                        "values must not flow into telemetry; pass an "
                        "aggregate or a redacted label instead")

        if (module is not None and module not in RAW_ALLOWED_MODULES
                and RAW_UNWRAP_RE.search(code)):
            if not allowed(raw, "sensitive-raw"):
                errors.append(
                    f"{rel}:{lineno}: sensitive-raw: .raw() unwrapping is "
                    f"engine-side only (src/{module}/ is outside the "
                    "boundary); cross via Declassify() inside a "
                    "SECRETA_DECLASSIFIES function on the closed list in "
                    "tools/lint/check_privacy_flow.py")

        if (DECLASSIFY_CALL_RE.search(code)
                and rel not in ANNOTATION_DEFINITION_FILES):
            if allowed(raw, "declassify-audit"):
                continue
            if rel not in DECLASSIFIER_FILES:
                errors.append(
                    f"{rel}:{lineno}: declassify-audit: Declassify() may "
                    "only be called from the closed declassifier list "
                    "(DECLASSIFIER_FILES in tools/lint/"
                    "check_privacy_flow.py); add this file there — with "
                    "review — or keep the value wrapped")
            window = lines[max(0, lineno - 1 - DECLASSIFY_COMMENT_WINDOW):
                           lineno]
            if not any(DECLASSIFY_COMMENT_RE.search(l) for l in window):
                errors.append(
                    f"{rel}:{lineno}: declassify-audit: every Declassify() "
                    "call needs a `// declassify:` comment within the "
                    f"preceding {DECLASSIFY_COMMENT_WINDOW} lines stating "
                    "the guarantee that justifies the crossing")
            if not has_declassifies:
                errors.append(
                    f"{rel}:{lineno}: declassify-audit: Declassify() is "
                    "only legal inside a function marked "
                    "SECRETA_DECLASSIFIES (annotate the declaration in "
                    "this file's header)")

        if (DECLASSIFIES_TOKEN_RE.search(code)
                and rel not in DECLASSIFIER_FILES
                and rel not in ANNOTATION_DEFINITION_FILES):
            if not allowed(raw, "declassifies-inventory"):
                errors.append(
                    f"{rel}:{lineno}: declassifies-inventory: "
                    "SECRETA_DECLASSIFIES marks one of the sanctioned "
                    "boundary crossings; new declassifiers must be added "
                    "to DECLASSIFIER_FILES in tools/lint/"
                    "check_privacy_flow.py")


def check_obs_reachability(root: Path, graph: dict[str, set[str]],
                           errors: list[str]) -> None:
    for node in sorted(graph):
        if node.startswith("obs/") and reaches(graph, node, SENSITIVE_HEADER):
            errors.append(
                f"src/{node}:1: obs-no-sensitive: include graph reaches "
                "common/sensitive.h from telemetry code (run "
                "`grep -rn 'include' src/obs` and cut the edge)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = Path(args.root).resolve()

    src = root / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory (wrong --root?)",
              file=sys.stderr)
        return 2

    graph = build_include_graph(root)
    errors: list[str] = []
    check_obs_reachability(root, graph, errors)

    checked = 0
    for path in sorted(src.rglob("*.cc")) + sorted(src.rglob("*.h")):
        rel = path.relative_to(root).as_posix()
        check_file(root, path, rel, graph, errors)
        checked += 1

    for err in errors:
        print(err)
    print(f"check_privacy_flow: {checked} files, {len(errors)} violation(s)",
          file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
