#!/usr/bin/env python3
"""SECRETA repo-convention linter.

Enforces the conventions the compilers cannot (or that only Clang can, which
the default GCC build would silently skip):

  naked-mutex       std::mutex / std::condition_variable / std::lock_guard /
                    std::unique_lock / std::scoped_lock may only be spelled
                    in src/common/mutex.h. Everything else goes through the
                    annotated Mutex/MutexLock/CondVar wrappers so the Clang
                    thread-safety gate covers it.
  no-throw          `throw` is banned in src/: core code propagates errors
                    through Status/Result<T> exclusively (see
                    src/common/status.h).
  naked-popcount    `__builtin_popcount*` may only be spelled in src/kernels/.
                    Everything else calls the dispatched kernels (AndPopcount,
                    PopcountRange, ...) from kernels/kernels.h so hot loops
                    pick up the SIMD tier and stay benchmarked in one place.
  metric-name       Metric family names passed to MetricsRegistry::counter /
                    gauge / histogram must be the named constants from
                    src/obs/metric_names.h, never string literals, so the
                    full metric surface stays greppable in one header and
                    dashboards cannot silently diverge from the code.
                    Applies to src/ only; tests and benches may mint
                    throwaway names.
  raw-io            mmap / munmap / madvise / fread may only be spelled in
                    src/data/ (the mmap_file.h / format.h layer). Everything
                    else reads datasets through ColumnProvider or
                    BinaryDatasetReader so file-format and lifetime
                    invariants (bounds checks, fingerprint verification,
                    unmap-on-drop) are enforced in one place. Applies to
                    src/, tests/ and bench/ alike.
  include-style     Internal headers are included with "quotes", system and
                    third-party headers with <angle brackets>. A <...>
                    include that resolves to a repo header defeats header
                    hygiene and the self-include check.
  self-include-first  Every src/ .cc includes its own header first, proving
                    each header is self-contained.
  include-cycle     The src/ header include graph must stay a DAG. Layering
                    is otherwise only a convention: common/ at the bottom;
                    data/, hierarchy/, kernels/ above it; core/, algo/,
                    query/, engine/ above those; serve/, obs/, service/,
                    export/ at the rim. A cycle means two layers secretly
                    depend on each other and header hygiene (plus the
                    privacy layering in check_privacy_flow.py) can no
                    longer be reasoned about file-locally. Reported once
                    per cycle with the full path.

Run from the repo root (or pass --root). Exits non-zero with one
"path:line: rule: message" diagnostic per violation. Suppress a single line
with a trailing `// lint:allow <rule>` comment and a reason.

This is wired into ctest as `lint.check_source` (label: lint) and into the
lint.yml CI workflow.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

MUTEX_TOKENS = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)
# `throw` as a statement; `throw()` exception-specs don't occur in this tree.
THROW_TOKEN = re.compile(r"(^|[^\w.])throw\s")
POPCOUNT_TOKEN = re.compile(r"__builtin_popcount(ll|l)?\b")
# Raw file I/O calls (not identifiers merely containing the words: the call
# paren is part of the token, and `MmapFile`/`mmap_file` don't match).
RAW_IO_TOKEN = re.compile(r"(^|[^\w.])(mmap|munmap|madvise|fread)\s*\(")
# A registry lookup whose family name is a string literal: `.counter("` /
# `->gauge("` / etc. Matched on the raw line (the comment stripper also
# blanks string literals, which would hide exactly what this rule needs).
METRIC_CALL = re.compile(r'[.>](counter|gauge|histogram)\s*\(\s*"')
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<([^>]+)>|"([^"]+)")')
ALLOW_RE = re.compile(r"//\s*lint:allow\s+([\w-]+)")

# Directories holding internal headers reachable from the src/ include root.
INTERNAL_TOP_DIRS: set[str] = set()


def strip_comments(line: str) -> str:
    """Removes // comments and a best-effort pass at string literals."""
    line = re.sub(r'"([^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def iter_source_lines(path: Path):
    text = path.read_text(encoding="utf-8", errors="replace")
    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        # Strip /* ... */ spans (single-line and opening multi-line).
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
        yield lineno, raw, line


def allowed(raw_line: str, rule: str) -> bool:
    m = ALLOW_RE.search(raw_line)
    return m is not None and m.group(1) == rule


def check_file(path: Path, rel: str, errors: list[str]) -> None:
    is_src = rel.startswith("src/")
    is_mutex_header = rel == "src/common/mutex.h"
    is_kernel_source = rel.startswith("src/kernels/")
    is_data_source = rel.startswith("src/data/")
    includes: list[tuple[int, str, bool]] = []  # (lineno, target, angled)

    for lineno, raw, line in iter_source_lines(path):
        # Includes are matched before string-literal stripping (the stripper
        # would turn "common/foo.h" into "").
        m = INCLUDE_RE.match(line)
        code = strip_comments(line)
        if not code.strip() and not m:
            continue

        if m:
            angled = m.group(2) is not None
            target = m.group(2) if angled else m.group(3)
            includes.append((lineno, target, angled))

        if is_src and not is_mutex_header and MUTEX_TOKENS.search(code):
            if not allowed(raw, "naked-mutex"):
                errors.append(
                    f"{rel}:{lineno}: naked-mutex: use secreta::Mutex / "
                    "MutexLock / CondVar from common/mutex.h so the "
                    "thread-safety analysis covers this lock"
                )

        if is_src and THROW_TOKEN.search(code):
            if not allowed(raw, "no-throw"):
                errors.append(
                    f"{rel}:{lineno}: no-throw: core code propagates errors "
                    "via Status/Result<T>, never exceptions"
                )

        if (is_src and rel != "src/obs/metric_names.h"
                and METRIC_CALL.search(line.split("//", 1)[0])):
            if not allowed(raw, "metric-name"):
                errors.append(
                    f"{rel}:{lineno}: metric-name: metric family names live "
                    "in src/obs/metric_names.h; pass the metric_names:: "
                    "constant instead of a string literal"
                )

        if not is_data_source and RAW_IO_TOKEN.search(code):
            if not allowed(raw, "raw-io"):
                errors.append(
                    f"{rel}:{lineno}: raw-io: raw mmap/fread belongs in "
                    "src/data/ only; read datasets through ColumnProvider "
                    "or BinaryDatasetReader (data/column_provider.h, "
                    "data/format.h)"
                )

        if is_src and not is_kernel_source and POPCOUNT_TOKEN.search(code):
            if not allowed(raw, "naked-popcount"):
                errors.append(
                    f"{rel}:{lineno}: naked-popcount: call the dispatched "
                    "kernels from kernels/kernels.h (AndPopcount, "
                    "PopcountRange, ...) instead of a raw "
                    "__builtin_popcount* loop"
                )

    for lineno, target, angled in includes:
        top = target.split("/", 1)[0]
        is_internal = (
            top in INTERNAL_TOP_DIRS
            or target in ("secreta.h", "tests/test_util.h")
            or target.endswith("_test.h")
        )
        if angled and is_internal:
            errors.append(
                f"{rel}:{lineno}: include-style: internal header "
                f"<{target}> must be included with quotes"
            )
        elif not angled and not is_internal and "/" not in target:
            # A quoted include that is neither a known internal path nor a
            # relative repo path is probably a system header in disguise.
            errors.append(
                f'{rel}:{lineno}: include-style: "{target}" does not name '
                "a repo header; system headers use <angle brackets>"
            )

    if is_src and rel.endswith(".cc") and includes:
        own_header = rel[len("src/"):-len(".cc")] + ".h"
        if (Path(path).parent / (path.stem + ".h")).exists():
            first = includes[0]
            if first[1] != own_header:
                errors.append(
                    f"{rel}:{first[0]}: self-include-first: first include "
                    f'must be "{own_header}" (got "{first[1]}") so the '
                    "header proves self-contained"
                )


def check_include_cycles(root: Path, errors: list[str]) -> None:
    """Reports cycles in the src/ header include graph (must stay a DAG)."""
    src = root / "src"
    graph: dict[str, list[str]] = {}
    for path in sorted(src.rglob("*.h")):
        rel = path.relative_to(src).as_posix()
        targets = []
        for _, _, line in iter_source_lines(path):
            m = INCLUDE_RE.match(line)
            if m and m.group(3) and (src / m.group(3)).exists():
                targets.append(m.group(3))
        graph[rel] = targets

    # Iterative DFS with an explicit color map; each cycle reported once.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    reported: set[frozenset[str]] = set()

    def visit(start: str) -> None:
        stack: list[tuple[str, int]] = [(start, 0)]
        path_stack = [start]
        color[start] = GRAY
        while stack:
            node, idx = stack[-1]
            targets = graph.get(node, [])
            if idx < len(targets):
                stack[-1] = (node, idx + 1)
                nxt = targets[idx]
                state = color.get(nxt, BLACK)
                if state == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, 0))
                    path_stack.append(nxt)
                elif state == GRAY:
                    cycle = path_stack[path_stack.index(nxt):] + [nxt]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        errors.append(
                            f"src/{cycle[0]}:1: include-cycle: "
                            + " -> ".join(cycle))
            else:
                color[node] = BLACK
                stack.pop()
                path_stack.pop()

    for node in graph:
        if color[node] == WHITE:
            visit(node)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument(
        "files", nargs="*",
        help="specific files to check (default: all of src/, tests/, bench/, "
             "examples/)")
    args = parser.parse_args()
    root = Path(args.root).resolve()

    src = root / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory (wrong --root?)",
              file=sys.stderr)
        return 2
    for child in sorted(src.iterdir()):
        if child.is_dir():
            INTERNAL_TOP_DIRS.add(child.name)

    if args.files:
        paths = [Path(f).resolve() for f in args.files]
    else:
        paths = []
        for sub in ("src", "tests", "bench", "examples"):
            paths.extend(sorted((root / sub).rglob("*.cc")))
            paths.extend(sorted((root / sub).rglob("*.h")))

    errors: list[str] = []
    if not args.files:
        check_include_cycles(root, errors)
    checked = 0
    for path in paths:
        if path.suffix not in (".cc", ".h"):
            continue
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        check_file(path, rel, errors)
        checked += 1

    for err in errors:
        print(err)
    print(f"check_source: {checked} files, {len(errors)} violation(s)",
          file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
