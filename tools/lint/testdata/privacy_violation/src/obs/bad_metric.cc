// Seeded obs-no-sensitive violations for `lint.privacy_flow_detects`.

#include "common/sensitive.h"  // obs-no-sensitive: banned include

namespace secreta {

int TaintedGauge(const Sensitive<int>& value) {
  return value.raw();  // obs-no-sensitive + telemetry unwrap
}

}  // namespace secreta
