// Seeded privacy-flow violations. This file is NOT part of the build: it is
// the fixture for the WILL_FAIL ctest `lint.privacy_flow_detects`, which
// runs check_privacy_flow.py against this mini-tree and passes only when
// every seeded violation below is reported — proving the linter is live.

#include "data/dataset.h"  // serve-raw-include: bypasses serve/catalog.h

#include <string>

namespace secreta {

std::string LeakCell(const Dataset& dataset) {
  // sensitive-raw: unwrapping inside src/serve/ (boundary-external module).
  auto cell = dataset.value_string(0, 0).raw();
  // declassify-audit (x3): not on the closed declassifier list, missing the
  // justification comment, and the enclosing function is not annotated as a
  // declassifier.
  return std::string(Declassify(dataset.value_string(0, 0)));
}

}  // namespace secreta
