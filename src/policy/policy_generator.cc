#include "policy/policy_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/random.h"

namespace secreta {

namespace {

std::vector<size_t> ItemSupports(const Dataset& dataset) {
  std::vector<size_t> support(dataset.item_dictionary().size(), 0);
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    for (ItemId item : dataset.items(r).raw()) support[static_cast<size_t>(item)]++;
  }
  return support;
}

std::vector<size_t> SupportOrder(const std::vector<size_t>& support) {
  std::vector<size_t> order(support.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (support[a] != support[b]) return support[a] > support[b];
    return a < b;
  });
  return order;
}

}  // namespace

Result<PrivacyPolicy> GeneratePrivacyPolicy(const Dataset& dataset,
                                            const PrivacyGenOptions& options) {
  size_t num_items = dataset.item_dictionary().size();
  if (num_items == 0) {
    return Status::FailedPrecondition("dataset has no transaction items");
  }
  PrivacyPolicy policy;
  switch (options.strategy) {
    case PrivacyStrategy::kAllItems: {
      for (size_t i = 0; i < num_items; ++i) {
        policy.constraints.push_back({{static_cast<ItemId>(i)}, 0});
      }
      break;
    }
    case PrivacyStrategy::kFrequentItems: {
      if (options.frequent_fraction <= 0 || options.frequent_fraction > 1) {
        return Status::InvalidArgument("frequent_fraction must be in (0,1]");
      }
      auto support = ItemSupports(dataset);
      auto order = SupportOrder(support);
      size_t take = std::max<size_t>(
          1, static_cast<size_t>(std::llround(
                 options.frequent_fraction * static_cast<double>(num_items))));
      for (size_t i = 0; i < take; ++i) {
        policy.constraints.push_back({{static_cast<ItemId>(order[i])}, 0});
      }
      break;
    }
    case PrivacyStrategy::kRandomItemsets: {
      if (options.max_itemset_size < 1) {
        return Status::InvalidArgument("max_itemset_size must be >= 1");
      }
      Rng rng(options.seed);
      std::set<std::vector<ItemId>> seen;
      size_t attempts = 0;
      while (policy.constraints.size() < options.num_itemsets &&
             attempts < options.num_itemsets * 20) {
        ++attempts;
        size_t row = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(dataset.num_records() - 1)));
        const auto& txn = dataset.items(row).raw();
        if (txn.empty()) continue;
        size_t size = static_cast<size_t>(
            rng.UniformInt(1, options.max_itemset_size));
        size = std::min(size, txn.size());
        std::vector<ItemId> itemset;
        for (size_t idx : rng.Sample(txn.size(), size)) {
          itemset.push_back(txn[idx]);
        }
        std::sort(itemset.begin(), itemset.end());
        if (seen.insert(itemset).second) {
          policy.constraints.push_back({std::move(itemset), 0});
        }
      }
      if (policy.constraints.empty()) {
        return Status::Internal("could not sample any privacy constraints");
      }
      break;
    }
  }
  return policy;
}

Result<UtilityPolicy> GenerateUtilityPolicy(const Dataset& dataset,
                                            const UtilityGenOptions& options,
                                            const Hierarchy* hierarchy) {
  size_t num_items = dataset.item_dictionary().size();
  if (num_items == 0) {
    return Status::FailedPrecondition("dataset has no transaction items");
  }
  switch (options.strategy) {
    case UtilityStrategy::kUnrestricted:
      return UtilityPolicy::Unrestricted(num_items);
    case UtilityStrategy::kFrequencyBands: {
      if (options.band_size == 0) {
        return Status::InvalidArgument("band_size must be positive");
      }
      auto support = ItemSupports(dataset);
      auto order = SupportOrder(support);
      std::vector<std::vector<ItemId>> groups;
      for (size_t begin = 0; begin < order.size(); begin += options.band_size) {
        size_t end = std::min(begin + options.band_size, order.size());
        std::vector<ItemId> group;
        for (size_t i = begin; i < end; ++i) {
          group.push_back(static_cast<ItemId>(order[i]));
        }
        groups.push_back(std::move(group));
      }
      return UtilityPolicy::Create(std::move(groups), num_items);
    }
    case UtilityStrategy::kHierarchyLevel: {
      if (hierarchy == nullptr || !hierarchy->finalized()) {
        return Status::InvalidArgument(
            "kHierarchyLevel requires a finalized item hierarchy");
      }
      if (options.hierarchy_depth < 1) {
        return Status::InvalidArgument("hierarchy_depth must be >= 1");
      }
      // Collect the frontier at the requested depth (nodes shallower than the
      // depth that are leaves form their own singleton groups).
      std::vector<std::vector<ItemId>> groups;
      std::vector<NodeId> stack{hierarchy->root()};
      while (!stack.empty()) {
        NodeId node = stack.back();
        stack.pop_back();
        if (hierarchy->depth(node) == options.hierarchy_depth ||
            hierarchy->IsLeaf(node)) {
          std::vector<ItemId> group;
          for (NodeId leaf : hierarchy->LeavesUnder(node)) {
            SECRETA_ASSIGN_OR_RETURN(
                ItemId item,
                dataset.item_dictionary().Lookup(hierarchy->label(leaf)));
            group.push_back(item);
          }
          groups.push_back(std::move(group));
          continue;
        }
        for (NodeId child : hierarchy->children(node)) stack.push_back(child);
      }
      return UtilityPolicy::Create(std::move(groups), num_items);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace secreta
