#include "policy/policy.h"

#include <algorithm>
#include <numeric>

namespace secreta {

Result<UtilityPolicy> UtilityPolicy::Create(
    std::vector<std::vector<ItemId>> groups, size_t num_items) {
  UtilityPolicy policy;
  policy.constraint_of.assign(num_items, -1);
  for (auto& group : groups) {
    std::sort(group.begin(), group.end());
    group.erase(std::unique(group.begin(), group.end()), group.end());
    if (group.empty()) continue;
    int32_t index = static_cast<int32_t>(policy.constraints.size());
    for (ItemId item : group) {
      if (item < 0 || static_cast<size_t>(item) >= num_items) {
        return Status::OutOfRange("utility constraint item id out of range");
      }
      if (policy.constraint_of[static_cast<size_t>(item)] != -1) {
        return Status::InvalidArgument(
            "utility constraints overlap on an item");
      }
      policy.constraint_of[static_cast<size_t>(item)] = index;
    }
    policy.constraints.push_back(std::move(group));
  }
  return policy;
}

UtilityPolicy UtilityPolicy::Unrestricted(size_t num_items) {
  std::vector<ItemId> all(num_items);
  std::iota(all.begin(), all.end(), 0);
  auto policy = Create({std::move(all)}, num_items);
  return std::move(policy).value();
}

size_t ConstraintSupport(const PrivacyConstraint& constraint,
                         const TransactionRecoding& recoding) {
  size_t support = 0;
  for (const auto& gens : recoding.records) {
    bool all = true;
    for (ItemId item : constraint.items) {
      bool covered = false;
      if (!recoding.item_map.empty()) {
        int32_t g = recoding.item_map[static_cast<size_t>(item)];
        covered = g != kSuppressedGen &&
                  std::binary_search(gens.begin(), gens.end(), g);
      } else {
        for (int32_t g : gens) {
          const auto& covers = recoding.gens[static_cast<size_t>(g)].covers;
          if (std::binary_search(covers.begin(), covers.end(), item)) {
            covered = true;
            break;
          }
        }
      }
      if (!covered) {
        all = false;
        break;
      }
    }
    if (all) ++support;
  }
  return support;
}

bool SatisfiesPrivacyPolicy(const PrivacyPolicy& policy,
                            const TransactionRecoding& recoding, int global_k) {
  for (const auto& constraint : policy.constraints) {
    int k = constraint.k > 0 ? constraint.k : global_k;
    size_t support = ConstraintSupport(constraint, recoding);
    if (support > 0 && support < static_cast<size_t>(k)) return false;
  }
  return true;
}

bool SatisfiesUtilityPolicy(const UtilityPolicy& policy,
                            const TransactionRecoding& recoding) {
  // Only gens actually referenced by records matter; the pool may retain
  // intermediate gens from merge steps.
  std::vector<char> used(recoding.gens.size(), 0);
  for (const auto& gens : recoding.records) {
    for (int32_t g : gens) used[static_cast<size_t>(g)] = 1;
  }
  for (size_t i = 0; i < recoding.gens.size(); ++i) {
    if (!used[i]) continue;
    const auto& gen = recoding.gens[i];
    if (gen.covers.size() <= 1) continue;
    int32_t group = policy.constraint_of[static_cast<size_t>(gen.covers[0])];
    if (group == -1) return false;
    for (ItemId item : gen.covers) {
      if (policy.constraint_of[static_cast<size_t>(item)] != group) return false;
    }
  }
  return true;
}

}  // namespace secreta
