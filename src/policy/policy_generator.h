// Automatic policy generation (Policy Specification Module; strategies of
// [7]). Privacy policies decide WHAT to protect; utility policies decide WHICH
// generalizations stay meaningful.

#ifndef SECRETA_POLICY_POLICY_GENERATOR_H_
#define SECRETA_POLICY_POLICY_GENERATOR_H_

#include "data/dataset.h"
#include "hierarchy/hierarchy.h"
#include "policy/policy.h"

namespace secreta {

/// Privacy-policy generation strategy.
enum class PrivacyStrategy {
  /// Protect every single item (k^1-style protection for all items).
  kAllItems,
  /// Protect the most frequent items (head of the support distribution).
  kFrequentItems,
  /// Protect random itemsets of size <= m sampled from actual records
  /// (models adversary background knowledge, as in the k^m experiments).
  kRandomItemsets,
};

struct PrivacyGenOptions {
  PrivacyStrategy strategy = PrivacyStrategy::kAllItems;
  /// kFrequentItems: fraction of the (support-sorted) domain to protect.
  double frequent_fraction = 0.2;
  /// kRandomItemsets: how many constraints to draw and their max size.
  size_t num_itemsets = 50;
  int max_itemset_size = 2;
  uint64_t seed = 11;
};

/// Generates a privacy policy over the dataset's item domain.
Result<PrivacyPolicy> GeneratePrivacyPolicy(const Dataset& dataset,
                                            const PrivacyGenOptions& options);

/// Utility-policy generation strategy.
enum class UtilityStrategy {
  /// One constraint per hierarchy node at `hierarchy_depth` (semantic groups).
  kHierarchyLevel,
  /// Support-sorted items grouped into bands of `band_size` (items of similar
  /// frequency are considered interchangeable).
  kFrequencyBands,
  /// Single constraint over the whole domain (maximum generalization freedom).
  kUnrestricted,
};

struct UtilityGenOptions {
  UtilityStrategy strategy = UtilityStrategy::kFrequencyBands;
  /// kHierarchyLevel: depth of the nodes that define the groups (>= 1).
  int hierarchy_depth = 1;
  /// kFrequencyBands: items per band.
  size_t band_size = 8;
};

/// Generates a utility policy over the dataset's item domain. `hierarchy` is
/// required for kHierarchyLevel and ignored otherwise.
Result<UtilityPolicy> GenerateUtilityPolicy(const Dataset& dataset,
                                            const UtilityGenOptions& options,
                                            const Hierarchy* hierarchy = nullptr);

}  // namespace secreta

#endif  // SECRETA_POLICY_POLICY_GENERATOR_H_
