#include "policy/policy_io.h"

#include <algorithm>

#include "common/string_util.h"
#include "csv/csv.h"

namespace secreta {

namespace {

Result<std::vector<ItemId>> ResolveItems(const std::string& text,
                                         const Dataset& dataset) {
  std::vector<ItemId> items;
  for (const std::string& label : SplitWhitespace(text)) {
    SECRETA_ASSIGN_OR_RETURN(ItemId id, dataset.item_dictionary().Lookup(label));
    items.push_back(id);
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

}  // namespace

Result<PrivacyPolicy> ParsePrivacyPolicy(const std::string& text,
                                         const Dataset& dataset) {
  PrivacyPolicy policy;
  size_t line_no = 0;
  for (const std::string& line : Split(text, '\n')) {
    ++line_no;
    std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    PrivacyConstraint constraint;
    std::string items_part = trimmed;
    size_t semi = trimmed.find(';');
    if (semi != std::string::npos) {
      items_part = trimmed.substr(0, semi);
      auto k = ParseInt(trimmed.substr(semi + 1));
      if (!k.ok() || k.value() < 1) {
        return Status::InvalidArgument(
            StrFormat("privacy policy line %zu: bad k", line_no));
      }
      constraint.k = static_cast<int>(k.value());
    }
    auto items = ResolveItems(items_part, dataset);
    if (!items.ok()) {
      return Status::InvalidArgument(
          StrFormat("privacy policy line %zu: %s", line_no,
                    items.status().message().c_str()));
    }
    constraint.items = std::move(items).value();
    if (constraint.items.empty()) {
      return Status::InvalidArgument(
          StrFormat("privacy policy line %zu is empty", line_no));
    }
    policy.constraints.push_back(std::move(constraint));
  }
  return policy;
}

Result<PrivacyPolicy> LoadPrivacyPolicyFile(const std::string& path,
                                            const Dataset& dataset) {
  SECRETA_ASSIGN_OR_RETURN(std::string text, csv::ReadFile(path));
  return ParsePrivacyPolicy(text, dataset);
}

std::string FormatPrivacyPolicy(const PrivacyPolicy& policy,
                                const Dataset& dataset) {
  std::string out;
  for (const auto& constraint : policy.constraints) {
    std::vector<std::string> labels;
    for (ItemId item : constraint.items) {
      labels.push_back(dataset.item_dictionary().value(item));
    }
    out += Join(labels, " ");
    if (constraint.k > 0) out += StrFormat(";%d", constraint.k);
    out += '\n';
  }
  return out;
}

Status SavePrivacyPolicyFile(const PrivacyPolicy& policy, const Dataset& dataset,
                             const std::string& path) {
  return csv::WriteFile(path, FormatPrivacyPolicy(policy, dataset));
}

Result<UtilityPolicy> ParseUtilityPolicy(const std::string& text,
                                         const Dataset& dataset) {
  std::vector<std::vector<ItemId>> groups;
  size_t line_no = 0;
  for (const std::string& line : Split(text, '\n')) {
    ++line_no;
    std::string trimmed(Trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto items = ResolveItems(trimmed, dataset);
    if (!items.ok()) {
      return Status::InvalidArgument(
          StrFormat("utility policy line %zu: %s", line_no,
                    items.status().message().c_str()));
    }
    groups.push_back(std::move(items).value());
  }
  return UtilityPolicy::Create(std::move(groups),
                               dataset.item_dictionary().size());
}

Result<UtilityPolicy> LoadUtilityPolicyFile(const std::string& path,
                                            const Dataset& dataset) {
  SECRETA_ASSIGN_OR_RETURN(std::string text, csv::ReadFile(path));
  return ParseUtilityPolicy(text, dataset);
}

std::string FormatUtilityPolicy(const UtilityPolicy& policy,
                                const Dataset& dataset) {
  std::string out;
  for (const auto& group : policy.constraints) {
    std::vector<std::string> labels;
    for (ItemId item : group) {
      labels.push_back(dataset.item_dictionary().value(item));
    }
    out += Join(labels, " ");
    out += '\n';
  }
  return out;
}

Status SaveUtilityPolicyFile(const UtilityPolicy& policy, const Dataset& dataset,
                             const std::string& path) {
  return csv::WriteFile(path, FormatUtilityPolicy(policy, dataset));
}

}  // namespace secreta
