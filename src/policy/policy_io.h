// Policy file I/O (Configuration Editor: "policies can be uploaded from a
// file"). Formats:
//   privacy policy:  one constraint per line:  item1 item2 ... [;k]
//   utility policy:  one constraint per line:  item1 item2 ...
// Items are whitespace-separated labels from the dataset's item dictionary.

#ifndef SECRETA_POLICY_POLICY_IO_H_
#define SECRETA_POLICY_POLICY_IO_H_

#include <string>

#include "policy/policy.h"

namespace secreta {

/// Parses a privacy policy, resolving item labels against `dataset`.
Result<PrivacyPolicy> ParsePrivacyPolicy(const std::string& text,
                                         const Dataset& dataset);
Result<PrivacyPolicy> LoadPrivacyPolicyFile(const std::string& path,
                                            const Dataset& dataset);
std::string FormatPrivacyPolicy(const PrivacyPolicy& policy,
                                const Dataset& dataset);
Status SavePrivacyPolicyFile(const PrivacyPolicy& policy, const Dataset& dataset,
                             const std::string& path);

/// Parses a utility policy, resolving item labels against `dataset`.
Result<UtilityPolicy> ParseUtilityPolicy(const std::string& text,
                                         const Dataset& dataset);
Result<UtilityPolicy> LoadUtilityPolicyFile(const std::string& path,
                                            const Dataset& dataset);
std::string FormatUtilityPolicy(const UtilityPolicy& policy,
                                const Dataset& dataset);
Status SaveUtilityPolicyFile(const UtilityPolicy& policy, const Dataset& dataset,
                             const std::string& path);

}  // namespace secreta

#endif  // SECRETA_POLICY_POLICY_IO_H_
