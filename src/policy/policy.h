// Privacy and utility policies of COAT [7] and PCTA [5].
//
// A privacy constraint (S, k) demands that the anonymized support of itemset
// S is either 0 or >= k. A utility policy partitions the item domain into
// constraints; an item may only be generalized together with items of its own
// constraint (or suppressed). Items outside every utility constraint can only
// be kept or suppressed.

#ifndef SECRETA_POLICY_POLICY_H_
#define SECRETA_POLICY_POLICY_H_

#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "core/results.h"
#include "data/dataset.h"

namespace secreta {

/// One privacy constraint: an itemset that must be hidden below support k.
struct PrivacyConstraint {
  std::vector<ItemId> items;  // sorted
  int k = 0;                  // 0 means "use the run's global k"
};

/// Ordered list of privacy constraints.
struct PrivacyPolicy {
  std::vector<PrivacyConstraint> constraints;

  bool empty() const { return constraints.empty(); }
  size_t size() const { return constraints.size(); }
};

/// \brief Partition of (a subset of) the item domain into generalization
/// groups.
struct UtilityPolicy {
  /// Item groups; each group is sorted.
  std::vector<std::vector<ItemId>> constraints;
  /// Per item: index of its constraint, or -1 when unconstrained (the item
  /// may only be kept or suppressed). Sized to the item-domain size.
  std::vector<int32_t> constraint_of;

  bool empty() const { return constraints.empty(); }

  /// Builds constraint_of from constraints; fails if groups overlap or an
  /// item id is out of [0, num_items).
  static Result<UtilityPolicy> Create(std::vector<std::vector<ItemId>> groups,
                                      size_t num_items);

  /// The single-group policy allowing any items to merge (maximum freedom).
  static UtilityPolicy Unrestricted(size_t num_items);
};

/// \brief Support of constraint `c` in a transaction recoding: the number of
/// records that contain, for every item of `c`, a generalized item covering
/// it.
size_t ConstraintSupport(const PrivacyConstraint& constraint,
                         const TransactionRecoding& recoding);

/// True if every constraint's support is 0 or >= its k (or `global_k` when the
/// constraint's k is 0).
SECRETA_MUST_USE_RESULT bool SatisfiesPrivacyPolicy(const PrivacyPolicy& policy,
                            const TransactionRecoding& recoding, int global_k);

/// True if every generalized item's covered set stays inside one utility
/// constraint (unconstrained items must remain singletons or be suppressed).
SECRETA_MUST_USE_RESULT bool SatisfiesUtilityPolicy(const UtilityPolicy& policy,
                            const TransactionRecoding& recoding);

}  // namespace secreta

#endif  // SECRETA_POLICY_POLICY_H_
