#include "robust/checkpoint.h"

#include <cstdlib>

#include "common/string_util.h"
#include "service/result_cache.h"

namespace secreta {

namespace {

constexpr const char* kMagic = "secreta-checkpoint";
constexpr const char* kVersion = "v1";

// Metric fields of one record, in serialization order. "runtime" maps to
// run.runtime_seconds; everything else is a direct EvaluationReport field.
constexpr const char* kMetricOrder[] = {
    "gcp",        "ul",           "are",       "discernibility",
    "cavg",       "item_freq_error", "entropy_loss", "kl_relational",
    "kl_items",   "suppressed",   "runtime",   "evaluation_seconds",
    "queries_per_second"};
constexpr size_t kNumMetrics = sizeof(kMetricOrder) / sizeof(kMetricOrder[0]);

// Records are tab-separated; strings are percent-escaped so every field is a
// single tab-free, newline-free token (empty strings stay empty tokens —
// Split preserves them).
std::string EscapeField(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '%' || c == '\t' || c == '\n' || c == '\r') {
      out += StrFormat("%%%02x", static_cast<unsigned char>(c));
    } else {
      out += c;
    }
  }
  return out;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool UnescapeField(const std::string& field, std::string* out) {
  out->clear();
  out->reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '%') {
      *out += field[i];
      continue;
    }
    if (i + 2 >= field.size()) return false;
    int hi = HexNibble(field[i + 1]);
    int lo = HexNibble(field[i + 2]);
    if (hi < 0 || lo < 0) return false;
    *out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return true;
}

// Doubles round-trip exactly through C99 hex-float notation; "%a"/strtod is
// the only printf/scanf pair that guarantees bit-identical restoration
// (JsonWriter's %.12g does not).
std::string EncodeDouble(double value) { return StrFormat("%a", value); }

bool DecodeDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(field.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool DecodeU64Hex(const std::string& field, uint64_t* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(field.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

bool DecodeU64(const std::string& field, uint64_t* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(field.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

// Field `index` of kMetricOrder within a report, for serialization
// (read via the const overload below) and restoration.
double* MetricSlot(EvaluationReport* report, size_t index) {
  switch (index) {
    case 0:
      return &report->gcp;
    case 1:
      return &report->ul;
    case 2:
      return &report->are;
    case 3:
      return &report->discernibility;
    case 4:
      return &report->cavg;
    case 5:
      return &report->item_freq_error;
    case 6:
      return &report->entropy_loss;
    case 7:
      return &report->kl_relational;
    case 8:
      return &report->kl_items;
    case 9:
      return &report->suppressed;
    case 10:
      return &report->run.runtime_seconds;
    case 11:
      return &report->evaluation_seconds;
    case 12:
      return &report->queries_per_second;
  }
  return nullptr;
}

double MetricValue(const EvaluationReport& report, size_t index) {
  return *MetricSlot(const_cast<EvaluationReport*>(&report), index);
}

std::string SerializeRecord(uint64_t key, double value,
                            const EvaluationReport& report) {
  std::vector<std::string> fields;
  fields.push_back("point");
  fields.push_back(StrFormat("%016llx", static_cast<unsigned long long>(key)));
  fields.push_back(EncodeDouble(value));
  for (size_t i = 0; i < kNumMetrics; ++i) {
    fields.push_back(EncodeDouble(MetricValue(report, i)));
  }
  fields.push_back(StrFormat("%llu", static_cast<unsigned long long>(
                                         report.run.initial_clusters)));
  fields.push_back(StrFormat(
      "%llu", static_cast<unsigned long long>(report.run.final_clusters)));
  fields.push_back(
      StrFormat("%llu", static_cast<unsigned long long>(report.run.merges)));
  fields.push_back(report.guarantee_checked ? "1" : "0");
  fields.push_back(report.guarantee_ok ? "1" : "0");
  fields.push_back(EscapeField(report.guarantee_name));
  fields.push_back(report.degraded ? "1" : "0");
  fields.push_back(EscapeField(report.degraded_detail));
  const auto& phases = report.run.phases.phases();
  fields.push_back(
      StrFormat("%llu", static_cast<unsigned long long>(phases.size())));
  for (const auto& [name, seconds] : phases) {
    fields.push_back(EscapeField(name));
    fields.push_back(EncodeDouble(seconds));
  }
  return Join(fields, "\t");
}

bool ParseRecord(const std::string& line, uint64_t* key, double* value,
                 EvaluationReport* report) {
  std::vector<std::string> fields = Split(line, '\t');
  // point + key + value + metrics + 3 cluster counts + 2 guarantee flags +
  // name + degraded flag + detail + phase count.
  constexpr size_t kFixed = 3 + kNumMetrics + 3 + 2 + 1 + 2 + 1;
  if (fields.size() < kFixed || fields[0] != "point") return false;
  size_t at = 1;
  if (!DecodeU64Hex(fields[at++], key)) return false;
  if (!DecodeDouble(fields[at++], value)) return false;
  for (size_t i = 0; i < kNumMetrics; ++i) {
    if (!DecodeDouble(fields[at++], MetricSlot(report, i))) return false;
  }
  uint64_t clusters = 0;
  if (!DecodeU64(fields[at++], &clusters)) return false;
  report->run.initial_clusters = clusters;
  if (!DecodeU64(fields[at++], &clusters)) return false;
  report->run.final_clusters = clusters;
  if (!DecodeU64(fields[at++], &clusters)) return false;
  report->run.merges = clusters;
  report->guarantee_checked = fields[at++] == "1";
  report->guarantee_ok = fields[at++] == "1";
  if (!UnescapeField(fields[at++], &report->guarantee_name)) return false;
  report->degraded = fields[at++] == "1";
  if (!UnescapeField(fields[at++], &report->degraded_detail)) return false;
  uint64_t num_phases = 0;
  if (!DecodeU64(fields[at++], &num_phases)) return false;
  if (fields.size() != kFixed + 2 * num_phases) return false;
  for (uint64_t i = 0; i < num_phases; ++i) {
    std::string name;
    double seconds = 0;
    if (!UnescapeField(fields[at++], &name)) return false;
    if (!DecodeDouble(fields[at++], &seconds)) return false;
    report->run.phases.Add(name, seconds);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<CheckpointLog>> CheckpointLog::Open(
    const std::string& path, uint64_t dataset_fp, uint64_t workload_fp) {
  std::unique_ptr<CheckpointLog> log(
      new CheckpointLog(path, dataset_fp, workload_fp));
  // The log is not published yet, but records_/out_ are guarded fields:
  // take the (uncontended) lock so the load phase satisfies the
  // thread-safety analysis instead of opting out of it.
  MutexLock lock(log->mutex_);
  bool have_header = false;
  {
    std::ifstream in(path);
    std::string line;
    if (in && std::getline(in, line)) {
      std::vector<std::string> header = Split(line, '\t');
      uint64_t file_ds = 0;
      uint64_t file_wl = 0;
      if (header.size() != 4 || header[0] != kMagic ||
          header[1] != kVersion || !DecodeU64Hex(header[2], &file_ds) ||
          !DecodeU64Hex(header[3], &file_wl)) {
        return Status::FailedPrecondition(
            path + " is not a " + std::string(kVersion) +
            " secreta checkpoint; delete it to start over");
      }
      if (file_ds != dataset_fp || file_wl != workload_fp) {
        return Status::FailedPrecondition(StrFormat(
            "checkpoint %s was written for a different dataset/workload "
            "(recorded %016llx/%016llx, current %016llx/%016llx)",
            path.c_str(), static_cast<unsigned long long>(file_ds),
            static_cast<unsigned long long>(file_wl),
            static_cast<unsigned long long>(dataset_fp),
            static_cast<unsigned long long>(workload_fp)));
      }
      have_header = true;
      while (std::getline(in, line)) {
        uint64_t key = 0;
        Record record;
        if (!ParseRecord(line, &key, &record.value, &record.report)) {
          // Truncated trailing record (killed mid-append): the point simply
          // reruns. Anything after it is unreachable progress either way.
          break;
        }
        log->records_[key] = std::move(record);
        ++log->loaded_;
      }
    }
  }
  log->out_.open(path, std::ios::app);
  if (!log->out_) {
    return Status::IOError("cannot open checkpoint for append: " + path);
  }
  if (!have_header) {
    log->out_ << kMagic << '\t' << kVersion << '\t'
              << StrFormat("%016llx",
                           static_cast<unsigned long long>(dataset_fp))
              << '\t'
              << StrFormat("%016llx",
                           static_cast<unsigned long long>(workload_fp))
              << '\n'
              << std::flush;
    if (!log->out_) {
      return Status::IOError("cannot write checkpoint header: " + path);
    }
  }
  return log;
}

uint64_t CheckpointLog::PointKey(const AlgorithmConfig& point_config,
                                 uint64_t dataset_fp, uint64_t workload_fp,
                                 size_t config_index, size_t shard_index) {
  uint64_t key = HashCombine(RunCacheKey(point_config, dataset_fp, workload_fp),
                             static_cast<uint64_t>(config_index));
  // Shard 0 folds in nothing so unsharded checkpoints written before the
  // (shard, grid) key extension keep resuming byte-identically.
  if (shard_index != 0) {
    key = HashCombine(key, static_cast<uint64_t>(shard_index));
  }
  return key;
}

bool CheckpointLog::Find(uint64_t key, EvaluationReport* report,
                         double* value) const {
  MutexLock lock(mutex_);
  auto it = records_.find(key);
  if (it == records_.end()) return false;
  *report = it->second.report;
  if (value != nullptr) *value = it->second.value;
  return true;
}

Status CheckpointLog::Append(uint64_t key, double value,
                             const EvaluationReport& report) {
  std::string line = SerializeRecord(key, value, report);
  MutexLock lock(mutex_);
  out_ << line << '\n' << std::flush;
  if (!out_) {
    return Status::IOError("checkpoint append failed: " + path_);
  }
  Record record;
  record.value = value;
  record.report = report;
  records_[key] = std::move(record);
  ++appended_;
  return Status::OK();
}

size_t CheckpointLog::appended() const {
  MutexLock lock(mutex_);
  return appended_;
}

Result<std::unique_ptr<CheckpointLog>> OpenCheckpointForRun(
    const std::string& path, const EngineInputs& inputs,
    const Workload* workload) {
  if (inputs.dataset == nullptr) {
    return Status::InvalidArgument("checkpoint requires EngineInputs.dataset");
  }
  return CheckpointLog::Open(path, DatasetFingerprint(*inputs.dataset),
                             WorkloadFingerprint(workload));
}

}  // namespace secreta
