#include "robust/shard_checkpoint.h"

#include <cstdlib>

#include "common/string_util.h"

namespace secreta {

namespace {

constexpr const char* kMagic = "secreta-shard-checkpoint";
constexpr const char* kVersion = "v1";

std::string U64Hex(uint64_t v) {
  return StrFormat("%016llx", static_cast<unsigned long long>(v));
}

bool DecodeU64Hex(const std::string& field, uint64_t* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(field.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

bool DecodeU64(const std::string& field, uint64_t* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(field.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

// Doubles round-trip exactly through C99 hex-floats, same as CheckpointLog.
std::string EncodeDouble(double value) { return StrFormat("%a", value); }

bool DecodeDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(field.c_str(), &end);
  return end != nullptr && *end == '\0';
}

// The "done" line pins an FNV-1a over the payload, folded incrementally so
// neither load nor verification has to hold the block in memory.
uint64_t PayloadSeed() { return Fnv1a64("shard-payload"); }

uint64_t FoldPayloadRow(uint64_t fp, uint32_t row, const std::string& line) {
  fp = HashCombine(fp, static_cast<uint64_t>(row));
  return HashCombine(fp, Fnv1a64(line));
}

bool ParsePayloadLine(const std::string& line, uint32_t* row,
                      std::string* csv) {
  size_t tab = line.find('\t');
  uint64_t value = 0;
  if (tab == std::string::npos || !DecodeU64(line.substr(0, tab), &value) ||
      value > 0xffffffffull) {
    return false;
  }
  *row = static_cast<uint32_t>(value);
  *csv = line.substr(tab + 1);
  return true;
}

}  // namespace

Result<std::unique_ptr<ShardCheckpoint>> ShardCheckpoint::Open(
    const std::string& path, uint64_t run_key, uint64_t dataset_fp,
    uint64_t plan_fp) {
  std::unique_ptr<ShardCheckpoint> log(
      new ShardCheckpoint(path, run_key, dataset_fp, plan_fp));
  MutexLock lock(log->mutex_);
  bool have_header = false;
  {
    std::ifstream in(path);
    std::string line;
    if (in && std::getline(in, line)) {
      std::vector<std::string> header = Split(line, '\t');
      uint64_t file_run = 0;
      uint64_t file_ds = 0;
      uint64_t file_plan = 0;
      if (header.size() != 5 || header[0] != kMagic ||
          header[1] != kVersion || !DecodeU64Hex(header[2], &file_run) ||
          !DecodeU64Hex(header[3], &file_ds) ||
          !DecodeU64Hex(header[4], &file_plan)) {
        return Status::FailedPrecondition(
            path + " is not a " + std::string(kVersion) +
            " secreta shard checkpoint; delete it to start over");
      }
      if (file_run != run_key || file_ds != dataset_fp ||
          file_plan != plan_fp) {
        return Status::FailedPrecondition(StrFormat(
            "shard checkpoint %s was written for a different "
            "run/dataset/partition (recorded %s/%s/%s, current %s/%s/%s)",
            path.c_str(), U64Hex(file_run).c_str(), U64Hex(file_ds).c_str(),
            U64Hex(file_plan).c_str(), U64Hex(run_key).c_str(),
            U64Hex(dataset_fp).c_str(), U64Hex(plan_fp).c_str()));
      }
      have_header = true;
      // Shard blocks: "shard <s> <rows> <gcp> <secs>", then <rows> payload
      // lines "<rowid>\t<csv>", then "done <s> <payload-fp>". Payload lines
      // are folded into the fingerprint but NOT retained — only the offset
      // of the first one is, for later ReadPayload() calls. A block without
      // a valid done line is dropped along with everything after it (kill
      // mid-append).
      while (std::getline(in, line)) {
        std::vector<std::string> head = SplitWhitespace(line);
        uint64_t shard = 0;
        uint64_t rows = 0;
        Entry entry;
        if (head.size() != 5 || head[0] != "shard" ||
            !DecodeU64(head[1], &shard) || !DecodeU64(head[2], &rows) ||
            !DecodeDouble(head[3], &entry.meta.gcp) ||
            !DecodeDouble(head[4], &entry.meta.seconds)) {
          break;
        }
        entry.meta.shard = static_cast<size_t>(shard);
        entry.meta.num_rows = static_cast<size_t>(rows);
        entry.offset = static_cast<std::streamoff>(in.tellg());
        uint64_t fp = PayloadSeed();
        bool ok = true;
        for (uint64_t i = 0; i < rows; ++i) {
          uint32_t row = 0;
          std::string csv;
          if (!std::getline(in, line) || !ParsePayloadLine(line, &row, &csv)) {
            ok = false;
            break;
          }
          fp = FoldPayloadRow(fp, row, csv);
        }
        if (!ok || !std::getline(in, line)) break;
        std::vector<std::string> tail = SplitWhitespace(line);
        uint64_t done_shard = 0;
        uint64_t done_fp = 0;
        if (tail.size() != 3 || tail[0] != "done" ||
            !DecodeU64(tail[1], &done_shard) || done_shard != shard ||
            !DecodeU64Hex(tail[2], &done_fp) || done_fp != fp) {
          break;
        }
        entry.payload_fp = fp;
        log->records_[entry.meta.shard] = entry;
        ++log->loaded_;
      }
    }
  }
  log->out_.open(path, std::ios::app);
  if (!log->out_) {
    return Status::IOError("cannot open shard checkpoint for append: " + path);
  }
  if (!have_header) {
    log->out_ << kMagic << '\t' << kVersion << '\t' << U64Hex(run_key) << '\t'
              << U64Hex(dataset_fp) << '\t' << U64Hex(plan_fp) << '\n'
              << std::flush;
    if (!log->out_) {
      return Status::IOError("cannot write shard checkpoint header: " + path);
    }
  }
  return log;
}

bool ShardCheckpoint::Has(size_t shard) const {
  MutexLock lock(mutex_);
  return records_.find(shard) != records_.end();
}

bool ShardCheckpoint::FindMeta(size_t shard, ShardMeta* out) const {
  MutexLock lock(mutex_);
  auto it = records_.find(shard);
  if (it == records_.end()) return false;
  *out = it->second.meta;
  return true;
}

Result<ShardRecord> ShardCheckpoint::ReadPayload(size_t shard) const {
  Entry entry;
  {
    MutexLock lock(mutex_);
    auto it = records_.find(shard);
    if (it == records_.end()) {
      return Status::NotFound(
          StrFormat("shard %zu not in checkpoint %s", shard, path_.c_str()));
    }
    entry = it->second;
  }
  std::ifstream in(path_);
  if (!in) {
    return Status::IOError("cannot reopen shard checkpoint: " + path_);
  }
  in.seekg(entry.offset);
  ShardRecord record;
  record.shard = entry.meta.shard;
  record.gcp = entry.meta.gcp;
  record.seconds = entry.meta.seconds;
  record.rows.reserve(entry.meta.num_rows);
  record.lines.reserve(entry.meta.num_rows);
  uint64_t fp = PayloadSeed();
  std::string line;
  for (size_t i = 0; i < entry.meta.num_rows; ++i) {
    uint32_t row = 0;
    std::string csv;
    if (!std::getline(in, line) || !ParsePayloadLine(line, &row, &csv)) {
      return Status::IOError(StrFormat(
          "shard checkpoint %s: shard %zu payload changed since load",
          path_.c_str(), shard));
    }
    fp = FoldPayloadRow(fp, row, csv);
    record.rows.push_back(row);
    record.lines.push_back(std::move(csv));
  }
  if (fp != entry.payload_fp) {
    return Status::IOError(StrFormat(
        "shard checkpoint %s: shard %zu payload fingerprint mismatch",
        path_.c_str(), shard));
  }
  return record;
}

Status ShardCheckpoint::Append(const ShardRecord& record) {
  if (record.rows.size() != record.lines.size()) {
    return Status::InvalidArgument("shard record rows/lines length mismatch");
  }
  for (const std::string& l : record.lines) {
    if (l.find('\n') != std::string::npos ||
        l.find('\r') != std::string::npos) {
      return Status::InvalidArgument("shard record lines must be single-line");
    }
  }
  MutexLock lock(mutex_);
  out_ << "shard " << record.shard << ' ' << record.rows.size() << ' '
       << EncodeDouble(record.gcp) << ' ' << EncodeDouble(record.seconds)
       << '\n'
       << std::flush;
  Entry entry;
  entry.meta.shard = record.shard;
  entry.meta.num_rows = record.rows.size();
  entry.meta.gcp = record.gcp;
  entry.meta.seconds = record.seconds;
  // With std::ios::app every write lands at end-of-file, so after the head
  // line the put position IS the offset of the first payload line.
  entry.offset = static_cast<std::streamoff>(out_.tellp());
  uint64_t fp = PayloadSeed();
  for (size_t i = 0; i < record.rows.size(); ++i) {
    out_ << record.rows[i] << '\t' << record.lines[i] << '\n';
    fp = FoldPayloadRow(fp, record.rows[i], record.lines[i]);
  }
  entry.payload_fp = fp;
  out_ << "done " << record.shard << ' ' << U64Hex(fp) << '\n' << std::flush;
  if (!out_) {
    return Status::IOError("shard checkpoint append failed: " + path_);
  }
  records_[record.shard] = entry;
  return Status::OK();
}

}  // namespace secreta
