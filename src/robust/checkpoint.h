// Checkpoint/resume for sweeps and comparison grids. After every completed
// sweep point (grid cell) the engine appends one fingerprinted record to a
// checkpoint file; a restarted sweep opened against the same file skips the
// recorded points, replaying their reports instead of recomputing them.
//
// Records are keyed by the ResultCache's canonical run key (config hash x
// dataset fingerprint x workload fingerprint) combined with the
// configuration's grid index, so a checkpoint is only ever replayed for the
// exact same work. The file header pins the dataset and workload
// fingerprints; opening a checkpoint written for different inputs fails with
// FailedPrecondition instead of silently mixing experiments.
//
// The format is line-based text, one record per line, flushed per append: a
// process killed mid-sweep loses at most the in-flight point. Doubles are
// stored as C99 hex-floats (printf %a), which round-trip exactly — a
// restored report serializes to byte-identical JSON for every
// non-wall-clock field.
//
// Restored reports carry the full metric set, phase rows, cluster counts and
// guarantee verdict, but not the recodings themselves (RunResult::relational
// / ::transaction stay empty, exactly like a report replayed from the
// ResultCache would after export): they replay and export bit-identically
// but cannot be re-materialized into an anonymized dataset.

#ifndef SECRETA_ROBUST_CHECKPOINT_H_
#define SECRETA_ROBUST_CHECKPOINT_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/annotations.h"
#include "common/mutex.h"
#include "engine/evaluator.h"

namespace secreta {

/// \brief Append-only, thread-safe checkpoint file for one experiment.
///
/// Shared by every worker of a comparison grid; Append serializes through an
/// internal mutex and flushes per record.
class CheckpointLog {
 public:
  /// Opens (or creates) the checkpoint at `path` for a run over inputs with
  /// the given fingerprints. Loads every complete record of an existing
  /// file; a corrupt or truncated trailing line (killed mid-append) is
  /// dropped silently. Fails with FailedPrecondition when the file was
  /// written for different fingerprints.
  static Result<std::unique_ptr<CheckpointLog>> Open(const std::string& path,
                                                     uint64_t dataset_fp,
                                                     uint64_t workload_fp);

  /// Checkpoint key of one unit of work: the run cache key of the fully
  /// substituted point configuration, mixed with the configuration's index
  /// in the comparison grid (0 for a plain sweep) and the shard index (0
  /// for unsharded runs — the historical key space is unchanged). Sharded
  /// runs record one entry per (shard, grid) cell, so an interrupted
  /// multi-shard run resumes at shard granularity.
  static uint64_t PointKey(const AlgorithmConfig& point_config,
                           uint64_t dataset_fp, uint64_t workload_fp,
                           size_t config_index, size_t shard_index = 0);

  /// Copies the stored report for `key` into `*report` (and the sweep value
  /// into `*value` when non-null). False when the key is not recorded.
  bool Find(uint64_t key, EvaluationReport* report,
            double* value = nullptr) const SECRETA_EXCLUDES(mutex_);

  /// Appends one completed point and flushes. Later Opens (and Finds on this
  /// instance) will see it.
  Status Append(uint64_t key, double value, const EvaluationReport& report)
      SECRETA_EXCLUDES(mutex_);

  uint64_t dataset_fingerprint() const { return dataset_fp_; }
  uint64_t workload_fingerprint() const { return workload_fp_; }
  const std::string& path() const { return path_; }
  /// Records loaded from the file at Open time (pre-crash progress).
  size_t loaded() const { return loaded_; }
  /// Records appended through this instance.
  size_t appended() const SECRETA_EXCLUDES(mutex_);

 private:
  struct Record {
    double value = 0;
    EvaluationReport report;
  };

  CheckpointLog(std::string path, uint64_t dataset_fp, uint64_t workload_fp)
      : path_(std::move(path)),
        dataset_fp_(dataset_fp),
        workload_fp_(workload_fp) {}

  const std::string path_;
  const uint64_t dataset_fp_;
  const uint64_t workload_fp_;
  size_t loaded_ = 0;

  mutable Mutex mutex_;
  std::unordered_map<uint64_t, Record> records_ SECRETA_GUARDED_BY(mutex_);
  std::ofstream out_ SECRETA_GUARDED_BY(mutex_);
  size_t appended_ SECRETA_GUARDED_BY(mutex_) = 0;
};

/// Convenience: computes the dataset/workload fingerprints of `inputs` (an
/// O(dataset) scan) and opens the checkpoint with them.
Result<std::unique_ptr<CheckpointLog>> OpenCheckpointForRun(
    const std::string& path, const EngineInputs& inputs,
    const Workload* workload);

}  // namespace secreta

#endif  // SECRETA_ROBUST_CHECKPOINT_H_
