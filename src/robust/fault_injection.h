// Fault-injection harness for robustness testing. Engine and service code
// declare named fault sites ("sweep.point", "job.run", ...) via
// SECRETA_FAULT_POINT; a configured FaultInjector decides per hit whether to
// poison the site with a transient Status, simulate an allocation failure,
// abort the task, or add artificial latency.
//
// The sites compile to empty statements unless the build enables them
// (cmake -DSECRETA_FAULTS=ON, which defines SECRETA_FAULTS_ENABLED): a
// default build carries zero overhead and cannot inject faults. The
// FaultInjector class itself is always compiled so the spec parser and
// trigger logic stay unit-testable in every build.
//
// Spec grammar (CLI --faults=SPEC or the SECRETA_FAULTS environment
// variable): a comma-separated list of rules
//
//   <site>:<action>:<arg>
//
//   action  arg            effect at the site
//   ------  -------------  -------------------------------------------------
//   fail    p in [0,1]     Status::ResourceExhausted (retryable transient)
//   fail    @N             same, deterministically on the Nth hit (1-based)
//   oom     p | @N         Status::ResourceExhausted (allocation failure)
//   abort   p | @N         Status::Cancelled (task abort)
//   delay   seconds        sleep, then continue normally
//
// e.g. --faults=sweep.point:fail:0.05,job.run:delay:0.2
//
// Probabilistic triggers draw from a deterministic per-site RNG seeded from
// (global seed ^ hash(site)); the global seed comes from the
// SECRETA_FAULT_SEED environment variable (default 0), so a faulted run
// reproduces bit-for-bit.

#ifndef SECRETA_ROBUST_FAULT_INJECTION_H_
#define SECRETA_ROBUST_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"

namespace secreta {

/// What a triggered fault does at its site.
enum class FaultAction { kFail, kOom, kAbort, kDelay };

const char* FaultActionToString(FaultAction action);

/// One parsed rule of a fault spec.
struct FaultRule {
  std::string site;
  FaultAction action = FaultAction::kFail;
  /// Probabilistic trigger: chance of firing per hit. Ignored when nth > 0
  /// and for kDelay (which always fires).
  double probability = 0;
  /// Deterministic trigger: fire exactly on the Nth hit of the site
  /// (1-based); 0 = probabilistic.
  uint64_t nth = 0;
  /// kDelay only: how long to sleep.
  double delay_seconds = 0;
};

/// \brief Runtime fault configuration + trigger state. Thread-safe.
///
/// One process-wide instance (Global()) backs the SECRETA_FAULT_POINT sites;
/// tests may also construct private instances.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// The process-wide injector used by SECRETA_FAULT_POINT.
  static FaultInjector& Global();

  /// Whether this build compiled the fault sites in (SECRETA_FAULTS=ON).
  static constexpr bool CompiledIn() {
#ifdef SECRETA_FAULTS_ENABLED
    return true;
#else
    return false;
#endif
  }

  /// Parses a spec string into rules (see the grammar above).
  static Result<std::vector<FaultRule>> ParseSpec(const std::string& spec);

  /// Replaces the active configuration with `spec` and re-seeds the per-site
  /// RNGs from `seed` (callers typically pass the SECRETA_FAULT_SEED value).
  /// An empty spec disarms the injector.
  Status Configure(const std::string& spec, uint64_t seed = 0)
      SECRETA_EXCLUDES(mutex_);

  /// Disarms the injector and forgets all rules and hit counts.
  void Clear() SECRETA_EXCLUDES(mutex_);

  /// True when at least one rule is active. Lock-free: the fast path of an
  /// unconfigured site is a single relaxed load.
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Evaluates every rule for `site` in configuration order. Returns the
  /// poisoned Status of the first firing fail/oom/abort rule; delays sleep
  /// and fall through. OK when nothing fires (or the injector is disarmed).
  Status Hit(std::string_view site) SECRETA_EXCLUDES(mutex_);

  /// Total hits recorded for `site` (0 for unknown sites).
  uint64_t hits(std::string_view site) const SECRETA_EXCLUDES(mutex_);

  /// Total faults injected (poisoned returns, not delays) since Configure.
  uint64_t injected() const SECRETA_EXCLUDES(mutex_);

 private:
  struct SiteState {
    FaultRule rule;
    uint64_t hits = 0;
    Rng rng{0};
  };

  std::atomic<bool> armed_{false};
  mutable Mutex mutex_;
  std::vector<SiteState> rules_ SECRETA_GUARDED_BY(mutex_);
  uint64_t injected_ SECRETA_GUARDED_BY(mutex_) = 0;
};

}  // namespace secreta

// Declares a fault site. In a faults-enabled build, a firing rule makes the
// enclosing function return the poisoned Status (the enclosing function must
// return Status or Result<T>). In a default build the site is an empty
// statement.
#ifdef SECRETA_FAULTS_ENABLED
#define SECRETA_FAULT_POINT(site)                                       \
  do {                                                                  \
    if (::secreta::FaultInjector::Global().armed()) {                   \
      ::secreta::Status _secreta_fault =                                \
          ::secreta::FaultInjector::Global().Hit(site);                 \
      if (!_secreta_fault.ok()) return _secreta_fault;                  \
    }                                                                   \
  } while (false)
#else
#define SECRETA_FAULT_POINT(site) \
  do {                            \
  } while (false)
#endif

#endif  // SECRETA_ROBUST_FAULT_INJECTION_H_
