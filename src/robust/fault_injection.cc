#include "robust/fault_injection.h"

#include <chrono>
#include <thread>

#include "common/string_util.h"
#include "obs/metric_names.h"
#include "obs/metrics_registry.h"

namespace secreta {

const char* FaultActionToString(FaultAction action) {
  switch (action) {
    case FaultAction::kFail:
      return "fail";
    case FaultAction::kOom:
      return "oom";
    case FaultAction::kAbort:
      return "abort";
    case FaultAction::kDelay:
      return "delay";
  }
  return "?";
}

FaultInjector& FaultInjector::Global() {
  // Leaked for shutdown-order safety, like MetricsRegistry::Global(): fault
  // sites may be hit by pool workers draining during static destruction.
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Result<std::vector<FaultRule>> FaultInjector::ParseSpec(
    const std::string& spec) {
  std::vector<FaultRule> rules;
  for (const std::string& entry : Split(spec, ',')) {
    std::string_view trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    std::vector<std::string> parts = Split(trimmed, ':');
    if (parts.size() != 3 || parts[0].empty()) {
      return Status::InvalidArgument(
          StrFormat("fault rule '%s' is not <site>:<action>:<arg>",
                    std::string(trimmed).c_str()));
    }
    FaultRule rule;
    rule.site = parts[0];
    const std::string& action = parts[1];
    if (action == "fail") {
      rule.action = FaultAction::kFail;
    } else if (action == "oom") {
      rule.action = FaultAction::kOom;
    } else if (action == "abort") {
      rule.action = FaultAction::kAbort;
    } else if (action == "delay") {
      rule.action = FaultAction::kDelay;
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown fault action '%s' (fail|oom|abort|delay)",
                    action.c_str()));
    }
    const std::string& arg = parts[2];
    if (rule.action == FaultAction::kDelay) {
      SECRETA_ASSIGN_OR_RETURN(rule.delay_seconds, ParseDouble(arg));
      if (rule.delay_seconds < 0) {
        return Status::InvalidArgument("fault delay must be >= 0");
      }
    } else if (!arg.empty() && arg[0] == '@') {
      SECRETA_ASSIGN_OR_RETURN(int64_t nth, ParseInt(arg.substr(1)));
      if (nth <= 0) {
        return Status::InvalidArgument("fault trigger @N requires N >= 1");
      }
      rule.nth = static_cast<uint64_t>(nth);
    } else {
      SECRETA_ASSIGN_OR_RETURN(rule.probability, ParseDouble(arg));
      if (rule.probability < 0 || rule.probability > 1) {
        return Status::InvalidArgument(
            "fault probability must be in [0, 1]");
      }
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  SECRETA_ASSIGN_OR_RETURN(std::vector<FaultRule> rules, ParseSpec(spec));
  MutexLock lock(mutex_);
  rules_.clear();
  injected_ = 0;
  for (FaultRule& rule : rules) {
    SiteState state;
    // Per-site deterministic stream: two sites with the same global seed
    // still draw independent sequences.
    state.rng = Rng(seed ^ Fnv1a64(rule.site));
    state.rule = std::move(rule);
    rules_.push_back(std::move(state));
  }
  armed_.store(!rules_.empty(), std::memory_order_release);
  return Status::OK();
}

void FaultInjector::Clear() {
  MutexLock lock(mutex_);
  rules_.clear();
  injected_ = 0;
  armed_.store(false, std::memory_order_release);
}

Status FaultInjector::Hit(std::string_view site) {
  if (!armed()) return Status::OK();
  double delay_seconds = 0;
  Status poisoned;
  {
    MutexLock lock(mutex_);
    for (SiteState& state : rules_) {
      if (state.rule.site != site) continue;
      ++state.hits;
      bool fire = false;
      if (state.rule.action == FaultAction::kDelay) {
        fire = true;
      } else if (state.rule.nth > 0) {
        fire = state.hits == state.rule.nth;
      } else {
        fire = state.rng.Bernoulli(state.rule.probability);
      }
      if (!fire) continue;
      if (state.rule.action == FaultAction::kDelay) {
        delay_seconds += state.rule.delay_seconds;
        continue;
      }
      ++injected_;
      std::string where(site);
      switch (state.rule.action) {
        case FaultAction::kFail:
          poisoned = Status::ResourceExhausted(
              "injected transient fault at " + where);
          break;
        case FaultAction::kOom:
          poisoned = Status::ResourceExhausted(
              "injected allocation failure at " + where);
          break;
        case FaultAction::kAbort:
          poisoned = Status::Cancelled("injected task abort at " + where);
          break;
        case FaultAction::kDelay:
          break;  // handled above
      }
      break;  // first firing poison rule wins
    }
  }
  // Sleep outside the lock so concurrent sites are not serialized by a
  // delay rule.
  if (delay_seconds > 0) {
    MetricsRegistry::Global().counter(metric_names::kFaultsDelays)->Increment();
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_seconds));
  }
  if (!poisoned.ok()) {
    MetricsRegistry::Global().counter(metric_names::kFaultsInjected)->Increment();
  }
  return poisoned;
}

uint64_t FaultInjector::hits(std::string_view site) const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const SiteState& state : rules_) {
    if (state.rule.site == site) total += state.hits;
  }
  return total;
}

uint64_t FaultInjector::injected() const {
  MutexLock lock(mutex_);
  return injected_;
}

}  // namespace secreta
