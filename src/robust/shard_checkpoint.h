// Checkpoint/resume for sharded anonymization runs. Where CheckpointLog
// records one evaluation report per (config, grid, shard) key, a sharded
// run also needs the *output rows* of every completed shard back — the
// merged release must come out byte-identical after a crash, and shard
// outputs are not derivable from a report. ShardCheckpoint therefore
// persists, per completed shard: the global row ids, the anonymized CSV
// line of every row, and the shard's aggregate stats.
//
// Payloads stay on disk. Only per-shard metadata (stats, row count,
// payload fingerprint, file offset) is held in memory; ReadPayload() seeks
// and re-reads one shard's block on demand. That keeps the resident
// footprint of a resumed 1M-record run at one shard, which is the whole
// point of sharding (see docs/OPERATIONS.md "Out-of-core & sharded runs").
//
// The header pins (run key, dataset fingerprint, shard-plan fingerprint);
// opening against a file written for a different run, dataset or partition
// fails with FailedPrecondition. Each shard block ends with a "done" line
// carrying an FNV-1a of the block payload: a process killed mid-append
// leaves a block without a valid "done" line, which is dropped on load
// (together with anything after it), so resume recomputes exactly the
// unfinished shards. Line-based text, flushed per shard, like CheckpointLog.

#ifndef SECRETA_ROBUST_SHARD_CHECKPOINT_H_
#define SECRETA_ROBUST_SHARD_CHECKPOINT_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace secreta {

/// One completed shard's output, exactly as needed for a byte-identical
/// merge: ascending global row ids and one anonymized CSV line per row.
struct ShardRecord {
  size_t shard = 0;
  std::vector<uint32_t> rows;
  std::vector<std::string> lines;  ///< newline-free, parallel to `rows`
  double gcp = 0;                  ///< shard-mean GCP of the recoding
  double seconds = 0;              ///< original anonymize+materialize time
};

/// Per-shard stats available without touching the payload.
struct ShardMeta {
  size_t shard = 0;
  size_t num_rows = 0;
  double gcp = 0;
  double seconds = 0;
};

/// \brief Append-only, thread-safe per-shard output log for one sharded run.
class ShardCheckpoint {
 public:
  /// Opens (or creates) the checkpoint at `path` for the run identified by
  /// `run_key` (CheckpointLog::PointKey of the config at shard 0) over the
  /// dataset and partition with the given fingerprints.
  static Result<std::unique_ptr<ShardCheckpoint>> Open(const std::string& path,
                                                       uint64_t run_key,
                                                       uint64_t dataset_fp,
                                                       uint64_t plan_fp);

  /// True when `shard` has a complete block.
  bool Has(size_t shard) const SECRETA_EXCLUDES(mutex_);

  /// Copies the stored metadata for `shard`. False if missing.
  bool FindMeta(size_t shard, ShardMeta* out) const SECRETA_EXCLUDES(mutex_);

  /// Re-reads `shard`'s payload from disk and re-verifies its fingerprint.
  Result<ShardRecord> ReadPayload(size_t shard) const SECRETA_EXCLUDES(mutex_);

  /// Appends one completed shard and flushes. `record.rows` and
  /// `record.lines` must be the same length; lines must be newline-free.
  Status Append(const ShardRecord& record) SECRETA_EXCLUDES(mutex_);

  /// Shards loaded from a pre-existing file at Open (pre-crash progress).
  size_t loaded() const { return loaded_; }
  const std::string& path() const { return path_; }

 private:
  struct Entry {
    ShardMeta meta;
    uint64_t payload_fp = 0;
    /// Offset of the first payload line within the file.
    std::streamoff offset = 0;
  };

  ShardCheckpoint(std::string path, uint64_t run_key, uint64_t dataset_fp,
                  uint64_t plan_fp)
      : path_(std::move(path)),
        run_key_(run_key),
        dataset_fp_(dataset_fp),
        plan_fp_(plan_fp) {}

  const std::string path_;
  const uint64_t run_key_;
  const uint64_t dataset_fp_;
  const uint64_t plan_fp_;
  size_t loaded_ = 0;

  mutable Mutex mutex_;
  std::map<size_t, Entry> records_ SECRETA_GUARDED_BY(mutex_);
  std::ofstream out_ SECRETA_GUARDED_BY(mutex_);
};

}  // namespace secreta

#endif  // SECRETA_ROBUST_SHARD_CHECKPOINT_H_
