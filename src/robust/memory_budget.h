// Soft memory budget for graceful degradation. The engine charges its large
// optional allocations (bound ARE workloads with their per-node overlap
// caches, the original-transaction copies behind the distribution metrics)
// against the budget before making them; when a charge would exceed the
// limit, the work is shed and the report carries an explicit `degraded` flag
// instead of the process dying under memory pressure.
//
// The budget is advisory and engine-scoped: it does not intercept the
// allocator, it gates the known-large optional structures. Core metrics
// (GCP, discernibility, guarantee checks) always run.

#ifndef SECRETA_ROBUST_MEMORY_BUDGET_H_
#define SECRETA_ROBUST_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace secreta {

/// \brief Thread-safe byte accounting against a soft limit.
class MemoryBudget {
 public:
  /// `soft_limit_bytes` = the budget; 0 means "shed everything optional".
  explicit MemoryBudget(size_t soft_limit_bytes) : limit_(soft_limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes` if they fit under the limit; returns false (and
  /// charges nothing, counting one rejection) otherwise.
  bool TryCharge(size_t bytes) {
    size_t used = used_.load(std::memory_order_relaxed);
    do {
      if (bytes > limit_ || used > limit_ - bytes) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    } while (!used_.compare_exchange_weak(used, used + bytes,
                                          std::memory_order_relaxed));
    return true;
  }

  /// Returns previously charged bytes.
  void Release(size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t limit() const { return limit_; }
  /// How many TryCharge calls were refused (i.e. sheds requested).
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<uint64_t> rejected_{0};
};

/// \brief Movable RAII charge: acquires in the constructor, releases in the
/// destructor.
///
/// With a null budget the charge trivially succeeds (no budget = no
/// shedding), so call sites need no null checks.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ScopedCharge(MemoryBudget* budget, size_t bytes)
      : budget_(budget),
        bytes_(bytes),
        acquired_(budget == nullptr || budget->TryCharge(bytes)) {}

  ScopedCharge(ScopedCharge&& other) noexcept
      : budget_(other.budget_),
        bytes_(other.bytes_),
        acquired_(other.acquired_) {
    other.budget_ = nullptr;
    other.acquired_ = true;
  }

  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      Reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      acquired_ = other.acquired_;
      other.budget_ = nullptr;
      other.acquired_ = true;
    }
    return *this;
  }

  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  ~ScopedCharge() { Reset(); }

  /// True when the bytes fit (or no budget is attached): proceed. False:
  /// shed the work this charge was guarding.
  bool acquired() const { return acquired_; }

 private:
  void Reset() {
    if (budget_ != nullptr && acquired_) budget_->Release(bytes_);
    budget_ = nullptr;
    acquired_ = true;
  }

  MemoryBudget* budget_ = nullptr;
  size_t bytes_ = 0;
  bool acquired_ = true;
};

}  // namespace secreta

#endif  // SECRETA_ROBUST_MEMORY_BUDGET_H_
