#include "common/thread_pool.h"

#include <algorithm>
#include <string>

#include "obs/metric_names.h"
#include "obs/metrics_registry.h"

namespace secreta {

namespace {

double ToSeconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, const char* name) {
  num_threads = std::max<size_t>(1, num_threads);
  if (name != nullptr) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    const MetricLabels labels = {{"pool", name}};
    queued_gauge_ = registry.gauge(metric_names::kPoolQueued, labels);
    active_gauge_ = registry.gauge(metric_names::kPoolActive, labels);
    workers_gauge_ = registry.gauge(metric_names::kPoolWorkers, labels);
    tasks_counter_ = registry.counter(metric_names::kPoolTasks, labels);
    wait_histogram_ =
        registry.histogram(metric_names::kPoolTaskWaitSeconds, labels);
    run_histogram_ =
        registry.histogram(metric_names::kPoolTaskRunSeconds, labels);
    workers_gauge_->Add(static_cast<double>(num_threads));
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
  if (workers_gauge_ != nullptr) {
    workers_gauge_->Add(-static_cast<double>(workers_.size()));
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(Task{std::move(task), std::chrono::steady_clock::now()});
    ++in_flight_;
  }
  if (queued_gauge_ != nullptr) {
    queued_gauge_->Add(1);
    tasks_counter_->Increment();
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(lock);
}

size_t ThreadPool::queued() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

size_t ThreadPool::active() const {
  MutexLock lock(mutex_);
  return in_flight_ - queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) task_available_.Wait(lock);
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::chrono::steady_clock::time_point start;
    if (queued_gauge_ != nullptr) {
      start = std::chrono::steady_clock::now();
      queued_gauge_->Add(-1);
      active_gauge_->Add(1);
      wait_histogram_->Record(ToSeconds(start - task.enqueued));
    }
    task.fn();
    if (queued_gauge_ != nullptr) {
      active_gauge_->Add(-1);
      run_histogram_->Record(ToSeconds(std::chrono::steady_clock::now() -
                                       start));
    }
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace secreta
