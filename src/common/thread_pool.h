// Fixed-size thread pool. The Method Evaluator/Comparator fans anonymization
// runs out over "N threads" (paper Fig. 1); this is that substrate.

#ifndef SECRETA_COMMON_THREAD_POOL_H_
#define SECRETA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace secreta {

/// A minimal fixed-size thread pool with a Wait() barrier.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. A request for zero workers is clamped to
  /// one — a pool with no workers would deadlock every Submit()+Wait() pair.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker. Snapshot only: the
  /// value may be stale by the time the caller reads it.
  size_t queued() const;

  /// Tasks currently executing on a worker. Snapshot only.
  size_t active() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace secreta

#endif  // SECRETA_COMMON_THREAD_POOL_H_
