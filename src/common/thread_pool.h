// Fixed-size thread pool. The Method Evaluator/Comparator fans anonymization
// runs out over "N threads" (paper Fig. 1); this is that substrate.
//
// A pool constructed with a name publishes its health into the global
// MetricsRegistry: queue-depth and active-worker gauges plus task wait/run
// histograms, under "pool.<name>.*". Pools sharing a name share those
// instruments (gauges are updated by +/- deltas, so concurrent same-named
// pools aggregate correctly).

#ifndef SECRETA_COMMON_THREAD_POOL_H_
#define SECRETA_COMMON_THREAD_POOL_H_

#include <chrono>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace secreta {

class Counter;
class Gauge;
class LatencyHistogram;

/// A minimal fixed-size thread pool with a Wait() barrier.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. A request for zero workers is clamped to
  /// one — a pool with no workers would deadlock every Submit()+Wait() pair.
  /// A non-null `name` registers the pool's gauges and histograms in
  /// MetricsRegistry::Global() as "pool.<name>.queued", ".active",
  /// ".workers", ".tasks", ".task_wait_seconds", ".task_run_seconds".
  explicit ThreadPool(size_t num_threads, const char* name = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) SECRETA_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished.
  void Wait() SECRETA_EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker. Snapshot only: the
  /// value may be stale by the time the caller reads it.
  size_t queued() const SECRETA_EXCLUDES(mutex_);

  /// Tasks currently executing on a worker. Snapshot only.
  size_t active() const SECRETA_EXCLUDES(mutex_);

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop() SECRETA_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::deque<Task> queue_ SECRETA_GUARDED_BY(mutex_);
  CondVar task_available_;
  CondVar all_done_;
  size_t in_flight_ SECRETA_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ SECRETA_GUARDED_BY(mutex_) = false;

  // Registry instruments; all null for unnamed pools.
  Gauge* queued_gauge_ = nullptr;
  Gauge* active_gauge_ = nullptr;
  Gauge* workers_gauge_ = nullptr;
  Counter* tasks_counter_ = nullptr;
  LatencyHistogram* wait_histogram_ = nullptr;
  LatencyHistogram* run_histogram_ = nullptr;
};

}  // namespace secreta

#endif  // SECRETA_COMMON_THREAD_POOL_H_
