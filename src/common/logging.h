// Minimal leveled logger. The engine reports progress through this so that
// long-running benchmark sweeps are observable without a debugger.
//
// Two sink formats: classic "[LEVEL file:line] message" text, and structured
// JSON lines ({"ts":..., "level":..., "src":"file:line", "msg":...}) for log
// shippers, selected via SetLogSink. Each record is formatted completely and
// written with one atomic write, so lines from concurrent workers never
// interleave.

#ifndef SECRETA_COMMON_LOGGING_H_
#define SECRETA_COMMON_LOGGING_H_

#include <iosfwd>
#include <sstream>
#include <string>

namespace secreta {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Default: kWarning so
/// that tests and benches stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Output format of the log sink.
enum class LogSink {
  kText,  ///< "[LEVEL file:line] message"
  kJson,  ///< one JSON object per line: ts (unix seconds), level, src, msg
};

/// Selects the sink format for all subsequent log records. Default: kText.
void SetLogSink(LogSink sink);
LogSink GetLogSink();

/// Redirects log output to `stream` (tests); nullptr restores stderr.
/// The caller keeps ownership and must keep the stream alive until reset.
void SetLogStream(std::ostream* stream);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace secreta

#define SECRETA_LOG(level)                                      \
  ::secreta::internal::LogMessage(::secreta::LogLevel::level,   \
                                  __FILE__, __LINE__)

#endif  // SECRETA_COMMON_LOGGING_H_
