// Minimal leveled logger. The engine reports progress through this so that
// long-running benchmark sweeps are observable without a debugger.

#ifndef SECRETA_COMMON_LOGGING_H_
#define SECRETA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace secreta {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Default: kWarning so
/// that tests and benches stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace secreta

#define SECRETA_LOG(level)                                      \
  ::secreta::internal::LogMessage(::secreta::LogLevel::level,   \
                                  __FILE__, __LINE__)

#endif  // SECRETA_COMMON_LOGGING_H_
