// Copyright (c) SECRETA reproduction authors.
// Annotated mutex wrappers: the only place in the tree where std::mutex and
// std::condition_variable may be spelled (enforced by tools/lint). Wrapping
// buys two things over the raw types:
//
//  - Clang's thread-safety analysis (see common/annotations.h): Mutex is a
//    capability, MutexLock a scoped acquire, and every field annotated
//    SECRETA_GUARDED_BY(mutex_) is proven to be accessed only under it by the
//    lint gate's clang -Wthread-safety -Werror build.
//
//  - A single choke point for lock instrumentation (contention counters,
//    deadlock detection) if the engine ever needs it.
//
// Condition-variable waits take the MutexLock, not the Mutex:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.Wait(lock);   // ready_ is SECRETA_GUARDED_BY(mutex_)
//
// Prefer the explicit while-loop over a predicate lambda: the analysis
// checks field accesses in the enclosing function, where the capability is
// visibly held, whereas a lambda body is analyzed out of context.

#ifndef SECRETA_COMMON_MUTEX_H_
#define SECRETA_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace secreta {

/// \brief Annotated exclusive lock (wraps std::mutex).
class SECRETA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SECRETA_ACQUIRE() { mu_.lock(); }
  void Unlock() SECRETA_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// \brief RAII scoped lock over Mutex (lock_guard/unique_lock equivalent).
///
/// Also the handle CondVar waits on: a wait atomically releases and
/// re-acquires the underlying mutex, exactly like
/// std::condition_variable::wait on a std::unique_lock.
class SECRETA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SECRETA_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() SECRETA_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// \brief Condition variable paired with Mutex/MutexLock.
///
/// Waits are the std::condition_variable primitives; write the predicate
/// loop at the call site (see the header comment) so the thread-safety
/// analysis can see the guarded accesses.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible; loop on a predicate).
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Blocks until notified or `deadline`; true = the deadline passed.
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::timeout;
  }

  /// Blocks until notified or `rel_time` elapsed; true = it elapsed.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& rel_time) {
    return cv_.wait_for(lock.lock_, rel_time) == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace secreta

#endif  // SECRETA_COMMON_MUTEX_H_
