// Copyright (c) SECRETA reproduction authors.
// Phantom-tagged wrappers that make the raw/published privacy boundary a
// compile-time property instead of a convention.
//
// SECRETA's contract is that *published* (anonymized) output satisfies the
// configured guarantee while *raw* microdata never leaves the anonymization
// engine. Since the serving subsystem (src/serve/) and the telemetry sinks
// (src/obs/) joined the tree, that boundary is crossed by ordinary C++
// values — a `const std::string&` cell is indistinguishable from a tenant
// name once it is three calls away from the Dataset accessor that produced
// it. These wrappers restore the distinction in the type system:
//
//   Sensitive<T>      a raw microdata value (a cell string, a ValueId, a
//                     numeric cell). No implicit conversion to T, no
//                     streaming into logs, no use as a metric label. Code
//                     inside the trust boundary unwraps with raw(); code
//                     crossing the boundary must go through Declassify()
//                     inside a SECRETA_DECLASSIFIES-annotated function.
//   SensitiveSpan<T>  a borrowed view of a raw sequence (one record's item
//                     set, the whole transaction table). Same rules; raw()
//                     exposes the underlying container by reference.
//
// Enforcement is layered (see docs/DEVELOPING.md "Privacy taint
// annotations"):
//   - the compiler rejects implicit conversions and stream insertions
//     (negative compile tests in tests/compile/ prove this keeps firing);
//   - tools/lint/check_privacy_flow.py restricts which modules may call
//     raw() (the engine-side allowlist) and audits every Declassify() site
//     for a SECRETA_DECLASSIFIES annotation plus a written justification;
//   - the same lint pass enforces module layering so serve/ and obs/ never
//     even include the raw-accessor headers.
//
// The wrappers are zero-cost: trivially copyable for trivially copyable T,
// fully inlined, and layout-identical to the wrapped value.

#ifndef SECRETA_COMMON_SENSITIVE_H_
#define SECRETA_COMMON_SENSITIVE_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace secreta {

/// \brief A raw microdata value of type T.
///
/// Explicit-everything by design: constructing one states "this is raw
/// microdata", and nothing about the class lets the value escape without an
/// equally explicit raw() or Declassify(). Comparisons between Sensitive
/// values of the same type are allowed (equality of two tainted values is
/// not itself a leak and the anonymizers sort/dedup raw values constantly).
template <typename T>
class Sensitive {
 public:
  Sensitive() = default;
  explicit Sensitive(T value) : value_(std::move(value)) {}

  /// Unwraps for computation *inside* the trust boundary (data/, algo/,
  /// core/, engine/, ...). The privacy-flow lint rejects this call in
  /// boundary-external modules (serve/, obs/, service/, export sinks);
  /// those must receive declassified values instead.
  const T& raw() const { return value_; }

  /// Taint-preserving comparisons.
  friend bool operator==(const Sensitive& a, const Sensitive& b) {
    return a.value_ == b.value_;
  }
  friend bool operator!=(const Sensitive& a, const Sensitive& b) {
    return a.value_ != b.value_;
  }
  friend bool operator<(const Sensitive& a, const Sensitive& b) {
    return a.value_ < b.value_;
  }

  /// Sensitive values never stream into logs, JSON writers, or any other
  /// ostream-shaped sink. Deleted rather than omitted so the compiler error
  /// names the rule instead of listing every operator<< overload in scope.
  template <typename Stream>
  friend Stream& operator<<(Stream&, const Sensitive&) = delete;

 private:
  T value_{};
};

/// \brief A borrowed, tainted view of a contiguous raw sequence.
///
/// Wraps a reference to a std::vector<T> owned by the dataset (the storage
/// layer hands out views, never copies). size()/empty() stay un-tainted —
/// record counts and set cardinalities are aggregate shape, and the
/// anonymity guarantee itself is a statement about counts — but the
/// *elements* are only reachable through raw().
template <typename T>
class SensitiveSpan {
 public:
  explicit SensitiveSpan(const std::vector<T>& data) : data_(&data) {}

  size_t size() const { return data_->size(); }
  bool empty() const { return data_->empty(); }

  /// Unwraps the underlying container; same lint rules as Sensitive::raw().
  const std::vector<T>& raw() const { return *data_; }

  friend bool operator==(const SensitiveSpan& a, const SensitiveSpan& b) {
    return *a.data_ == *b.data_;
  }
  friend bool operator<(const SensitiveSpan& a, const SensitiveSpan& b) {
    return *a.data_ < *b.data_;
  }

  template <typename Stream>
  friend Stream& operator<<(Stream&, const SensitiveSpan&) = delete;

 private:
  const std::vector<T>* data_;  // never null
};

/// Crosses the privacy boundary: turns a tainted value back into a plain T.
///
/// Only legal inside a function annotated SECRETA_DECLASSIFIES (see
/// common/annotations.h) with a `// declassify:` justification naming the
/// guarantee that makes the output safe — enforced by
/// tools/lint/check_privacy_flow.py, which also pins the closed set of
/// files allowed to declare declassifiers (the anonymization engine's
/// recoding output and serve/catalog.cc's release construction).
template <typename T>
T Declassify(const Sensitive<T>& value) {
  return value.raw();
}

template <typename T>
std::vector<T> Declassify(const SensitiveSpan<T>& span) {
  return span.raw();
}

}  // namespace secreta

#endif  // SECRETA_COMMON_SENSITIVE_H_
