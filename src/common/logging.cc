#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ostream>

#include "common/mutex.h"
#include "common/string_util.h"

namespace secreta {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<LogSink> g_sink{LogSink::kText};
Mutex g_log_mutex;
std::ostream* g_stream SECRETA_GUARDED_BY(g_log_mutex) = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

void AppendJsonString(std::string* out, const std::string& raw) {
  *out += '"';
  for (char c : raw) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void SetLogSink(LogSink sink) { g_sink.store(sink); }
LogSink GetLogSink() { return g_sink.load(); }

void SetLogStream(std::ostream* stream) {
  MutexLock lock(g_log_mutex);
  g_stream = stream;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load()),
      level_(level),
      file_(file),
      line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  // Format the complete record first, then emit it with a single guarded
  // write: concurrent workers never interleave within a line.
  std::string out;
  if (g_sink.load() == LogSink::kJson) {
    double ts = std::chrono::duration<double>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
    out += StrFormat("{\"ts\":%.6f,\"level\":", ts);
    AppendJsonString(&out, LevelName(level_));
    out += ",\"src\":";
    AppendJsonString(&out, StrFormat("%s:%d", Basename(file_), line_));
    out += ",\"msg\":";
    AppendJsonString(&out, stream_.str());
    out += "}\n";
  } else {
    out = StrFormat("[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
                    line_, stream_.str().c_str());
  }
  MutexLock lock(g_log_mutex);
  if (g_stream != nullptr) {
    g_stream->write(out.data(), static_cast<std::streamsize>(out.size()));
    g_stream->flush();
  } else {
    fwrite(out.data(), 1, out.size(), stderr);
    fflush(stderr);
  }
}

}  // namespace internal
}  // namespace secreta
