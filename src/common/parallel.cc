#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/mutex.h"

namespace secreta {

namespace {

struct LoopState {
  explicit LoopState(size_t total, std::function<void(size_t)> body)
      : n(total), fn(std::move(body)) {}

  const size_t n;
  const std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  Mutex mutex;
  CondVar all_done;
};

// Claims indices until the range is exhausted. Runs on pool workers and on
// the calling thread alike.
void Drain(const std::shared_ptr<LoopState>& state) {
  for (;;) {
    size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->n) return;
    state->fn(i);
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == state->n) {
      MutexLock lock(state->mutex);
      state->all_done.NotifyAll();
    }
  }
}

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<LoopState>(n, fn);
  // n-1 helpers at most: the caller claims work too, and a helper that finds
  // the range exhausted exits immediately.
  size_t helpers = std::min(pool->num_threads(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { Drain(state); });
  }
  Drain(state);
  MutexLock lock(state->mutex);
  while (state->done.load(std::memory_order_acquire) != state->n) {
    state->all_done.Wait(lock);
  }
}

ThreadPool& SharedEvalPool() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(1, std::thread::hardware_concurrency()), "eval");
  return *pool;
}

}  // namespace secreta
