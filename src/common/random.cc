#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace secreta {

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = total;
    }
    for (size_t i = 0; i < n; ++i) zipf_cdf_[i] /= total;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  double u = UniformDouble(0.0, 1.0);
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<size_t>(it - zipf_cdf_.begin());
}

std::vector<size_t> Rng::Sample(size_t n, size_t m) {
  m = std::min(m, n);
  // Partial Fisher-Yates over an index vector; O(n) memory but n is the
  // domain size of an attribute, never the dataset row count squared.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < m; ++i) {
    size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i),
                                              static_cast<int64_t>(n - 1)));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(m);
  return indices;
}

}  // namespace secreta
