// Copyright (c) SECRETA reproduction authors.
// Compile-time correctness annotations. Two families:
//
//  - Clang thread-safety-analysis attributes (SECRETA_GUARDED_BY and
//    friends), modeled on Abseil's thread_annotations.h. Under Clang with
//    -Wthread-safety they let the compiler prove that every access to an
//    annotated field happens with the right lock held; under other compilers
//    they expand to nothing. See src/common/mutex.h for the annotated
//    Mutex/MutexLock/CondVar types these attach to.
//
//  - SECRETA_MUST_USE_RESULT, a portable [[nodiscard]] spelling for
//    status-returning factory and IO functions (Status and Result<T> are
//    themselves [[nodiscard]] classes; the macro exists for functions whose
//    return type is not one of those but must still be consumed).
//
// The lint gate (.github/workflows/lint.yml) builds the tree with
// clang -Wthread-safety -Werror, so an annotation that does not hold is a
// build break, not a code-review comment.

#ifndef SECRETA_COMMON_ANNOTATIONS_H_
#define SECRETA_COMMON_ANNOTATIONS_H_

#if defined(__clang__)
#define SECRETA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SECRETA_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define SECRETA_CAPABILITY(x) SECRETA_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SECRETA_SCOPED_CAPABILITY SECRETA_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable may only be read or written while holding `x`.
#define SECRETA_GUARDED_BY(x) SECRETA_THREAD_ANNOTATION(guarded_by(x))

/// The pointed-to data (not the pointer itself) is protected by `x`.
#define SECRETA_PT_GUARDED_BY(x) SECRETA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability exclusively before calling.
#define SECRETA_REQUIRES(...) \
  SECRETA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared before calling.
#define SECRETA_REQUIRES_SHARED(...) \
  SECRETA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself).
#define SECRETA_EXCLUDES(...) \
  SECRETA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define SECRETA_ACQUIRE(...) \
  SECRETA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability it was holding.
#define SECRETA_RELEASE(...) \
  SECRETA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares an ordering between capabilities (deadlock prevention).
#define SECRETA_ACQUIRED_BEFORE(...) \
  SECRETA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SECRETA_ACQUIRED_AFTER(...) \
  SECRETA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define SECRETA_RETURN_CAPABILITY(x) \
  SECRETA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the analysis is wrong or too weak here; say why in a
/// comment at every use site.
#define SECRETA_NO_THREAD_SAFETY_ANALYSIS \
  SECRETA_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Portable "caller must consume the return value". Status and Result<T>
/// are [[nodiscard]] classes already; use this for other must-check returns
/// (factory bools, handles) and as documentation on status-returning IO
/// functions.
#if defined(__clang__) || defined(__GNUC__)
#define SECRETA_MUST_USE_RESULT __attribute__((warn_unused_result))
#else
#define SECRETA_MUST_USE_RESULT
#endif

// ---------------------------------------------------------------------------
// Privacy taint annotations (see src/common/sensitive.h and
// docs/DEVELOPING.md "Privacy taint annotations").
//
// The compile-time half of the privacy boundary is the Sensitive<T> /
// SensitiveSpan<T> wrapper family; these two macros are the auditable half
// that tools/lint/check_privacy_flow.py enforces.
// ---------------------------------------------------------------------------

// Clang-only: GCC parses but warns on __attribute__((annotate)), and the
// annotation is only consumed by IR-level tooling anyway. The textual lint
// (check_privacy_flow.py) sees the macro spelling on every compiler.
#if defined(__clang__)
#define SECRETA_PRIVACY_ANNOTATION(text) __attribute__((annotate(text)))
#else
#define SECRETA_PRIVACY_ANNOTATION(text)
#endif

/// Marks a function whose return value is (or contains) raw microdata: cell
/// values, transaction item sets, or a whole un-anonymized Dataset. Raw
/// accessors additionally return Sensitive-wrapped types where the value
/// itself could flow onward; whole-Dataset producers (Materialize, ReadShard)
/// carry only the annotation — the Dataset's own accessors re-taint on read.
/// The privacy-flow lint checks the annotation inventory stays complete.
#define SECRETA_SENSITIVE SECRETA_PRIVACY_ANNOTATION("secreta::sensitive")

/// Marks one of the sanctioned privacy-boundary crossings: a function that
/// turns raw microdata into publishable output. Every SECRETA_DECLASSIFIES
/// site must (a) live in a file on check_privacy_flow.py's closed
/// declassifier list and (b) carry a comment stating the guarantee that
/// justifies the crossing (e.g. "output cells are recoded hierarchy labels
/// satisfying the configured k/k^m guarantee"). Declassify() calls are only
/// legal inside functions carrying this annotation.
#define SECRETA_DECLASSIFIES SECRETA_PRIVACY_ANNOTATION("secreta::declassifies")

#endif  // SECRETA_COMMON_ANNOTATIONS_H_
