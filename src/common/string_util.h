// String helpers shared across the library (parsing, joining, formatting).

#ifndef SECRETA_COMMON_STRING_UTIL_H_
#define SECRETA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace secreta {

/// Splits `input` on `delim`. Empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits on any whitespace run; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Parses a signed integer; rejects trailing garbage.
Result<int64_t> ParseInt(std::string_view input);

/// Parses a floating-point number; rejects trailing garbage.
Result<double> ParseDouble(std::string_view input);

/// True if `value` looks like a number (parsable as double).
bool LooksNumeric(std::string_view value);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Lowercases ASCII characters.
std::string ToLower(std::string_view input);

/// True if `text` starts with `prefix`.
inline bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

/// 64-bit FNV-1a hash. Stable across runs, platforms and standard-library
/// implementations (unlike std::hash), so it is safe to use for
/// content-addressed cache keys and persisted fingerprints.
uint64_t Fnv1a64(std::string_view input);

/// Combines two 64-bit hashes order-dependently (boost::hash_combine-style).
uint64_t HashCombine(uint64_t seed, uint64_t value);

}  // namespace secreta

#endif  // SECRETA_COMMON_STRING_UTIL_H_
