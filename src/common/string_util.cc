#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace secreta {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    size_t start = i;
    while (i < input.size() && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

Result<int64_t> ParseInt(std::string_view input) {
  std::string buf(Trim(input));
  if (buf.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view input) {
  std::string buf(Trim(input));
  if (buf.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("number out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return v;
}

bool LooksNumeric(std::string_view value) { return ParseDouble(value).ok(); }

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

uint64_t Fnv1a64(std::string_view input) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : input) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace secreta
