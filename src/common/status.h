// Copyright (c) SECRETA reproduction authors.
// Arrow/RocksDB-style Status and Result<T> used on every fallible path in the
// library. Core code does not throw; errors propagate through these types.

#ifndef SECRETA_COMMON_STATUS_H_
#define SECRETA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "common/annotations.h"

namespace secreta {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
  kPermissionDenied,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// message. Statuses are cheap to copy (OK carries no allocation).
///
/// [[nodiscard]]: a dropped Status is a silently-swallowed error, which in a
/// benchmark harness means silently-wrong numbers. Callers that genuinely
/// cannot act on a failure must say so explicitly with IgnoreError() and a
/// one-line justification comment.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the canonical OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Backpressure hint: how long the caller should wait before retrying.
  /// Populated by admission layers on kResourceExhausted rejections (queue
  /// full, quota exhausted) so servers can surface HTTP-429-style responses;
  /// 0 = no hint.
  double retry_after_seconds() const { return retry_after_seconds_; }
  bool has_retry_after() const { return retry_after_seconds_ > 0; }

  /// Returns a copy of this status carrying a retry-after hint.
  Status WithRetryAfter(double seconds) const {
    Status copy = *this;
    copy.retry_after_seconds_ = seconds;
    return copy;
  }

  /// Explicitly discards this status. The only sanctioned way to drop a
  /// Status return: it defeats [[nodiscard]] visibly and greppably. Every
  /// call site carries a one-line comment saying why dropping is safe.
  void IgnoreError() const {}

  /// Formats as "Code: message", or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
  double retry_after_seconds_ = 0;
};

/// \brief Either a value of type T or an error Status.
///
/// The moral equivalent of arrow::Result / absl::StatusOr, small enough to
/// live in one header. Access to the value of a failed Result aborts in debug
/// builds (assert) and is undefined otherwise; check ok() first or use the
/// SECRETA_ASSIGN_OR_RETURN macro.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from error status. Constructing from an OK status is a bug.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }
  /// Implicit from value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out; aborts on error (tests/examples convenience).
  T ValueOrDie() && {
    if (!ok()) {
      // In release builds assert compiles out; fail loudly instead of UB.
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              status_.ToString().c_str());
      abort();
    }
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace secreta

/// Propagates a non-OK Status from an expression returning Status.
#define SECRETA_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::secreta::Status _secreta_status = (expr);       \
    if (!_secreta_status.ok()) return _secreta_status; \
  } while (false)

#define SECRETA_CONCAT_IMPL(a, b) a##b
#define SECRETA_CONCAT(a, b) SECRETA_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs` (which may be a declaration).
#define SECRETA_ASSIGN_OR_RETURN(lhs, expr)                          \
  SECRETA_ASSIGN_OR_RETURN_IMPL(                                     \
      SECRETA_CONCAT(_secreta_result_, __LINE__), lhs, expr)

#define SECRETA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#endif  // SECRETA_COMMON_STATUS_H_
