// Little-endian byte encoding helpers shared by every binary reader/writer
// (kernels/roaring serialization, data/format). All on-disk integers in
// SECRETA are little-endian regardless of host order — see docs/FORMATS.md.

#ifndef SECRETA_COMMON_BYTES_H_
#define SECRETA_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace secreta {
namespace bytes {

inline void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

inline void PutF64(std::string* out, double v) {
  uint64_t raw = 0;
  std::memcpy(&raw, &v, sizeof raw);
  PutU64(out, raw);
}

inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                               (static_cast<uint16_t>(p[1]) << 8));
}

inline uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline int32_t GetI32(const uint8_t* p) {
  return static_cast<int32_t>(GetU32(p));
}

inline double GetF64(const uint8_t* p) {
  uint64_t raw = GetU64(p);
  double v = 0;
  std::memcpy(&v, &raw, sizeof v);
  return v;
}

}  // namespace bytes
}  // namespace secreta

#endif  // SECRETA_COMMON_BYTES_H_
