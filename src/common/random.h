// Deterministic RNG wrapper. All randomized components (data generator,
// workload generator, policy strategies) take an explicit seed so experiments
// reproduce bit-for-bit.

#ifndef SECRETA_COMMON_RANDOM_H_
#define SECRETA_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace secreta {

/// Seeded pseudo-random generator with the distributions SECRETA needs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Zipf-distributed rank in [0, n), exponent `s` (s=0 is uniform).
  /// Implemented by inverse-CDF over precomputed weights for modest n; for the
  /// item-domain sizes SECRETA benchmarks use (<= a few thousand) this is fine.
  size_t Zipf(size_t n, double s);

  /// Random subset of size `m` drawn without replacement from [0, n).
  std::vector<size_t> Sample(size_t n, size_t m);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  // Cache for Zipf CDF keyed by (n, s); reset when parameters change.
  size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace secreta

#endif  // SECRETA_COMMON_RANDOM_H_
