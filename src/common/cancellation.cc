#include "common/cancellation.h"

namespace secreta {

Status CancellationToken::Check(const char* where) const {
  if (!cancelled()) return Status::OK();
  return Status::Cancelled(std::string(where) + ": cancelled");
}

}  // namespace secreta
