// Cooperative cancellation. A CancellationToken is a cheap, copyable handle
// to shared cancellation state; long-running engine code polls it at phase
// boundaries (between sweep points, between RT-pipeline phases, between
// cluster merges) and unwinds with Status::Cancelled. Cancellation is
// cooperative: Cancel() never interrupts a running computation, it only makes
// the next checkpoint fail.

#ifndef SECRETA_COMMON_CANCELLATION_H_
#define SECRETA_COMMON_CANCELLATION_H_

#include <atomic>
#include <memory>

#include "common/status.h"

namespace secreta {

/// Copyable handle to shared cancellation state. All copies observe the same
/// flag; Cancel() is sticky (there is no reset — make a fresh token per job).
/// Thread-safe: Cancel() and cancelled()/Check() may race freely.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent.
  void Cancel() { state_->store(true, std::memory_order_release); }

  /// True once Cancel() has been called on any copy of this token.
  bool cancelled() const { return state_->load(std::memory_order_acquire); }

  /// Checkpoint: OK while live, Status::Cancelled("<where>: cancelled") after
  /// Cancel(). `where` names the phase boundary for diagnostics.
  Status Check(const char* where) const;

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Checkpoint through an optional token pointer (the engine plumbing carries
/// `const CancellationToken*`, null meaning "not cancellable").
inline Status CheckCancelled(const CancellationToken* token, const char* where) {
  if (token == nullptr) return Status::OK();
  return token->Check(where);
}

}  // namespace secreta

#endif  // SECRETA_COMMON_CANCELLATION_H_
