// Wall-clock timing utilities; PhaseTimer backs the per-phase runtime
// breakdown shown in Evaluation mode (Fig. 3 visualization (b)).

#ifndef SECRETA_COMMON_STOPWATCH_H_
#define SECRETA_COMMON_STOPWATCH_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace secreta {

/// Simple monotonic stopwatch measuring elapsed seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named, ordered phases (e.g. "relational", "transaction",
/// "merging"). A phase may be entered multiple times; durations accumulate.
class PhaseTimer {
 public:
  /// Starts (or resumes) the named phase, closing any open phase first.
  void Begin(const std::string& name) {
    End();
    open_ = name;
    watch_.Restart();
  }

  /// Closes the currently open phase, if any.
  void End() {
    if (open_.empty()) return;
    Add(open_, watch_.ElapsedSeconds());
    open_.clear();
  }

  /// Adds `seconds` to phase `name` directly.
  void Add(const std::string& name, double seconds) {
    for (auto& [phase, total] : phases_) {
      if (phase == name) {
        total += seconds;
        return;
      }
    }
    phases_.emplace_back(name, seconds);
  }

  /// Ordered (phase name, accumulated seconds) pairs.
  const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

  double TotalSeconds() const {
    double total = 0;
    for (const auto& [_, seconds] : phases_) total += seconds;
    return total;
  }

 private:
  Stopwatch watch_;
  std::string open_;
  std::vector<std::pair<std::string, double>> phases_;
};

}  // namespace secreta

#endif  // SECRETA_COMMON_STOPWATCH_H_
