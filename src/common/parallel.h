// Parallel execution helpers layered on ThreadPool. The evaluation pipeline
// fans metric and query-batch work out with ParallelFor; because the calling
// thread always participates in the loop, nesting is safe: a pool worker that
// starts a nested ParallelFor drains the nested indices itself even when
// every other worker is busy, so composed parallelism (comparator over
// configs x metrics over a report x batches over a workload) cannot deadlock.

#ifndef SECRETA_COMMON_PARALLEL_H_
#define SECRETA_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace secreta {

/// Runs fn(0), ..., fn(n-1) across `pool` workers plus the calling thread and
/// returns once every index has finished. Indices are claimed dynamically
/// (atomic counter), so uneven task costs balance automatically. `pool` may
/// be null: the loop then runs serially on the caller. `fn` must not throw;
/// report errors through captured state (e.g. a Status per index).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// The process-wide pool used for intra-evaluation parallelism (metric
/// fan-out and query batches). Sized to the hardware; distinct from the
/// per-comparison pools that fan out whole configurations, so config-level
/// and metric-level parallelism compose without oversubscribing waits: tasks
/// submitted here are leaves or caller-helping loops, never blocking waits on
/// further pool capacity.
ThreadPool& SharedEvalPool();

}  // namespace secreta

#endif  // SECRETA_COMMON_PARALLEL_H_
