// Umbrella header: include this to get the whole public SECRETA API.
//
//   #include "secreta.h"
//
//   secreta::SecretaSession session;
//   session.LoadDatasetFile("people.csv");
//   session.AutoGenerateHierarchies();
//   secreta::AlgorithmConfig config;   // defaults: Cluster+Apriori/RTmerger
//   auto report = session.Evaluate(config);
//
// Individual headers remain available for finer-grained dependencies.

#ifndef SECRETA_SECRETA_H_
#define SECRETA_SECRETA_H_

#include "algo/rt/rt_anonymizer.h"
#include "algo/transaction/count_tree.h"
#include "algo/transaction/rho_uncertainty.h"
#include "common/status.h"
#include "core/algorithm.h"
#include "core/audit.h"
#include "core/context.h"
#include "core/guarantees.h"
#include "core/params.h"
#include "core/recoding.h"
#include "core/results.h"
#include "data/dataset.h"
#include "data/dataset_ops.h"
#include "data/dataset_stats.h"
#include "datagen/market_basket.h"
#include "datagen/synthetic.h"
#include "engine/anonymization_module.h"
#include "engine/comparator.h"
#include "engine/config_io.h"
#include "engine/evaluator.h"
#include "engine/experiment.h"
#include "engine/registry.h"
#include "export/exporter.h"
#include "export/json_export.h"
#include "export/mapping_export.h"
#include "frontend/cli.h"
#include "frontend/dataset_editor.h"
#include "frontend/session.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/hierarchy_builder.h"
#include "hierarchy/hierarchy_io.h"
#include "metrics/distribution_metrics.h"
#include "metrics/frequency.h"
#include "metrics/information_loss.h"
#include "policy/policy.h"
#include "policy/policy_generator.h"
#include "policy/policy_io.h"
#include "query/query.h"
#include "query/query_evaluator.h"
#include "query/workload_generator.h"
#include "viz/ascii_plot.h"

#endif  // SECRETA_SECRETA_H_
