// Synthetic RT-dataset generation. The paper demos on prepared datasets
// (e.g. census-style demographics joined with diagnosis/purchase items) that
// are not redistributable; this generator produces datasets with the same
// shape — categorical and numeric QIDs plus a Zipf-skewed transaction
// attribute — so every experiment exercises the identical code paths
// (substitution documented in DESIGN.md Sec. 2).

#ifndef SECRETA_DATAGEN_SYNTHETIC_H_
#define SECRETA_DATAGEN_SYNTHETIC_H_

#include "data/dataset.h"

namespace secreta {

/// Options for GenerateRtDataset.
struct SyntheticOptions {
  size_t num_records = 2000;
  /// Distinct ages drawn uniformly from [age_min, age_max].
  int age_min = 16;
  int age_max = 90;
  /// Categorical domain sizes.
  size_t num_origins = 24;
  size_t num_occupations = 12;
  /// Transaction attribute: item-domain size and per-record item count.
  size_t num_items = 120;
  size_t min_items_per_record = 2;
  size_t max_items_per_record = 8;
  /// Zipf exponent of the item popularity distribution (0 = uniform).
  double item_skew = 1.1;
  /// Zipf exponent of the demographic attributes (Age/Origin/Occupation);
  /// 0 = uniform (default). Real demographics are skewed; a positive value
  /// makes uniformity-assumption estimators (ARE) pay for generalization.
  double demographic_skew = 0.0;
  /// Correlate items with age bands (young/mid/old lean to different thirds
  /// of the item domain), making query workloads non-trivial.
  bool correlate = true;
  uint64_t seed = 123;
};

/// Generates an RT-dataset with schema
///   Age (numeric QID), Gender (categorical QID), Origin (categorical QID),
///   Occupation (categorical QID), Items (transaction).
Result<Dataset> GenerateRtDataset(const SyntheticOptions& options);

/// Generates a relational-only dataset (same schema minus Items).
Result<Dataset> GenerateRelationalDataset(const SyntheticOptions& options);

/// Generates a transaction-only dataset (record id + Items).
Result<Dataset> GenerateTransactionDataset(const SyntheticOptions& options);

}  // namespace secreta

#endif  // SECRETA_DATAGEN_SYNTHETIC_H_
