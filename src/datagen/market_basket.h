// IBM-Quest-style market-basket generator: transactions assembled from a
// pool of correlated "patterns" (frequent itemsets) plus noise — the
// standard synthetic workload of the transaction-anonymization literature
// ([10] evaluates on such data). Complements the demographic generator in
// synthetic.h for transaction-only experiments.

#ifndef SECRETA_DATAGEN_MARKET_BASKET_H_
#define SECRETA_DATAGEN_MARKET_BASKET_H_

#include "data/dataset.h"

namespace secreta {

/// Options for GenerateMarketBasket (defaults follow the classic
/// T10.I4.D|n| parameterization scaled down).
struct MarketBasketOptions {
  size_t num_records = 2000;     ///< |D|
  size_t num_items = 200;        ///< |I|
  size_t avg_transaction = 10;   ///< T: mean items per transaction
  size_t num_patterns = 40;      ///< |L|: size of the pattern pool
  size_t avg_pattern = 4;        ///< I: mean pattern length
  /// Probability that the next chunk of a transaction comes from a pattern
  /// (vs an independent random item).
  double pattern_share = 0.7;
  uint64_t seed = 321;
};

/// Generates a transaction-only dataset ("Items" attribute).
Result<Dataset> GenerateMarketBasket(const MarketBasketOptions& options);

}  // namespace secreta

#endif  // SECRETA_DATAGEN_MARKET_BASKET_H_
