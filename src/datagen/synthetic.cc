#include "datagen/synthetic.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"

namespace secreta {

namespace {

Status ValidateOptions(const SyntheticOptions& options) {
  if (options.num_records == 0) {
    return Status::InvalidArgument("num_records must be positive");
  }
  if (options.age_min > options.age_max) {
    return Status::InvalidArgument("age_min > age_max");
  }
  if (options.num_items == 0) {
    return Status::InvalidArgument("num_items must be positive");
  }
  if (options.min_items_per_record > options.max_items_per_record) {
    return Status::InvalidArgument("min_items_per_record > max_items_per_record");
  }
  if (options.item_skew < 0) {
    return Status::InvalidArgument("item_skew must be >= 0");
  }
  if (options.demographic_skew < 0) {
    return Status::InvalidArgument("demographic_skew must be >= 0");
  }
  return Status::OK();
}

std::string ItemLabel(size_t index) { return StrFormat("i%03zu", index); }

// Draws one record's field strings. `want_relational` / `want_items` select
// which attributes to emit, in schema order.
std::vector<std::string> DrawRecord(const SyntheticOptions& options, Rng& rng,
                                    bool want_relational, bool want_items) {
  static const char* kGenders[] = {"M", "F"};
  std::vector<std::string> fields;
  int age = 0;
  if (want_relational) {
    if (options.demographic_skew > 0) {
      int span = options.age_max - options.age_min + 1;
      age = options.age_min +
            static_cast<int>(rng.Zipf(static_cast<size_t>(span),
                                      options.demographic_skew));
      fields.push_back(StrFormat("%d", age));
      fields.push_back(kGenders[rng.UniformInt(0, 1)]);
      fields.push_back(StrFormat(
          "origin%02zu", rng.Zipf(options.num_origins,
                                  options.demographic_skew)));
      fields.push_back(StrFormat(
          "occ%02zu", rng.Zipf(options.num_occupations,
                               options.demographic_skew)));
    } else {
      age = static_cast<int>(rng.UniformInt(options.age_min, options.age_max));
      fields.push_back(StrFormat("%d", age));
      fields.push_back(kGenders[rng.UniformInt(0, 1)]);
      fields.push_back(StrFormat(
          "origin%02zu",
          static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(options.num_origins - 1)))));
      fields.push_back(StrFormat(
          "occ%02zu",
          static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(options.num_occupations - 1)))));
    }
  }
  if (want_items) {
    size_t count = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options.min_items_per_record),
                       static_cast<int64_t>(options.max_items_per_record)));
    // Correlation: shift the Zipf head by an age-band-dependent offset so
    // different demographics favour different item-domain regions.
    size_t offset = 0;
    if (options.correlate && want_relational) {
      int span = options.age_max - options.age_min + 1;
      int band = (age - options.age_min) * 3 / std::max(span, 1);  // 0..2
      offset = static_cast<size_t>(band) * (options.num_items / 3);
    }
    std::vector<std::string> items;
    size_t guard = 0;
    while (items.size() < count && guard < count * 30) {
      ++guard;
      size_t rank = rng.Zipf(options.num_items, options.item_skew);
      size_t index = (rank + offset) % options.num_items;
      std::string label = ItemLabel(index);
      if (std::find(items.begin(), items.end(), label) == items.end()) {
        items.push_back(std::move(label));
      }
    }
    fields.push_back(Join(items, " "));
  }
  return fields;
}

Result<Dataset> Generate(const SyntheticOptions& options, bool want_relational,
                         bool want_items) {
  SECRETA_RETURN_IF_ERROR(ValidateOptions(options));
  Schema schema;
  if (want_relational) {
    SECRETA_RETURN_IF_ERROR(schema.AddAttribute(
        {"Age", AttributeType::kNumeric, AttributeRole::kQuasiIdentifier}));
    SECRETA_RETURN_IF_ERROR(schema.AddAttribute(
        {"Gender", AttributeType::kCategorical, AttributeRole::kQuasiIdentifier}));
    SECRETA_RETURN_IF_ERROR(schema.AddAttribute(
        {"Origin", AttributeType::kCategorical, AttributeRole::kQuasiIdentifier}));
    SECRETA_RETURN_IF_ERROR(schema.AddAttribute(
        {"Occupation", AttributeType::kCategorical,
         AttributeRole::kQuasiIdentifier}));
  }
  if (want_items) {
    SECRETA_RETURN_IF_ERROR(schema.AddAttribute(
        {"Items", AttributeType::kTransaction, AttributeRole::kQuasiIdentifier}));
  }
  csv::CsvTable table;
  std::vector<std::string> header;
  for (const auto& spec : schema.attributes()) header.push_back(spec.name);
  table.push_back(std::move(header));
  Rng rng(options.seed);
  for (size_t r = 0; r < options.num_records; ++r) {
    table.push_back(DrawRecord(options, rng, want_relational, want_items));
  }
  return Dataset::FromCsv(table, schema);
}

}  // namespace

Result<Dataset> GenerateRtDataset(const SyntheticOptions& options) {
  return Generate(options, /*want_relational=*/true, /*want_items=*/true);
}

Result<Dataset> GenerateRelationalDataset(const SyntheticOptions& options) {
  return Generate(options, /*want_relational=*/true, /*want_items=*/false);
}

Result<Dataset> GenerateTransactionDataset(const SyntheticOptions& options) {
  return Generate(options, /*want_relational=*/false, /*want_items=*/true);
}

}  // namespace secreta
