#include "datagen/market_basket.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"

namespace secreta {

Result<Dataset> GenerateMarketBasket(const MarketBasketOptions& options) {
  if (options.num_records == 0 || options.num_items == 0) {
    return Status::InvalidArgument("num_records and num_items must be positive");
  }
  if (options.avg_transaction == 0 || options.avg_pattern == 0) {
    return Status::InvalidArgument("average sizes must be positive");
  }
  if (options.num_patterns == 0) {
    return Status::InvalidArgument("num_patterns must be positive");
  }
  if (options.pattern_share < 0 || options.pattern_share > 1) {
    return Status::InvalidArgument("pattern_share must be in [0,1]");
  }
  Rng rng(options.seed);

  // Pattern pool: itemsets drawn with Zipf-weighted items so patterns share
  // popular items (correlation), geometric-ish lengths around avg_pattern.
  std::vector<std::vector<size_t>> patterns(options.num_patterns);
  for (auto& pattern : patterns) {
    size_t len = std::max<size_t>(
        1, static_cast<size_t>(rng.UniformInt(
               1, static_cast<int64_t>(2 * options.avg_pattern - 1))));
    len = std::min(len, options.num_items);
    std::vector<char> used(options.num_items, 0);
    while (pattern.size() < len) {
      size_t item = rng.Zipf(options.num_items, 0.9);
      if (!used[item]) {
        used[item] = 1;
        pattern.push_back(item);
      }
    }
  }
  // Pattern popularity: Zipf over the pool, so a few patterns dominate.
  auto draw_pattern = [&]() -> const std::vector<size_t>& {
    return patterns[rng.Zipf(patterns.size(), 1.0)];
  };

  csv::CsvTable table{{"Items"}};
  for (size_t r = 0; r < options.num_records; ++r) {
    size_t target = std::max<size_t>(
        1, static_cast<size_t>(rng.UniformInt(
               1, static_cast<int64_t>(2 * options.avg_transaction - 1))));
    target = std::min(target, options.num_items);
    std::vector<char> used(options.num_items, 0);
    std::vector<std::string> labels;
    size_t guard = 0;
    while (labels.size() < target && guard < target * 30) {
      ++guard;
      if (rng.Bernoulli(options.pattern_share)) {
        for (size_t item : draw_pattern()) {
          if (labels.size() >= target) break;
          if (!used[item]) {
            used[item] = 1;
            labels.push_back(StrFormat("p%04zu", item));
          }
        }
      } else {
        size_t item = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(options.num_items - 1)));
        if (!used[item]) {
          used[item] = 1;
          labels.push_back(StrFormat("p%04zu", item));
        }
      }
    }
    table.push_back({Join(labels, " ")});
  }
  return Dataset::FromCsvInferred(table);
}

}  // namespace secreta
