#include "engine/anonymization_module.h"

#include "common/parallel.h"
#include "common/string_util.h"
#include "core/recoding.h"
#include "engine/registry.h"
#include "obs/metric_names.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace secreta {

const char* AnonModeToString(AnonMode mode) {
  switch (mode) {
    case AnonMode::kRelational:
      return "relational";
    case AnonMode::kTransaction:
      return "transaction";
    case AnonMode::kRt:
      return "rt";
  }
  return "?";
}

std::string AlgorithmConfig::Label() const {
  std::string algo;
  switch (mode) {
    case AnonMode::kRelational:
      algo = relational_algorithm;
      break;
    case AnonMode::kTransaction:
      algo = transaction_algorithm;
      break;
    case AnonMode::kRt:
      algo = relational_algorithm + "+" + transaction_algorithm + "/" +
             MergerKindToString(merger);
      break;
  }
  return algo + StrFormat(" k=%d m=%d delta=%.2f", params.k, params.m,
                          params.delta);
}

Result<RunResult> RunAnonymization(const EngineInputs& inputs,
                                   const AlgorithmConfig& config) {
  if (inputs.dataset == nullptr) {
    return Status::InvalidArgument("EngineInputs.dataset is required");
  }
  SECRETA_RETURN_IF_ERROR(CheckCancelled(inputs.cancel, "run"));
  SECRETA_FAULT_POINT("anonymize");
  SECRETA_TRACE_SPAN("anonymize");
  RunResult result;
  result.config = config;
  Stopwatch watch;
  PrivacyPolicy privacy = inputs.privacy != nullptr ? *inputs.privacy
                                                    : PrivacyPolicy{};
  UtilityPolicy utility = inputs.utility != nullptr ? *inputs.utility
                                                    : UtilityPolicy{};
  switch (config.mode) {
    case AnonMode::kRelational: {
      if (inputs.relational == nullptr) {
        return Status::InvalidArgument(
            "relational mode requires a relational context");
      }
      SECRETA_ASSIGN_OR_RETURN(
          auto algo, MakeRelationalAnonymizer(config.relational_algorithm));
      algo->set_pool(&SharedEvalPool());
      algo->set_cancellation(inputs.cancel);
      SECRETA_RETURN_IF_ERROR(
          CheckCancelled(inputs.cancel, "relational phase"));
      result.phases.Begin("relational");
      SECRETA_TRACE_SPAN("anonymize.relational");
      SECRETA_ASSIGN_OR_RETURN(RelationalRecoding recoding,
                               algo->Anonymize(*inputs.relational,
                                               config.params));
      result.phases.End();
      result.relational = std::move(recoding);
      break;
    }
    case AnonMode::kTransaction: {
      if (inputs.transaction == nullptr) {
        return Status::InvalidArgument(
            "transaction mode requires a transaction context");
      }
      SECRETA_ASSIGN_OR_RETURN(
          auto algo,
          MakeTransactionAnonymizer(config.transaction_algorithm,
                                    std::move(privacy), std::move(utility)));
      algo->set_pool(&SharedEvalPool());
      algo->set_cancellation(inputs.cancel);
      SECRETA_RETURN_IF_ERROR(
          CheckCancelled(inputs.cancel, "transaction phase"));
      result.phases.Begin("transaction");
      SECRETA_TRACE_SPAN("anonymize.transaction");
      SECRETA_ASSIGN_OR_RETURN(TransactionRecoding recoding,
                               algo->Anonymize(*inputs.transaction,
                                               config.params));
      result.phases.End();
      result.transaction = std::move(recoding);
      break;
    }
    case AnonMode::kRt: {
      if (inputs.relational == nullptr || inputs.transaction == nullptr) {
        return Status::InvalidArgument("RT mode requires both contexts");
      }
      SECRETA_ASSIGN_OR_RETURN(
          auto rel, MakeRelationalAnonymizer(config.relational_algorithm));
      SECRETA_ASSIGN_OR_RETURN(
          auto txn,
          MakeTransactionAnonymizer(config.transaction_algorithm,
                                    std::move(privacy), std::move(utility)));
      rel->set_pool(&SharedEvalPool());
      rel->set_cancellation(inputs.cancel);
      txn->set_pool(&SharedEvalPool());
      txn->set_cancellation(inputs.cancel);
      RtAnonymizer rt(std::move(rel), std::move(txn), config.merger);
      SECRETA_ASSIGN_OR_RETURN(
          RtResult rt_result,
          rt.Anonymize(*inputs.relational, *inputs.transaction, config.params,
                       inputs.cancel));
      result.relational = std::move(rt_result.relational);
      result.transaction = std::move(rt_result.transaction);
      result.phases = rt_result.phases;
      result.initial_clusters = rt_result.initial_clusters;
      result.final_clusters = rt_result.final_clusters;
      result.merges = rt_result.merges;
      break;
    }
  }
  result.runtime_seconds = watch.ElapsedSeconds();
  // Per-algorithm phase breakdown as labeled histograms, so a fleet-wide
  // scrape can compare e.g. Cluster vs Incognito "relational" phase cost.
  // The algorithm label is the registry name (bounded cardinality), never
  // the full parameterized config label.
  std::string algorithm;
  switch (config.mode) {
    case AnonMode::kRelational:
      algorithm = config.relational_algorithm;
      break;
    case AnonMode::kTransaction:
      algorithm = config.transaction_algorithm;
      break;
    case AnonMode::kRt:
      algorithm =
          config.relational_algorithm + "+" + config.transaction_algorithm;
      break;
  }
  for (const auto& [phase, seconds] : result.phases.phases()) {
    MetricsRegistry::Global()
        .histogram(metric_names::kAlgoPhaseSeconds,
                   {{"algorithm", algorithm}, {"phase", phase}})
        ->Record(seconds);
  }
  return result;
}

Result<Dataset> MaterializeRun(const EngineInputs& inputs,
                               const RunResult& result) {
  if (inputs.dataset == nullptr) {
    return Status::InvalidArgument("EngineInputs.dataset is required");
  }
  const RelationalRecoding* rel =
      result.relational.has_value() ? &*result.relational : nullptr;
  const TransactionRecoding* txn =
      result.transaction.has_value() ? &*result.transaction : nullptr;
  return BuildAnonymizedDataset(*inputs.dataset,
                                rel != nullptr ? inputs.relational : nullptr,
                                rel, txn);
}

}  // namespace secreta
