// Algorithm registry: the 9 algorithms and 3 bounding methods by name, plus
// enumeration helpers used by the Comparison mode UI and by the
// "20 combinations" bench.

#ifndef SECRETA_ENGINE_REGISTRY_H_
#define SECRETA_ENGINE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "algo/rt/rt_anonymizer.h"
#include "core/algorithm.h"
#include "policy/policy.h"

namespace secreta {

/// Names of the relational algorithms ("Incognito", "TopDown", "BottomUp",
/// "Cluster").
const std::vector<std::string>& RelationalAlgorithmNames();

/// Names of the transaction algorithms ("COAT", "PCTA", "Apriori", "LRA",
/// "VPA"). The rho-uncertainty extension is constructible by name but not
/// listed among the paper's five.
const std::vector<std::string>& TransactionAlgorithmNames();

/// Names of the bounding methods ("Rmerger", "Tmerger", "RTmerger").
const std::vector<std::string>& MergerNames();

/// Instantiates a relational anonymizer by name.
Result<std::shared_ptr<RelationalAnonymizer>> MakeRelationalAnonymizer(
    const std::string& name);

/// Instantiates a transaction anonymizer by name. COAT and PCTA accept
/// optional policies (pass empty policies for k^m mode).
Result<std::shared_ptr<TransactionAnonymizer>> MakeTransactionAnonymizer(
    const std::string& name, PrivacyPolicy privacy = {},
    UtilityPolicy utility = {});

/// Parses a bounding-method name.
Result<MergerKind> ParseMergerKind(const std::string& name);

}  // namespace secreta

#endif  // SECRETA_ENGINE_REGISTRY_H_
