#include "engine/sharded_runner.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/context.h"
#include "core/recoding.h"
#include "csv/csv.h"
#include "metrics/information_loss.h"
#include "robust/checkpoint.h"
#include "robust/memory_budget.h"
#include "robust/shard_checkpoint.h"

namespace secreta {

namespace {

// Incremental FNV-1a over release bytes; same constants as Fnv1a64 so the
// streamed fold equals Fnv1a64 of the concatenated release CSV.
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvFold(uint64_t hash, std::string_view bytes) {
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

bool ModeUsesRelational(AnonMode mode) {
  return mode == AnonMode::kRelational || mode == AnonMode::kRt;
}

bool ModeUsesTransaction(AnonMode mode) {
  return mode == AnonMode::kTransaction || mode == AnonMode::kRt;
}

// The release header is derived from the provider schema, not from a shard
// output, so a fully resumed run (zero shards computed) still merges.
std::string ReleaseHeaderLine(const Schema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.num_attributes());
  for (const auto& spec : schema.attributes()) names.push_back(spec.name);
  return csv::WriteCsvLine(names);
}

// Generalized labels are not parseable numbers, so the merged release is
// re-parsed with every relational attribute downgraded to categorical
// (roles and the transaction attribute are preserved).
Result<Schema> ReleaseSchema(const Schema& source) {
  Schema schema;
  for (const auto& spec : source.attributes()) {
    AttributeSpec out = spec;
    if (out.type == AttributeType::kNumeric) {
      out.type = AttributeType::kCategorical;
    }
    SECRETA_RETURN_IF_ERROR(schema.AddAttribute(out));
  }
  return schema;
}

// Whole-dataset hierarchies, built lazily from the first shard that needs
// computing: shard datasets carry the global dictionaries, so the trees are
// identical no matter which shard seeds them (or how many shards there are).
struct SharedHierarchies {
  std::vector<Hierarchy> columns;
  std::optional<Hierarchy> items;
  bool built = false;
};

// Runs the anonymization engine over one materialized shard and returns the
// anonymized copy. Contexts, the algorithm run state and the recodings are
// all freed on return — only the (shard-sized) result survives, so the
// caller's high-water mark stays near two shards, not shard + engine.
Result<Dataset> RunShardEngine(const Dataset& shard_dataset, size_t s,
                               const AlgorithmConfig& config,
                               const ShardedRunOptions& options,
                               const SharedHierarchies& hierarchies,
                               double* gcp) {
  std::optional<RelationalContext> relational;
  std::optional<TransactionContext> transaction;
  EngineInputs inputs;
  inputs.dataset = &shard_dataset;
  inputs.cancel = options.cancel;
  inputs.memory = options.memory;
  if (ModeUsesRelational(config.mode)) {
    SECRETA_ASSIGN_OR_RETURN(
        RelationalContext ctx,
        RelationalContext::Create(shard_dataset, hierarchies.columns));
    relational = std::move(ctx);
    inputs.relational = &*relational;
  }
  if (ModeUsesTransaction(config.mode)) {
    SECRETA_ASSIGN_OR_RETURN(
        TransactionContext ctx,
        TransactionContext::Create(
            shard_dataset,
            hierarchies.items.has_value() ? &*hierarchies.items : nullptr));
    transaction = std::move(ctx);
    inputs.transaction = &*transaction;
  }

  AlgorithmConfig shard_config = config;
  shard_config.params.seed = ShardSeed(config.params.seed, s);
  SECRETA_ASSIGN_OR_RETURN(RunResult run,
                           RunAnonymization(inputs, shard_config));
  SECRETA_ASSIGN_OR_RETURN(Dataset anonymized, MaterializeRun(inputs, run));
  if (run.relational.has_value() && relational.has_value()) {
    *gcp = RecodingGcp(*relational, *run.relational);
  }
  return anonymized;
}

// Anonymizes one shard and serializes it into `record->lines` (release CSV
// rows, parallel to `record->rows`). Staged so the peak never holds more
// than one stage's transients: the engine state dies inside RunShardEngine,
// the anonymized dataset dies before this returns.
Status AnonymizeShard(const ColumnProvider& provider, const ShardPlan& plan,
                      size_t s, const AlgorithmConfig& config,
                      const ShardedRunOptions& options,
                      SharedHierarchies* hierarchies, ShardRecord* record,
                      double* gcp) {
  SECRETA_ASSIGN_OR_RETURN(Dataset shard_dataset,
                           provider.MaterializeShard(plan, s));
  // Soft accounting: the budget tracks the dominant per-shard residency so
  // concurrent engine charges shed against what is really in use. A
  // rejection is not fatal — the shard is required work, not optional.
  ScopedCharge shard_charge(options.memory, shard_dataset.MemoryBytes());

  if (!hierarchies->built) {
    if (ModeUsesRelational(config.mode)) {
      SECRETA_ASSIGN_OR_RETURN(
          hierarchies->columns,
          BuildAllColumnHierarchies(shard_dataset, options.hierarchy));
    }
    if (ModeUsesTransaction(config.mode) &&
        !provider.item_dictionary().empty()) {
      SECRETA_ASSIGN_OR_RETURN(
          Hierarchy built,
          BuildItemHierarchyFromSupports(provider.item_dictionary(),
                                         provider.item_supports(),
                                         options.hierarchy));
      hierarchies->items = std::move(built);
    }
    hierarchies->built = true;
  }

  SECRETA_ASSIGN_OR_RETURN(
      Dataset anonymized,
      RunShardEngine(shard_dataset, s, config, options, *hierarchies, gcp));
  if (anonymized.num_records() != record->rows.size()) {
    return Status::Internal(StrFormat(
        "shard %zu: anonymized %zu records, expected %zu", s,
        anonymized.num_records(), record->rows.size()));
  }
  // Row-at-a-time (Dataset::CsvRow) instead of ToCsv(): the full CsvTable of
  // a shard costs several times the shard itself.
  record->lines.reserve(record->rows.size());
  for (size_t r = 0; r < anonymized.num_records(); ++r) {
    record->lines.push_back(csv::WriteCsvLine(anonymized.CsvRow(r)));
  }
  return Status::OK();
}

}  // namespace

Result<ShardedRunResult> RunShardedAnonymization(
    const ColumnProvider& provider, const AlgorithmConfig& config,
    const ShardedRunOptions& options) {
  Stopwatch total_watch;
  SECRETA_RETURN_IF_ERROR(config.params.Validate());
  if (options.audit && !options.materialize_result) {
    return Status::InvalidArgument(
        "auditing the merged release requires materialize_result");
  }

  const size_t num_records = provider.num_records();
  ShardPlan plan;
  if (options.num_shards == 0) {
    std::optional<ShardPlan> native = provider.native_plan();
    plan = native.has_value()
               ? *native
               : ShardPlan::Make(options.shard_kind, num_records, 1,
                                 options.salt);
  } else {
    plan = ShardPlan::Make(options.shard_kind, num_records,
                           options.num_shards, options.salt);
  }

  ShardedRunResult result;
  result.plan = plan;
  result.num_records = num_records;

  const uint64_t dataset_fp = provider.content_fingerprint();
  // The run key identifies (config, dataset); per-shard identity lives in
  // the plan fingerprint plus the shard block index.
  const uint64_t run_key = CheckpointLog::PointKey(config, dataset_fp,
                                                   /*workload_fp=*/0,
                                                   /*config_index=*/0);

  std::unique_ptr<ShardCheckpoint> checkpoint;
  if (!options.checkpoint_path.empty()) {
    SECRETA_ASSIGN_OR_RETURN(
        checkpoint, ShardCheckpoint::Open(options.checkpoint_path, run_key,
                                          dataset_fp, plan.Fingerprint()));
  }
  // Outputs of shards computed this call when there is no checkpoint to
  // stream them back from.
  std::map<size_t, ShardRecord> local_records;

  SharedHierarchies hierarchies;

  for (size_t s = 0; s < plan.num_shards(); ++s) {
    SECRETA_RETURN_IF_ERROR(CheckCancelled(options.cancel, "sharded-run"));
    ShardRunStats stats;
    stats.shard = s;
    stats.rows = plan.ShardSize(s);

    ShardMeta meta;
    if (checkpoint != nullptr && checkpoint->FindMeta(s, &meta)) {
      if (meta.num_rows != stats.rows) {
        return Status::FailedPrecondition(StrFormat(
            "shard checkpoint %s: shard %zu has %zu rows, plan expects %zu",
            checkpoint->path().c_str(), s, meta.num_rows, stats.rows));
      }
      stats.gcp = meta.gcp;
      stats.seconds = meta.seconds;
      stats.resumed = true;
      ++result.resumed_shards;
      result.shards.push_back(stats);
      continue;
    }

    Stopwatch shard_watch;
    ShardRecord record;
    record.shard = s;
    record.rows = plan.Rows(s);
    SECRETA_RETURN_IF_ERROR(AnonymizeShard(provider, plan, s, config, options,
                                           &hierarchies, &record, &stats.gcp));
    record.gcp = stats.gcp;
    stats.seconds = shard_watch.ElapsedSeconds();
    record.seconds = stats.seconds;

    if (checkpoint != nullptr) {
      SECRETA_RETURN_IF_ERROR(checkpoint->Append(record));
    } else {
      local_records[s] = std::move(record);
    }
    result.shards.push_back(stats);
  }

  double gcp_weight = 0;
  for (const ShardRunStats& stats : result.shards) {
    result.anonymize_seconds += stats.seconds;
    gcp_weight += stats.gcp * static_cast<double>(stats.rows);
  }
  result.weighted_gcp =
      num_records == 0 ? 0 : gcp_weight / static_cast<double>(num_records);

  // ---- merge: emit the release in global row order ------------------------
  SECRETA_RETURN_IF_ERROR(CheckCancelled(options.cancel, "sharded-merge"));
  const std::string header = ReleaseHeaderLine(provider.schema());
  uint64_t fingerprint = FnvFold(kFnvBasis, header);
  fingerprint = FnvFold(fingerprint, "\n");

  std::ofstream out;
  std::string tmp_path;
  if (!options.output_path.empty()) {
    tmp_path = options.output_path + ".tmp";
    out.open(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open release output: " + tmp_path);
    }
    out << header << '\n';
  }
  csv::CsvTable merged_table;
  if (options.materialize_result) {
    SECRETA_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                             csv::ParseCsvLine(header));
    merged_table.reserve(num_records + 1);
    merged_table.push_back(std::move(fields));
  }

  auto take_record = [&](size_t s) -> Result<ShardRecord> {
    if (checkpoint != nullptr) return checkpoint->ReadPayload(s);
    auto it = local_records.find(s);
    if (it == local_records.end()) {
      return Status::Internal(StrFormat("shard %zu output missing", s));
    }
    ShardRecord record = std::move(it->second);
    local_records.erase(it);
    return record;
  };
  auto emit_line = [&](const std::string& line) -> Status {
    fingerprint = FnvFold(fingerprint, line);
    fingerprint = FnvFold(fingerprint, "\n");
    if (out.is_open()) out << line << '\n';
    if (options.materialize_result) {
      SECRETA_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                               csv::ParseCsvLine(line));
      merged_table.push_back(std::move(fields));
    }
    return Status::OK();
  };

  if (plan.kind() == ShardKind::kRange) {
    // Range shards are contiguous ascending blocks: concatenation in shard
    // order IS global row order, one shard resident at a time.
    for (size_t s = 0; s < plan.num_shards(); ++s) {
      SECRETA_ASSIGN_OR_RETURN(ShardRecord record, take_record(s));
      for (const std::string& line : record.lines) {
        SECRETA_RETURN_IF_ERROR(emit_line(line));
      }
    }
  } else {
    // Hash shards interleave rows; restoring global order needs everything
    // at once (hash partitioning targets decorrelation, not out-of-core).
    std::vector<std::pair<uint32_t, std::string>> rows;
    rows.reserve(num_records);
    for (size_t s = 0; s < plan.num_shards(); ++s) {
      SECRETA_ASSIGN_OR_RETURN(ShardRecord record, take_record(s));
      for (size_t i = 0; i < record.rows.size(); ++i) {
        rows.emplace_back(record.rows[i], std::move(record.lines[i]));
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [row, line] : rows) {
      SECRETA_RETURN_IF_ERROR(emit_line(line));
    }
  }
  result.release_fingerprint = fingerprint;

  if (out.is_open()) {
    out.flush();
    if (!out) return Status::IOError("release write failed: " + tmp_path);
    out.close();
    if (std::rename(tmp_path.c_str(), options.output_path.c_str()) != 0) {
      return Status::IOError("cannot move release into place: " +
                             options.output_path);
    }
  }

  if (options.materialize_result) {
    if (merged_table.size() != num_records + 1) {
      return Status::Internal(StrFormat(
          "merged %zu rows, expected %zu", merged_table.size() - 1,
          num_records));
    }
    SECRETA_ASSIGN_OR_RETURN(Schema schema, ReleaseSchema(provider.schema()));
    SECRETA_ASSIGN_OR_RETURN(Dataset merged,
                             Dataset::FromCsv(merged_table, schema));
    if (options.audit) {
      SECRETA_ASSIGN_OR_RETURN(
          AuditReport audit,
          AuditAnonymizedDataset(merged, config.params.k, config.params.m,
                                 /*check_km_per_class=*/config.mode ==
                                     AnonMode::kRt));
      result.audit = std::move(audit);
    }
    result.merged = std::move(merged);
  }

  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace secreta
