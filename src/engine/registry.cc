#include "engine/registry.h"

#include "algo/relational/bottomup.h"
#include "algo/relational/cluster.h"
#include "algo/relational/incognito.h"
#include "algo/relational/topdown.h"
#include "algo/transaction/apriori.h"
#include "algo/transaction/coat.h"
#include "algo/transaction/lra.h"
#include "algo/transaction/pcta.h"
#include "algo/transaction/rho_uncertainty.h"
#include "algo/transaction/vpa.h"

namespace secreta {

const std::vector<std::string>& RelationalAlgorithmNames() {
  static const std::vector<std::string> kNames = {"Incognito", "TopDown",
                                                  "BottomUp", "Cluster"};
  return kNames;
}

const std::vector<std::string>& TransactionAlgorithmNames() {
  static const std::vector<std::string> kNames = {"COAT", "PCTA", "Apriori",
                                                  "LRA", "VPA"};
  return kNames;
}

const std::vector<std::string>& MergerNames() {
  static const std::vector<std::string> kNames = {"Rmerger", "Tmerger",
                                                  "RTmerger"};
  return kNames;
}

Result<std::shared_ptr<RelationalAnonymizer>> MakeRelationalAnonymizer(
    const std::string& name) {
  if (name == "Incognito") return {std::make_shared<IncognitoAnonymizer>()};
  if (name == "TopDown") return {std::make_shared<TopDownAnonymizer>()};
  if (name == "BottomUp") return {std::make_shared<BottomUpAnonymizer>()};
  if (name == "Cluster") return {std::make_shared<ClusterAnonymizer>()};
  return Status::NotFound("unknown relational algorithm: " + name);
}

Result<std::shared_ptr<TransactionAnonymizer>> MakeTransactionAnonymizer(
    const std::string& name, PrivacyPolicy privacy, UtilityPolicy utility) {
  if (name == "COAT") {
    return {std::make_shared<CoatAnonymizer>(std::move(privacy),
                                             std::move(utility))};
  }
  if (name == "PCTA") {
    return {std::make_shared<PctaAnonymizer>(std::move(privacy),
                                             std::move(utility))};
  }
  if (!privacy.empty() || !utility.empty()) {
    return Status::InvalidArgument(
        "policies are only used by COAT and PCTA (paper Sec. 2.1)");
  }
  if (name == "Apriori") return {std::make_shared<AprioriAnonymizer>()};
  if (name == "LRA") return {std::make_shared<LraAnonymizer>()};
  if (name == "VPA") return {std::make_shared<VpaAnonymizer>()};
  if (name == "RhoUncertainty") {
    return {std::make_shared<RhoUncertaintyAnonymizer>()};
  }
  return Status::NotFound("unknown transaction algorithm: " + name);
}

Result<MergerKind> ParseMergerKind(const std::string& name) {
  if (name == "Rmerger") return MergerKind::kRmerger;
  if (name == "Tmerger") return MergerKind::kTmerger;
  if (name == "RTmerger") return MergerKind::kRTmerger;
  return Status::NotFound("unknown bounding method: " + name);
}

}  // namespace secreta
