// One-line textual form of AlgorithmConfig, used by the CLI and scripts:
//   "mode=rt rel=Cluster txn=Apriori merger=RTmerger k=5 m=2 delta=0.3"
// Unknown keys are rejected; omitted keys keep their defaults.

#ifndef SECRETA_ENGINE_CONFIG_IO_H_
#define SECRETA_ENGINE_CONFIG_IO_H_

#include <cstdint>
#include <string>

#include "engine/anonymization_module.h"

namespace secreta {

/// Parses a config spec (see header comment). Keys: mode
/// (rt|relational|transaction), rel, txn, merger, and any AnonParams field
/// (k, m, delta, lra_partitions, vpa_parts, rho, seed).
Result<AlgorithmConfig> ParseAlgorithmConfig(const std::string& spec);

/// Serializes a config into the spec form (inverse of ParseAlgorithmConfig).
std::string FormatAlgorithmConfig(const AlgorithmConfig& config);

/// Canonical serialization used for content addressing: every field is
/// emitted, always, in one fixed order, with locale-independent shortest
/// round-trip formatting for doubles. Unlike FormatAlgorithmConfig (which
/// drops defaulted/inapplicable fields for readability), two configs produce
/// the same canonical string iff every field compares equal — the property
/// the job service's ResultCache keys rely on.
std::string CanonicalConfigString(const AlgorithmConfig& config);

/// Stable 64-bit content hash of the canonical serialization. Identical
/// across runs and platforms (FNV-1a, no std::hash involvement).
uint64_t CanonicalConfigHash(const AlgorithmConfig& config);

}  // namespace secreta

#endif  // SECRETA_ENGINE_CONFIG_IO_H_
