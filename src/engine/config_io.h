// One-line textual form of AlgorithmConfig, used by the CLI and scripts:
//   "mode=rt rel=Cluster txn=Apriori merger=RTmerger k=5 m=2 delta=0.3"
// Unknown keys are rejected; omitted keys keep their defaults.

#ifndef SECRETA_ENGINE_CONFIG_IO_H_
#define SECRETA_ENGINE_CONFIG_IO_H_

#include <string>

#include "engine/anonymization_module.h"

namespace secreta {

/// Parses a config spec (see header comment). Keys: mode
/// (rt|relational|transaction), rel, txn, merger, and any AnonParams field
/// (k, m, delta, lra_partitions, vpa_parts, rho, seed).
Result<AlgorithmConfig> ParseAlgorithmConfig(const std::string& spec);

/// Serializes a config into the spec form (inverse of ParseAlgorithmConfig).
std::string FormatAlgorithmConfig(const AlgorithmConfig& config);

}  // namespace secreta

#endif  // SECRETA_ENGINE_CONFIG_IO_H_
