// The Method Comparator (Comparison mode): executes several configurations —
// each with the same varying parameter — fanning the runs out over a thread
// pool (the "N threads" of the paper's architecture, Fig. 1), and returns one
// SweepResult per configuration for side-by-side plotting.

#ifndef SECRETA_ENGINE_COMPARATOR_H_
#define SECRETA_ENGINE_COMPARATOR_H_

#include <vector>

#include "engine/experiment.h"

namespace secreta {

/// Options for CompareMethods.
struct CompareOptions {
  /// Worker threads; 0 = one per configuration (capped at hardware threads).
  size_t num_threads = 0;
  /// Optional progress observer; invocations are serialized across workers
  /// (the "progressive comparison" of the paper's Comparison mode). The
  /// serialization guarantee holds unconditionally — including while the
  /// comparison is being cancelled through `EngineInputs::cancel`: a callback
  /// never overlaps another callback, and no callback fires for a sweep
  /// point that was cut off by cancellation. Callbacks may cancel the token
  /// themselves (e.g. an "abort after first result" UI); the in-flight sweeps
  /// then stop at their next point boundary.
  ProgressCallback progress;
  /// When non-empty, checkpoint/resume for the whole grid: every completed
  /// (configuration, sweep value) cell is appended to this file, and a
  /// restarted comparison replays recorded cells bit-identically instead of
  /// recomputing them. The file is validated against the dataset/workload
  /// fingerprints (FailedPrecondition on mismatch).
  std::string checkpoint_path;
};

/// Runs every configuration over `sweep` concurrently. Results are in the
/// order of `configs`; a failure of any run fails the comparison. If
/// `inputs.cancel` fires mid-comparison, the whole comparison returns
/// Status::Cancelled once the in-flight points finish.
Result<std::vector<SweepResult>> CompareMethods(
    const EngineInputs& inputs, const std::vector<AlgorithmConfig>& configs,
    const ParamSweep& sweep, const Workload* workload,
    const CompareOptions& options = {});

}  // namespace secreta

#endif  // SECRETA_ENGINE_COMPARATOR_H_
