// The Method Comparator (Comparison mode): executes several configurations —
// each with the same varying parameter — fanning the runs out over a thread
// pool (the "N threads" of the paper's architecture, Fig. 1), and returns one
// SweepResult per configuration for side-by-side plotting.

#ifndef SECRETA_ENGINE_COMPARATOR_H_
#define SECRETA_ENGINE_COMPARATOR_H_

#include <vector>

#include "engine/experiment.h"

namespace secreta {

/// Options for CompareMethods.
struct CompareOptions {
  /// Worker threads; 0 = one per configuration (capped at hardware threads).
  size_t num_threads = 0;
  /// Optional progress observer; invocations are serialized across workers
  /// (the "progressive comparison" of the paper's Comparison mode).
  ProgressCallback progress;
};

/// Runs every configuration over `sweep` concurrently. Results are in the
/// order of `configs`; a failure of any run fails the comparison.
Result<std::vector<SweepResult>> CompareMethods(
    const EngineInputs& inputs, const std::vector<AlgorithmConfig>& configs,
    const ParamSweep& sweep, const Workload* workload,
    const CompareOptions& options = {});

}  // namespace secreta

#endif  // SECRETA_ENGINE_COMPARATOR_H_
