// Partition-parallel, out-of-core anonymization: run one algorithm
// configuration independently over every shard of a ShardPlan, then merge
// the per-shard outputs into a single release in original row order.
//
// Each shard is materialized through a ColumnProvider (one mmap window for
// SBC1 files), anonymized with the standard engine (RunAnonymization — the
// existing intra-run thread pools parallelize within the shard), and its
// generalized rows are appended to a ShardCheckpoint so interrupted runs
// resume byte-identically. Determinism contract, asserted by
// tests/shard_test.cc:
//
//   * a 1-shard plan reproduces the unsharded run byte-for-byte
//     (ShardSeed(seed, 0) == seed, global dictionaries, same engine);
//   * for S > 1 the release is byte-identical across backends (memory vs
//     binary/mmap), thread-pool sizes, and checkpoint resume — though not
//     to the unsharded run, since each shard is anonymized independently;
//   * the merged release still satisfies the privacy guarantee: every
//     equivalence class of the concatenation is a class of some shard, so
//     per-shard k (and k^m) survive the union — re-checked for real with
//     core/audit.h rather than assumed.
//
// The merged release is defined by its CSV bytes (header + one line per
// record, global row order); `release_fingerprint` is the FNV-1a of exactly
// those bytes. Range plans merge shard-at-a-time (payloads stream from the
// checkpoint), so peak residency stays one shard plus the open output
// stream; hash plans must gather all rows to restore row order and are
// documented as not out-of-core at merge time.

#ifndef SECRETA_ENGINE_SHARDED_RUNNER_H_
#define SECRETA_ENGINE_SHARDED_RUNNER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "core/audit.h"
#include "data/column_provider.h"
#include "data/shard.h"
#include "engine/anonymization_module.h"
#include "hierarchy/hierarchy_builder.h"

namespace secreta {

class MemoryBudget;

/// Options for one sharded run.
struct ShardedRunOptions {
  /// 0 adopts the provider's native plan (SBC1 files) and falls back to a
  /// single shard; otherwise the requested count (binary providers reject
  /// plans other than their native one).
  size_t num_shards = 0;
  ShardKind shard_kind = ShardKind::kRange;
  uint64_t salt = 0;

  /// Fanout etc. for the automatically generated hierarchies (built from
  /// global dictionaries, so identical for every shard and backend).
  HierarchyBuildOptions hierarchy;

  /// When non-empty, per-shard outputs are logged here (ShardCheckpoint):
  /// finished shards are skipped on restart and merged from disk instead of
  /// being held in memory. Empty: outputs stay in memory (small runs).
  std::string checkpoint_path;

  /// When non-empty, the merged release CSV is written here (atomically).
  std::string output_path;

  /// Parse the merged release back into `ShardedRunResult::merged`. Costs
  /// full-dataset memory; turn off for out-of-core runs that only need the
  /// release file + fingerprint.
  bool materialize_result = true;

  /// Audit the merged release with core/audit.h (requires
  /// materialize_result). Skipped — not assumed — when off.
  bool audit = true;

  MemoryBudget* memory = nullptr;               ///< optional, non-owning
  const CancellationToken* cancel = nullptr;    ///< optional, non-owning
};

/// Per-shard outcome.
struct ShardRunStats {
  size_t shard = 0;
  size_t rows = 0;
  double gcp = 0;      ///< shard-mean GCP (0 for transaction-only runs)
  double seconds = 0;  ///< anonymize+materialize time (0 when resumed)
  bool resumed = false;
};

/// Outcome of a sharded run.
struct ShardedRunResult {
  ShardPlan plan;
  std::vector<ShardRunStats> shards;
  size_t resumed_shards = 0;

  /// Row-weighted mean of per-shard GCP.
  double weighted_gcp = 0;
  /// Sum of per-shard anonymize seconds (resumed shards contribute their
  /// originally recorded time).
  double anonymize_seconds = 0;
  /// Wall time of this call, including merge and audit.
  double total_seconds = 0;

  /// FNV-1a of the release CSV bytes (header line + '\n' + each record line
  /// + '\n', global row order). Equal for byte-identical releases no matter
  /// which backend, pool size or resume path produced them.
  uint64_t release_fingerprint = 0;
  size_t num_records = 0;

  /// The merged release, when options.materialize_result. Canonical bytes
  /// are the release CSV; this is a parsed view (used for auditing), whose
  /// own ToCsv() may order items within a transaction cell differently.
  std::optional<Dataset> merged;
  /// Audit of the merged guarantee, when options.audit.
  std::optional<AuditReport> audit;
};

/// Runs `config` over every shard of `provider` and merges the outputs.
Result<ShardedRunResult> RunShardedAnonymization(const ColumnProvider& provider,
                                                 const AlgorithmConfig& config,
                                                 const ShardedRunOptions& options);

}  // namespace secreta

#endif  // SECRETA_ENGINE_SHARDED_RUNNER_H_
