// The Method Evaluator (Evaluation mode): runs one configuration and
// assembles the full utility/privacy report — information loss (GCP, UL),
// ARE over a query workload, discernibility, class sizes, item-frequency
// distortion, runtime with phase breakdown, and a guarantee verification.
//
// Metric computation is parallel: the independent relational metrics,
// transaction metrics, the ARE workload (itself batched) and the guarantee
// check fan out over the shared evaluation pool, and the cancellation token
// is polled per metric task and per query batch. Results are value-identical
// to serial computation (each metric is computed exactly as before; only the
// scheduling changes).

#ifndef SECRETA_ENGINE_EVALUATOR_H_
#define SECRETA_ENGINE_EVALUATOR_H_

#include <optional>
#include <string>

#include "engine/anonymization_module.h"
#include "query/query.h"
#include "query/query_evaluator.h"
#include "robust/memory_budget.h"

namespace secreta {

/// Scalar metrics of one run (NaN-free: inapplicable metrics stay 0).
struct EvaluationReport {
  RunResult run;
  double gcp = 0;               ///< relational information loss (0..1)
  double ul = 0;                ///< transaction utility loss (0..1)
  double are = 0;               ///< avg relative error over the workload
  double discernibility = 0;    ///< sum of squared class sizes
  double cavg = 0;              ///< normalized average class size
  double item_freq_error = 0;   ///< mean item-frequency relative error
  double entropy_loss = 0;      ///< non-uniform entropy loss (0..1)
  double kl_relational = 0;     ///< mean KL divergence over QI attributes
  double kl_items = 0;          ///< KL divergence of item supports
  double suppressed = 0;        ///< suppressed item occurrences (absolute)
  /// Wall time of the evaluation phase (all metrics + ARE), reported
  /// separately from the anonymization runtime in `run.runtime_seconds`.
  double evaluation_seconds = 0;
  /// Workload throughput of the ARE phase (0 without a workload).
  double queries_per_second = 0;
  bool guarantee_checked = false;
  bool guarantee_ok = false;
  std::string guarantee_name;
  /// True when the engine shed optional work (ARE workload, transaction
  /// distribution metrics) under a MemoryBudget instead of computing it; the
  /// shed metrics read 0 and `degraded_detail` names them.
  bool degraded = false;
  std::string degraded_detail;

  /// Metric accessor by name: "gcp", "ul", "are", "discernibility", "cavg",
  /// "item_freq_error", "entropy_loss", "kl_relational", "kl_items",
  /// "suppressed", "runtime", "evaluation_seconds", "queries_per_second",
  /// "degraded" (0/1).
  Result<double> Metric(const std::string& name) const;
};

/// \brief Bind-once evaluation state shared across runs.
///
/// Owns a QueryEvaluator plus the workload bound against the dataset's query
/// index (clause bitmaps, overlap caches, precomputed exact counts). Exact
/// counts do not depend on any recoding, so one EvalContext serves every run
/// on the same (dataset, workload) pair: a sweep binds once for all its
/// points, and a comparison grid binds once for all configurations.
/// Read-only after Create — safe to share across comparator threads.
class EvalContext {
 public:
  /// Binds `workload` (may be null/empty: ARE is skipped) against the
  /// dataset of `inputs`. The context borrows `inputs.dataset` and
  /// `inputs.relational`, which must outlive it.
  static Result<EvalContext> Create(const EngineInputs& inputs,
                                    const Workload* workload);

  bool has_workload() const { return bound_.has_value(); }
  const QueryEvaluator& evaluator() const { return *evaluator_; }
  const BoundWorkload& bound_workload() const { return *bound_; }
  size_t workload_size() const { return bound_ ? bound_->size() : 0; }
  /// True when a non-empty workload was requested but shed because binding
  /// it would have exceeded `inputs.memory`; reports built against this
  /// context are flagged degraded.
  bool workload_shed() const { return workload_shed_; }

 private:
  std::optional<QueryEvaluator> evaluator_;
  std::optional<BoundWorkload> bound_;
  ScopedCharge charge_;  // released when the context is destroyed
  bool workload_shed_ = false;
};

/// Runs `config` and computes every applicable metric. `workload` may be
/// null (ARE reported as 0). The privacy guarantee matching the mode is
/// verified and reported (k-anonymity, k^m, policy satisfaction, or
/// (k, k^m)).
Result<EvaluationReport> EvaluateMethod(const EngineInputs& inputs,
                                        const AlgorithmConfig& config,
                                        const Workload* workload);

/// Computes the metrics for an existing run (no re-execution). Binds the
/// workload once for this call; prefer the EvalContext overload when
/// evaluating several runs against the same workload.
Result<EvaluationReport> BuildReport(const EngineInputs& inputs,
                                     RunResult run, const Workload* workload);

/// Computes the metrics for an existing run against a pre-bound evaluation
/// context (no re-binding). `eval` must have been created from the same
/// inputs.
Result<EvaluationReport> BuildReport(const EngineInputs& inputs,
                                     RunResult run, const EvalContext& eval);

}  // namespace secreta

#endif  // SECRETA_ENGINE_EVALUATOR_H_
