// The Method Evaluator (Evaluation mode): runs one configuration and
// assembles the full utility/privacy report — information loss (GCP, UL),
// ARE over a query workload, discernibility, class sizes, item-frequency
// distortion, runtime with phase breakdown, and a guarantee verification.

#ifndef SECRETA_ENGINE_EVALUATOR_H_
#define SECRETA_ENGINE_EVALUATOR_H_

#include <string>

#include "engine/anonymization_module.h"
#include "query/query.h"

namespace secreta {

/// Scalar metrics of one run (NaN-free: inapplicable metrics stay 0).
struct EvaluationReport {
  RunResult run;
  double gcp = 0;               ///< relational information loss (0..1)
  double ul = 0;                ///< transaction utility loss (0..1)
  double are = 0;               ///< avg relative error over the workload
  double discernibility = 0;    ///< sum of squared class sizes
  double cavg = 0;              ///< normalized average class size
  double item_freq_error = 0;   ///< mean item-frequency relative error
  double entropy_loss = 0;      ///< non-uniform entropy loss (0..1)
  double kl_relational = 0;     ///< mean KL divergence over QI attributes
  double kl_items = 0;          ///< KL divergence of item supports
  double suppressed = 0;        ///< suppressed item occurrences (absolute)
  bool guarantee_checked = false;
  bool guarantee_ok = false;
  std::string guarantee_name;

  /// Metric accessor by name: "gcp", "ul", "are", "discernibility", "cavg",
  /// "item_freq_error", "entropy_loss", "kl_relational", "kl_items",
  /// "suppressed", "runtime".
  Result<double> Metric(const std::string& name) const;
};

/// Runs `config` and computes every applicable metric. `workload` may be
/// null (ARE reported as 0). The privacy guarantee matching the mode is
/// verified and reported (k-anonymity, k^m, policy satisfaction, or
/// (k, k^m)).
Result<EvaluationReport> EvaluateMethod(const EngineInputs& inputs,
                                        const AlgorithmConfig& config,
                                        const Workload* workload);

/// Computes the metrics for an existing run (no re-execution).
Result<EvaluationReport> BuildReport(const EngineInputs& inputs,
                                     RunResult run, const Workload* workload);

}  // namespace secreta

#endif  // SECRETA_ENGINE_EVALUATOR_H_
