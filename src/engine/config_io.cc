#include "engine/config_io.h"

#include "common/string_util.h"
#include "engine/registry.h"

namespace secreta {

Result<AlgorithmConfig> ParseAlgorithmConfig(const std::string& spec) {
  AlgorithmConfig config;
  for (const std::string& token : SplitWhitespace(spec)) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("config token missing '=': " + token);
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument("malformed config token: " + token);
    }
    if (key == "mode") {
      if (value == "rt") {
        config.mode = AnonMode::kRt;
      } else if (value == "relational") {
        config.mode = AnonMode::kRelational;
      } else if (value == "transaction") {
        config.mode = AnonMode::kTransaction;
      } else {
        return Status::InvalidArgument("unknown mode: " + value);
      }
    } else if (key == "rel") {
      SECRETA_RETURN_IF_ERROR(MakeRelationalAnonymizer(value).status());
      config.relational_algorithm = value;
    } else if (key == "txn") {
      SECRETA_RETURN_IF_ERROR(MakeTransactionAnonymizer(value).status());
      config.transaction_algorithm = value;
    } else if (key == "merger") {
      SECRETA_ASSIGN_OR_RETURN(config.merger, ParseMergerKind(value));
    } else if (key == "seed") {
      SECRETA_ASSIGN_OR_RETURN(int64_t seed, ParseInt(value));
      config.params.seed = static_cast<uint64_t>(seed);
    } else {
      SECRETA_ASSIGN_OR_RETURN(double number, ParseDouble(value));
      SECRETA_RETURN_IF_ERROR(config.params.Set(key, number));
    }
  }
  SECRETA_RETURN_IF_ERROR(config.params.Validate());
  return config;
}

std::string FormatAlgorithmConfig(const AlgorithmConfig& config) {
  std::string out = StrFormat("mode=%s", AnonModeToString(config.mode));
  if (config.mode != AnonMode::kTransaction) {
    out += " rel=" + config.relational_algorithm;
  }
  if (config.mode != AnonMode::kRelational) {
    out += " txn=" + config.transaction_algorithm;
  }
  if (config.mode == AnonMode::kRt) {
    out += StrFormat(" merger=%s", MergerKindToString(config.merger));
  }
  out += StrFormat(" k=%d m=%d delta=%g", config.params.k, config.params.m,
                   config.params.delta);
  if (config.transaction_algorithm == "LRA") {
    out += StrFormat(" lra_partitions=%d", config.params.lra_partitions);
  }
  if (config.transaction_algorithm == "VPA") {
    out += StrFormat(" vpa_parts=%d", config.params.vpa_parts);
  }
  if (config.transaction_algorithm == "RhoUncertainty") {
    out += StrFormat(" rho=%g", config.params.rho);
  }
  return out;
}

std::string CanonicalConfigString(const AlgorithmConfig& config) {
  // Field order is part of the format: never reorder or omit fields, or every
  // previously computed cache key / fingerprint silently changes. %.17g
  // round-trips IEEE doubles exactly and is locale-independent for the
  // values AnonParams holds.
  return StrFormat(
      "mode=%s rel=%s txn=%s merger=%s k=%d m=%d delta=%.17g "
      "lra_partitions=%d vpa_parts=%d rho=%.17g seed=%llu",
      AnonModeToString(config.mode), config.relational_algorithm.c_str(),
      config.transaction_algorithm.c_str(), MergerKindToString(config.merger),
      config.params.k, config.params.m, config.params.delta,
      config.params.lra_partitions, config.params.vpa_parts, config.params.rho,
      static_cast<unsigned long long>(config.params.seed));
}

uint64_t CanonicalConfigHash(const AlgorithmConfig& config) {
  return Fnv1a64(CanonicalConfigString(config));
}

}  // namespace secreta
