#include "engine/comparator.h"

#include <algorithm>
#include <thread>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "robust/checkpoint.h"
#include "robust/fault_injection.h"

namespace secreta {

Result<std::vector<SweepResult>> CompareMethods(
    const EngineInputs& inputs, const std::vector<AlgorithmConfig>& configs,
    const ParamSweep& sweep, const Workload* workload,
    const CompareOptions& options) {
  if (configs.empty()) {
    return Status::InvalidArgument("no configurations to compare");
  }
  SECRETA_TRACE_SPAN("compare");
  // Bind the workload once for the entire comparison grid: exact counts and
  // clause bitmaps depend only on the dataset, so every configuration's every
  // sweep point shares the same read-only EvalContext.
  SECRETA_ASSIGN_OR_RETURN(EvalContext shared_eval,
                           EvalContext::Create(inputs, workload));
  // One shared, thread-safe checkpoint log for the whole grid; each worker
  // appends its configuration's cells keyed by (point config, config index).
  std::unique_ptr<CheckpointLog> checkpoint;
  if (!options.checkpoint_path.empty()) {
    SECRETA_ASSIGN_OR_RETURN(
        checkpoint,
        OpenCheckpointForRun(options.checkpoint_path, inputs, workload));
  }
  size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  size_t threads = options.num_threads > 0
                       ? options.num_threads
                       : std::min(configs.size(), hw);
  ThreadPool pool(threads, "compare");
  std::vector<Result<SweepResult>> results(
      configs.size(), Result<SweepResult>(Status::Internal("not run")));
  Mutex mutex;
  // Serialize user progress callbacks across workers.
  Mutex progress_mutex;
  ProgressCallback serialized;
  if (options.progress) {
    serialized = [&](const ProgressEvent& event) {
      MutexLock lock(progress_mutex);
      options.progress(event);
    };
  }
  for (size_t i = 0; i < configs.size(); ++i) {
    pool.Submit([&, i] {
      // Inputs are read-only; each run builds its own working state. A
      // cancelled comparison short-circuits configs that have not started
      // (RunSweep also polls the token between points of running sweeps).
      // The span names the grid cell so a trace shows which configuration
      // occupied which worker.
      ScopedSpan span("compare.config " + configs[i].Label());
      Result<SweepResult> r = [&]() -> Result<SweepResult> {
        SECRETA_RETURN_IF_ERROR(
            CheckCancelled(inputs.cancel, "compare config"));
        SECRETA_FAULT_POINT("compare.config");
        return RunSweep(inputs, configs[i], sweep, workload, serialized, i,
                        &shared_eval, checkpoint.get());
      }();
      MutexLock lock(mutex);
      results[i] = std::move(r);
    });
  }
  pool.Wait();
  // Report cancellation ahead of the per-config statuses so the caller sees
  // one canonical Status::Cancelled rather than whichever config lost the
  // race.
  SECRETA_RETURN_IF_ERROR(CheckCancelled(inputs.cancel, "compare"));
  std::vector<SweepResult> out;
  out.reserve(configs.size());
  for (auto& r : results) {
    if (!r.ok()) return r.status();
    out.push_back(std::move(r).value());
  }
  return out;
}

}  // namespace secreta
