#include "engine/evaluator.h"

#include "core/guarantees.h"
#include "metrics/distribution_metrics.h"
#include "metrics/frequency.h"
#include "metrics/information_loss.h"
#include "query/query_evaluator.h"

namespace secreta {

Result<double> EvaluationReport::Metric(const std::string& name) const {
  if (name == "gcp") return gcp;
  if (name == "ul") return ul;
  if (name == "are") return are;
  if (name == "discernibility") return discernibility;
  if (name == "cavg") return cavg;
  if (name == "item_freq_error") return item_freq_error;
  if (name == "entropy_loss") return entropy_loss;
  if (name == "kl_relational") return kl_relational;
  if (name == "kl_items") return kl_items;
  if (name == "suppressed") return suppressed;
  if (name == "runtime") return run.runtime_seconds;
  return Status::InvalidArgument("unknown metric: " + name);
}

Result<EvaluationReport> BuildReport(const EngineInputs& inputs,
                                     RunResult run, const Workload* workload) {
  SECRETA_RETURN_IF_ERROR(CheckCancelled(inputs.cancel, "metrics phase"));
  EvaluationReport report;
  const Dataset& data = *inputs.dataset;
  if (run.relational.has_value()) {
    report.gcp = RecodingGcp(*inputs.relational, *run.relational);
    EquivalenceClasses classes = GroupByRecoding(*run.relational);
    report.discernibility = Discernibility(classes);
    report.cavg = AverageClassSize(classes, run.config.params.k);
    report.entropy_loss = NonUniformEntropyLoss(*inputs.relational,
                                                *run.relational);
    report.kl_relational = MeanKlDivergence(*inputs.relational,
                                            *run.relational);
  }
  if (run.transaction.has_value()) {
    std::vector<std::vector<ItemId>> original;
    original.reserve(data.num_records());
    for (size_t r = 0; r < data.num_records(); ++r) {
      original.push_back(data.items(r));
    }
    report.ul = TransactionUl(*run.transaction, original,
                              data.item_dictionary().size());
    report.item_freq_error = MeanItemFrequencyError(
        *run.transaction, original, data.item_dictionary());
    report.kl_items = ItemKlDivergence(*run.transaction, original,
                                       data.item_dictionary().size());
    report.suppressed =
        static_cast<double>(run.transaction->suppressed_occurrences);
  }
  if (workload != nullptr && !workload->empty()) {
    SECRETA_ASSIGN_OR_RETURN(
        QueryEvaluator evaluator,
        QueryEvaluator::Create(data, inputs.relational));
    const RelationalRecoding* rel =
        run.relational.has_value() ? &*run.relational : nullptr;
    const TransactionRecoding* txn =
        run.transaction.has_value() ? &*run.transaction : nullptr;
    SECRETA_ASSIGN_OR_RETURN(AreReport are,
                             evaluator.Are(*workload, rel, txn));
    report.are = are.are;
  }
  // Guarantee verification.
  const AnonParams& params = run.config.params;
  report.guarantee_checked = true;
  switch (run.config.mode) {
    case AnonMode::kRelational:
      report.guarantee_name = "k-anonymity";
      report.guarantee_ok = IsKAnonymous(*run.relational, params.k);
      break;
    case AnonMode::kTransaction:
      if (inputs.privacy != nullptr && !inputs.privacy->empty()) {
        report.guarantee_name = "privacy-policy";
        report.guarantee_ok =
            SatisfiesPrivacyPolicy(*inputs.privacy, *run.transaction, params.k);
      } else if (run.config.transaction_algorithm == "RhoUncertainty") {
        // Checked by the dedicated property tests; the checker needs the
        // sensitive-item marking, which the engine does not retain.
        report.guarantee_checked = false;
        report.guarantee_name = "rho-uncertainty";
      } else {
        report.guarantee_name = "km-anonymity";
        report.guarantee_ok =
            IsKmAnonymous(run.transaction->records, params.k, params.m);
      }
      break;
    case AnonMode::kRt:
      report.guarantee_name = "(k,km)-anonymity";
      report.guarantee_ok = IsKKmAnonymous(
          *run.relational, run.transaction->records, params.k, params.m);
      break;
  }
  report.run = std::move(run);
  return report;
}

Result<EvaluationReport> EvaluateMethod(const EngineInputs& inputs,
                                        const AlgorithmConfig& config,
                                        const Workload* workload) {
  SECRETA_ASSIGN_OR_RETURN(RunResult run, RunAnonymization(inputs, config));
  return BuildReport(inputs, std::move(run), workload);
}

}  // namespace secreta
