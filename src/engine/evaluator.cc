#include "engine/evaluator.h"

#include <functional>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/guarantees.h"
#include "metrics/distribution_metrics.h"
#include "metrics/frequency.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace secreta {

Result<double> EvaluationReport::Metric(const std::string& name) const {
  if (name == "gcp") return gcp;
  if (name == "ul") return ul;
  if (name == "are") return are;
  if (name == "discernibility") return discernibility;
  if (name == "cavg") return cavg;
  if (name == "item_freq_error") return item_freq_error;
  if (name == "entropy_loss") return entropy_loss;
  if (name == "kl_relational") return kl_relational;
  if (name == "kl_items") return kl_items;
  if (name == "suppressed") return suppressed;
  if (name == "runtime") return run.runtime_seconds;
  if (name == "evaluation_seconds") return evaluation_seconds;
  if (name == "queries_per_second") return queries_per_second;
  if (name == "degraded") return degraded ? 1.0 : 0.0;
  return Status::InvalidArgument("unknown metric: " + name);
}

Result<EvalContext> EvalContext::Create(const EngineInputs& inputs,
                                        const Workload* workload) {
  EvalContext context;
  if (workload == nullptr || workload->empty()) return context;
  // Graceful degradation: the bound workload (clause bitmaps, per-node
  // overlap caches, exact counts) is the evaluator's largest optional
  // structure. Charge an estimate against the soft budget first and shed
  // ARE entirely — reports then carry the `degraded` flag — rather than
  // binding past the limit.
  size_t records = inputs.dataset->num_records();
  size_t estimate = workload->size() * (records / 8 + 160) + records * 16;
  ScopedCharge charge(inputs.memory, estimate);
  if (!charge.acquired()) {
    context.workload_shed_ = true;
    return context;
  }
  SECRETA_ASSIGN_OR_RETURN(
      QueryEvaluator evaluator,
      QueryEvaluator::Create(*inputs.dataset, inputs.relational));
  context.evaluator_.emplace(std::move(evaluator));
  SECRETA_ASSIGN_OR_RETURN(
      BoundWorkload bound,
      context.evaluator_->BindWorkload(*workload, &SharedEvalPool()));
  context.bound_.emplace(std::move(bound));
  context.charge_ = std::move(charge);
  return context;
}

Result<EvaluationReport> BuildReport(const EngineInputs& inputs,
                                     RunResult run, const EvalContext& eval) {
  SECRETA_RETURN_IF_ERROR(CheckCancelled(inputs.cancel, "metrics phase"));
  SECRETA_FAULT_POINT("evaluate.metrics");
  SECRETA_TRACE_SPAN("evaluate");
  Stopwatch eval_watch;
  EvaluationReport report;
  const Dataset& data = *inputs.dataset;
  const CancellationToken* cancel = inputs.cancel;
  ThreadPool* pool = &SharedEvalPool();

  // Independent metric computations, fanned out over the shared pool. Each
  // task polls the token on entry and writes a distinct report field, so no
  // synchronization beyond the final join is needed.
  std::vector<std::function<Status()>> tasks;
  auto add_task = [&](const char* where, std::function<void()> body) {
    tasks.push_back([where, cancel, body = std::move(body)]() -> Status {
      SECRETA_RETURN_IF_ERROR(CheckCancelled(cancel, where));
      // Spans are named after the task ("evaluate.gcp metric", ...), so a
      // trace shows which metric dominated the fan-out.
      ScopedSpan span(std::string("evaluate.") + where);
      body();
      return Status::OK();
    });
  };

  if (run.relational.has_value()) {
    const RelationalRecoding& recoding = *run.relational;
    add_task("gcp metric",
             [&] { report.gcp = RecodingGcp(*inputs.relational, recoding); });
    add_task("class metrics", [&, k = run.config.params.k] {
      EquivalenceClasses classes = GroupByRecoding(recoding);
      report.discernibility = Discernibility(classes);
      report.cavg = AverageClassSize(classes, k);
    });
    add_task("entropy metric", [&] {
      report.entropy_loss = NonUniformEntropyLoss(*inputs.relational, recoding);
    });
    add_task("kl metric", [&] {
      report.kl_relational = MeanKlDivergence(*inputs.relational, recoding);
    });
  }
  std::vector<std::string> shed;
  std::vector<std::vector<ItemId>> original;
  ScopedCharge original_charge;
  if (run.transaction.has_value()) {
    const TransactionRecoding& recoding = *run.transaction;
    // The distribution metrics need a full copy of the original
    // transactions. Charge it against the soft budget; when it does not fit,
    // shed those metrics (they read 0, the report says so) and keep the
    // cheap ones.
    size_t original_bytes = 0;
    for (size_t r = 0; r < data.num_records(); ++r) {
      original_bytes +=
          data.items(r).raw().size() * sizeof(ItemId) + sizeof(std::vector<ItemId>);
    }
    original_charge = ScopedCharge(inputs.memory, original_bytes);
    if (original_charge.acquired()) {
      original.reserve(data.num_records());
      for (size_t r = 0; r < data.num_records(); ++r) {
        original.push_back(data.items(r).raw());
      }
      add_task("ul metric", [&] {
        report.ul =
            TransactionUl(recoding, original, data.item_dictionary().size());
      });
      add_task("item frequency metric", [&] {
        report.item_freq_error =
            MeanItemFrequencyError(recoding, original, data.item_dictionary());
      });
      add_task("item kl metric", [&] {
        report.kl_items =
            ItemKlDivergence(recoding, original, data.item_dictionary().size());
      });
    } else {
      shed.push_back(
          "transaction distribution metrics (ul, item_freq_error, kl_items)");
    }
    report.suppressed = static_cast<double>(recoding.suppressed_occurrences);
  }
  if (eval.workload_shed()) {
    shed.push_back("ARE query workload");
  }
  Status are_status;
  double are_seconds = 0;
  if (eval.has_workload()) {
    tasks.push_back([&]() -> Status {
      const RelationalRecoding* rel =
          run.relational.has_value() ? &*run.relational : nullptr;
      const TransactionRecoding* txn =
          run.transaction.has_value() ? &*run.transaction : nullptr;
      Stopwatch are_watch;
      ScopedSpan span(std::string_view("evaluate.are"));
      // Nested fan-out over the same pool: the ARE task helps drain its own
      // query batches, so composing with the metric fan-out (and with
      // comparator-level parallelism above) cannot deadlock.
      Result<AreReport> are = eval.evaluator().Are(eval.bound_workload(), rel,
                                                   txn, pool, cancel);
      are_seconds = are_watch.ElapsedSeconds();
      if (!are.ok()) return are.status();
      report.are = are.value().are;
      return Status::OK();
    });
  }
  add_task("guarantee check", [&] {
    const AnonParams& params = run.config.params;
    report.guarantee_checked = true;
    switch (run.config.mode) {
      case AnonMode::kRelational:
        report.guarantee_name = "k-anonymity";
        report.guarantee_ok = IsKAnonymous(*run.relational, params.k);
        break;
      case AnonMode::kTransaction:
        if (inputs.privacy != nullptr && !inputs.privacy->empty()) {
          report.guarantee_name = "privacy-policy";
          report.guarantee_ok = SatisfiesPrivacyPolicy(
              *inputs.privacy, *run.transaction, params.k);
        } else if (run.config.transaction_algorithm == "RhoUncertainty") {
          // Checked by the dedicated property tests; the checker needs the
          // sensitive-item marking, which the engine does not retain.
          report.guarantee_checked = false;
          report.guarantee_name = "rho-uncertainty";
        } else {
          report.guarantee_name = "km-anonymity";
          report.guarantee_ok =
              IsKmAnonymous(run.transaction->records, params.k, params.m);
        }
        break;
      case AnonMode::kRt:
        report.guarantee_name = "(k,km)-anonymity";
        report.guarantee_ok = IsKKmAnonymous(
            *run.relational, run.transaction->records, params.k, params.m);
        break;
    }
  });

  std::vector<Status> statuses(tasks.size());
  ParallelFor(pool, tasks.size(),
              [&](size_t i) { statuses[i] = tasks[i](); });
  // Report cancellation canonically ahead of whichever task observed it.
  SECRETA_RETURN_IF_ERROR(CheckCancelled(inputs.cancel, "metrics phase"));
  for (const Status& status : statuses) {
    SECRETA_RETURN_IF_ERROR(status);
  }

  if (!shed.empty()) {
    report.degraded = true;
    report.degraded_detail =
        "memory budget exceeded; shed: " + Join(shed, "; ");
  }
  report.evaluation_seconds = eval_watch.ElapsedSeconds();
  if (eval.has_workload() && are_seconds > 0) {
    report.queries_per_second =
        static_cast<double>(eval.workload_size()) / are_seconds;
  }
  run.phases.Add("evaluation", report.evaluation_seconds);
  // Break the ARE sub-phase out of the aggregate evaluation row so reports
  // and JSON exports show where query estimation time goes.
  if (eval.has_workload() && are_seconds > 0) {
    run.phases.Add("are", are_seconds);
  }
  report.run = std::move(run);
  return report;
}

Result<EvaluationReport> BuildReport(const EngineInputs& inputs,
                                     RunResult run, const Workload* workload) {
  SECRETA_ASSIGN_OR_RETURN(EvalContext eval,
                           EvalContext::Create(inputs, workload));
  return BuildReport(inputs, std::move(run), eval);
}

Result<EvaluationReport> EvaluateMethod(const EngineInputs& inputs,
                                        const AlgorithmConfig& config,
                                        const Workload* workload) {
  SECRETA_ASSIGN_OR_RETURN(RunResult run, RunAnonymization(inputs, config));
  return BuildReport(inputs, std::move(run), workload);
}

}  // namespace secreta
