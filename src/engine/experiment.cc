#include "engine/experiment.h"

#include "obs/metric_names.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "robust/checkpoint.h"
#include "robust/fault_injection.h"

namespace secreta {

Result<std::vector<double>> ParamSweep::Values() const {
  if (step <= 0) return Status::InvalidArgument("sweep step must be positive");
  if (end < start) return Status::InvalidArgument("sweep end < start");
  std::vector<double> values;
  // Tolerate floating-point drift at the upper bound.
  for (double v = start; v <= end + step * 1e-9; v += step) {
    values.push_back(v);
    if (values.size() > 10000) {
      return Status::InvalidArgument("sweep has more than 10000 points");
    }
  }
  return values;
}

Result<Series> SweepResult::Extract(const std::string& metric) const {
  Series series;
  series.name = base.Label() + " " + metric;
  for (const SweepPoint& point : points) {
    SECRETA_ASSIGN_OR_RETURN(double y, point.report.Metric(metric));
    series.x.push_back(point.value);
    series.y.push_back(y);
  }
  return series;
}

Result<SweepResult> RunSweep(const EngineInputs& inputs,
                             const AlgorithmConfig& config,
                             const ParamSweep& sweep, const Workload* workload,
                             const ProgressCallback& progress,
                             size_t config_index,
                             const EvalContext* shared_eval,
                             CheckpointLog* checkpoint) {
  SweepResult result;
  result.base = config;
  result.sweep = sweep;
  SECRETA_ASSIGN_OR_RETURN(std::vector<double> values, sweep.Values());
  // Bind the workload once for the whole sweep (unless the caller already
  // shares a context across several sweeps) instead of once per point.
  std::optional<EvalContext> own_eval;
  if (shared_eval == nullptr) {
    SECRETA_ASSIGN_OR_RETURN(EvalContext created,
                             EvalContext::Create(inputs, workload));
    own_eval.emplace(std::move(created));
    shared_eval = &*own_eval;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    SECRETA_RETURN_IF_ERROR(CheckCancelled(inputs.cancel, "sweep point"));
    SECRETA_FAULT_POINT("sweep.point");
    SECRETA_TRACE_SPAN("sweep.point");
    double value = values[i];
    AlgorithmConfig point_config = config;
    SECRETA_RETURN_IF_ERROR(point_config.params.Set(sweep.parameter, value));
    SECRETA_RETURN_IF_ERROR(point_config.params.Validate());
    uint64_t point_key = 0;
    bool from_checkpoint = false;
    if (checkpoint != nullptr) {
      point_key = CheckpointLog::PointKey(
          point_config, checkpoint->dataset_fingerprint(),
          checkpoint->workload_fingerprint(), config_index);
      EvaluationReport restored;
      if (checkpoint->Find(point_key, &restored)) {
        // The log stores everything but the config and recodings; the config
        // is recomputed above exactly as the recorded run computed it.
        restored.run.config = point_config;
        result.points.push_back({value, std::move(restored)});
        from_checkpoint = true;
        MetricsRegistry::Global()
            .counter(metric_names::kCheckpointPointsRestored)
            ->Increment();
      }
    }
    if (!from_checkpoint) {
      SECRETA_ASSIGN_OR_RETURN(RunResult run,
                               RunAnonymization(inputs, point_config));
      SECRETA_ASSIGN_OR_RETURN(
          EvaluationReport report,
          BuildReport(inputs, std::move(run), *shared_eval));
      result.points.push_back({value, std::move(report)});
      if (checkpoint != nullptr) {
        SECRETA_RETURN_IF_ERROR(checkpoint->Append(
            point_key, value, result.points.back().report));
        MetricsRegistry::Global()
            .counter(metric_names::kCheckpointPointsAppended)
            ->Increment();
      }
    }
    if (progress) {
      ProgressEvent event;
      event.config_index = config_index;
      event.point_index = i;
      event.total_points = values.size();
      event.value = value;
      event.report = &result.points.back().report;
      event.from_checkpoint = from_checkpoint;
      progress(event);
    }
  }
  return result;
}

}  // namespace secreta
