// The Anonymization Module (paper Fig. 1): executes one anonymization
// algorithm (or RT combination) with a given configuration and collects the
// structured result plus per-phase timings.

#ifndef SECRETA_ENGINE_ANONYMIZATION_MODULE_H_
#define SECRETA_ENGINE_ANONYMIZATION_MODULE_H_

#include <optional>
#include <string>

#include "algo/rt/rt_anonymizer.h"
#include "common/cancellation.h"
#include "common/stopwatch.h"
#include "core/context.h"
#include "core/params.h"
#include "core/results.h"
#include "policy/policy.h"

namespace secreta {

class MemoryBudget;

/// Which side(s) of the dataset a run anonymizes.
enum class AnonMode { kRelational, kTransaction, kRt };

const char* AnonModeToString(AnonMode mode);

/// One fully specified anonymization request.
struct AlgorithmConfig {
  AnonMode mode = AnonMode::kRt;
  std::string relational_algorithm = "Cluster";    // kRelational / kRt
  std::string transaction_algorithm = "Apriori";   // kTransaction / kRt
  MergerKind merger = MergerKind::kRTmerger;       // kRt
  AnonParams params;

  /// Display label, e.g. "Cluster+Apriori/RTmerger k=5 m=2".
  std::string Label() const;
};

/// Everything a run needs. Pointers are non-owning; the relational context is
/// required for kRelational/kRt, the transaction context for
/// kTransaction/kRt. Policies (optional) are forwarded to COAT/PCTA.
struct EngineInputs {
  const Dataset* dataset = nullptr;
  const RelationalContext* relational = nullptr;
  const TransactionContext* transaction = nullptr;
  const PrivacyPolicy* privacy = nullptr;
  const UtilityPolicy* utility = nullptr;
  /// Optional cooperative cancellation handle (non-owning). When set, the
  /// engine polls it at phase boundaries — before each anonymization phase,
  /// between RT cluster merges, and between sweep points — and unwinds with
  /// Status::Cancelled.
  const CancellationToken* cancel = nullptr;
  /// Optional soft memory budget (non-owning). When set, the evaluator
  /// charges its large optional structures (bound ARE workload, original-
  /// transaction copies) against it and sheds them — flagging the report
  /// `degraded` — instead of allocating past the limit.
  MemoryBudget* memory = nullptr;
};

/// Structured output of one run.
struct RunResult {
  AlgorithmConfig config;
  std::optional<RelationalRecoding> relational;
  std::optional<TransactionRecoding> transaction;
  PhaseTimer phases;
  double runtime_seconds = 0;
  // RT statistics (zero otherwise).
  size_t initial_clusters = 0;
  size_t final_clusters = 0;
  size_t merges = 0;
};

/// Executes one configuration.
Result<RunResult> RunAnonymization(const EngineInputs& inputs,
                                   const AlgorithmConfig& config);

/// Materializes the anonymized dataset of a run (generalized labels).
Result<Dataset> MaterializeRun(const EngineInputs& inputs,
                               const RunResult& result);

}  // namespace secreta

#endif  // SECRETA_ENGINE_ANONYMIZATION_MODULE_H_
