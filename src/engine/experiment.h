// The Experimentation Module: single-parameter execution (one report) and
// varying-parameter execution (a sweep producing metric-vs-parameter series),
// plus the Series type consumed by the plotting and export modules.

#ifndef SECRETA_ENGINE_EXPERIMENT_H_
#define SECRETA_ENGINE_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "engine/evaluator.h"

namespace secreta {

class CheckpointLog;

/// Progress notification emitted after every completed sweep point — the
/// mechanism behind the paper's "interactive and progressive" analysis: the
/// frontend can render partial series while the experiment continues.
struct ProgressEvent {
  size_t config_index = 0;   ///< which configuration (Comparison mode)
  size_t point_index = 0;    ///< 0-based index of the finished point
  size_t total_points = 0;   ///< points in this sweep
  double value = 0;          ///< the varying parameter's value
  const EvaluationReport* report = nullptr;  ///< finished point (borrowed)
  /// True when the point was replayed from a checkpoint instead of computed.
  bool from_checkpoint = false;
};

/// Observer for progress events. In Comparison mode callbacks may fire from
/// worker threads; CompareMethods serializes them (one at a time).
using ProgressCallback = std::function<void(const ProgressEvent&)>;

/// A named (x, y) series, the unit of plotting and CSV export.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  size_t size() const { return x.size(); }
};

/// A varying parameter: name ("k", "m", "delta", ...), inclusive range and
/// step.
struct ParamSweep {
  std::string parameter = "k";
  double start = 2;
  double end = 10;
  double step = 2;

  /// The concrete values of the sweep (start, start+step, ..., <= end).
  Result<std::vector<double>> Values() const;
};

/// One point of a sweep: parameter value + full report.
struct SweepPoint {
  double value = 0;
  EvaluationReport report;
};

/// A completed sweep for one configuration.
struct SweepResult {
  AlgorithmConfig base;
  ParamSweep sweep;
  std::vector<SweepPoint> points;

  /// Extracts metric `name` ("are", "gcp", "ul", "runtime", ...) as a Series
  /// labeled "<config label> <metric>".
  Result<Series> Extract(const std::string& metric) const;
};

/// Runs `config` once per sweep value (the varying parameter overrides the
/// corresponding field of config.params). `progress` (optional) fires after
/// each point; `config_index` tags Comparison-mode events. `shared_eval`
/// (optional) supplies a pre-bound evaluation context — the comparator binds
/// the workload once and shares it across every configuration; when null the
/// sweep binds once for all of its own points. `checkpoint` (optional)
/// enables resume: points already recorded in the log are replayed
/// bit-identically (ProgressEvent::from_checkpoint set) instead of
/// recomputed, and every freshly computed point is appended to the log
/// before the sweep moves on.
Result<SweepResult> RunSweep(const EngineInputs& inputs,
                             const AlgorithmConfig& config,
                             const ParamSweep& sweep, const Workload* workload,
                             const ProgressCallback& progress = nullptr,
                             size_t config_index = 0,
                             const EvalContext* shared_eval = nullptr,
                             CheckpointLog* checkpoint = nullptr);

}  // namespace secreta

#endif  // SECRETA_ENGINE_EXPERIMENT_H_
