#include "obs/metrics_registry.h"

#include <algorithm>

#include "common/string_util.h"

namespace secreta {

const std::vector<double>& LatencyHistogram::BucketBounds() {
  // Leaked: workers of the process-lifetime pools may record during exit,
  // after static destructors would have run. Suppressed for LeakSanitizer in
  // .lsan-suppressions.txt (used by the asan CI workflow), together with the
  // other intentional singleton leaks: MetricsRegistry::Global, Tracer::Get,
  // FaultInjector::Global and SharedEvalPool.
  static const std::vector<double>* kBounds = new std::vector<double>{
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
      0.2,   0.5,   1.0,   2.0,  5.0,  10.0};
  return *kBounds;
}

LatencyHistogram::LatencyHistogram() : buckets_(BucketBounds().size() + 1, 0) {}

void LatencyHistogram::Record(double seconds) {
  seconds = std::max(0.0, seconds);
  const std::vector<double>& bounds = BucketBounds();
  size_t bucket =
      std::upper_bound(bounds.begin(), bounds.end(), seconds) - bounds.begin();
  MutexLock lock(mutex_);
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (seconds > max_) max_ = seconds;
  ++count_;
  sum_ += seconds;
  ++buckets_[bucket];
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  MutexLock lock(mutex_);
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum_seconds = sum_;
  snap.min_seconds = min_;
  snap.max_seconds = max_;
  snap.buckets = buckets_;
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snap;
}

std::string MetricsRegistry::ToText() const {
  MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += StrFormat("%s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    out += StrFormat("%s %g\n", name.c_str(), value);
  }
  for (const auto& [name, histogram] : snap.histograms) {
    out += StrFormat("%s count=%llu mean=%.6fs max=%.6fs\n", name.c_str(),
                     static_cast<unsigned long long>(histogram.count),
                     histogram.mean_seconds(), histogram.max_seconds);
  }
  return out;
}

}  // namespace secreta
