#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace secreta {

namespace {

/// Canonical form used for series identity: sorted by key, duplicate keys
/// collapsed to the last value given.
MetricLabels CanonicalLabels(const MetricLabels& labels) {
  MetricLabels sorted = labels;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  MetricLabels out;
  out.reserve(sorted.size());
  for (auto& kv : sorted) {
    if (!out.empty() && out.back().first == kv.first) {
      out.back().second = std::move(kv.second);
    } else {
      out.push_back(std::move(kv));
    }
  }
  return out;
}

}  // namespace

std::string MetricKey::Render() const {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target sample, 1-based; q=0 maps to the first sample.
  const double rank = std::max(1.0, q * static_cast<double>(count));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate linearly between the bucket's bounds; the overflow bucket
    // and the extremes clamp to the observed min/max.
    const double lower = i == 0 ? min_seconds : bounds[i - 1];
    const double upper = i < bounds.size() ? bounds[i] : max_seconds;
    const double fraction =
        (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    double value = lower + (upper - lower) * fraction;
    return std::min(max_seconds, std::max(min_seconds, value));
  }
  return max_seconds;
}

const std::vector<double>& LatencyHistogram::BucketBounds() {
  // Leaked: workers of the process-lifetime pools may record during exit,
  // after static destructors would have run. Suppressed for LeakSanitizer in
  // .lsan-suppressions.txt (used by the asan CI workflow), together with the
  // other intentional singleton leaks: MetricsRegistry::Global, Tracer::Get,
  // FaultInjector::Global and SharedEvalPool.
  static const std::vector<double>* kBounds = new std::vector<double>{
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
      0.2,   0.5,   1.0,   2.0,  5.0,  10.0};
  return *kBounds;
}

LatencyHistogram::LatencyHistogram() : LatencyHistogram(BucketBounds()) {}

LatencyHistogram::LatencyHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  bool valid = !bounds_.empty();
  for (size_t i = 0; valid && i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]) ||
        (i > 0 && bounds_[i] <= bounds_[i - 1])) {
      valid = false;
    }
  }
  if (!valid) bounds_ = BucketBounds();
  buckets_.assign(bounds_.size() + 1, 0);
}

void LatencyHistogram::Record(double seconds) {
  // A bad clock read (negative delta, NaN from a 0/0, +inf) must not corrupt
  // bucket indexing via upper_bound on an unordered value or poison sum_.
  if (std::isnan(seconds) || seconds < 0) seconds = 0;
  if (std::isinf(seconds)) seconds = 1e9;
  size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), seconds) -
      bounds_.begin();
  MutexLock lock(mutex_);
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (seconds > max_) max_ = seconds;
  ++count_;
  sum_ += seconds;
  ++buckets_[bucket];
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  MutexLock lock(mutex_);
  snap.count = count_;
  snap.sum_seconds = sum_;
  snap.min_seconds = min_;
  snap.max_seconds = max_;
  snap.buckets = buckets_;
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[MetricKey{name, {}}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const MetricLabels& labels) {
  MetricKey key{name, CanonicalLabels(labels)};
  MutexLock lock(mutex_);
  auto& slot = counters_[std::move(key)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[MetricKey{name, {}}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name,
                              const MetricLabels& labels) {
  MetricKey key{name, CanonicalLabels(labels)};
  MutexLock lock(mutex_);
  auto& slot = gauges_[std::move(key)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[MetricKey{name, {}}];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name,
                                             const MetricLabels& labels,
                                             const std::vector<double>& bounds) {
  MetricKey key{name, CanonicalLabels(labels)};
  MutexLock lock(mutex_);
  auto& slot = histograms_[std::move(key)];
  if (slot == nullptr) {
    slot = bounds.empty() ? std::make_unique<LatencyHistogram>()
                          : std::make_unique<LatencyHistogram>(bounds);
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    snap.counters.emplace_back(key, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, gauge] : gauges_) {
    snap.gauges.emplace_back(key, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, histogram] : histograms_) {
    snap.histograms.emplace_back(key, histogram->Snapshot());
  }
  return snap;
}

std::string MetricsRegistry::ToText() const {
  MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& [key, value] : snap.counters) {
    out += StrFormat("%s %llu\n", key.Render().c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [key, value] : snap.gauges) {
    out += StrFormat("%s %g\n", key.Render().c_str(), value);
  }
  for (const auto& [key, histogram] : snap.histograms) {
    out += StrFormat("%s count=%llu mean=%.6fs p99=%.6fs max=%.6fs\n",
                     key.Render().c_str(),
                     static_cast<unsigned long long>(histogram.count),
                     histogram.mean_seconds(), histogram.Quantile(0.99),
                     histogram.max_seconds);
  }
  return out;
}

std::string MetricsSnapshotDeltaToText(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after,
                                       double seconds) {
  if (seconds <= 0) seconds = 1;
  std::string out;
  // Both snapshots are sorted by key; a map of the smaller "before" side
  // keeps the diff linear-log without assuming identical series sets.
  std::map<MetricKey, uint64_t> prev_counters(before.counters.begin(),
                                              before.counters.end());
  for (const auto& [key, value] : after.counters) {
    auto it = prev_counters.find(key);
    const uint64_t prev = it == prev_counters.end() ? 0 : it->second;
    if (value == prev) continue;
    const double rate = static_cast<double>(value - prev) / seconds;
    out += StrFormat("%s +%llu (%.1f/s)\n", key.Render().c_str(),
                     static_cast<unsigned long long>(value - prev), rate);
  }
  std::map<MetricKey, double> prev_gauges(before.gauges.begin(),
                                          before.gauges.end());
  for (const auto& [key, value] : after.gauges) {
    auto it = prev_gauges.find(key);
    const double prev = it == prev_gauges.end() ? 0 : it->second;
    if (value == prev) continue;
    out += StrFormat("%s %g (was %g)\n", key.Render().c_str(), value, prev);
  }
  std::map<MetricKey, uint64_t> prev_hist;
  for (const auto& [key, histogram] : before.histograms) {
    prev_hist.emplace(key, histogram.count);
  }
  for (const auto& [key, histogram] : after.histograms) {
    auto it = prev_hist.find(key);
    const uint64_t prev = it == prev_hist.end() ? 0 : it->second;
    if (histogram.count == prev) continue;
    const double rate =
        static_cast<double>(histogram.count - prev) / seconds;
    out += StrFormat(
        "%s count +%llu (%.1f/s) p50=%.6fs p99=%.6fs\n", key.Render().c_str(),
        static_cast<unsigned long long>(histogram.count - prev), rate,
        histogram.Quantile(0.5), histogram.Quantile(0.99));
  }
  if (out.empty()) out = "(no change)\n";
  return out;
}

}  // namespace secreta
