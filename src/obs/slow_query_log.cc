#include "obs/slow_query_log.h"

#include "common/string_util.h"
#include "export/json_writer.h"
#include "obs/metric_names.h"
#include "obs/metrics_registry.h"

namespace secreta {

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();  // leaked, like the registry
  return *log;
}

SlowQueryLog::SlowQueryLog()
    : records_counter_(MetricsRegistry::Global().counter(
          metric_names::kSlowQueryLogRecords)) {}

SlowQueryLog::~SlowQueryLog() { Close(); }

Status SlowQueryLog::Open(const std::string& path, double threshold_seconds) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError(
        StrFormat("cannot open slow-query log \"%s\"", path.c_str()));
  }
  MutexLock lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  threshold_seconds_ = threshold_seconds;
  records_written_ = 0;
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

void SlowQueryLog::Close() {
  MutexLock lock(mutex_);
  enabled_.store(false, std::memory_order_release);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

double SlowQueryLog::threshold_seconds() const {
  MutexLock lock(mutex_);
  return threshold_seconds_;
}

void SlowQueryLog::Record(const SlowQueryRecord& record) {
  if (!enabled()) return;
  const std::string line = SlowQueryRecordToJsonLine(record);
  {
    MutexLock lock(mutex_);
    if (file_ == nullptr) return;
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    // Flushed per record so operators can tail the file live; slow queries
    // are rare by construction, so the flush is off the hot path.
    std::fflush(file_);
    ++records_written_;
  }
  records_counter_->Increment();
}

uint64_t SlowQueryLog::records_written() const {
  MutexLock lock(mutex_);
  return records_written_;
}

std::string SlowQueryRecordToJsonLine(const SlowQueryRecord& record) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("trace_id");
  writer.Int(static_cast<int64_t>(record.trace_id));
  writer.Key("tenant");
  writer.String(record.tenant);
  writer.Key("dataset");
  writer.String(record.dataset);
  writer.Key("query_shape");
  writer.String(record.query_shape);
  writer.Key("outcome");
  writer.String(record.outcome);
  writer.Key("kernel_tier");
  writer.String(record.kernel_tier);
  writer.Key("queue_seconds");
  writer.Number(record.queue_seconds);
  writer.Key("run_seconds");
  writer.Number(record.run_seconds);
  writer.Key("total_seconds");
  writer.Number(record.total_seconds);
  writer.Key("threshold_seconds");
  writer.Number(record.threshold_seconds);
  writer.Key("cached");
  writer.Bool(record.cached);
  writer.EndObject();
  return writer.TakeString();
}

}  // namespace secreta
