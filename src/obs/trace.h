// Span tracer: the timing half of the observability layer. RAII ScopedSpans
// record (name, thread, start, duration, nesting depth) into per-thread
// buffers and export Chrome trace-event JSON that chrome://tracing and
// Perfetto open directly, so a full experiment run (anonymize → evaluate →
// compare) can be inspected phase by phase without a debugger.
//
// Design constraints, in order:
//  - Near-zero overhead when disabled: a span costs one relaxed atomic load.
//  - No locks on the hot path when enabled: every thread appends to its own
//    chunked buffer and publishes entries with a release store; the exporter
//    reads them with acquire loads. A mutex is taken only on a thread's
//    first span (buffer registration) and on first use of a span name
//    (interning).
//  - Buffers are append-only. Reset() discards logically (events that start
//    before the reset mark are skipped on export) so no memory is ever
//    reclaimed out from under a recording thread.
//
// Usage:
//   Tracer::Get().Enable();
//   {
//     SECRETA_TRACE_SPAN("anonymize");          // static name, interned once
//     ScopedSpan inner("algo." + config.Label());  // dynamic name
//     ...
//   }
//   Tracer::Get().WriteChromeTrace("trace.json");
//
// Span naming convention: dotted lowercase paths, broad to narrow —
// "anonymize", "anonymize.relational", "evaluate", "evaluate.are",
// "are.batch", "compare", "compare.config", "sweep.point", "job.run",
// "algo.<Name>". See DESIGN.md §Observability.

#ifndef SECRETA_OBS_TRACE_H_
#define SECRETA_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace secreta {

/// One completed span. Timestamps are nanoseconds on the steady clock,
/// relative to the tracer's construction.
struct TraceEvent {
  uint32_t name_id = 0;
  uint32_t depth = 0;  ///< nesting depth on the recording thread (1 = root)
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

/// A TraceEvent joined with its resolved name and thread id, as returned by
/// Tracer::CollectEvents (tests and custom exporters).
struct ResolvedTraceEvent {
  std::string name;
  uint32_t tid = 0;
  uint32_t depth = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

/// \brief Process-wide span collector.
///
/// All members are thread-safe. Export may run concurrently with recording:
/// it sees every span published before the export started and none of the
/// partially written ones.
class Tracer {
 public:
  static Tracer& Get();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Maps `name` to a stable id, inserting on first use. Ids are dense and
  /// never invalidated.
  uint32_t Intern(std::string_view name) SECRETA_EXCLUDES(mutex_);

  /// Nanoseconds since tracer construction (steady clock).
  uint64_t NowNs() const;

  /// Appends a completed span to the calling thread's buffer.
  void Record(uint32_t name_id, uint64_t start_ns, uint64_t dur_ns,
              uint32_t depth);

  /// Every span recorded since the last Reset(), sorted by (tid, start).
  std::vector<ResolvedTraceEvent> CollectEvents() const
      SECRETA_EXCLUDES(mutex_);

  /// Spans recorded since the last Reset().
  size_t num_events() const;

  /// Logically discards everything recorded so far (buffers are kept; spans
  /// that started before this call are skipped on export).
  void Reset();

  /// Serializes collected spans as Chrome trace-event JSON ("X" complete
  /// events in microseconds, plus process/thread "M" metadata).
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  // Chunked per-thread event buffer. The owning thread writes events and
  // publishes them via `count` (release); readers walk `next`/`count` with
  // acquire loads. Chunks are never freed while the tracer lives.
  struct Chunk {
    static constexpr size_t kCapacity = 4096;
    std::array<TraceEvent, kCapacity> events;
    std::atomic<uint32_t> count{0};
    std::atomic<Chunk*> next{nullptr};
  };

  struct ThreadBuffer {
    uint32_t tid = 0;
    std::unique_ptr<Chunk> head;
    Chunk* tail = nullptr;  ///< owner-thread cache of the last chunk
  };

  Tracer();
  ThreadBuffer* BufferForThisThread() SECRETA_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> discard_before_ns_{0};
  std::chrono::steady_clock::time_point epoch_;

  // Guards buffer registration and name interning; the record hot path is
  // lock-free (per-thread chunks published with release stores).
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      SECRETA_GUARDED_BY(mutex_);
  std::vector<std::string> names_ SECRETA_GUARDED_BY(mutex_);
  std::unordered_map<std::string, uint32_t> name_ids_
      SECRETA_GUARDED_BY(mutex_);
};

/// \brief RAII span: measures construction-to-destruction on the current
/// thread. When the tracer is disabled at construction, both ends are no-ops.
class ScopedSpan {
 public:
  /// Hot-path form: `name_id` was interned ahead of time (see
  /// SECRETA_TRACE_SPAN, which interns once per call site).
  explicit ScopedSpan(uint32_t name_id);

  /// Dynamic-name form: interns `name` only when the tracer is enabled.
  explicit ScopedSpan(std::string_view name);

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

 private:
  void Open(uint32_t name_id);

  bool active_ = false;
  uint32_t name_id_ = 0;
  uint32_t depth_ = 0;
  uint64_t start_ns_ = 0;
};

#define SECRETA_TRACE_CAT2(a, b) a##b
#define SECRETA_TRACE_CAT(a, b) SECRETA_TRACE_CAT2(a, b)

/// Opens a span for the rest of the enclosing scope. `name` must be a string
/// usable at static-initialization time (normally a literal); it is interned
/// exactly once per call site.
#define SECRETA_TRACE_SPAN(name)                                      \
  static const uint32_t SECRETA_TRACE_CAT(secreta_span_id_,           \
                                          __LINE__) =                 \
      ::secreta::Tracer::Get().Intern(name);                          \
  ::secreta::ScopedSpan SECRETA_TRACE_CAT(secreta_span_, __LINE__)(   \
      SECRETA_TRACE_CAT(secreta_span_id_, __LINE__))

}  // namespace secreta

#endif  // SECRETA_OBS_TRACE_H_
