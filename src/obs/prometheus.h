// Prometheus text exposition (format version 0.0.4) over a MetricsSnapshot.
// Dotted family names are sanitized to underscores ("serve.requests" ->
// "serve_requests"), counters gain the conventional "_total" suffix, and
// histograms expand to the cumulative _bucket{le=...} / _sum / _count
// triplet. Served by the embedded HTTP endpoint in src/serve/http_metrics.h
// (`secreta_jobd --metrics-listen`), so any standard scraper can ingest the
// per-tenant serving metrics.

#ifndef SECRETA_OBS_PROMETHEUS_H_
#define SECRETA_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics_registry.h"

namespace secreta {

/// Sanitizes a metric family name to the Prometheus charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*; every other character becomes '_'.
std::string PrometheusName(const std::string& name);

/// Renders the whole snapshot in Prometheus text exposition format. Series
/// of one family are contiguous (the snapshot is sorted), each family gets
/// one `# TYPE` header.
std::string MetricsSnapshotToPrometheus(const MetricsSnapshot& snapshot);

}  // namespace secreta

#endif  // SECRETA_OBS_PROMETHEUS_H_
