#include "obs/prometheus.h"

#include <cctype>

#include "common/string_util.h"

namespace secreta {

namespace {

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders `{k="v",...}` with an optional extra label appended (used for
/// the histogram `le` bound); empty string when there are no labels at all.
std::string RenderLabels(const MetricLabels& labels, const char* extra_key,
                         const std::string& extra_value) {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += PrometheusName(key);
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string FormatBound(double bound) {
  std::string text = StrFormat("%g", bound);
  return text;
}

/// Emits a `# TYPE` header the first time each family is seen; the snapshot
/// is sorted, so same-family series are contiguous.
void MaybeTypeHeader(const std::string& family, const char* type,
                     std::string* last_family, std::string* out) {
  if (family == *last_family) return;
  *last_family = family;
  *out += StrFormat("# TYPE %s %s\n", family.c_str(), type);
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool valid = std::isalpha(static_cast<unsigned char>(c)) ||
                       c == '_' || c == ':' ||
                       (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    out += valid ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string MetricsSnapshotToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const auto& [key, value] : snapshot.counters) {
    const std::string family = PrometheusName(key.name) + "_total";
    MaybeTypeHeader(family, "counter", &last_family, &out);
    out += StrFormat("%s%s %llu\n", family.c_str(),
                     RenderLabels(key.labels, nullptr, "").c_str(),
                     static_cast<unsigned long long>(value));
  }
  last_family.clear();
  for (const auto& [key, value] : snapshot.gauges) {
    const std::string family = PrometheusName(key.name);
    MaybeTypeHeader(family, "gauge", &last_family, &out);
    out += StrFormat("%s%s %.17g\n", family.c_str(),
                     RenderLabels(key.labels, nullptr, "").c_str(), value);
  }
  last_family.clear();
  for (const auto& [key, histogram] : snapshot.histograms) {
    const std::string family = PrometheusName(key.name);
    MaybeTypeHeader(family, "histogram", &last_family, &out);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      cumulative += histogram.buckets[i];
      const std::string le = i < histogram.bounds.size()
                                 ? FormatBound(histogram.bounds[i])
                                 : "+Inf";
      out += StrFormat("%s_bucket%s %llu\n", family.c_str(),
                       RenderLabels(key.labels, "le", le).c_str(),
                       static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_sum%s %.9g\n", family.c_str(),
                     RenderLabels(key.labels, nullptr, "").c_str(),
                     histogram.sum_seconds);
    out += StrFormat("%s_count%s %llu\n", family.c_str(),
                     RenderLabels(key.labels, nullptr, "").c_str(),
                     static_cast<unsigned long long>(histogram.count));
  }
  return out;
}

}  // namespace secreta
