// Structured slow-query log: the query server appends one JSONL record per
// COUNT whose end-to-end latency crosses a configurable threshold. Records
// carry everything an operator needs to triage without replaying the query —
// tenant, dataset, wildcarded predicate shape, queue wait vs. eval time,
// cache hit, active kernel tier — plus the trace id shared with the
// tail-sampled trace ring (obs/trace_tail.h), so `grep trace_id` pivots
// from the log line to the retained trace. Enabled on secreta_jobd with
// `--slow-query-log PATH --slow-query-threshold SECONDS`.

#ifndef SECRETA_OBS_SLOW_QUERY_LOG_H_
#define SECRETA_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace secreta {

class Counter;

/// One slow-query record; field names match the JSONL keys.
struct SlowQueryRecord {
  uint64_t trace_id = 0;
  std::string tenant;
  std::string dataset;
  std::string query_shape;  ///< values wildcarded, bounded cardinality
  std::string outcome = "ok";
  std::string kernel_tier;
  double queue_seconds = 0;
  double run_seconds = 0;
  double total_seconds = 0;
  double threshold_seconds = 0;
  bool cached = false;
};

/// \brief Append-only JSONL sink with a latency threshold.
///
/// Disabled (no-op) until Open() succeeds. Writes are mutex-serialized and
/// flushed per record so `tail -f` sees lines as they happen. Thread-safe.
class SlowQueryLog {
 public:
  /// The process-wide log used by the serving layer.
  static SlowQueryLog& Global();

  SlowQueryLog();
  ~SlowQueryLog();
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Opens (truncates) `path` and starts accepting records; requests at or
  /// above `threshold_seconds` total latency should be recorded.
  [[nodiscard]] Status Open(const std::string& path, double threshold_seconds)
      SECRETA_EXCLUDES(mutex_);

  /// Flushes and closes; Record() becomes a no-op again.
  void Close() SECRETA_EXCLUDES(mutex_);

  /// Lock-free; callers on the serving path check this before assembling a
  /// record, so it must not contend with concurrent writers.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }
  double threshold_seconds() const SECRETA_EXCLUDES(mutex_);

  /// Appends one record (callers decide slowness; the threshold here is
  /// advisory metadata copied into the record). No-op when closed.
  void Record(const SlowQueryRecord& record) SECRETA_EXCLUDES(mutex_);

  /// Records appended since Open() (0 when never opened).
  uint64_t records_written() const SECRETA_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::FILE* file_ SECRETA_GUARDED_BY(mutex_) = nullptr;
  double threshold_seconds_ SECRETA_GUARDED_BY(mutex_) = 0;
  uint64_t records_written_ SECRETA_GUARDED_BY(mutex_) = 0;
  std::atomic<bool> enabled_{false};
  // Stable registry handle, resolved once so Record() skips the lookup.
  Counter* records_counter_;
};

/// Serializes one record as a single-line JSON object (JSONL row).
std::string SlowQueryRecordToJsonLine(const SlowQueryRecord& record);

}  // namespace secreta

#endif  // SECRETA_OBS_SLOW_QUERY_LOG_H_
