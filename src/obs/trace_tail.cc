#include "obs/trace_tail.h"

#include <cstdio>
#include <utility>

#include "common/string_util.h"
#include "export/json_writer.h"
#include "obs/metric_names.h"
#include "obs/metrics_registry.h"

namespace secreta {

namespace {

void WriteTraceFields(const RequestTrace& trace, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("trace_id");
  writer->Int(static_cast<int64_t>(trace.trace_id));
  writer->Key("tenant");
  writer->String(trace.tenant);
  writer->Key("dataset");
  writer->String(trace.dataset);
  writer->Key("query_shape");
  writer->String(trace.query_shape);
  writer->Key("outcome");
  writer->String(trace.outcome);
  writer->Key("kernel_tier");
  writer->String(trace.kernel_tier);
  writer->Key("queue_seconds");
  writer->Number(trace.queue_seconds);
  writer->Key("run_seconds");
  writer->Number(trace.run_seconds);
  writer->Key("total_seconds");
  writer->Number(trace.total_seconds);
  writer->Key("cached");
  writer->Bool(trace.cached);
  writer->Key("slow");
  writer->Bool(trace.slow);
  writer->Key("error");
  writer->Bool(trace.error);
  writer->EndObject();
}

}  // namespace

TraceTail& TraceTail::Global() {
  static TraceTail* tail = new TraceTail();  // leaked, like the registry
  return *tail;
}

TraceTail::TraceTail(size_t capacity)
    : capacity_(capacity),
      seen_(MetricsRegistry::Global().counter(metric_names::kTraceTailSeen)),
      pinned_(
          MetricsRegistry::Global().counter(metric_names::kTraceTailPinned)),
      evicted_(MetricsRegistry::Global().counter(
          metric_names::kTraceTailEvicted)) {}

void TraceTail::CountHealthy() { seen_->Increment(); }

void TraceTail::SetCapacity(size_t capacity) {
  MutexLock lock(mutex_);
  capacity_ = capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
}

size_t TraceTail::capacity() const {
  MutexLock lock(mutex_);
  return capacity_;
}

uint64_t TraceTail::NextTraceId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void TraceTail::Record(RequestTrace trace) {
  seen_->Increment();
  if (!trace.slow && !trace.error) return;
  pinned_->Increment();
  MutexLock lock(mutex_);
  if (capacity_ == 0) return;
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    evicted_->Increment();
  }
  ring_.push_back(std::move(trace));
}

std::vector<RequestTrace> TraceTail::Snapshot() const {
  MutexLock lock(mutex_);
  return std::vector<RequestTrace>(ring_.begin(), ring_.end());
}

void TraceTail::Clear() {
  MutexLock lock(mutex_);
  ring_.clear();
}

Status TraceTail::WriteJsonl(const std::string& path) const {
  std::vector<RequestTrace> traces = Snapshot();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError(
        StrFormat("cannot open trace tail output \"%s\"", path.c_str()));
  }
  for (const RequestTrace& trace : traces) {
    const std::string line = RequestTraceToJsonLine(trace);
    if (std::fwrite(line.data(), 1, line.size(), file) != line.size() ||
        std::fputc('\n', file) == EOF) {
      std::fclose(file);
      return Status::IOError(
          StrFormat("short write to trace tail output \"%s\"", path.c_str()));
    }
  }
  if (std::fclose(file) != 0) {
    return Status::IOError(
        StrFormat("close failed for trace tail output \"%s\"", path.c_str()));
  }
  return Status::OK();
}

std::string RequestTracesToJson(const std::vector<RequestTrace>& traces) {
  JsonWriter writer;
  writer.BeginArray();
  for (const RequestTrace& trace : traces) WriteTraceFields(trace, &writer);
  writer.EndArray();
  return writer.TakeString();
}

std::string RequestTraceToJsonLine(const RequestTrace& trace) {
  JsonWriter writer;
  WriteTraceFields(trace, &writer);
  return writer.TakeString();
}

}  // namespace secreta
