// Unified metrics: named counters, gauges, and fixed-bucket latency
// histograms behind one registry. This is the counting half of the
// observability layer (the span tracer in obs/trace.h is the timing half).
// ServiceMetrics (job service) is a thin adapter over a registry, the
// ThreadPool publishes queue/activity gauges and task wait/run histograms
// here, and the CLI `metrics` command and --metrics-out flag snapshot the
// global registry as text or JSON.
//
// Handles returned by the registry are stable for its lifetime: register
// once (mutex-protected map lookup), then update through lock-free atomics
// (counters, gauges) or a short per-histogram mutex.

#ifndef SECRETA_OBS_METRICS_REGISTRY_H_
#define SECRETA_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace secreta {

/// Monotonic event counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous value that can move both ways (queue depth, active workers).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Immutable copy of one histogram's state.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum_seconds = 0;
  double min_seconds = 0;  ///< 0 when count == 0
  double max_seconds = 0;
  /// counts[i] = samples with latency < bounds()[i]; the last bucket is
  /// unbounded (+inf).
  std::vector<uint64_t> buckets;

  double mean_seconds() const { return count == 0 ? 0 : sum_seconds / count; }
};

/// \brief Fixed-bucket latency histogram (log-scale bounds, 1ms .. 10s).
class LatencyHistogram {
 public:
  /// Upper bounds (seconds) of the finite buckets; one overflow bucket
  /// follows.
  static const std::vector<double>& BucketBounds();

  LatencyHistogram();

  void Record(double seconds) SECRETA_EXCLUDES(mutex_);
  HistogramSnapshot Snapshot() const SECRETA_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  uint64_t count_ SECRETA_GUARDED_BY(mutex_) = 0;
  double sum_ SECRETA_GUARDED_BY(mutex_) = 0;
  double min_ SECRETA_GUARDED_BY(mutex_) = 0;
  double max_ SECRETA_GUARDED_BY(mutex_) = 0;
  std::vector<uint64_t> buckets_ SECRETA_GUARDED_BY(mutex_);
};

/// Point-in-time copy of a whole registry, sorted by name within each kind.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// \brief Named metric registry.
///
/// One process-wide instance (Global()) collects cross-cutting metrics —
/// thread pools, caches, engine phases. Components that need isolated
/// counting (one JobScheduler's ServiceMetrics vs. another's) construct
/// their own instance.
class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it on first use. The handle
  /// stays valid for the registry's lifetime; repeated calls return the same
  /// handle.
  Counter* counter(const std::string& name) SECRETA_EXCLUDES(mutex_);
  Gauge* gauge(const std::string& name) SECRETA_EXCLUDES(mutex_);
  LatencyHistogram* histogram(const std::string& name)
      SECRETA_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const SECRETA_EXCLUDES(mutex_);

  /// Human-readable dump: one "name value" line per metric, histograms as
  /// "name count=N mean=Xs max=Ys".
  std::string ToText() const SECRETA_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SECRETA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      SECRETA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      SECRETA_GUARDED_BY(mutex_);
};

}  // namespace secreta

#endif  // SECRETA_OBS_METRICS_REGISTRY_H_
