// Unified metrics: named counters, gauges, and latency histograms behind one
// registry. This is the counting half of the observability layer (the span
// tracer in obs/trace.h is the timing half). ServiceMetrics (job service) is
// a thin adapter over a registry, the ThreadPool publishes queue/activity
// gauges and task wait/run histograms here, and the CLI `metrics` command and
// --metrics-out flag snapshot the global registry as text or JSON.
//
// Metrics are *dimensioned*: a metric is identified by a family name plus an
// ordered set of label key/value pairs (Prometheus-style), so the serving
// layer can count `serve.requests{tenant="analyst",dataset="demo",code="ok"}`
// as one family sliced three ways. Unlabeled call sites keep working — an
// empty label set is just the family's default series.
//
// Handles returned by the registry are stable for its lifetime: register
// once (mutex-protected map lookup), then update through lock-free atomics
// (counters, gauges) or a short per-histogram mutex. Snapshots are ordered
// deterministically by (name, labels), so test assertions and text diffs are
// stable across runs.

#ifndef SECRETA_OBS_METRICS_REGISTRY_H_
#define SECRETA_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace secreta {

/// Ordered label key/value pairs qualifying one series within a metric
/// family. Keys are sorted (and deduplicated, last value wins) by the
/// registry on first lookup, so `{{"a","1"},{"b","2"}}` and
/// `{{"b","2"},{"a","1"}}` name the same series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Identity of one series: family name + sorted labels.
struct MetricKey {
  std::string name;
  MetricLabels labels;

  /// `name` for the unlabeled series, `name{k="v",k2="v2"}` otherwise.
  std::string Render() const;

  bool operator<(const MetricKey& other) const {
    if (name != other.name) return name < other.name;
    return labels < other.labels;
  }
  bool operator==(const MetricKey& other) const {
    return name == other.name && labels == other.labels;
  }
};

/// Monotonic event counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous value that can move both ways (queue depth, active workers).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Immutable copy of one histogram's state.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum_seconds = 0;
  double min_seconds = 0;  ///< 0 when count == 0
  double max_seconds = 0;
  /// Upper bounds (seconds) of the finite buckets; buckets has one extra
  /// trailing overflow (+inf) entry.
  std::vector<double> bounds;
  /// buckets[i] = samples with latency <= bounds[i] (exclusive of earlier
  /// buckets); the last bucket is unbounded (+inf).
  std::vector<uint64_t> buckets;

  double mean_seconds() const { return count == 0 ? 0 : sum_seconds / count; }

  /// Estimates the q-quantile (q in [0,1]) by linear interpolation within
  /// the bucket holding the target rank, clamped to [min_seconds,
  /// max_seconds]. Returns 0 when the histogram is empty.
  double Quantile(double q) const;
};

/// \brief Bucketed latency histogram (log-scale default bounds, 1ms .. 10s;
/// custom bounds per family via MetricsRegistry::histogram overloads).
class LatencyHistogram {
 public:
  /// Default upper bounds (seconds) of the finite buckets; one overflow
  /// bucket follows.
  static const std::vector<double>& BucketBounds();

  LatencyHistogram();
  /// Custom bucket bounds; must be strictly increasing and non-empty
  /// (violations fall back to the defaults).
  explicit LatencyHistogram(std::vector<double> bounds);

  const std::vector<double>& bounds() const { return bounds_; }

  /// Records one sample. Negative and NaN durations clamp to 0 and +inf
  /// clamps to a large finite sentinel, so a bad clock read can never
  /// corrupt bucket indexing or poison the running sum.
  void Record(double seconds) SECRETA_EXCLUDES(mutex_);
  HistogramSnapshot Snapshot() const SECRETA_EXCLUDES(mutex_);

 private:
  std::vector<double> bounds_;  ///< immutable after construction
  mutable Mutex mutex_;
  uint64_t count_ SECRETA_GUARDED_BY(mutex_) = 0;
  double sum_ SECRETA_GUARDED_BY(mutex_) = 0;
  double min_ SECRETA_GUARDED_BY(mutex_) = 0;
  double max_ SECRETA_GUARDED_BY(mutex_) = 0;
  std::vector<uint64_t> buckets_ SECRETA_GUARDED_BY(mutex_);
};

/// Point-in-time copy of a whole registry, sorted by (name, labels) within
/// each kind — the order is deterministic for a given set of series.
struct MetricsSnapshot {
  std::vector<std::pair<MetricKey, uint64_t>> counters;
  std::vector<std::pair<MetricKey, double>> gauges;
  std::vector<std::pair<MetricKey, HistogramSnapshot>> histograms;
};

/// \brief Named metric registry.
///
/// One process-wide instance (Global()) collects cross-cutting metrics —
/// thread pools, caches, engine phases. Components that need isolated
/// counting (one JobScheduler's ServiceMetrics vs. another's) construct
/// their own instance.
class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name` (unlabeled series), creating it on
  /// first use. The handle stays valid for the registry's lifetime; repeated
  /// calls return the same handle.
  Counter* counter(const std::string& name) SECRETA_EXCLUDES(mutex_);
  /// Labeled series of the `name` family; labels are sorted by key (last
  /// value wins on duplicate keys) before lookup.
  Counter* counter(const std::string& name, const MetricLabels& labels)
      SECRETA_EXCLUDES(mutex_);

  Gauge* gauge(const std::string& name) SECRETA_EXCLUDES(mutex_);
  Gauge* gauge(const std::string& name, const MetricLabels& labels)
      SECRETA_EXCLUDES(mutex_);

  LatencyHistogram* histogram(const std::string& name)
      SECRETA_EXCLUDES(mutex_);
  /// Labeled histogram series. `bounds` overrides the default bucket bounds
  /// for a series created by this call; an already-registered series keeps
  /// its original bounds (all series of a family should use one bounds set —
  /// the Prometheus writer assumes per-series bounds are self-describing).
  LatencyHistogram* histogram(const std::string& name,
                              const MetricLabels& labels,
                              const std::vector<double>& bounds = {})
      SECRETA_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const SECRETA_EXCLUDES(mutex_);

  /// Human-readable dump: one "name value" line per metric (labeled series
  /// render as name{k="v"}), histograms as "name count=N mean=Xs max=Ys".
  std::string ToText() const SECRETA_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<MetricKey, std::unique_ptr<Counter>> counters_
      SECRETA_GUARDED_BY(mutex_);
  std::map<MetricKey, std::unique_ptr<Gauge>> gauges_
      SECRETA_GUARDED_BY(mutex_);
  std::map<MetricKey, std::unique_ptr<LatencyHistogram>> histograms_
      SECRETA_GUARDED_BY(mutex_);
};

/// Human-readable rate report between two snapshots of the same registry
/// taken `seconds` apart: counters and histogram counts with a non-zero
/// delta print "name +N (R/s)"; gauges that moved print "name V (was W)".
/// Series absent from `before` count from zero. Used by the `metrics
/// --watch` modes of the CLI and the serve client.
std::string MetricsSnapshotDeltaToText(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after,
                                       double seconds);

}  // namespace secreta

#endif  // SECRETA_OBS_METRICS_REGISTRY_H_
