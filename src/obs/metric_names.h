// Central registry of every metric family name recorded from src/. A lint
// rule (tools/lint/check_source.py, rule "metric-name") forbids passing a
// string literal to MetricsRegistry::counter/gauge/histogram anywhere else
// under src/, so the full set of families — and therefore the label
// cardinality a deployment can emit — is auditable in this one file.
//
// Conventions: families are dot-separated lowercase ("serve.requests");
// label keys are listed next to each family. Durations are histograms with
// a "_seconds" suffix; monotonic counts have no suffix (the Prometheus
// writer appends "_total"); gauges are instantaneous values.

#ifndef SECRETA_OBS_METRIC_NAMES_H_
#define SECRETA_OBS_METRIC_NAMES_H_

namespace secreta {
namespace metric_names {

// --- serve: query server (src/serve/server.cc) -----------------------------
/// Frames processed, total (unlabeled) and per {tenant, dataset, code} for
/// COUNT requests — code is "ok" or a StatusCode name.
inline constexpr char kServeRequests[] = "serve.requests";
inline constexpr char kServeConnections[] = "serve.connections";
inline constexpr char kServeActiveConnections[] = "serve.active_connections";
inline constexpr char kServeRejectedBusy[] = "serve.rejected_busy";
inline constexpr char kServeAcceptErrors[] = "serve.accept_errors";
inline constexpr char kServeReadErrors[] = "serve.read_errors";
inline constexpr char kServeBadRequests[] = "serve.bad_requests";
inline constexpr char kServeAuthFailures[] = "serve.auth_failures";
inline constexpr char kServeRequestErrors[] = "serve.request_errors";
inline constexpr char kServeWriteErrors[] = "serve.write_errors";
/// End-to-end frame handling latency, all ops, unlabeled.
inline constexpr char kServeRequestSeconds[] = "serve.request_seconds";
/// COUNT latency per {tenant, dataset}.
inline constexpr char kServeCountSeconds[] = "serve.count_seconds";
/// COUNTs that crossed the slow-query threshold, per {tenant, dataset}.
inline constexpr char kServeSlowQueries[] = "serve.slow_queries";

// --- serve.admission: admission control (src/serve/admission.cc) -----------
inline constexpr char kAdmissionQuotaRejected[] =
    "serve.admission.quota_rejected";
inline constexpr char kAdmissionBackpressureRejected[] =
    "serve.admission.backpressure_rejected";
inline constexpr char kAdmissionAdmitted[] = "serve.admission.admitted";
inline constexpr char kAdmissionDeadlineExceeded[] =
    "serve.admission.deadline_exceeded";

// --- serve.catalog / serve.cache: published releases (src/serve/catalog.cc)
inline constexpr char kServeCatalogReleases[] = "serve.catalog.releases";
inline constexpr char kServeCatalogPublished[] = "serve.catalog.published";
inline constexpr char kServeKernelsTier[] = "serve.kernels.tier";
inline constexpr char kServeIndexRoaringBytes[] = "serve.index.roaring_bytes";
/// Answer-cache lookups per {dataset}.
inline constexpr char kServeCacheHits[] = "serve.cache.hits";
inline constexpr char kServeCacheMisses[] = "serve.cache.misses";
/// Lifetime hit fraction per {dataset}, 0..1.
inline constexpr char kServeCacheHitRatio[] = "serve.cache.hit_ratio";

// --- obs: telemetry about the telemetry (src/obs/trace_tail.cc) ------------
inline constexpr char kTraceTailSeen[] = "obs.trace_tail.seen";
inline constexpr char kTraceTailPinned[] = "obs.trace_tail.pinned";
inline constexpr char kTraceTailEvicted[] = "obs.trace_tail.evicted";
inline constexpr char kSlowQueryLogRecords[] = "obs.slow_query_log.records";

// --- jobs / job / result_cache: job service (src/service/) -----------------
inline constexpr char kJobsSubmitted[] = "jobs.submitted";
inline constexpr char kJobsCompleted[] = "jobs.completed";
inline constexpr char kJobsCancelled[] = "jobs.cancelled";
inline constexpr char kJobsFailed[] = "jobs.failed";
inline constexpr char kJobsTimedOut[] = "jobs.timed_out";
inline constexpr char kJobsRejected[] = "jobs.rejected";
/// Gauges maintained by the scheduler: current queue length and age in
/// seconds of the oldest queued job (0 when idle).
inline constexpr char kJobsQueueDepth[] = "jobs.queue_depth";
inline constexpr char kJobsQueueAgeSeconds[] = "jobs.queue_age_seconds";
inline constexpr char kResultCacheHits[] = "result_cache.hits";
inline constexpr char kResultCacheMisses[] = "result_cache.misses";
inline constexpr char kJobQueueWaitSeconds[] = "job.queue_wait_seconds";
inline constexpr char kJobExecutionSeconds[] = "job.execution_seconds";

// --- retry: scheduler retry policy (src/service/job_scheduler.cc) ----------
inline constexpr char kRetrySucceeded[] = "retry.succeeded";
inline constexpr char kRetryExhausted[] = "retry.exhausted";
inline constexpr char kRetryDeadlineAbandoned[] = "retry.deadline_abandoned";
inline constexpr char kRetryAttempts[] = "retry.attempts";
inline constexpr char kRetryBackoffSeconds[] = "retry.backoff_seconds";
inline constexpr char kRetryRequeued[] = "retry.requeued";

// --- checkpoint / faults: robustness layer ---------------------------------
inline constexpr char kCheckpointPointsRestored[] =
    "checkpoint.points_restored";
inline constexpr char kCheckpointPointsAppended[] =
    "checkpoint.points_appended";
inline constexpr char kFaultsDelays[] = "faults.delays";
inline constexpr char kFaultsInjected[] = "faults.injected";

// --- pool: thread pools (src/common/thread_pool.cc), per {pool} ------------
inline constexpr char kPoolQueued[] = "pool.queued";
inline constexpr char kPoolActive[] = "pool.active";
inline constexpr char kPoolWorkers[] = "pool.workers";
inline constexpr char kPoolTasks[] = "pool.tasks";
inline constexpr char kPoolTaskWaitSeconds[] = "pool.task_wait_seconds";
inline constexpr char kPoolTaskRunSeconds[] = "pool.task_run_seconds";

// --- algo: anonymization phase timings (src/engine/), per {algorithm,
// phase} — algorithm is the registry name ("Cluster", "Apriori", or
// "rel+txn" in rt mode), phase the PhaseTimer entry.
inline constexpr char kAlgoPhaseSeconds[] = "algo.phase_seconds";

}  // namespace metric_names
}  // namespace secreta

#endif  // SECRETA_OBS_METRIC_NAMES_H_
