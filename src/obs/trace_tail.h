// Tail-based trace retention: the query server completes a RequestTrace for
// every COUNT it handles, but only the interesting tail — requests that
// crossed the slow-query threshold or ended in an error — is pinned into a
// bounded ring. This is the sampling strategy production tracers use when
// head-sampling would either drop the one slow request you care about or
// retain millions of healthy ones. The ring is exported live over the wire
// (`admin.traces` op, direct-access tenants only) and dumped as JSONL at
// daemon shutdown (`--trace-tail-out`); trace ids match the slow-query log
// (obs/slow_query_log.h) so an operator can pivot between the two.

#ifndef SECRETA_OBS_TRACE_TAIL_H_
#define SECRETA_OBS_TRACE_TAIL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace secreta {

class Counter;

/// One completed request, summarized for retention. `slow` / `error` are
/// set by the caller (the server owns the threshold); a trace is pinned iff
/// either is true.
struct RequestTrace {
  uint64_t trace_id = 0;
  std::string tenant;
  std::string dataset;
  /// Predicate shape with values wildcarded ("Age:*;Items:*") — bounded
  /// cardinality, never raw query values.
  std::string query_shape;
  /// "ok" or the StatusCode name of the failure.
  std::string outcome = "ok";
  std::string kernel_tier;
  double queue_seconds = 0;  ///< admission queue wait
  double run_seconds = 0;    ///< evaluation time inside the job
  double total_seconds = 0;  ///< end-to-end frame handling
  bool cached = false;
  bool slow = false;
  bool error = false;
};

/// \brief Bounded ring of pinned (slow or errored) request traces.
///
/// Record() is called for every completed request and is cheap in the common
/// case (one counter bump, no allocation); only pinned traces take the
/// mutex-guarded ring path. Thread-safe.
class TraceTail {
 public:
  /// The process-wide ring used by the serving layer.
  static TraceTail& Global();

  explicit TraceTail(size_t capacity = kDefaultCapacity);

  /// Resizes the ring (oldest traces drop if shrinking). Intended for
  /// daemon startup, but safe at any time.
  void SetCapacity(size_t capacity) SECRETA_EXCLUDES(mutex_);
  size_t capacity() const SECRETA_EXCLUDES(mutex_);

  /// Allocates a fresh process-unique trace id (never 0).
  uint64_t NextTraceId();

  /// Completes one request trace; pins it into the ring iff slow or error.
  void Record(RequestTrace trace) SECRETA_EXCLUDES(mutex_);

  /// Counts a completed healthy request without building or pinning
  /// anything — the fast path for requests that are neither slow nor
  /// errored (one relaxed atomic increment, no strings, no lock).
  void CountHealthy();

  /// Pinned traces, oldest first.
  std::vector<RequestTrace> Snapshot() const SECRETA_EXCLUDES(mutex_);

  /// Drops all pinned traces (counters are left running).
  void Clear() SECRETA_EXCLUDES(mutex_);

  /// Writes the pinned traces as JSONL, one object per line, oldest first.
  [[nodiscard]] Status WriteJsonl(const std::string& path) const
      SECRETA_EXCLUDES(mutex_);

  static constexpr size_t kDefaultCapacity = 256;

 private:
  mutable Mutex mutex_;
  size_t capacity_ SECRETA_GUARDED_BY(mutex_);
  std::deque<RequestTrace> ring_ SECRETA_GUARDED_BY(mutex_);
  std::atomic<uint64_t> next_id_{1};
  // Registry handles are stable for the process lifetime; resolved once at
  // construction so Record() never pays the registry lookup (atomics only).
  Counter* seen_;
  Counter* pinned_;
  Counter* evicted_;
};

/// Serializes traces as a JSON array (used by the `admin.traces` response).
std::string RequestTracesToJson(const std::vector<RequestTrace>& traces);

/// Serializes one trace as a single-line JSON object (JSONL row).
std::string RequestTraceToJsonLine(const RequestTrace& trace);

}  // namespace secreta

#endif  // SECRETA_OBS_TRACE_TAIL_H_
