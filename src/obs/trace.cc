#include "obs/trace.h"

#include <algorithm>

#include "common/string_util.h"
#include "csv/csv.h"

namespace secreta {

namespace {

// Per-thread state. The buffer pointer is looked up once per thread and then
// reused lock-free; the depth counter implements the thread-local span stack
// (we only need its height — parent/child structure is recovered from
// timestamp containment per thread).
thread_local void* tls_buffer = nullptr;
thread_local uint32_t tls_depth = 0;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all threads
  return *tracer;
}

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint32_t Tracer::Intern(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  if (tls_buffer != nullptr) return static_cast<ThreadBuffer*>(tls_buffer);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->head = std::make_unique<Chunk>();
  buffer->tail = buffer->head.get();
  ThreadBuffer* raw = buffer.get();
  {
    MutexLock lock(mutex_);
    raw->tid = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(std::move(buffer));
  }
  tls_buffer = raw;
  return raw;
}

void Tracer::Record(uint32_t name_id, uint64_t start_ns, uint64_t dur_ns,
                    uint32_t depth) {
  ThreadBuffer* buffer = BufferForThisThread();
  Chunk* chunk = buffer->tail;
  uint32_t n = chunk->count.load(std::memory_order_relaxed);
  if (n == Chunk::kCapacity) {
    // Full: chain a fresh chunk. Publication via `next` (release) makes the
    // new chunk visible to concurrent exporters.
    Chunk* fresh = new Chunk();
    chunk->next.store(fresh, std::memory_order_release);
    buffer->tail = fresh;
    chunk = fresh;
    n = 0;
  }
  chunk->events[n] = TraceEvent{name_id, depth, start_ns, dur_ns};
  chunk->count.store(n + 1, std::memory_order_release);
}

void Tracer::Reset() {
  discard_before_ns_.store(NowNs(), std::memory_order_relaxed);
}

std::vector<ResolvedTraceEvent> Tracer::CollectEvents() const {
  std::vector<std::pair<uint32_t, const Chunk*>> heads;
  std::vector<std::string> names;
  {
    MutexLock lock(mutex_);
    heads.reserve(buffers_.size());
    for (const auto& buffer : buffers_) {
      heads.emplace_back(buffer->tid, buffer->head.get());
    }
    names = names_;
  }
  uint64_t discard_before =
      discard_before_ns_.load(std::memory_order_relaxed);
  std::vector<ResolvedTraceEvent> out;
  for (const auto& [tid, head] : heads) {
    for (const Chunk* chunk = head; chunk != nullptr;
         chunk = chunk->next.load(std::memory_order_acquire)) {
      uint32_t n = chunk->count.load(std::memory_order_acquire);
      for (uint32_t i = 0; i < n; ++i) {
        const TraceEvent& ev = chunk->events[i];
        if (ev.start_ns < discard_before) continue;
        ResolvedTraceEvent resolved;
        resolved.name = ev.name_id < names.size() ? names[ev.name_id]
                                                  : StrFormat("name#%u",
                                                              ev.name_id);
        resolved.tid = tid;
        resolved.depth = ev.depth;
        resolved.start_ns = ev.start_ns;
        resolved.dur_ns = ev.dur_ns;
        out.push_back(std::move(resolved));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ResolvedTraceEvent& a, const ResolvedTraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  return out;
}

size_t Tracer::num_events() const { return CollectEvents().size(); }

namespace {

void AppendJsonString(std::string* out, const std::string& raw) {
  *out += '"';
  for (char c : raw) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

std::string Tracer::ToChromeTraceJson() const {
  std::vector<ResolvedTraceEvent> events = CollectEvents();
  std::vector<uint32_t> tids;
  for (const ResolvedTraceEvent& ev : events) {
    if (tids.empty() || tids.back() != ev.tid) tids.push_back(ev.tid);
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto separate = [&] {
    if (!first) out += ',';
    first = false;
  };
  separate();
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"secreta\"}}";
  for (uint32_t tid : tids) {
    separate();
    out += StrFormat(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"secreta-t%u\"}}",
        tid, tid);
  }
  for (const ResolvedTraceEvent& ev : events) {
    separate();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += StrFormat("%u", ev.tid);
    out += ",\"name\":";
    AppendJsonString(&out, ev.name);
    // Chrome trace timestamps are microseconds; keep nanosecond precision
    // with fractional values.
    out += StrFormat(",\"ts\":%.3f,\"dur\":%.3f",
                     static_cast<double>(ev.start_ns) / 1e3,
                     static_cast<double>(ev.dur_ns) / 1e3);
    out += StrFormat(",\"args\":{\"depth\":%u}}", ev.depth);
  }
  out += "]}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  return csv::WriteFile(path, ToChromeTraceJson());
}

ScopedSpan::ScopedSpan(uint32_t name_id) {
  if (Tracer::Get().enabled()) Open(name_id);
}

ScopedSpan::ScopedSpan(std::string_view name) {
  Tracer& tracer = Tracer::Get();
  if (tracer.enabled()) Open(tracer.Intern(name));
}

void ScopedSpan::Open(uint32_t name_id) {
  active_ = true;
  name_id_ = name_id;
  depth_ = ++tls_depth;
  start_ns_ = Tracer::Get().NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --tls_depth;
  Tracer& tracer = Tracer::Get();
  tracer.Record(name_id_, start_ns_, tracer.NowNs() - start_ns_, depth_);
}

}  // namespace secreta
