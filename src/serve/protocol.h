// Wire protocol of the online query service: length-prefixed JSON frames
// over a stream socket, with a versioned handshake.
//
// Framing: every message is a 4-byte big-endian payload length followed by
// that many bytes of UTF-8 JSON. A frame longer than the configured maximum
// is a protocol error (the server replies with a typed error and closes —
// it never buffers an attacker-sized allocation). Length 0 is invalid.
//
// Requests are JSON objects with an "op" field and an optional client-chosen
// "id" echoed back in the response (correlation for pipelined clients):
//
//   {"op":"hello","id":1,"version":1,"token":"...","client":"dashboard"}
//   {"op":"count","id":2,"dataset":"demo","query":"Age:20..39;items:i3 i7",
//    "access":"anonymized"}                      // access optional
//   {"op":"list","id":3}
//   {"op":"metrics","id":4}
//   {"op":"admin.traces","id":5}                  // direct access only
//   {"op":"ping","id":6}
//   {"op":"bye","id":7}
//
// The "query" string is the repo's COUNT-query line format (query/query.h),
// so workload files and wire queries share one parser.
//
// Responses always carry "ok" and the echoed "id". Success payloads are
// op-specific; failures are uniform:
//
//   {"ok":false,"id":2,"error":"ResourceExhausted","message":"...",
//    "retry_after_ms":120}                       // hint present when known
//
// The handshake is mandatory: the first request on a connection must be
// "hello" with a matching protocol version and a valid tenant token; every
// other op before a successful hello is rejected with FailedPrecondition.

#ifndef SECRETA_SERVE_PROTOCOL_H_
#define SECRETA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serve/json.h"

namespace secreta {

/// Protocol version spoken by this build. Hello requests with a different
/// version are rejected (no downgrade negotiation: one version exists).
inline constexpr uint32_t kServeProtocolVersion = 1;

/// Default ceiling on one frame's payload size. Requests are small; anything
/// near this limit is malformed or hostile.
inline constexpr size_t kServeMaxFrameBytes = 1u << 20;

// ---- Framing ---------------------------------------------------------------

/// Decodes a 4-byte big-endian frame length prefix and validates it:
/// InvalidArgument unless 0 < length <= max_frame_bytes (or `header` is not
/// exactly 4 bytes). Pure — no I/O — so the untrusted first bytes of every
/// connection are unit- and fuzz-testable without a socket (tests/fuzz/
/// fuzz_protocol.cc); ReadFrame delegates here.
Result<uint32_t> DecodeFrameLength(std::string_view header,
                                   size_t max_frame_bytes);

/// Writes one frame (length prefix + payload) to `fd`, handling partial
/// writes and EINTR. Fails with IOError when the peer is gone.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame from `fd` into `*payload`, handling partial reads and
/// EINTR. Outcomes:
///  - OK with *clean_eof=false: a complete frame was read.
///  - OK with *clean_eof=true: the peer closed before sending any byte of a
///    new frame (normal end of a connection); *payload is empty.
///  - IOError: mid-frame EOF (truncated frame) or a socket error.
///  - InvalidArgument: zero-length or oversized frame (protocol violation).
///  - DeadlineExceeded: the socket's receive timeout expired (idle client).
Status ReadFrame(int fd, size_t max_frame_bytes, std::string* payload,
                 bool* clean_eof);

// ---- Requests --------------------------------------------------------------

/// Operations a client can request.
enum class ServeOp { kHello, kCount, kList, kMetrics, kTraces, kPing, kBye };

const char* ServeOpToString(ServeOp op);
Result<ServeOp> ParseServeOp(const std::string& name);

/// One decoded request frame (fields beyond the op's schema stay default).
struct ServeRequest {
  ServeOp op = ServeOp::kPing;
  uint64_t id = 0;  ///< client correlation id, echoed in the response
  // hello
  uint32_t version = 0;
  std::string token;
  std::string client;
  // count
  std::string dataset;
  std::string query;   ///< COUNT-query line format (query/query.h)
  std::string access;  ///< "", "anonymized", or "direct" ("" = session default)
};

/// Decodes a request payload. Typed errors on malformed JSON, unknown ops,
/// or schema violations — never crashes on garbage.
Result<ServeRequest> ParseServeRequest(const std::string& payload);

/// Encodes a request (client side).
std::string SerializeServeRequest(const ServeRequest& request);

// ---- Responses -------------------------------------------------------------

/// Summary row of the "list" response.
struct ServeDatasetInfo {
  std::string name;
  uint64_t records = 0;
  uint64_t version = 0;  ///< publication sequence number of this release
  std::string config;    ///< anonymization config label
};

/// Server-side response builders (each returns a complete JSON payload).
std::string HelloResponsePayload(uint64_t id, uint64_t session_id,
                                 const std::string& tenant,
                                 const std::string& access,
                                 uint32_t server_version);
std::string CountResponsePayload(uint64_t id, double count,
                                 const std::string& access, bool cached,
                                 double elapsed_seconds);
std::string ListResponsePayload(uint64_t id,
                                const std::vector<ServeDatasetInfo>& datasets);
/// Wraps an already-serialized JSON object (e.g. a metrics snapshot).
std::string MetricsResponsePayload(uint64_t id, const std::string& body_json);
/// Wraps an already-serialized JSON array of pinned request traces
/// (obs/trace_tail.h) as {"traces":[...]}.
std::string TracesResponsePayload(uint64_t id, const std::string& traces_json);
std::string PongResponsePayload(uint64_t id);
std::string ByeResponsePayload(uint64_t id);
/// Uniform failure payload; carries status code name, message, and the
/// retry-after hint (as integer milliseconds) when the status has one.
std::string ErrorResponsePayload(uint64_t id, const Status& status);

/// One decoded response frame (client side).
struct ServeResponse {
  bool ok = false;
  uint64_t id = 0;
  JsonValue body;  ///< the full response object for op-specific fields
};

/// Decodes a response payload. A well-formed error response is returned as
/// a non-OK *Status* carrying the server's code/message/retry-after, so
/// callers handle transport and application errors uniformly; ok=true
/// responses land in the returned ServeResponse.
Result<ServeResponse> ParseServeResponse(const std::string& payload);

}  // namespace secreta

#endif  // SECRETA_SERVE_PROTOCOL_H_
