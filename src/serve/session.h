// Tenants, access levels, and per-tenant rate limiting for the query server.
//
// The access model follows the paper's deployment story (and pg_diffix-style
// systems): an analyst queries the *published* anonymized release, while an
// administrator may also query the raw microdata for utility auditing.
//
//  - kAnonymized: COUNTs are answered from the published recoding (the
//    estimated count the ARE metric compares against). Default level.
//  - kDirect: COUNTs are answered from the raw dataset (the exact count).
//    Granted only to admin tenants; an anonymized-level tenant requesting
//    "direct" gets PermissionDenied.
//
// Tenants are static server configuration ("name:token:access[:qps[:burst]]"
// specs on the daemon command line). Each tenant owns one token bucket
// shared by all of its concurrent connections, so a tenant cannot multiply
// its quota by opening sockets.

#ifndef SECRETA_SERVE_SESSION_H_
#define SECRETA_SERVE_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace secreta {

class Counter;
class LatencyHistogram;

/// Memoized labeled-metric handles for one (tenant, dataset) pair. Registry
/// handles are stable for the process lifetime, so the serving hot path
/// resolves them once per session+dataset instead of paying label
/// canonicalization and the registry mutex on every COUNT (the serve_bench
/// telemetry-overhead gate is what keeps this honest).
struct CountMetricHandles {
  Counter* requests_ok = nullptr;
  LatencyHistogram* count_seconds = nullptr;
  Counter* slow_queries = nullptr;
};

/// What a session is allowed to see.
enum class AccessLevel {
  kAnonymized,  ///< counts from the published recoding only
  kDirect,      ///< raw counts (admin / utility auditing)
};

const char* AccessLevelToString(AccessLevel level);
Result<AccessLevel> ParseAccessLevel(const std::string& name);

/// Static configuration of one tenant.
struct TenantConfig {
  std::string name;
  std::string token;  ///< bearer secret presented in the hello request
  AccessLevel access = AccessLevel::kAnonymized;
  /// Sustained queries/second; <= 0 means unlimited.
  double quota_qps = 0;
  /// Bucket capacity (burst allowance); defaults to max(1, quota_qps).
  double quota_burst = 0;
};

/// Parses "name:token:access[:qps[:burst]]", e.g. "demo:s3cret:anonymized:5".
Result<TenantConfig> ParseTenantSpec(const std::string& spec);

/// \brief Standard token bucket: capacity `burst`, refilled at `rate` tokens
/// per second. Thread-safe; shared by all connections of one tenant.
class TokenBucket {
 public:
  /// rate <= 0 constructs an unlimited bucket (TryAcquire always succeeds).
  TokenBucket(double rate, double burst);

  /// Takes one token. On an empty bucket fails with ResourceExhausted
  /// carrying a retry-after hint (time until one token refills).
  Status TryAcquire();

  bool unlimited() const { return rate_ <= 0; }

 private:
  const double rate_;
  const double burst_;
  Mutex mutex_;
  double tokens_ SECRETA_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point last_refill_
      SECRETA_GUARDED_BY(mutex_);
};

/// \brief One authenticated connection. Created by TenantRegistry on a
/// successful hello; holds the tenant's shared quota bucket and per-session
/// counters (lock-free, read by the server's metrics path).
class ClientSession {
 public:
  ClientSession(uint64_t id, const TenantConfig& config,
                std::shared_ptr<TokenBucket> quota);

  uint64_t id() const { return id_; }
  const std::string& tenant() const { return tenant_; }
  AccessLevel access() const { return access_; }

  /// True when this session may answer at `requested` level (direct implies
  /// anonymized, not the other way around).
  bool Allows(AccessLevel requested) const;

  /// Charges one query against the tenant quota.
  Status ChargeQuota() { return quota_->TryAcquire(); }

  void RecordQuery(bool ok) {
    (ok ? queries_ok_ : queries_failed_).fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  uint64_t queries_ok() const {
    return queries_ok_.load(std::memory_order_relaxed);
  }
  uint64_t queries_failed() const {
    return queries_failed_.load(std::memory_order_relaxed);
  }

  /// Per-dataset telemetry handle cache. A session belongs to exactly one
  /// connection and is only touched by that connection's handler thread, so
  /// the map needs no lock.
  CountMetricHandles& count_metric_handles(const std::string& dataset) {
    return telemetry_handles_[dataset];
  }

 private:
  const uint64_t id_;
  const std::string tenant_;
  const AccessLevel access_;
  std::shared_ptr<TokenBucket> quota_;
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::unordered_map<std::string, CountMetricHandles> telemetry_handles_;
};

/// \brief Token → tenant lookup plus session minting. Tenants are added
/// before the server starts; Authenticate is called concurrently by
/// connection handlers afterwards (const, lock-free map reads).
class TenantRegistry {
 public:
  /// Registers a tenant. Fails on duplicate name or duplicate token (a
  /// shared token would make sessions indistinguishable).
  Status AddTenant(const TenantConfig& config);

  /// Mints a session for the tenant owning `token`. Fails with
  /// PermissionDenied on an unknown token — deliberately the same error for
  /// "no such tenant" and "wrong token" (no token-probing oracle).
  Result<std::shared_ptr<ClientSession>> Authenticate(
      const std::string& token);

  size_t tenant_count() const { return by_token_.size(); }

 private:
  struct Tenant {
    TenantConfig config;
    std::shared_ptr<TokenBucket> quota;
  };
  std::unordered_map<std::string, Tenant> by_token_;
  std::unordered_map<std::string, std::string> token_by_name_;
  std::atomic<uint64_t> next_session_id_{1};
};

}  // namespace secreta

#endif  // SECRETA_SERVE_SESSION_H_
