#include "serve/session.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/string_util.h"

namespace secreta {

const char* AccessLevelToString(AccessLevel level) {
  switch (level) {
    case AccessLevel::kAnonymized:
      return "anonymized";
    case AccessLevel::kDirect:
      return "direct";
  }
  return "unknown";
}

Result<AccessLevel> ParseAccessLevel(const std::string& name) {
  if (name == "anonymized") return AccessLevel::kAnonymized;
  if (name == "direct") return AccessLevel::kDirect;
  return Status::InvalidArgument(
      StrFormat("unknown access level \"%s\" (want anonymized|direct)",
                name.c_str()));
}

Result<TenantConfig> ParseTenantSpec(const std::string& spec) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 5) {
    return Status::InvalidArgument(StrFormat(
        "tenant spec \"%s\" must be name:token:access[:qps[:burst]]",
        spec.c_str()));
  }
  TenantConfig config;
  config.name = parts[0];
  config.token = parts[1];
  if (config.name.empty() || config.token.empty()) {
    return Status::InvalidArgument("tenant name and token must be non-empty");
  }
  SECRETA_ASSIGN_OR_RETURN(config.access, ParseAccessLevel(parts[2]));
  if (parts.size() >= 4) {
    char* end = nullptr;
    config.quota_qps = std::strtod(parts[3].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument(
          StrFormat("bad qps \"%s\" in tenant spec", parts[3].c_str()));
    }
  }
  if (parts.size() == 5) {
    char* end = nullptr;
    config.quota_burst = std::strtod(parts[4].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument(
          StrFormat("bad burst \"%s\" in tenant spec", parts[4].c_str()));
    }
  }
  return config;
}

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate),
      burst_(rate <= 0 ? 0
                       : (burst > 0 ? std::max(burst, 1.0)
                                    : std::max(rate, 1.0))),
      tokens_(burst_),
      last_refill_(std::chrono::steady_clock::now()) {}

Status TokenBucket::TryAcquire() {
  if (rate_ <= 0) return Status::OK();
  MutexLock lock(mutex_);
  auto now = std::chrono::steady_clock::now();
  double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return Status::OK();
  }
  double wait = (1.0 - tokens_) / rate_;
  return Status::ResourceExhausted("tenant query quota exhausted")
      .WithRetryAfter(wait);
}

ClientSession::ClientSession(uint64_t id, const TenantConfig& config,
                             std::shared_ptr<TokenBucket> quota)
    : id_(id),
      tenant_(config.name),
      access_(config.access),
      quota_(std::move(quota)) {}

bool ClientSession::Allows(AccessLevel requested) const {
  if (requested == AccessLevel::kDirect) {
    return access_ == AccessLevel::kDirect;
  }
  return true;  // anonymized answers are available to every tenant
}

Status TenantRegistry::AddTenant(const TenantConfig& config) {
  if (config.name.empty() || config.token.empty()) {
    return Status::InvalidArgument("tenant name and token must be non-empty");
  }
  if (token_by_name_.count(config.name) > 0) {
    return Status::AlreadyExists(
        StrFormat("tenant \"%s\" already registered", config.name.c_str()));
  }
  if (by_token_.count(config.token) > 0) {
    return Status::AlreadyExists("token already in use by another tenant");
  }
  Tenant tenant;
  tenant.config = config;
  tenant.quota =
      std::make_shared<TokenBucket>(config.quota_qps, config.quota_burst);
  token_by_name_.emplace(config.name, config.token);
  by_token_.emplace(config.token, std::move(tenant));
  return Status::OK();
}

Result<std::shared_ptr<ClientSession>> TenantRegistry::Authenticate(
    const std::string& token) {
  auto it = by_token_.find(token);
  if (it == by_token_.end()) {
    return Status::PermissionDenied("unknown tenant token");
  }
  uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<ClientSession>(id, it->second.config,
                                         it->second.quota);
}

}  // namespace secreta
