// Admission control: the bridge between the query server's connection
// handlers and the JobScheduler's execution core. Every COUNT a client asks
// for passes through here, in order:
//
//   1. tenant quota (token bucket) — rejected queries never reach the
//      scheduler, so a noisy tenant cannot starve others of queue slots;
//   2. scheduler backpressure — SubmitFn fails with ResourceExhausted (+
//      retry-after hint) when the job queue is full;
//   3. per-query deadline — the scheduler's reaper fires the job's
//      cancellation token, and the query fails with DeadlineExceeded.
//
// Both rejection paths carry a retry-after hint in the Status, which the
// protocol layer surfaces as "retry_after_ms" (HTTP-429 style) so clients
// can back off instead of hammering.

#ifndef SECRETA_SERVE_ADMISSION_H_
#define SECRETA_SERVE_ADMISSION_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "serve/session.h"
#include "service/job_scheduler.h"

namespace secreta {

struct AdmissionOptions {
  /// Wall-clock budget per query; 0 disables the deadline.
  double default_deadline_seconds = 5.0;
  /// Scheduler priority for interactive queries. Above the default 0 so
  /// online COUNTs preempt queued batch evaluation jobs.
  int priority = 10;
};

/// Where an admitted query's wall-clock went, for the slow-query log and
/// tail traces. Zero on rejection paths (the query never ran).
struct AdmissionTiming {
  double queue_seconds = 0;  ///< waited in the scheduler queue
  double run_seconds = 0;    ///< evaluation inside the job
};

/// \brief Runs client queries through quota, backpressure, and deadline
/// gates on a shared JobScheduler. Thread-safe: handlers on every
/// connection call RunCount concurrently.
class AdmissionController {
 public:
  /// `scheduler` must outlive this controller.
  AdmissionController(JobScheduler* scheduler,
                      const AdmissionOptions& options = {});

  /// The admitted unit of work: computes one count. Runs on a scheduler
  /// worker; must be safe to call concurrently with other queries (catalog
  /// lookups are const reads over published releases).
  using CountFn = std::function<Result<double>()>;

  /// Admits and executes one COUNT on behalf of `session`. Blocks until the
  /// query completes or is rejected. Rejections:
  ///  - ResourceExhausted (+retry-after): quota or queue full;
  ///  - DeadlineExceeded: ran past the per-query deadline;
  ///  - any error `fn` returned (bad query, unknown dataset, ...).
  /// When `timing` is non-null it receives the queue wait / run split for
  /// every outcome that reached the scheduler (including timeouts).
  Result<double> RunCount(ClientSession& session, const std::string& label,
                          CountFn fn, AdmissionTiming* timing = nullptr);

 private:
  JobScheduler* const scheduler_;
  const AdmissionOptions options_;
};

}  // namespace secreta

#endif  // SECRETA_SERVE_ADMISSION_H_
