#include "serve/http_metrics.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics_registry.h"
#include "obs/prometheus.h"

namespace secreta {
namespace {

// Scrape requests are one line plus a handful of headers; anything bigger
// is not a scraper.
constexpr size_t kMaxRequestBytes = 8192;

std::string HttpResponse(const char* status_line, const char* content_type,
                         const std::string& body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += StrFormat("\r\nContent-Length: %zu", body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("send failed: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

std::string HttpMetricsResponseFor(const std::string& request_line) {
  // "METHOD SP TARGET SP VERSION" — tolerate a missing version (HTTP/0.9
  // style probes) but not a missing target.
  size_t sp1 = request_line.find(' ');
  if (sp1 == std::string::npos) {
    return HttpResponse("400 Bad Request", "text/plain; charset=utf-8",
                        "malformed request line\n");
  }
  size_t sp2 = request_line.find(' ', sp1 + 1);
  const std::string method = request_line.substr(0, sp1);
  std::string target = sp2 == std::string::npos
                           ? request_line.substr(sp1 + 1)
                           : request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Scrapers may append a query string (?format=...); route on the path.
  size_t question = target.find('?');
  if (question != std::string::npos) target.resize(question);

  if (method != "GET") {
    return HttpResponse("405 Method Not Allowed",
                        "text/plain; charset=utf-8", "GET only\n");
  }
  if (target == "/metrics") {
    return HttpResponse(
        "200 OK", "text/plain; version=0.0.4; charset=utf-8",
        MetricsSnapshotToPrometheus(MetricsRegistry::Global().Snapshot()));
  }
  if (target == "/healthz") {
    return HttpResponse("200 OK", "text/plain; charset=utf-8", "ok\n");
  }
  return HttpResponse("404 Not Found", "text/plain; charset=utf-8",
                      "unknown path; try /metrics\n");
}

HttpMetricsServer::HttpMetricsServer(const HttpMetricsOptions& options)
    : options_(options) {}

HttpMetricsServer::~HttpMetricsServer() { Stop(); }

Status HttpMetricsServer::Start() {
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    return Status::FailedPrecondition("metrics endpoint already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument(StrFormat("bad bind address \"%s\"",
                                             options_.bind_address.c_str()));
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IOError(StrFormat(
        "bind to %s:%u failed: %s", options_.bind_address.c_str(),
        static_cast<unsigned>(options_.port), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status status = Status::IOError(
        StrFormat("listen failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    Status status = Status::IOError(
        StrFormat("getsockname failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  port_.store(ntohs(bound.sin_port), std::memory_order_release);

  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  serve_thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void HttpMetricsServer::Stop() {
  running_.store(false, std::memory_order_release);
  if (listen_fd_ >= 0) {
    (void)::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (serve_thread_.joinable()) serve_thread_.join();
  if (listen_fd_ >= 0) {
    (void)::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpMetricsServer::ServeLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) break;
      continue;
    }
    if (!running_.load(std::memory_order_acquire)) {
      (void)::close(fd);
      break;
    }
    HandleConnection(fd);
    (void)::close(fd);
  }
}

void HttpMetricsServer::HandleConnection(int fd) {
  if (options_.read_timeout_seconds > 0) {
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(options_.read_timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (options_.read_timeout_seconds -
         std::floor(options_.read_timeout_seconds)) *
        1e6);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Read until the end of headers (blank line) or the size cap. The request
  // line is all that matters; the headers just have to be drained so the
  // peer does not see a reset before reading the response.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  size_t eol = request.find('\n');
  if (eol == std::string::npos) return;  // no complete request line
  std::string request_line = request.substr(0, eol);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.pop_back();
  }
  SendAll(fd, HttpMetricsResponseFor(request_line)).IgnoreError();
}

}  // namespace secreta
