// Embedded Prometheus scrape endpoint: a tiny HTTP/1.1 server that renders
// the process-global MetricsRegistry in text exposition format.
//
// Deliberately minimal — it exists so `secreta_jobd --metrics-listen PORT`
// can be scraped by a stock Prometheus without a sidecar, not to be a web
// framework. One accept thread serves connections serially (scrapes arrive
// every few seconds, not thousands per second); each request is parsed only
// as far as the request line, answered, and closed (Connection: close).
//
// Routes:
//   GET /metrics  → 200, text/plain; version=0.0.4 (obs/prometheus.h)
//   GET /healthz  → 200, "ok"
//   anything else → 404 (non-GET methods → 405)
//
// Shares the query server's shutdown discipline: Stop() shuts down the
// listen socket to unblock accept, then joins. Idempotent.

#ifndef SECRETA_SERVE_HTTP_METRICS_H_
#define SECRETA_SERVE_HTTP_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"

namespace secreta {

struct HttpMetricsOptions {
  /// TCP port to listen on; 0 = ephemeral (read back via port()).
  uint16_t port = 0;
  /// Loopback by default, same reasoning as ServerOptions::bind_address.
  std::string bind_address = "127.0.0.1";
  int backlog = 8;
  /// A scraper that stalls longer than this mid-request is dropped.
  double read_timeout_seconds = 5.0;
};

/// \brief Serves GET /metrics from MetricsRegistry::Global(). Thread-safe.
class HttpMetricsServer {
 public:
  explicit HttpMetricsServer(const HttpMetricsOptions& options = {});
  /// Calls Stop().
  ~HttpMetricsServer();

  HttpMetricsServer(const HttpMetricsServer&) = delete;
  HttpMetricsServer& operator=(const HttpMetricsServer&) = delete;

  /// Binds, listens, and starts the serve thread. FailedPrecondition when
  /// already started; IOError when the port cannot be bound.
  [[nodiscard]] Status Start();

  /// Graceful shutdown; idempotent.
  void Stop();

  /// The bound port (valid after Start; the ephemeral port when port=0).
  uint16_t port() const { return port_.load(std::memory_order_acquire); }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  const HttpMetricsOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  std::thread serve_thread_;
};

/// Builds one full HTTP response for `request_line` (e.g. "GET /metrics
/// HTTP/1.1"), status line through body. Split out of the server so tests
/// can exercise routing without sockets.
std::string HttpMetricsResponseFor(const std::string& request_line);

}  // namespace secreta

#endif  // SECRETA_SERVE_HTTP_METRICS_H_
