#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "export/json_export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace secreta {
namespace {

void SetReceiveTimeout(int fd, double seconds) {
  if (seconds <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  // Best effort: a connection without an idle timeout still works.
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

QueryServer::QueryServer(DatasetCatalog* catalog, TenantRegistry* tenants,
                         JobScheduler* scheduler,
                         const ServerOptions& options)
    : catalog_(catalog),
      tenants_(tenants),
      admission_(scheduler, options.admission),
      options_(options) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument(StrFormat("bad bind address \"%s\"",
                                             options_.bind_address.c_str()));
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IOError(StrFormat(
        "bind to %s:%u failed: %s", options_.bind_address.c_str(),
        static_cast<unsigned>(options_.port), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status status = Status::IOError(
        StrFormat("listen failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    Status status = Status::IOError(
        StrFormat("getsockname failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  port_.store(ntohs(bound.sin_port), std::memory_order_release);

  listen_fd_ = fd;
  handlers_ = std::make_unique<ThreadPool>(
      std::max<size_t>(1, options_.max_connections), "serve");
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (listen_fd_ >= 0) {
    // Unblocks the accept thread; close happens after the join so the fd
    // number cannot be reused mid-shutdown.
    (void)::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    MutexLock lock(mutex_);
    for (int fd : connections_) (void)::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (handlers_) {
    handlers_->Wait();
    handlers_.reset();  // joins the workers
  }
  if (listen_fd_ >= 0) {
    (void)::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (was_running) {
    MetricsRegistry::Global().gauge("serve.active_connections")->Set(0);
  }
}

void QueryServer::AcceptLoop() {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) break;
      // Transient accept failure (e.g. EMFILE); keep serving.
      metrics.counter("serve.accept_errors")->Increment();
      continue;
    }
    if (!running_.load(std::memory_order_acquire)) {
      (void)::close(fd);
      break;
    }
    metrics.counter("serve.connections")->Increment();
    size_t active =
        active_connections_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (active > options_.max_connections) {
      // All handler workers are occupied by live connections; parking this
      // one in the pool queue would hang the client, so refuse loudly.
      active_connections_.fetch_sub(1, std::memory_order_acq_rel);
      metrics.counter("serve.rejected_busy")->Increment();
      WriteFrame(fd, ErrorResponsePayload(
                         0, Status::ResourceExhausted(
                                "server at connection capacity")
                                .WithRetryAfter(0.5)))
          .IgnoreError();  // refusal is best effort; the socket is closing
      (void)::close(fd);
      continue;
    }
    metrics.gauge("serve.active_connections")
        ->Set(static_cast<double>(active));
    RegisterConnection(fd);
    handlers_->Submit([this, fd] {
      HandleConnection(fd);
      UnregisterConnection(fd);
      (void)::close(fd);
      size_t now_active =
          active_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      MetricsRegistry::Global()
          .gauge("serve.active_connections")
          ->Set(static_cast<double>(now_active));
    });
  }
}

void QueryServer::RegisterConnection(int fd) {
  MutexLock lock(mutex_);
  connections_.insert(fd);
}

void QueryServer::UnregisterConnection(int fd) {
  MutexLock lock(mutex_);
  connections_.erase(fd);
}

void QueryServer::HandleConnection(int fd) {
  SECRETA_TRACE_SPAN("serve.connection");
  MetricsRegistry& metrics = MetricsRegistry::Global();
  SetReceiveTimeout(fd, options_.idle_timeout_seconds);
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::shared_ptr<ClientSession> session;
  std::string payload;
  while (running_.load(std::memory_order_acquire)) {
    bool clean_eof = false;
    Status read =
        ReadFrame(fd, options_.max_frame_bytes, &payload, &clean_eof);
    if (!read.ok()) {
      // Framing is unrecoverable: report (best effort) and hang up. An idle
      // timeout or truncated frame both land here.
      metrics.counter("serve.read_errors")->Increment();
      WriteFrame(fd, ErrorResponsePayload(0, read)).IgnoreError();
      // The connection is closing; nothing to recover.
      return;
    }
    if (clean_eof) return;

    metrics.counter("serve.requests")->Increment();
    Stopwatch request_timer;
    Result<ServeRequest> parsed = ParseServeRequest(payload);
    std::string response;
    bool close_after = false;
    if (!parsed.ok()) {
      // The frame boundary is intact, so a malformed request is answerable:
      // reply with the parse error and keep the connection.
      metrics.counter("serve.bad_requests")->Increment();
      response = ErrorResponsePayload(0, parsed.status());
    } else if (parsed->op == ServeOp::kHello) {
      if (session != nullptr) {
        response = ErrorResponsePayload(
            parsed->id,
            Status::FailedPrecondition("hello already completed"));
      } else if (parsed->version != kServeProtocolVersion) {
        response = ErrorResponsePayload(
            parsed->id,
            Status::FailedPrecondition(StrFormat(
                "protocol version mismatch: client %u, server %u",
                parsed->version, kServeProtocolVersion)));
      } else {
        Result<std::shared_ptr<ClientSession>> auth =
            tenants_->Authenticate(parsed->token);
        if (!auth.ok()) {
          metrics.counter("serve.auth_failures")->Increment();
          response = ErrorResponsePayload(parsed->id, auth.status());
        } else {
          session = std::move(*auth);
          response = HelloResponsePayload(
              parsed->id, session->id(), session->tenant(),
              AccessLevelToString(session->access()), kServeProtocolVersion);
        }
      }
    } else if (session == nullptr) {
      response = ErrorResponsePayload(
          parsed->id, Status::FailedPrecondition(
                          "handshake required: send hello first"));
    } else if (parsed->op == ServeOp::kBye) {
      response = ByeResponsePayload(parsed->id);
      close_after = true;
    } else {
      Result<std::string> handled = HandleRequest(*parsed, *session);
      if (handled.ok()) {
        response = std::move(*handled);
      } else {
        metrics.counter("serve.request_errors")->Increment();
        response = ErrorResponsePayload(parsed->id, handled.status());
      }
    }
    metrics.histogram("serve.request_seconds")
        ->Record(request_timer.ElapsedSeconds());
    if (!WriteFrame(fd, response).ok()) {
      metrics.counter("serve.write_errors")->Increment();
      return;
    }
    if (close_after) return;
  }
}

Result<std::string> QueryServer::HandleRequest(const ServeRequest& request,
                                               ClientSession& session) {
  SECRETA_TRACE_SPAN("serve.request");
  SECRETA_FAULT_POINT("serve.request");
  switch (request.op) {
    case ServeOp::kPing:
      return PongResponsePayload(request.id);
    case ServeOp::kMetrics:
      return MetricsResponsePayload(
          request.id,
          MetricsSnapshotToJson(MetricsRegistry::Global().Snapshot()));
    case ServeOp::kList: {
      std::vector<ServeDatasetInfo> rows;
      for (const auto& release : catalog_->List()) {
        ServeDatasetInfo info;
        info.name = release->name();
        info.records = release->num_records();
        info.version = release->version();
        info.config = release->config_label();
        rows.push_back(std::move(info));
      }
      return ListResponsePayload(request.id, rows);
    }
    case ServeOp::kCount: {
      AccessLevel access = AccessLevel::kAnonymized;
      if (!request.access.empty()) {
        SECRETA_ASSIGN_OR_RETURN(access, ParseAccessLevel(request.access));
      }
      if (!session.Allows(access)) {
        session.RecordQuery(false);
        return Status::PermissionDenied(StrFormat(
            "tenant \"%s\" is not cleared for %s access",
            session.tenant().c_str(), AccessLevelToString(access)));
      }
      Result<std::shared_ptr<const PublishedRelease>> release =
          catalog_->Get(request.dataset);
      if (!release.ok()) {
        session.RecordQuery(false);
        return release.status();
      }
      // The admission callback runs on a scheduler worker; the shared_ptrs
      // keep the release (and the cached flag slot) alive even if this
      // handler unwinds first.
      auto cached = std::make_shared<bool>(false);
      std::shared_ptr<const PublishedRelease> rel = std::move(*release);
      std::string query_line = request.query;
      Stopwatch timer;
      Result<double> count = admission_.RunCount(
          session,
          StrFormat("serve:%s:%s", session.tenant().c_str(),
                    request.dataset.c_str()),
          [rel, query_line, access, cached]() -> Result<double> {
            SECRETA_ASSIGN_OR_RETURN(PublishedRelease::CountAnswer answer,
                                     rel->CountLine(query_line, access));
            *cached = answer.cached;
            return answer.count;
          });
      session.RecordQuery(count.ok());
      if (!count.ok()) return count.status();
      return CountResponsePayload(request.id, *count,
                                  AccessLevelToString(access), *cached,
                                  timer.ElapsedSeconds());
    }
    case ServeOp::kHello:
    case ServeOp::kBye:
      break;  // handled by the connection loop
  }
  return Status::Internal("request op escaped the connection loop");
}

}  // namespace secreta
