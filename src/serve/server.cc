#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "export/json_export.h"
#include "kernels/kernels.h"
#include "obs/metric_names.h"
#include "obs/metrics_registry.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "obs/trace_tail.h"
#include "robust/fault_injection.h"

namespace secreta {
namespace {

// Collapses a COUNT-query line to its predicate shape — clause names with
// the constants wildcarded ("Age:20..39;items:i3 i7" → "Age:*;items:*") —
// so traces and slow-query records group by query structure instead of
// exploding one entry per distinct constant.
std::string QueryShape(const std::string& query_line) {
  std::string shape;
  size_t start = 0;
  while (start <= query_line.size()) {
    size_t end = query_line.find(';', start);
    if (end == std::string::npos) end = query_line.size();
    const std::string clause = query_line.substr(start, end - start);
    if (!shape.empty()) shape += ';';
    size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      shape += clause;
    } else {
      shape.append(clause, 0, colon + 1);
      shape += '*';
    }
    if (end == query_line.size()) break;
    start = end + 1;
  }
  return shape;
}

void SetReceiveTimeout(int fd, double seconds) {
  if (seconds <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  // Best effort: a connection without an idle timeout still works.
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

QueryServer::QueryServer(DatasetCatalog* catalog, TenantRegistry* tenants,
                         JobScheduler* scheduler,
                         const ServerOptions& options)
    : catalog_(catalog),
      tenants_(tenants),
      admission_(scheduler, options.admission),
      options_(options) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument(StrFormat("bad bind address \"%s\"",
                                             options_.bind_address.c_str()));
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IOError(StrFormat(
        "bind to %s:%u failed: %s", options_.bind_address.c_str(),
        static_cast<unsigned>(options_.port), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.backlog) < 0) {
    Status status = Status::IOError(
        StrFormat("listen failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    Status status = Status::IOError(
        StrFormat("getsockname failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  port_.store(ntohs(bound.sin_port), std::memory_order_release);

  listen_fd_ = fd;
  handlers_ = std::make_unique<ThreadPool>(
      std::max<size_t>(1, options_.max_connections), "serve");
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (listen_fd_ >= 0) {
    // Unblocks the accept thread; close happens after the join so the fd
    // number cannot be reused mid-shutdown.
    (void)::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    MutexLock lock(mutex_);
    for (int fd : connections_) (void)::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (handlers_) {
    handlers_->Wait();
    handlers_.reset();  // joins the workers
  }
  if (listen_fd_ >= 0) {
    (void)::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (was_running) {
    MetricsRegistry::Global()
        .gauge(metric_names::kServeActiveConnections)
        ->Set(0);
  }
}

void QueryServer::AcceptLoop() {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) break;
      // Transient accept failure (e.g. EMFILE); keep serving.
      metrics.counter(metric_names::kServeAcceptErrors)->Increment();
      continue;
    }
    if (!running_.load(std::memory_order_acquire)) {
      (void)::close(fd);
      break;
    }
    metrics.counter(metric_names::kServeConnections)->Increment();
    size_t active =
        active_connections_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (active > options_.max_connections) {
      // All handler workers are occupied by live connections; parking this
      // one in the pool queue would hang the client, so refuse loudly.
      active_connections_.fetch_sub(1, std::memory_order_acq_rel);
      metrics.counter(metric_names::kServeRejectedBusy)->Increment();
      WriteFrame(fd, ErrorResponsePayload(
                         0, Status::ResourceExhausted(
                                "server at connection capacity")
                                .WithRetryAfter(0.5)))
          .IgnoreError();  // refusal is best effort; the socket is closing
      (void)::close(fd);
      continue;
    }
    metrics.gauge(metric_names::kServeActiveConnections)
        ->Set(static_cast<double>(active));
    RegisterConnection(fd);
    handlers_->Submit([this, fd] {
      HandleConnection(fd);
      UnregisterConnection(fd);
      (void)::close(fd);
      size_t now_active =
          active_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      MetricsRegistry::Global()
          .gauge(metric_names::kServeActiveConnections)
          ->Set(static_cast<double>(now_active));
    });
  }
}

void QueryServer::RegisterConnection(int fd) {
  MutexLock lock(mutex_);
  connections_.insert(fd);
}

void QueryServer::UnregisterConnection(int fd) {
  MutexLock lock(mutex_);
  connections_.erase(fd);
}

void QueryServer::HandleConnection(int fd) {
  SECRETA_TRACE_SPAN("serve.connection");
  MetricsRegistry& metrics = MetricsRegistry::Global();
  SetReceiveTimeout(fd, options_.idle_timeout_seconds);
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::shared_ptr<ClientSession> session;
  std::string payload;
  while (running_.load(std::memory_order_acquire)) {
    bool clean_eof = false;
    Status read =
        ReadFrame(fd, options_.max_frame_bytes, &payload, &clean_eof);
    if (!read.ok()) {
      // Framing is unrecoverable: report (best effort) and hang up. An idle
      // timeout or truncated frame both land here.
      metrics.counter(metric_names::kServeReadErrors)->Increment();
      WriteFrame(fd, ErrorResponsePayload(0, read)).IgnoreError();
      // The connection is closing; nothing to recover.
      return;
    }
    if (clean_eof) return;

    metrics.counter(metric_names::kServeRequests)->Increment();
    Stopwatch request_timer;
    Result<ServeRequest> parsed = ParseServeRequest(payload);
    std::string response;
    bool close_after = false;
    if (!parsed.ok()) {
      // The frame boundary is intact, so a malformed request is answerable:
      // reply with the parse error and keep the connection.
      metrics.counter(metric_names::kServeBadRequests)->Increment();
      response = ErrorResponsePayload(0, parsed.status());
    } else if (parsed->op == ServeOp::kHello) {
      if (session != nullptr) {
        response = ErrorResponsePayload(
            parsed->id,
            Status::FailedPrecondition("hello already completed"));
      } else if (parsed->version != kServeProtocolVersion) {
        response = ErrorResponsePayload(
            parsed->id,
            Status::FailedPrecondition(StrFormat(
                "protocol version mismatch: client %u, server %u",
                parsed->version, kServeProtocolVersion)));
      } else {
        Result<std::shared_ptr<ClientSession>> auth =
            tenants_->Authenticate(parsed->token);
        if (!auth.ok()) {
          metrics.counter(metric_names::kServeAuthFailures)->Increment();
          response = ErrorResponsePayload(parsed->id, auth.status());
        } else {
          session = std::move(*auth);
          response = HelloResponsePayload(
              parsed->id, session->id(), session->tenant(),
              AccessLevelToString(session->access()), kServeProtocolVersion);
        }
      }
    } else if (session == nullptr) {
      response = ErrorResponsePayload(
          parsed->id, Status::FailedPrecondition(
                          "handshake required: send hello first"));
    } else if (parsed->op == ServeOp::kBye) {
      response = ByeResponsePayload(parsed->id);
      close_after = true;
    } else {
      Result<std::string> handled =
          HandleRequest(*parsed, *session, request_timer);
      if (handled.ok()) {
        response = std::move(*handled);
      } else {
        metrics.counter(metric_names::kServeRequestErrors)->Increment();
        response = ErrorResponsePayload(parsed->id, handled.status());
      }
    }
    metrics.histogram(metric_names::kServeRequestSeconds)
        ->Record(request_timer.ElapsedSeconds());
    if (!WriteFrame(fd, response).ok()) {
      metrics.counter(metric_names::kServeWriteErrors)->Increment();
      return;
    }
    if (close_after) return;
  }
}

void QueryServer::RecordCountTelemetry(ClientSession& session,
                                       const ServeRequest& request,
                                       const Status& status,
                                       const AdmissionTiming& timing,
                                       bool cached, double total_seconds) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  // The common case — a healthy request on a dataset this session has seen
  // before — must not pay label canonicalization or the registry mutex, so
  // the {tenant, dataset} handles are memoized on the session. Failure codes
  // are rare enough that the code="..." counter takes the slow lookup.
  CountMetricHandles& handles = session.count_metric_handles(request.dataset);
  if (handles.requests_ok == nullptr) {
    handles.requests_ok =
        metrics.counter(metric_names::kServeRequests,
                        {{"tenant", session.tenant()},
                         {"dataset", request.dataset},
                         {"code", "ok"}});
    handles.count_seconds = metrics.histogram(
        metric_names::kServeCountSeconds,
        {{"tenant", session.tenant()}, {"dataset", request.dataset}});
    handles.slow_queries = metrics.counter(
        metric_names::kServeSlowQueries,
        {{"tenant", session.tenant()}, {"dataset", request.dataset}});
  }
  if (status.ok()) {
    handles.requests_ok->Increment();
  } else {
    metrics
        .counter(metric_names::kServeRequests,
                 {{"tenant", session.tenant()},
                  {"dataset", request.dataset},
                  {"code", StatusCodeToString(status.code())}})
        ->Increment();
  }
  handles.count_seconds->Record(total_seconds);

  const double threshold = options_.slow_query_threshold_seconds;
  const bool slow = total_seconds >= threshold;
  const bool error = !status.ok();
  if (slow) handles.slow_queries->Increment();

  TraceTail& tail = TraceTail::Global();
  if (!slow && !error) {
    // Healthy and fast: counted as seen, never retained — skip the trace id
    // and all the string assembly below.
    tail.CountHealthy();
    return;
  }

  RequestTrace trace;
  trace.trace_id = tail.NextTraceId();
  trace.tenant = session.tenant();
  trace.dataset = request.dataset;
  trace.query_shape = QueryShape(request.query);
  trace.outcome = status.ok() ? "ok" : StatusCodeToString(status.code());
  trace.kernel_tier = kernels::ActiveTierName();
  trace.queue_seconds = timing.queue_seconds;
  trace.run_seconds = timing.run_seconds;
  trace.total_seconds = total_seconds;
  trace.cached = cached;
  trace.slow = slow;
  trace.error = error;

  SlowQueryLog& slow_log = SlowQueryLog::Global();
  if (slow && slow_log.enabled()) {
    SlowQueryRecord record;
    record.trace_id = trace.trace_id;
    record.tenant = trace.tenant;
    record.dataset = trace.dataset;
    record.query_shape = trace.query_shape;
    record.outcome = trace.outcome;
    record.kernel_tier = trace.kernel_tier;
    record.queue_seconds = trace.queue_seconds;
    record.run_seconds = trace.run_seconds;
    record.total_seconds = trace.total_seconds;
    record.threshold_seconds = threshold;
    record.cached = trace.cached;
    slow_log.Record(record);
  }
  tail.Record(std::move(trace));
}

Result<std::string> QueryServer::HandleRequest(const ServeRequest& request,
                                               ClientSession& session,
                                               const Stopwatch& frame_timer) {
  SECRETA_TRACE_SPAN("serve.request");
  SECRETA_FAULT_POINT("serve.request");
  switch (request.op) {
    case ServeOp::kPing:
      return PongResponsePayload(request.id);
    case ServeOp::kMetrics:
      return MetricsResponsePayload(
          request.id,
          MetricsSnapshotToJson(MetricsRegistry::Global().Snapshot()));
    case ServeOp::kTraces: {
      // Pinned traces expose other tenants' names, datasets, and query
      // shapes — operator-only, like direct counts.
      if (!session.Allows(AccessLevel::kDirect)) {
        return Status::PermissionDenied(StrFormat(
            "tenant \"%s\" is not cleared for admin.traces (direct access "
            "required)",
            session.tenant().c_str()));
      }
      return TracesResponsePayload(
          request.id, RequestTracesToJson(TraceTail::Global().Snapshot()));
    }
    case ServeOp::kList: {
      std::vector<ServeDatasetInfo> rows;
      for (const auto& release : catalog_->List()) {
        ServeDatasetInfo info;
        info.name = release->name();
        info.records = release->num_records();
        info.version = release->version();
        info.config = release->config_label();
        rows.push_back(std::move(info));
      }
      return ListResponsePayload(request.id, rows);
    }
    case ServeOp::kCount: {
      AccessLevel access = AccessLevel::kAnonymized;
      if (!request.access.empty()) {
        Result<AccessLevel> parsed = ParseAccessLevel(request.access);
        if (!parsed.ok()) {
          RecordCountTelemetry(session, request, parsed.status(), {},
                               /*cached=*/false, frame_timer.ElapsedSeconds());
          return parsed.status();
        }
        access = *parsed;
      }
      if (!session.Allows(access)) {
        session.RecordQuery(false);
        Status denied = Status::PermissionDenied(StrFormat(
            "tenant \"%s\" is not cleared for %s access",
            session.tenant().c_str(), AccessLevelToString(access)));
        RecordCountTelemetry(session, request, denied, {}, /*cached=*/false,
                             frame_timer.ElapsedSeconds());
        return denied;
      }
      Result<std::shared_ptr<const PublishedRelease>> release =
          catalog_->Get(request.dataset);
      if (!release.ok()) {
        session.RecordQuery(false);
        RecordCountTelemetry(session, request, release.status(), {},
                             /*cached=*/false, frame_timer.ElapsedSeconds());
        return release.status();
      }
      // The admission callback runs on a scheduler worker; the shared_ptrs
      // keep the release (and the cached flag slot) alive even if this
      // handler unwinds first.
      auto cached = std::make_shared<bool>(false);
      std::shared_ptr<const PublishedRelease> rel = std::move(*release);
      std::string query_line = request.query;
      Stopwatch timer;
      AdmissionTiming timing;
      Result<double> count = admission_.RunCount(
          session,
          StrFormat("serve:%s:%s", session.tenant().c_str(),
                    request.dataset.c_str()),
          [rel, query_line, access, cached]() -> Result<double> {
            SECRETA_ASSIGN_OR_RETURN(PublishedRelease::CountAnswer answer,
                                     rel->CountLine(query_line, access));
            *cached = answer.cached;
            return answer.count;
          },
          &timing);
      session.RecordQuery(count.ok());
      RecordCountTelemetry(session, request, count.status(), timing, *cached,
                           frame_timer.ElapsedSeconds());
      if (!count.ok()) return count.status();
      return CountResponsePayload(request.id, *count,
                                  AccessLevelToString(access), *cached,
                                  timer.ElapsedSeconds());
    }
    case ServeOp::kHello:
    case ServeOp::kBye:
      break;  // handled by the connection loop
  }
  return Status::Internal("request op escaped the connection loop");
}

}  // namespace secreta
