#include "serve/catalog.h"

#include <utility>

#include "common/string_util.h"
#include "kernels/kernels.h"
#include "obs/metric_names.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace secreta {

PublishedRelease::PublishedRelease(std::string name, uint64_t version,
                                   Dataset dataset, ReleaseOptions options)
    : name_(std::move(name)),
      version_(version),
      options_(std::move(options)),
      dataset_(std::make_unique<const Dataset>(std::move(dataset))) {}

Status PublishedRelease::Initialize() {
  SECRETA_TRACE_SPAN("serve.publish");
  const AnonMode mode = options_.config.mode;
  const bool relational_side =
      mode == AnonMode::kRelational || mode == AnonMode::kRt;
  const bool transaction_side =
      mode == AnonMode::kTransaction || mode == AnonMode::kRt;

  if (relational_side) {
    SECRETA_ASSIGN_OR_RETURN(
        column_hierarchies_,
        BuildAllColumnHierarchies(*dataset_, options_.hierarchy));
    SECRETA_ASSIGN_OR_RETURN(
        RelationalContext rel,
        RelationalContext::Create(*dataset_, column_hierarchies_));
    rel_context_.emplace(std::move(rel));
  }
  if (transaction_side) {
    SECRETA_ASSIGN_OR_RETURN(Hierarchy item_h,
                             BuildItemHierarchy(*dataset_, options_.hierarchy));
    item_hierarchy_.emplace(std::move(item_h));
    SECRETA_ASSIGN_OR_RETURN(
        TransactionContext tx,
        TransactionContext::Create(*dataset_, &*item_hierarchy_));
    tx_context_.emplace(std::move(tx));
  }

  EngineInputs inputs;
  inputs.dataset = dataset_.get();
  inputs.relational = rel_context_ ? &*rel_context_ : nullptr;
  inputs.transaction = tx_context_ ? &*tx_context_ : nullptr;
  SECRETA_ASSIGN_OR_RETURN(run_, RunAnonymization(inputs, options_.config));

  SECRETA_ASSIGN_OR_RETURN(
      QueryEvaluator evaluator,
      QueryEvaluator::Create(*dataset_,
                             rel_context_ ? &*rel_context_ : nullptr));
  evaluator_.emplace(std::move(evaluator));
  SECRETA_RETURN_IF_ERROR(evaluator_->EnsureIndex());
  recoding_cache_ = evaluator_->BuildRecodingCache(
      run_.relational ? &*run_.relational : nullptr,
      run_.transaction ? &*run_.transaction : nullptr);

  MetricsRegistry& metrics = MetricsRegistry::Global();
  const MetricLabels labels = {{"dataset", name_}};
  cache_hits_counter_ = metrics.counter(metric_names::kServeCacheHits, labels);
  cache_misses_counter_ =
      metrics.counter(metric_names::kServeCacheMisses, labels);
  cache_hit_ratio_gauge_ =
      metrics.gauge(metric_names::kServeCacheHitRatio, labels);
  return Status::OK();
}

Result<std::shared_ptr<const PublishedRelease>> PublishedRelease::Create(
    std::string name, uint64_t version, Dataset dataset,
    const ReleaseOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("release name must be non-empty");
  }
  if (dataset.num_records() == 0) {
    return Status::InvalidArgument("cannot publish an empty dataset");
  }
  // Not make_shared: the constructor is private and the heap address must be
  // final before Initialize wires up the internal pointer chain.
  std::shared_ptr<PublishedRelease> release(new PublishedRelease(
      std::move(name), version, std::move(dataset), options));
  SECRETA_RETURN_IF_ERROR(release->Initialize());
  return std::shared_ptr<const PublishedRelease>(std::move(release));
}

Result<double> PublishedRelease::Count(const CountQuery& query,
                                       AccessLevel access) const {
  SECRETA_TRACE_SPAN("serve.count");
  Workload workload(std::vector<CountQuery>{query});
  // Picks the const BindWorkload overload (this method is const): the index
  // was built at publication, so this never writes to the shared evaluator.
  SECRETA_ASSIGN_OR_RETURN(BoundWorkload bound,
                           evaluator_->BindWorkload(workload));
  if (access == AccessLevel::kDirect) {
    return bound.exact_count(0);
  }
  SECRETA_ASSIGN_OR_RETURN(
      AreReport report,
      evaluator_->Are(bound, run_.relational ? &*run_.relational : nullptr,
                      run_.transaction ? &*run_.transaction : nullptr,
                      recoding_cache_));
  return report.estimated[0];
}

void PublishedRelease::RecordCacheLookup(bool hit) const {
  (hit ? cache_hits_counter_ : cache_misses_counter_)->Increment();
  const double hits = static_cast<double>(cache_hits_counter_->value());
  const double total =
      hits + static_cast<double>(cache_misses_counter_->value());
  cache_hit_ratio_gauge_->Set(total == 0 ? 0 : hits / total);
}

Result<PublishedRelease::CountAnswer> PublishedRelease::CountLine(
    const std::string& query_line, AccessLevel access) const {
  std::string key =
      StrFormat("%s\x1f%s", AccessLevelToString(access), query_line.c_str());
  if (options_.answer_cache_capacity > 0) {
    MutexLock lock(cache_mutex_);
    auto it = lru_index_.find(key);
    if (it != lru_index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      RecordCacheLookup(/*hit=*/true);
      return CountAnswer{it->second->second, /*cached=*/true};
    }
  }
  RecordCacheLookup(/*hit=*/false);

  SECRETA_ASSIGN_OR_RETURN(CountQuery query, CountQuery::Parse(query_line));
  SECRETA_ASSIGN_OR_RETURN(double count, Count(query, access));

  if (options_.answer_cache_capacity > 0) {
    MutexLock lock(cache_mutex_);
    auto it = lru_index_.find(key);
    if (it == lru_index_.end()) {
      lru_.emplace_front(key, count);
      lru_index_.emplace(key, lru_.begin());
      while (lru_.size() > options_.answer_cache_capacity) {
        lru_index_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  return CountAnswer{count, /*cached=*/false};
}

Result<std::shared_ptr<const PublishedRelease>> DatasetCatalog::Publish(
    const std::string& name, Dataset dataset, const ReleaseOptions& options) {
  uint64_t version;
  {
    MutexLock lock(mutex_);
    version = next_version_++;
  }
  // Anonymization runs outside the catalog lock: a slow publication must not
  // block Get/List on the query path.
  SECRETA_ASSIGN_OR_RETURN(
      std::shared_ptr<const PublishedRelease> release,
      PublishedRelease::Create(name, version, std::move(dataset), options));
  {
    MutexLock lock(mutex_);
    releases_[name] = release;
    MetricsRegistry::Global()
        .gauge(metric_names::kServeCatalogReleases)
        ->Set(static_cast<double>(releases_.size()));
    // Kernel tier (enum value; TierName order) and the published release's
    // compressed item-index footprint, for the serve dashboards.
    MetricsRegistry::Global()
        .gauge(metric_names::kServeKernelsTier)
        ->Set(static_cast<double>(kernels::ActiveTier()));
    if (const QueryIndex* index = release->evaluator().index()) {
      MetricsRegistry::Global()
          .gauge(metric_names::kServeIndexRoaringBytes)
          ->Set(static_cast<double>(index->roaring_bytes()));
    }
  }
  MetricsRegistry::Global()
      .counter(metric_names::kServeCatalogPublished)
      ->Increment();
  return release;
}

Result<std::shared_ptr<const PublishedRelease>> DatasetCatalog::Get(
    const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound(
        StrFormat("no published dataset named \"%s\"", name.c_str()));
  }
  return it->second;
}

std::vector<std::shared_ptr<const PublishedRelease>> DatasetCatalog::List()
    const {
  MutexLock lock(mutex_);
  std::vector<std::shared_ptr<const PublishedRelease>> out;
  out.reserve(releases_.size());
  for (const auto& [name, release] : releases_) out.push_back(release);
  return out;
}

size_t DatasetCatalog::size() const {
  MutexLock lock(mutex_);
  return releases_.size();
}

}  // namespace secreta
