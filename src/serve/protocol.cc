#include "serve/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "export/json_writer.h"

namespace secreta {
namespace {

// Sends all of `data`, retrying on EINTR and short writes. MSG_NOSIGNAL so a
// dead peer yields EPIPE instead of killing the process.
Status SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("send failed: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Receives exactly `len` bytes. `*got` reports how many arrived before an
// EOF; the caller distinguishes clean EOF (got == 0 on the length prefix)
// from a truncated frame.
Status RecvExact(int fd, char* data, size_t len, size_t* got) {
  *got = 0;
  while (*got < len) {
    ssize_t n = ::recv(fd, data + *got, len - *got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket receive timed out");
      }
      return Status::IOError(
          StrFormat("recv failed: %s", std::strerror(errno)));
    }
    if (n == 0) return Status::OK();  // EOF; caller inspects *got
    *got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<uint32_t> DecodeFrameLength(std::string_view header,
                                   size_t max_frame_bytes) {
  if (header.size() != 4) {
    return Status::InvalidArgument("frame header must be exactly 4 bytes");
  }
  uint32_t len = (static_cast<uint32_t>(static_cast<unsigned char>(header[0]))
                  << 24) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(header[1]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(header[2]))
                  << 8) |
                 static_cast<uint32_t>(static_cast<unsigned char>(header[3]));
  if (len == 0) {
    return Status::InvalidArgument("zero-length frame");
  }
  if (len > max_frame_bytes) {
    return Status::InvalidArgument(
        StrFormat("frame of %u bytes exceeds limit %zu", len,
                  max_frame_bytes));
  }
  return len;
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > 0xFFFFFFFFu) {
    return Status::InvalidArgument("frame payload exceeds 32-bit length");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>((len >> 24) & 0xFF),
                    static_cast<char>((len >> 16) & 0xFF),
                    static_cast<char>((len >> 8) & 0xFF),
                    static_cast<char>(len & 0xFF)};
  SECRETA_RETURN_IF_ERROR(SendAll(fd, header, sizeof(header)));
  return SendAll(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, size_t max_frame_bytes, std::string* payload,
                 bool* clean_eof) {
  payload->clear();
  *clean_eof = false;
  char header[4];
  size_t got = 0;
  SECRETA_RETURN_IF_ERROR(RecvExact(fd, header, sizeof(header), &got));
  if (got == 0) {
    *clean_eof = true;
    return Status::OK();
  }
  if (got < sizeof(header)) {
    return Status::IOError("connection closed mid frame header");
  }
  SECRETA_ASSIGN_OR_RETURN(
      uint32_t len,
      DecodeFrameLength(std::string_view(header, sizeof(header)),
                        max_frame_bytes));
  payload->resize(len);
  SECRETA_RETURN_IF_ERROR(RecvExact(fd, payload->data(), len, &got));
  if (got < len) {
    payload->clear();
    return Status::IOError(
        StrFormat("connection closed mid frame (%zu of %u bytes)", got, len));
  }
  return Status::OK();
}

const char* ServeOpToString(ServeOp op) {
  switch (op) {
    case ServeOp::kHello:
      return "hello";
    case ServeOp::kCount:
      return "count";
    case ServeOp::kList:
      return "list";
    case ServeOp::kMetrics:
      return "metrics";
    case ServeOp::kTraces:
      return "admin.traces";
    case ServeOp::kPing:
      return "ping";
    case ServeOp::kBye:
      return "bye";
  }
  return "unknown";
}

Result<ServeOp> ParseServeOp(const std::string& name) {
  if (name == "hello") return ServeOp::kHello;
  if (name == "count") return ServeOp::kCount;
  if (name == "list") return ServeOp::kList;
  if (name == "metrics") return ServeOp::kMetrics;
  if (name == "admin.traces") return ServeOp::kTraces;
  if (name == "ping") return ServeOp::kPing;
  if (name == "bye") return ServeOp::kBye;
  return Status::InvalidArgument(StrFormat("unknown op \"%s\"", name.c_str()));
}

Result<ServeRequest> ParseServeRequest(const std::string& payload) {
  SECRETA_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(payload));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  ServeRequest request;
  SECRETA_ASSIGN_OR_RETURN(std::string op_name, doc.GetString("op"));
  SECRETA_ASSIGN_OR_RETURN(request.op, ParseServeOp(op_name));
  SECRETA_ASSIGN_OR_RETURN(request.id, doc.GetUintOr("id", 0));
  switch (request.op) {
    case ServeOp::kHello: {
      SECRETA_ASSIGN_OR_RETURN(uint64_t version, doc.GetUint("version"));
      if (version > 0xFFFFFFFFu) {
        return Status::InvalidArgument("version out of range");
      }
      request.version = static_cast<uint32_t>(version);
      SECRETA_ASSIGN_OR_RETURN(request.token, doc.GetString("token"));
      SECRETA_ASSIGN_OR_RETURN(request.client, doc.GetStringOr("client", ""));
      break;
    }
    case ServeOp::kCount: {
      SECRETA_ASSIGN_OR_RETURN(request.dataset, doc.GetString("dataset"));
      SECRETA_ASSIGN_OR_RETURN(request.query, doc.GetString("query"));
      SECRETA_ASSIGN_OR_RETURN(request.access, doc.GetStringOr("access", ""));
      if (request.dataset.empty()) {
        return Status::InvalidArgument("dataset must be non-empty");
      }
      if (request.query.empty()) {
        return Status::InvalidArgument("query must be non-empty");
      }
      break;
    }
    case ServeOp::kList:
    case ServeOp::kMetrics:
    case ServeOp::kTraces:
    case ServeOp::kPing:
    case ServeOp::kBye:
      break;
  }
  return request;
}

std::string SerializeServeRequest(const ServeRequest& request) {
  JsonWriter w;
  w.BeginObject();
  w.Key("op");
  w.String(ServeOpToString(request.op));
  w.Key("id");
  w.Int(static_cast<int64_t>(request.id));
  switch (request.op) {
    case ServeOp::kHello:
      w.Key("version");
      w.Int(request.version);
      w.Key("token");
      w.String(request.token);
      if (!request.client.empty()) {
        w.Key("client");
        w.String(request.client);
      }
      break;
    case ServeOp::kCount:
      w.Key("dataset");
      w.String(request.dataset);
      w.Key("query");
      w.String(request.query);
      if (!request.access.empty()) {
        w.Key("access");
        w.String(request.access);
      }
      break;
    case ServeOp::kList:
    case ServeOp::kMetrics:
    case ServeOp::kTraces:
    case ServeOp::kPing:
    case ServeOp::kBye:
      break;
  }
  w.EndObject();
  return w.TakeString();
}

namespace {

// Opens the common response preamble: {"ok":true,"id":N,"op":"..."
JsonWriter OkPreamble(uint64_t id, const char* op) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("id");
  w.Int(static_cast<int64_t>(id));
  w.Key("op");
  w.String(op);
  return w;
}

}  // namespace

std::string HelloResponsePayload(uint64_t id, uint64_t session_id,
                                 const std::string& tenant,
                                 const std::string& access,
                                 uint32_t server_version) {
  JsonWriter w = OkPreamble(id, "hello");
  w.Key("session");
  w.Int(static_cast<int64_t>(session_id));
  w.Key("tenant");
  w.String(tenant);
  w.Key("access");
  w.String(access);
  w.Key("version");
  w.Int(server_version);
  w.EndObject();
  return w.TakeString();
}

std::string CountResponsePayload(uint64_t id, double count,
                                 const std::string& access, bool cached,
                                 double elapsed_seconds) {
  JsonWriter w = OkPreamble(id, "count");
  w.Key("count");
  w.Number(count);
  w.Key("access");
  w.String(access);
  w.Key("cached");
  w.Bool(cached);
  w.Key("elapsed_seconds");
  w.Number(elapsed_seconds);
  w.EndObject();
  return w.TakeString();
}

std::string ListResponsePayload(
    uint64_t id, const std::vector<ServeDatasetInfo>& datasets) {
  JsonWriter w = OkPreamble(id, "list");
  w.Key("datasets");
  w.BeginArray();
  for (const ServeDatasetInfo& info : datasets) {
    w.BeginObject();
    w.Key("name");
    w.String(info.name);
    w.Key("records");
    w.Int(static_cast<int64_t>(info.records));
    w.Key("version");
    w.Int(static_cast<int64_t>(info.version));
    w.Key("config");
    w.String(info.config);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string MetricsResponsePayload(uint64_t id, const std::string& body_json) {
  // body_json is already a serialized object; splice it in verbatim.
  JsonWriter w = OkPreamble(id, "metrics");
  w.EndObject();
  std::string out = w.TakeString();
  out.pop_back();  // drop closing '}'
  out += ",\"metrics\":";
  out += body_json.empty() ? "{}" : body_json;
  out += "}";
  return out;
}

std::string TracesResponsePayload(uint64_t id, const std::string& traces_json) {
  // traces_json is already a serialized array; splice it in verbatim.
  JsonWriter w = OkPreamble(id, "admin.traces");
  w.EndObject();
  std::string out = w.TakeString();
  out.pop_back();  // drop closing '}'
  out += ",\"traces\":";
  out += traces_json.empty() ? "[]" : traces_json;
  out += "}";
  return out;
}

std::string PongResponsePayload(uint64_t id) {
  JsonWriter w = OkPreamble(id, "pong");
  w.EndObject();
  return w.TakeString();
}

std::string ByeResponsePayload(uint64_t id) {
  JsonWriter w = OkPreamble(id, "bye");
  w.EndObject();
  return w.TakeString();
}

std::string ErrorResponsePayload(uint64_t id, const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(false);
  w.Key("id");
  w.Int(static_cast<int64_t>(id));
  w.Key("error");
  w.String(StatusCodeToString(status.code()));
  w.Key("message");
  w.String(status.message());
  if (status.has_retry_after()) {
    w.Key("retry_after_ms");
    w.Int(static_cast<int64_t>(status.retry_after_seconds() * 1000.0 + 0.5));
  }
  w.EndObject();
  return w.TakeString();
}

namespace {

Result<StatusCode> StatusCodeFromString(const std::string& name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kPermissionDenied); ++c) {
    StatusCode code = static_cast<StatusCode>(c);
    if (name == StatusCodeToString(code)) return code;
  }
  return Status::InvalidArgument(
      StrFormat("unknown status code \"%s\"", name.c_str()));
}

}  // namespace

Result<ServeResponse> ParseServeResponse(const std::string& payload) {
  SECRETA_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(payload));
  if (!doc.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  SECRETA_ASSIGN_OR_RETURN(bool ok, doc.GetBoolOr("ok", false));
  ServeResponse response;
  SECRETA_ASSIGN_OR_RETURN(response.id, doc.GetUintOr("id", 0));
  if (!ok) {
    SECRETA_ASSIGN_OR_RETURN(std::string code_name,
                             doc.GetStringOr("error", "Internal"));
    SECRETA_ASSIGN_OR_RETURN(std::string message,
                             doc.GetStringOr("message", ""));
    SECRETA_ASSIGN_OR_RETURN(uint64_t retry_ms,
                             doc.GetUintOr("retry_after_ms", 0));
    Result<StatusCode> code = StatusCodeFromString(code_name);
    Status error(code.ok() ? *code : StatusCode::kInternal, message);
    if (retry_ms > 0) {
      error = error.WithRetryAfter(static_cast<double>(retry_ms) / 1000.0);
    }
    return error;
  }
  response.ok = true;
  response.body = std::move(doc);
  return response;
}

}  // namespace secreta
