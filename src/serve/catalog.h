// Published anonymized releases and the catalog that serves them.
//
// Publishing a dataset is the batch half of the serving story: the catalog
// runs the configured anonymization once, then freezes everything a COUNT
// needs into one immutable PublishedRelease — the dataset, its hierarchies
// and contexts, the recodings, a QueryEvaluator with its QueryIndex already
// built, the recoding-derived estimation caches, and a small LRU of recent
// answers. After Create returns, every structure is read-only, so any number
// of connection handlers answer queries concurrently with no lock on the hot
// path (the LRU has its own short mutex).
//
// Access levels map onto the two halves of the ARE machinery (the paper's
// utility metric): kDirect answers with the exact count over the original
// microdata, kAnonymized with the estimated count over the published
// recoding — the pair whose relative error ARE averages. An analyst tenant
// only ever sees the anonymized side.

#ifndef SECRETA_SERVE_CATALOG_H_
#define SECRETA_SERVE_CATALOG_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "data/dataset.h"
#include "engine/anonymization_module.h"
#include "hierarchy/hierarchy_builder.h"
#include "obs/metrics_registry.h"
#include "query/query_evaluator.h"
#include "serve/session.h"

namespace secreta {

/// How to anonymize a dataset at publication time.
struct ReleaseOptions {
  AlgorithmConfig config;
  HierarchyBuildOptions hierarchy;
  /// Recent-answer LRU entries per release; 0 disables the cache.
  size_t answer_cache_capacity = 1024;
};

/// \brief One published anonymized release: self-owning, immutable, warm.
///
/// Self-owning means the release holds the dataset, hierarchies, contexts,
/// run result, and evaluator itself (heap-stable, creation-ordered), so a
/// shared_ptr<const PublishedRelease> is all a query handler needs — even
/// after the catalog replaced the release with a newer version.
class PublishedRelease {
 public:
  /// Anonymizes `dataset` per `options` and freezes the serving state.
  /// Expensive (one full anonymization run + index build); runs once per
  /// publication, never per query.
  ///
  /// SECRETA_DECLASSIFIES: the serving side's sanctioned privacy-boundary
  /// crossing. The raw `dataset` enters here, is anonymized by the engine
  /// (whose own crossing is BuildAnonymizedDataset in core/recoding.h), and
  /// only the recoded release plus direct-access query answers gated by
  /// AccessLevel ever leave. kDirect answers expose exact counts by design —
  /// that tier is the operator-authenticated oracle the paper's utility
  /// evaluation requires, not an accidental leak.
  SECRETA_DECLASSIFIES static Result<std::shared_ptr<const PublishedRelease>>
  Create(std::string name, uint64_t version, Dataset dataset,
         const ReleaseOptions& options);

  const std::string& name() const { return name_; }
  uint64_t version() const { return version_; }
  size_t num_records() const { return dataset_->num_records(); }
  /// Display label of the anonymization config (e.g. "Cluster+Apriori k=5").
  std::string config_label() const { return options_.config.Label(); }

  struct CountAnswer {
    double count = 0;
    bool cached = false;  ///< served from the answer LRU
  };

  /// Answers one COUNT at `access` level. Parses `query_line` (the workload
  /// file / wire format), binds it against the warm QueryIndex, and returns
  /// the exact count (kDirect) or the estimated count over the published
  /// recoding (kAnonymized). Thread-safe const hot path.
  Result<CountAnswer> CountLine(const std::string& query_line,
                                AccessLevel access) const;

  /// Same, for an already-parsed query (no answer-cache lookup).
  Result<double> Count(const CountQuery& query, AccessLevel access) const;

  /// The release's warm evaluator (index built at publication); valid for the
  /// lifetime of the release. Observability reads its index footprint.
  const QueryEvaluator& evaluator() const { return *evaluator_; }

 private:
  PublishedRelease(std::string name, uint64_t version, Dataset dataset,
                   ReleaseOptions options);

  /// Builds hierarchies, contexts, recodings, evaluator, index, and caches.
  Status Initialize();

  /// Bumps the per-dataset hit/miss counters and refreshes the lifetime
  /// hit-ratio gauge.
  void RecordCacheLookup(bool hit) const;

  const std::string name_;
  const uint64_t version_;
  const ReleaseOptions options_;

  // Creation-ordered ownership chain: every later member may hold pointers
  // into earlier ones (contexts borrow dataset_ + hierarchies, the evaluator
  // borrows dataset_ + rel_context_). unique_ptr keeps the dataset address
  // stable while the release object itself is moved into its shared_ptr.
  std::unique_ptr<const Dataset> dataset_;
  std::vector<Hierarchy> column_hierarchies_;
  std::optional<Hierarchy> item_hierarchy_;
  std::optional<RelationalContext> rel_context_;
  std::optional<TransactionContext> tx_context_;
  RunResult run_;  // holds the published recodings
  std::optional<QueryEvaluator> evaluator_;
  RecodingCache recoding_cache_;

  // Per-dataset labeled metric handles (serve.cache.* {dataset=name}),
  // resolved once at publication so the query path never does a registry
  // lookup. Counters are shared across versions of the same dataset name.
  Counter* cache_hits_counter_ = nullptr;
  Counter* cache_misses_counter_ = nullptr;
  Gauge* cache_hit_ratio_gauge_ = nullptr;

  // Recent-answer LRU, keyed by (access, query line). The only mutable state
  // on the query path.
  mutable Mutex cache_mutex_;
  mutable std::list<std::pair<std::string, double>> lru_
      SECRETA_GUARDED_BY(cache_mutex_);
  mutable std::unordered_map<std::string,
                             std::list<std::pair<std::string, double>>::iterator>
      lru_index_ SECRETA_GUARDED_BY(cache_mutex_);
};

/// \brief Name → release map with versioned republication. Thread-safe.
///
/// Publish replaces any existing release under the same name (version bumps
/// monotonically); handlers that already hold the old shared_ptr finish
/// their queries against it undisturbed.
class DatasetCatalog {
 public:
  Result<std::shared_ptr<const PublishedRelease>> Publish(
      const std::string& name, Dataset dataset, const ReleaseOptions& options)
      SECRETA_EXCLUDES(mutex_);

  /// NotFound when nothing is published under `name`.
  Result<std::shared_ptr<const PublishedRelease>> Get(
      const std::string& name) const SECRETA_EXCLUDES(mutex_);

  /// All current releases, name order.
  std::vector<std::shared_ptr<const PublishedRelease>> List() const
      SECRETA_EXCLUDES(mutex_);

  size_t size() const SECRETA_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::shared_ptr<const PublishedRelease>> releases_
      SECRETA_GUARDED_BY(mutex_);
  uint64_t next_version_ SECRETA_GUARDED_BY(mutex_) = 1;
};

}  // namespace secreta

#endif  // SECRETA_SERVE_CATALOG_H_
