#include "serve/admission.h"

#include <memory>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace secreta {

AdmissionController::AdmissionController(JobScheduler* scheduler,
                                         const AdmissionOptions& options)
    : scheduler_(scheduler), options_(options) {}

Result<double> AdmissionController::RunCount(ClientSession& session,
                                             const std::string& label,
                                             CountFn fn,
                                             AdmissionTiming* timing) {
  SECRETA_TRACE_SPAN("serve.admission");
  MetricsRegistry& metrics = MetricsRegistry::Global();

  Status quota = session.ChargeQuota();
  if (!quota.ok()) {
    metrics.counter(metric_names::kAdmissionQuotaRejected)->Increment();
    return quota;
  }

  // The scheduler's JobFn contract returns an EvaluationReport; a COUNT is
  // just a double, so the value travels through this side channel while the
  // report stays empty.
  auto out = std::make_shared<double>(0);
  JobScheduler::JobFn job =
      [fn = std::move(fn), out](const CancellationToken& token)
      -> Result<EvaluationReport> {
    if (token.cancelled()) return Status::Cancelled("query cancelled");
    SECRETA_ASSIGN_OR_RETURN(*out, fn());
    // The deadline is cooperative: a count that finished after the reaper
    // fired the token is late, not done. Returning Cancelled here lets the
    // scheduler classify it — kTimedOut/DeadlineExceeded when the deadline
    // fired, kCancelled for an explicit cancellation.
    if (token.cancelled()) return Status::Cancelled("query cancelled");
    return EvaluationReport{};
  };

  JobOptions job_options;
  job_options.priority = options_.priority;
  job_options.timeout_seconds = options_.default_deadline_seconds;
  job_options.use_cache = false;

  Result<uint64_t> submitted =
      scheduler_->SubmitFn(std::move(job), label, job_options);
  if (!submitted.ok()) {
    metrics.counter(metric_names::kAdmissionBackpressureRejected)->Increment();
    return submitted.status();
  }
  metrics.counter(metric_names::kAdmissionAdmitted)->Increment();

  SECRETA_ASSIGN_OR_RETURN(JobInfo info, scheduler_->WaitJob(*submitted));
  if (timing != nullptr) {
    timing->queue_seconds = info.queue_seconds;
    timing->run_seconds = info.run_seconds;
  }
  switch (info.state) {
    case JobState::kDone:
      return *out;
    case JobState::kTimedOut:
      metrics.counter(metric_names::kAdmissionDeadlineExceeded)->Increment();
      return info.status;
    case JobState::kFailed:
    case JobState::kCancelled:
      return info.status;
    case JobState::kQueued:
    case JobState::kRunning:
      break;  // WaitJob only returns terminal states
  }
  return Status::Internal("query job left WaitJob in a live state");
}

}  // namespace secreta
