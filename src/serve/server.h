// The query server: a long-lived TCP daemon answering COUNT queries over
// published anonymized releases. Composition of the serving stack:
//
//   QueryServer (accept thread + per-connection handlers on a ThreadPool)
//     └─ protocol.h   framing + request/response JSON
//     └─ session.h    hello handshake → tenant auth → ClientSession
//     └─ admission.h  quota / backpressure / deadline gates (JobScheduler)
//     └─ catalog.h    DatasetCatalog → PublishedRelease::CountLine
//
// Threading model: one blocking accept thread plus a named handler pool.
// Each connection occupies one pool worker for its lifetime (blocking reads
// with an idle timeout). Connections beyond the pool size are answered with
// a ResourceExhausted error frame and closed immediately instead of queueing
// — a parked connection that nobody will serve is indistinguishable from a
// hang to the client.
//
// Shutdown: Stop() flips the running flag, shuts the listen socket down (to
// unblock accept), shuts down every live connection socket (to unblock
// reads), then joins the accept thread and drains the pool. Safe to call
// from a signal-handler-adjacent context (the daemon calls it from a
// self-pipe watcher) and idempotent.

#ifndef SECRETA_SERVE_SERVER_H_
#define SECRETA_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "serve/admission.h"
#include "serve/catalog.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "service/job_scheduler.h"

namespace secreta {

struct ServerOptions {
  /// TCP port to listen on; 0 = ephemeral (read back via port()).
  uint16_t port = 0;
  /// Bind address. Loopback by default: exposing an anonymization service
  /// beyond the host is a deployment decision, not a default.
  std::string bind_address = "127.0.0.1";
  /// Concurrent connections (handler pool size).
  size_t max_connections = 8;
  /// Listen backlog for not-yet-accepted connections.
  int backlog = 16;
  /// A connection idle longer than this is closed (0 disables).
  double idle_timeout_seconds = 300;
  /// Per-frame payload ceiling.
  size_t max_frame_bytes = kServeMaxFrameBytes;
  /// A COUNT whose end-to-end frame time reaches this is "slow": it is
  /// pinned in the tail-trace ring and, when a SlowQueryLog is open, written
  /// there too. 0 marks every COUNT slow (useful for capture-everything
  /// debugging and tests).
  double slow_query_threshold_seconds = 0.25;
  /// Admission knobs (per-query deadline, scheduler priority).
  AdmissionOptions admission;
};

/// \brief Accepts connections and speaks the serve protocol. Thread-safe.
///
/// Borrows the catalog, tenant registry, and scheduler — they outlive the
/// server (the daemon owns all four and stops the server first).
class QueryServer {
 public:
  QueryServer(DatasetCatalog* catalog, TenantRegistry* tenants,
              JobScheduler* scheduler, const ServerOptions& options = {});
  /// Calls Stop().
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the accept thread. FailedPrecondition when
  /// already started; IOError when the port cannot be bound.
  Status Start() SECRETA_EXCLUDES(mutex_);

  /// Graceful shutdown (see file comment). Idempotent; returns after every
  /// connection handler has exited.
  void Stop() SECRETA_EXCLUDES(mutex_);

  /// The bound port (valid after Start; the ephemeral port when port=0).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Serves one already-authenticated request. The returned string is the
  /// response payload; a non-OK status becomes an error frame (the
  /// connection survives application errors — only transport errors and
  /// protocol violations close it). `frame_timer` is the connection loop's
  /// per-frame stopwatch: it started before this call (and before the
  /// serve.request fault point fires), so slow-query accounting sees the
  /// full end-to-end time including injected delays.
  Result<std::string> HandleRequest(const ServeRequest& request,
                                    ClientSession& session,
                                    const Stopwatch& frame_timer);
  /// Records one COUNT outcome everywhere the telemetry pipeline looks:
  /// labeled request counter + latency histogram, the tail-trace ring, and
  /// (when slow and a log is open) the slow-query JSONL log — all under one
  /// freshly minted trace id.
  void RecordCountTelemetry(ClientSession& session, const ServeRequest& request,
                            const Status& status, const AdmissionTiming& timing,
                            bool cached, double total_seconds);

  void RegisterConnection(int fd) SECRETA_EXCLUDES(mutex_);
  void UnregisterConnection(int fd) SECRETA_EXCLUDES(mutex_);

  DatasetCatalog* const catalog_;
  TenantRegistry* const tenants_;
  AdmissionController admission_;
  const ServerOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> handlers_;
  std::atomic<size_t> active_connections_{0};

  mutable Mutex mutex_;
  /// Live connection sockets; Stop() shuts them down to unblock reads.
  std::unordered_set<int> connections_ SECRETA_GUARDED_BY(mutex_);
};

}  // namespace secreta

#endif  // SECRETA_SERVE_SERVER_H_
