#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace secreta {

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), next_id_(other.next_id_) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    other.fd_ = -1;
  }
  return *this;
}

Status ServeClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("bad host address \"%s\"", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    Status status = Status::IOError(
        StrFormat("connect to %s:%u failed: %s", host.c_str(),
                  static_cast<unsigned>(port), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Result<ServeResponse> ServeClient::RoundTrip(const ServeRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  SECRETA_RETURN_IF_ERROR(WriteFrame(fd_, SerializeServeRequest(request)));
  std::string payload;
  bool clean_eof = false;
  SECRETA_RETURN_IF_ERROR(
      ReadFrame(fd_, kServeMaxFrameBytes, &payload, &clean_eof));
  if (clean_eof) {
    return Status::IOError("server closed the connection before responding");
  }
  return ParseServeResponse(payload);
}

Status ServeClient::Hello(const std::string& token,
                          const std::string& client_name) {
  ServeRequest request;
  request.op = ServeOp::kHello;
  request.id = next_id_++;
  request.version = kServeProtocolVersion;
  request.token = token;
  request.client = client_name;
  return RoundTrip(request).status();
}

Result<ServeClient::CountResult> ServeClient::Count(
    const std::string& dataset, const std::string& query,
    const std::string& access) {
  ServeRequest request;
  request.op = ServeOp::kCount;
  request.id = next_id_++;
  request.dataset = dataset;
  request.query = query;
  request.access = access;
  SECRETA_ASSIGN_OR_RETURN(ServeResponse response, RoundTrip(request));
  CountResult result;
  SECRETA_ASSIGN_OR_RETURN(result.count, response.body.GetNumber("count"));
  SECRETA_ASSIGN_OR_RETURN(result.cached,
                           response.body.GetBoolOr("cached", false));
  SECRETA_ASSIGN_OR_RETURN(result.server_seconds,
                           response.body.GetNumberOr("elapsed_seconds", 0));
  return result;
}

Result<std::vector<ServeDatasetInfo>> ServeClient::ListDatasets() {
  ServeRequest request;
  request.op = ServeOp::kList;
  request.id = next_id_++;
  SECRETA_ASSIGN_OR_RETURN(ServeResponse response, RoundTrip(request));
  const JsonValue* rows = response.body.Find("datasets");
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument("list response missing datasets array");
  }
  std::vector<ServeDatasetInfo> out;
  for (const JsonValue& row : rows->elements()) {
    ServeDatasetInfo info;
    SECRETA_ASSIGN_OR_RETURN(info.name, row.GetString("name"));
    SECRETA_ASSIGN_OR_RETURN(info.records, row.GetUintOr("records", 0));
    SECRETA_ASSIGN_OR_RETURN(info.version, row.GetUintOr("version", 0));
    SECRETA_ASSIGN_OR_RETURN(info.config, row.GetStringOr("config", ""));
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::string> ServeClient::Metrics() {
  ServeRequest request;
  request.op = ServeOp::kMetrics;
  request.id = next_id_++;
  SECRETA_ASSIGN_OR_RETURN(ServeResponse response, RoundTrip(request));
  // Re-serializing the parsed subtree would need a writer for JsonValue;
  // the raw "metrics" member is what callers grep anyway, so hand back the
  // canonical serialization of the fields consumers use.
  const JsonValue* metrics = response.body.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return Status::InvalidArgument("metrics response missing metrics object");
  }
  // Counters and gauges land as {"counters": {...}, "gauges": {...}};
  // flatten both to "name value" lines (gauges keep their fraction — e.g.
  // serve.kernels.tier, serve.index.roaring_bytes).
  std::string text;
  const JsonValue* counters = metrics->Find("counters");
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->members()) {
      text += StrFormat("%s %.0f\n", name.c_str(),
                        value.is_number() ? value.number_value() : 0.0);
    }
  }
  const JsonValue* gauges = metrics->Find("gauges");
  if (gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->members()) {
      text += StrFormat("%s %g\n", name.c_str(),
                        value.is_number() ? value.number_value() : 0.0);
    }
  }
  return text;
}

Result<std::vector<RequestTrace>> ServeClient::AdminTraces() {
  ServeRequest request;
  request.op = ServeOp::kTraces;
  request.id = next_id_++;
  SECRETA_ASSIGN_OR_RETURN(ServeResponse response, RoundTrip(request));
  const JsonValue* rows = response.body.Find("traces");
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument("traces response missing traces array");
  }
  std::vector<RequestTrace> out;
  for (const JsonValue& row : rows->elements()) {
    RequestTrace trace;
    SECRETA_ASSIGN_OR_RETURN(trace.trace_id, row.GetUintOr("trace_id", 0));
    SECRETA_ASSIGN_OR_RETURN(trace.tenant, row.GetStringOr("tenant", ""));
    SECRETA_ASSIGN_OR_RETURN(trace.dataset, row.GetStringOr("dataset", ""));
    SECRETA_ASSIGN_OR_RETURN(trace.query_shape,
                             row.GetStringOr("query_shape", ""));
    SECRETA_ASSIGN_OR_RETURN(trace.outcome, row.GetStringOr("outcome", "ok"));
    SECRETA_ASSIGN_OR_RETURN(trace.kernel_tier,
                             row.GetStringOr("kernel_tier", ""));
    SECRETA_ASSIGN_OR_RETURN(trace.queue_seconds,
                             row.GetNumberOr("queue_seconds", 0));
    SECRETA_ASSIGN_OR_RETURN(trace.run_seconds,
                             row.GetNumberOr("run_seconds", 0));
    SECRETA_ASSIGN_OR_RETURN(trace.total_seconds,
                             row.GetNumberOr("total_seconds", 0));
    SECRETA_ASSIGN_OR_RETURN(trace.cached, row.GetBoolOr("cached", false));
    SECRETA_ASSIGN_OR_RETURN(trace.slow, row.GetBoolOr("slow", false));
    SECRETA_ASSIGN_OR_RETURN(trace.error, row.GetBoolOr("error", false));
    out.push_back(std::move(trace));
  }
  return out;
}

Status ServeClient::Ping() {
  ServeRequest request;
  request.op = ServeOp::kPing;
  request.id = next_id_++;
  return RoundTrip(request).status();
}

Status ServeClient::Bye() {
  ServeRequest request;
  request.op = ServeOp::kBye;
  request.id = next_id_++;
  SECRETA_RETURN_IF_ERROR(RoundTrip(request).status());
  Close();
  return Status::OK();
}

}  // namespace secreta
