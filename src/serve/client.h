// Scripted client for the serve protocol: connect, handshake, query. Used
// by the example client binary, the smoke test in CI, the serving benchmark,
// and the end-to-end tests — one implementation of the wire format on the
// consuming side.

#ifndef SECRETA_SERVE_CLIENT_H_
#define SECRETA_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace_tail.h"
#include "serve/protocol.h"

namespace secreta {

/// \brief One client connection. Synchronous request/response; not
/// thread-safe (open one client per thread — the server side is concurrent).
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;

  /// Opens the TCP connection (no handshake yet).
  Status Connect(const std::string& host, uint16_t port);

  /// Performs the hello handshake. Must be the first request.
  Status Hello(const std::string& token, const std::string& client_name = "");

  struct CountResult {
    double count = 0;
    bool cached = false;
    double server_seconds = 0;
  };

  /// COUNT against a published dataset. `access` is "", "anonymized", or
  /// "direct". Server rejections (quota, backpressure, permission, unknown
  /// dataset) come back as the server's Status, retry-after hint included.
  Result<CountResult> Count(const std::string& dataset,
                            const std::string& query,
                            const std::string& access = "");

  Result<std::vector<ServeDatasetInfo>> ListDatasets();

  /// The server's counters, flattened to "name value" lines (the greppable
  /// subset of the metrics snapshot; CI asserts on serve.* counters here).
  Result<std::string> Metrics();

  /// The server's pinned tail traces (admin.traces op), oldest first.
  /// PermissionDenied unless the session's tenant has direct access.
  Result<std::vector<RequestTrace>> AdminTraces();

  Status Ping();

  /// Polite goodbye (the server closes after acknowledging).
  Status Bye();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  /// Sends `request` and reads the matching response frame.
  Result<ServeResponse> RoundTrip(const ServeRequest& request);

  int fd_ = -1;
  uint64_t next_id_ = 1;
};

}  // namespace secreta

#endif  // SECRETA_SERVE_CLIENT_H_
