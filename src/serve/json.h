// Minimal JSON document model + recursive-descent parser for the serving
// wire protocol. The repo's JsonWriter (export/json_writer.h) covers the
// producing side; this is the consuming side: the server parses client
// request frames and the scripted client parses responses. Dependency-free,
// non-throwing (Status/Result like everything else), and hardened for
// untrusted network input: depth-limited, rejects trailing garbage, and
// never reads past the buffer.
//
// Scope: RFC 8259 minus exotica the protocol never emits — numbers parse via
// strtod (so 1e99 works), \uXXXX escapes decode to UTF-8 (surrogate pairs
// supported), duplicate object keys keep the last value.

#ifndef SECRETA_SERVE_JSON_H_
#define SECRETA_SERVE_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace secreta {

/// \brief One parsed JSON value (tree-owning, immutable after Parse).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  /// Parses a complete JSON document. Fails with InvalidArgument on any
  /// syntax error, nesting deeper than `max_depth`, or trailing non-space
  /// bytes after the document.
  static Result<JsonValue> Parse(const std::string& text,
                                 size_t max_depth = 64);

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Value accessors; calling the wrong one returns a zero value (never UB)
  /// — protocol code always checks kind via the typed getters below.
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  /// Object members in document order (duplicates already collapsed).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// Array elements in document order.
  const std::vector<JsonValue>& elements() const { return elements_; }

  /// Object lookup; null when absent or when this is not an object.
  const JsonValue* Find(const std::string& key) const;

  // Typed member getters for protocol decoding. Get* fails with
  // InvalidArgument when the key is missing or the wrong type; the *Or
  // variants substitute a default when the key is absent (but still fail on
  // a type mismatch — a client sending {"id": "seven"} is an error, not a
  // default).
  Result<std::string> GetString(const std::string& key) const;
  Result<std::string> GetStringOr(const std::string& key,
                                  const std::string& fallback) const;
  Result<double> GetNumber(const std::string& key) const;
  Result<double> GetNumberOr(const std::string& key, double fallback) const;
  Result<uint64_t> GetUint(const std::string& key) const;
  Result<uint64_t> GetUintOr(const std::string& key, uint64_t fallback) const;
  Result<bool> GetBoolOr(const std::string& key, bool fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

}  // namespace secreta

#endif  // SECRETA_SERVE_JSON_H_
