#include "serve/json.h"

#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace secreta {

namespace {

// Appends `cp` (a Unicode code point) to `out` as UTF-8.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

/// Recursive-descent parser over an immutable buffer. Friend of JsonValue so
/// it can fill the private fields directly.
class JsonParser {
 public:
  JsonParser(const std::string& text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Run() {
    JsonValue root;
    SECRETA_RETURN_IF_ERROR(ParseValue(&root, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after JSON document");
    }
    return root;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail(std::string("expected '") + literal + "'");
      }
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > max_depth_) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        SECRETA_RETURN_IF_ERROR(Expect("true"));
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        SECRETA_RETURN_IF_ERROR(Expect("false"));
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        SECRETA_RETURN_IF_ERROR(Expect("null"));
        out->kind_ = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      SECRETA_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      SECRETA_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      // Last duplicate wins (RFC 8259 leaves it open; pick the predictable
      // option so a malicious duplicate cannot smuggle an earlier value past
      // a validator that saw the later one).
      bool replaced = false;
      for (auto& member : out->members_) {
        if (member.first == key) {
          member.second = std::move(value);
          replaced = true;
          break;
        }
      }
      if (!replaced) out->members_.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      SECRETA_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->elements_.push_back(std::move(value));
      SkipSpace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          SECRETA_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            SECRETA_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
      // sign consumed; digits must follow
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Fail("invalid number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      return Fail("number out of range");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
  size_t max_depth_;
};

Result<JsonValue> JsonValue::Parse(const std::string& text, size_t max_depth) {
  return JsonParser(text, max_depth).Run();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

Result<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("missing field: " + key);
  }
  if (!v->is_string()) {
    return Status::InvalidArgument("field is not a string: " + key);
  }
  return v->string_value();
}

Result<std::string> JsonValue::GetStringOr(const std::string& key,
                                           const std::string& fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) {
    return Status::InvalidArgument("field is not a string: " + key);
  }
  return v->string_value();
}

Result<double> JsonValue::GetNumber(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("missing field: " + key);
  }
  if (!v->is_number()) {
    return Status::InvalidArgument("field is not a number: " + key);
  }
  return v->number_value();
}

Result<double> JsonValue::GetNumberOr(const std::string& key,
                                      double fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument("field is not a number: " + key);
  }
  return v->number_value();
}

Result<uint64_t> JsonValue::GetUint(const std::string& key) const {
  SECRETA_ASSIGN_OR_RETURN(double value, GetNumber(key));
  if (value < 0 || value != std::floor(value) || value > 1e18) {
    return Status::InvalidArgument("field is not a non-negative integer: " +
                                   key);
  }
  return static_cast<uint64_t>(value);
}

Result<uint64_t> JsonValue::GetUintOr(const std::string& key,
                                      uint64_t fallback) const {
  if (Find(key) == nullptr) return fallback;
  return GetUint(key);
}

Result<bool> JsonValue::GetBoolOr(const std::string& key,
                                  bool fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidArgument("field is not a bool: " + key);
  }
  return v->bool_value();
}

}  // namespace secreta
