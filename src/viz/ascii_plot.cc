#include "viz/ascii_plot.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace secreta {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

struct Range {
  double lo = 0;
  double hi = 1;

  void Include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double Norm(double v) const { return hi > lo ? (v - lo) / (hi - lo) : 0.5; }
};

Range RangeOf(const std::vector<Series>& series, bool use_x) {
  Range range;
  bool first = true;
  for (const auto& s : series) {
    const auto& values = use_x ? s.x : s.y;
    for (double v : values) {
      if (first) {
        range.lo = range.hi = v;
        first = false;
      } else {
        range.Include(v);
      }
    }
  }
  if (first) range = {0, 1};
  if (range.hi == range.lo) range.hi = range.lo + 1;
  return range;
}

}  // namespace

std::string RenderLineChart(const std::vector<Series>& series,
                            const PlotOptions& options) {
  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  if (series.empty()) return out + "(no series)\n";
  Range xr = RangeOf(series, true);
  Range yr = RangeOf(series, false);
  size_t w = std::max<size_t>(options.width, 8);
  size_t h = std::max<size_t>(options.height, 4);
  std::vector<std::string> grid(h, std::string(w, ' '));
  for (size_t si = 0; si < series.size(); ++si) {
    char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (size_t p = 0; p < series[si].size(); ++p) {
      size_t col = static_cast<size_t>(
          std::lround(xr.Norm(series[si].x[p]) * static_cast<double>(w - 1)));
      size_t row = static_cast<size_t>(
          std::lround(yr.Norm(series[si].y[p]) * static_cast<double>(h - 1)));
      grid[h - 1 - row][col] = glyph;
    }
  }
  out += StrFormat("%10.4g +", yr.hi) + grid[0] + "\n";
  for (size_t row = 1; row + 1 < h; ++row) {
    out += std::string(10, ' ') + " |" + grid[row] + "\n";
  }
  out += StrFormat("%10.4g +", yr.lo) + grid[h - 1] + "\n";
  out += std::string(11, ' ') + '+' + std::string(w, '-') + "\n";
  out += std::string(12, ' ') + StrFormat("%-10.4g", xr.lo) +
         std::string(w > 20 ? w - 20 : 0, ' ') + StrFormat("%10.4g", xr.hi) +
         "\n";
  for (size_t si = 0; si < series.size(); ++si) {
    out += StrFormat("  %c %s\n", kGlyphs[si % sizeof(kGlyphs)],
                     series[si].name.c_str());
  }
  return out;
}

std::string RenderHistogram(const Histogram& histogram,
                            const PlotOptions& options) {
  std::vector<std::pair<std::string, double>> bars;
  bars.reserve(histogram.size());
  for (const auto& bucket : histogram) {
    bars.emplace_back(bucket.label, static_cast<double>(bucket.count));
  }
  return RenderBars(bars, options);
}

std::string RenderBars(const std::vector<std::pair<std::string, double>>& bars,
                       const PlotOptions& options) {
  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  if (bars.empty()) return out + "(empty)\n";
  double max_value = 0;
  size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  label_width = std::min<size_t>(label_width, 24);
  size_t w = std::max<size_t>(options.width, 8);
  for (const auto& [label, value] : bars) {
    std::string shown = label.size() > label_width
                            ? label.substr(0, label_width - 2) + ".."
                            : label;
    size_t len = max_value > 0 ? static_cast<size_t>(std::lround(
                                     value / max_value *
                                     static_cast<double>(w)))
                               : 0;
    out += StrFormat("%-*s |%s %g\n", static_cast<int>(label_width),
                     shown.c_str(), std::string(len, '#').c_str(), value);
  }
  return out;
}

std::string RenderHierarchyTree(const Hierarchy& hierarchy,
                                size_t max_children_shown) {
  std::string out;
  if (!hierarchy.finalized()) return "(hierarchy not finalized)\n";
  struct Frame {
    NodeId node;
    size_t depth;
  };
  std::vector<Frame> stack{{hierarchy.root(), 0}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    out += std::string(frame.depth * 2, ' ');
    out += hierarchy.label(frame.node);
    if (!hierarchy.IsLeaf(frame.node)) {
      out += StrFormat(" (%zu leaves)", hierarchy.LeafCount(frame.node));
    }
    out += '\n';
    const auto& children = hierarchy.children(frame.node);
    size_t shown = std::min(children.size(), max_children_shown);
    if (shown < children.size()) {
      // Announce the elision before descending into the shown children.
      out += std::string((frame.depth + 1) * 2, ' ');
      out += StrFormat("... (+%zu more children)\n", children.size() - shown);
    }
    // Push in reverse so the printed order matches the child order.
    for (size_t i = shown; i-- > 0;) {
      stack.push_back({children[i], frame.depth + 1});
    }
  }
  return out;
}

std::string GnuplotScript(const std::vector<Series>& series,
                          const std::string& data_csv_path,
                          const std::string& title) {
  std::string out;
  out += "set datafile separator ','\n";
  out += "set key outside\n";
  out += "set grid\n";
  out += "set title '" + title + "'\n";
  out += "plot ";
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) out += ", \\\n     ";
    // Column 1 is x; series i occupies column i+2 (see exporter layout).
    out += StrFormat("'%s' using 1:%zu with linespoints title '%s'",
                     data_csv_path.c_str(), i + 2, series[i].name.c_str());
  }
  out += "\n";
  return out;
}

}  // namespace secreta
