// Plotting Module substitute. The published system renders QWT charts; this
// headless reproduction renders the same data as (a) ASCII charts for the
// terminal and (b) gnuplot scripts + CSV for publication-quality output
// (substitution documented in DESIGN.md Sec. 2).

#ifndef SECRETA_VIZ_ASCII_PLOT_H_
#define SECRETA_VIZ_ASCII_PLOT_H_

#include <string>
#include <vector>

#include "data/dataset_stats.h"
#include "engine/experiment.h"
#include "hierarchy/hierarchy.h"

namespace secreta {

/// Options for ASCII rendering.
struct PlotOptions {
  size_t width = 64;   ///< chart body width in characters
  size_t height = 16;  ///< line-chart height in rows
  std::string title;
};

/// Renders one or more series as a multi-line ASCII line chart (distinct
/// glyphs per series, shared axes, legend).
std::string RenderLineChart(const std::vector<Series>& series,
                            const PlotOptions& options = {});

/// Renders a histogram as horizontal ASCII bars.
std::string RenderHistogram(const Histogram& histogram,
                            const PlotOptions& options = {});

/// Renders labeled values (e.g. per-phase runtimes) as horizontal bars.
std::string RenderBars(const std::vector<std::pair<std::string, double>>& bars,
                       const PlotOptions& options = {});

/// Emits a gnuplot script that plots `series` from `data_csv_path` (written
/// separately by the export module).
std::string GnuplotScript(const std::vector<Series>& series,
                          const std::string& data_csv_path,
                          const std::string& title);

/// Renders a hierarchy as an indented tree (the Configuration Editor's
/// "fully browsable" hierarchy pane). Subtrees with more than
/// `max_children_shown` children are elided with a "... (+n)" marker.
std::string RenderHierarchyTree(const Hierarchy& hierarchy,
                                size_t max_children_shown = 8);

}  // namespace secreta

#endif  // SECRETA_VIZ_ASCII_PLOT_H_
