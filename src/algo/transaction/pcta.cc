#include "algo/transaction/pcta.h"

#include <algorithm>

#include "algo/transaction/coat.h"
#include "algo/transaction/count_tree.h"
#include "obs/trace.h"

namespace secreta {

Result<TransactionRecoding> PctaAnonymizer::AnonymizeSubset(
    const TransactionContext& context, const std::vector<size_t>& subset,
    const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.Pcta");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  std::vector<std::vector<ItemId>> txns;
  txns.reserve(subset.size());
  for (size_t row : subset) txns.push_back(context.dataset().items(row).raw());
  GenSpace space(std::move(txns), context.dataset().item_dictionary());
  space.set_use_reference_impl(use_reference_impl_);
  UtilityPolicy unrestricted;
  const UtilityPolicy* utility = &utility_;
  if (utility_.empty()) {
    unrestricted = UtilityPolicy::Unrestricted(context.num_items());
    utility = &unrestricted;
  }
  if (privacy_.empty()) {
    // k^m mode: repeatedly address the most fragile violation.
    while (true) {
      SECRETA_RETURN_IF_ERROR(CheckCancel("pcta iteration"));
      CountTree tree(space.records(), params.m, pool_);
      auto violations = tree.FindViolations(params.k, /*max_violations=*/16);
      if (violations.empty()) break;
      const KmViolation* fragile = &violations[0];
      for (const auto& v : violations) {
        if (v.support < fragile->support) fragile = &v;
      }
      SECRETA_RETURN_IF_ERROR(FixItemsetSupport(
          &space, fragile->itemset, params.k, utility,
          /*prefer_global_cheapest=*/true));
    }
  } else {
    while (true) {
      // Most fragile violated constraint first.
      int best_k = 0;
      size_t best_support = 0;
      std::vector<int32_t> best_gens;
      bool found = false;
      for (const auto& constraint : privacy_.constraints) {
        int k = constraint.k > 0 ? constraint.k : params.k;
        std::vector<int32_t> gens;
        bool suppressed = false;
        for (ItemId item : constraint.items) {
          int32_t g = space.GenOf(item);
          if (g == kSuppressedGen) {
            suppressed = true;
            break;
          }
          gens.push_back(g);
        }
        if (suppressed) continue;
        size_t support = space.ItemsetSupport(gens);
        if (support == 0 || support >= static_cast<size_t>(k)) continue;
        if (!found || support < best_support) {
          found = true;
          best_support = support;
          best_k = k;
          best_gens = std::move(gens);
        }
      }
      if (!found) break;
      SECRETA_RETURN_IF_ERROR(FixItemsetSupport(
          &space, std::move(best_gens), best_k, utility,
          /*prefer_global_cheapest=*/true));
    }
  }
  return space.Export();
}

}  // namespace secreta
