// rho-uncertainty (Cao et al. [2]) — the extension the paper names as future
// work ("we will extend our system, by incorporating additional algorithms,
// such as those in [2]"). Guarantee: no association rule X -> s from a
// non-sensitive antecedent X (|X| <= m) to a sensitive item s may hold with
// confidence above rho. Enforced by the global suppression strategy of [2]:
// while a violating rule exists, suppress the rule side with the lower
// utility value.

#ifndef SECRETA_ALGO_TRANSACTION_RHO_UNCERTAINTY_H_
#define SECRETA_ALGO_TRANSACTION_RHO_UNCERTAINTY_H_

#include "algo/transaction/gen_space.h"
#include "common/annotations.h"
#include "core/algorithm.h"

namespace secreta {

class RhoUncertaintyAnonymizer : public TransactionAnonymizer {
 public:
  /// `sensitive` lists the sensitive items; everything else is public. When
  /// empty, the least-frequent 20% of items are treated as sensitive (rare
  /// items are the typical disclosure risk).
  explicit RhoUncertaintyAnonymizer(std::vector<ItemId> sensitive = {})
      : sensitive_(std::move(sensitive)) {}

  std::string name() const override { return "RhoUncertainty"; }
  bool requires_hierarchy() const override { return false; }

  Result<TransactionRecoding> AnonymizeSubset(
      const TransactionContext& context, const std::vector<size_t>& subset,
      const AnonParams& params) override;

 private:
  std::vector<ItemId> sensitive_;
};

/// Checker used by property tests: true when no rule X -> s (|X| <= m,
/// X non-sensitive items, s sensitive) has confidence > rho in `records`
/// (original-item space after applying `recoding`'s suppressions).
SECRETA_MUST_USE_RESULT bool SatisfiesRhoUncertainty(const TransactionRecoding& recoding,
                             const std::vector<char>& is_sensitive, double rho,
                             int m);

}  // namespace secreta

#endif  // SECRETA_ALGO_TRANSACTION_RHO_UNCERTAINTY_H_
