#include "algo/transaction/coat.h"

#include <algorithm>

#include "algo/transaction/count_tree.h"
#include "obs/trace.h"

namespace secreta {

namespace {

// Utility-constraint group of a live gen (-1 = unconstrained, may not merge).
int32_t GroupOf(const GenSpace& space, const UtilityPolicy* utility, int32_t g) {
  if (utility == nullptr) return 0;
  return utility->constraint_of[static_cast<size_t>(space.Covers(g)[0])];
}

// Cheapest merge partner for `g` within its utility group; kSuppressedGen if
// none exists.
int32_t BestPartner(const GenSpace& space, const UtilityPolicy* utility,
                    int32_t g, double* cost_out) {
  int32_t group = GroupOf(space, utility, g);
  if (group == -1) return kSuppressedGen;
  int32_t best = kSuppressedGen;
  double best_cost = 0;
  for (int32_t other : space.LiveGens()) {
    if (other == g) continue;
    if (GroupOf(space, utility, other) != group) continue;
    double cost = space.MergeCost(g, other);
    if (best == kSuppressedGen || cost < best_cost) {
      best = other;
      best_cost = cost;
    }
  }
  if (best != kSuppressedGen && cost_out != nullptr) *cost_out = best_cost;
  return best;
}

void ReplaceMerged(std::vector<int32_t>* gens, int32_t a, int32_t b,
                   int32_t merged) {
  for (int32_t& g : *gens) {
    if (g == a || g == b) g = merged;
  }
  std::sort(gens->begin(), gens->end());
  gens->erase(std::unique(gens->begin(), gens->end()), gens->end());
}

}  // namespace

Status FixItemsetSupport(GenSpace* space, std::vector<int32_t> gens, int k,
                         const UtilityPolicy* utility,
                         bool prefer_global_cheapest) {
  std::sort(gens.begin(), gens.end());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
  while (true) {
    size_t support = space->ItemsetSupport(gens);
    if (support == 0 || support >= static_cast<size_t>(k)) return Status::OK();
    if (prefer_global_cheapest) {
      // PCTA: the globally cheapest merge over every involved gen.
      int32_t best_g = kSuppressedGen;
      int32_t best_partner = kSuppressedGen;
      double best_cost = 0;
      for (int32_t g : gens) {
        double cost = 0;
        int32_t partner = BestPartner(*space, utility, g, &cost);
        if (partner == kSuppressedGen) continue;
        if (best_g == kSuppressedGen || cost < best_cost) {
          best_g = g;
          best_partner = partner;
          best_cost = cost;
        }
      }
      if (best_g != kSuppressedGen) {
        int32_t merged = space->Merge(best_g, best_partner);
        ReplaceMerged(&gens, best_g, best_partner, merged);
        continue;
      }
    } else {
      // COAT: fix the most fragile (lowest-support) gen first.
      int32_t fragile = gens[0];
      for (int32_t g : gens) {
        if (space->Support(g) < space->Support(fragile)) fragile = g;
      }
      double cost = 0;
      int32_t partner = BestPartner(*space, utility, fragile, &cost);
      if (partner != kSuppressedGen) {
        int32_t merged = space->Merge(fragile, partner);
        ReplaceMerged(&gens, fragile, partner, merged);
        continue;
      }
    }
    // No merge available anywhere: suppress the cheapest gen, which drives
    // the itemset's support to 0 (a satisfied state).
    int32_t victim = gens[0];
    double victim_cost = space->SuppressCost(victim);
    for (int32_t g : gens) {
      double cost = space->SuppressCost(g);
      if (cost < victim_cost) {
        victim = g;
        victim_cost = cost;
      }
    }
    space->Suppress(victim);
    return Status::OK();
  }
}

Result<TransactionRecoding> CoatAnonymizer::AnonymizeSubset(
    const TransactionContext& context, const std::vector<size_t>& subset,
    const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.Coat");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  std::vector<std::vector<ItemId>> txns;
  txns.reserve(subset.size());
  for (size_t row : subset) txns.push_back(context.dataset().items(row).raw());
  GenSpace space(std::move(txns), context.dataset().item_dictionary());
  space.set_use_reference_impl(use_reference_impl_);
  UtilityPolicy unrestricted;
  const UtilityPolicy* utility = &utility_;
  if (utility_.empty()) {
    unrestricted = UtilityPolicy::Unrestricted(context.num_items());
    utility = &unrestricted;
  }
  if (privacy_.empty()) {
    // k^m mode: derive constraints from current violations until none remain.
    while (true) {
      SECRETA_RETURN_IF_ERROR(CheckCancel("coat iteration"));
      CountTree tree(space.records(), params.m, pool_);
      auto violations = tree.FindViolations(params.k, 1);
      if (violations.empty()) break;
      SECRETA_RETURN_IF_ERROR(FixItemsetSupport(
          &space, violations[0].itemset, params.k, utility,
          /*prefer_global_cheapest=*/false));
    }
  } else {
    // Constraints may interact (suppression zeroes supports, merges raise
    // them); a couple of verification passes settle any residue.
    for (int pass = 0; pass < 3; ++pass) {
      bool violated = false;
      for (const auto& constraint : privacy_.constraints) {
        int k = constraint.k > 0 ? constraint.k : params.k;
        std::vector<int32_t> gens;
        bool suppressed = false;
        for (ItemId item : constraint.items) {
          int32_t g = space.GenOf(item);
          if (g == kSuppressedGen) {
            suppressed = true;
            break;
          }
          gens.push_back(g);
        }
        if (suppressed) continue;  // support is 0: satisfied
        size_t support = space.ItemsetSupport(gens);
        if (support == 0 || support >= static_cast<size_t>(k)) continue;
        violated = true;
        SECRETA_RETURN_IF_ERROR(FixItemsetSupport(
            &space, std::move(gens), k, utility,
            /*prefer_global_cheapest=*/false));
      }
      if (!violated) break;
    }
  }
  return space.Export();
}

}  // namespace secreta
