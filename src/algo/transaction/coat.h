// COAT — COnstraint-based Anonymization of Transactions (Loukides et al.
// [7]). Greedily processes privacy constraints: while a constraint's support
// is in (0, k), the cheapest operation among {merge an involved generalized
// item with another one from its utility constraint, suppress it} is applied.
//
// When constructed without an explicit privacy policy, COAT protects against
// k^m adversaries by deriving constraints from the current violations (the
// mode used when COAT plays the transaction role in an RT pipeline).

#ifndef SECRETA_ALGO_TRANSACTION_COAT_H_
#define SECRETA_ALGO_TRANSACTION_COAT_H_

#include <optional>

#include "algo/transaction/gen_space.h"
#include "core/algorithm.h"
#include "policy/policy.h"

namespace secreta {

class CoatAnonymizer : public TransactionAnonymizer {
 public:
  /// Uses the given policies. An empty privacy policy means "derive k^m
  /// constraints from violations"; an empty utility policy means
  /// "unrestricted".
  CoatAnonymizer() = default;
  CoatAnonymizer(PrivacyPolicy privacy, UtilityPolicy utility)
      : privacy_(std::move(privacy)), utility_(std::move(utility)) {}

  std::string name() const override { return "COAT"; }
  bool requires_hierarchy() const override { return false; }

  Result<TransactionRecoding> AnonymizeSubset(
      const TransactionContext& context, const std::vector<size_t>& subset,
      const AnonParams& params) override;

  /// Runs against GenSpace's reference ItemsetSupport scan (value-identical;
  /// the A/B baseline for kernels_bench and equivalence tests).
  void set_use_reference_impl(bool on) { use_reference_impl_ = on; }

 private:
  PrivacyPolicy privacy_;
  UtilityPolicy utility_;
  bool use_reference_impl_ = false;
};

/// \brief Shared constraint-fixing primitive for COAT/PCTA.
///
/// Makes the support of `gens` (an itemset in gen space) leave the (0, k)
/// window by applying merge/suppress operations on `space`, honouring
/// `utility` (pass nullptr for unrestricted). `prefer_global_cheapest`
/// selects PCTA behaviour (scan all merge candidates of every involved gen)
/// vs COAT (fix the most fragile gen first). Returns OK when the itemset's
/// support is no longer violating.
Status FixItemsetSupport(GenSpace* space, std::vector<int32_t> gens, int k,
                         const UtilityPolicy* utility,
                         bool prefer_global_cheapest);

}  // namespace secreta

#endif  // SECRETA_ALGO_TRANSACTION_COAT_H_
