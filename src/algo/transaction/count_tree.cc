#include "algo/transaction/count_tree.h"

#include <algorithm>
#include <memory>

#include "common/parallel.h"

namespace secreta {

namespace {

// Parallel build pays off only when each shard amortizes its subtree merge.
constexpr size_t kMinRecordsPerShard = 1024;

}  // namespace

CountTree::CountTree() : m_(0) {
  nodes_.emplace_back(ArenaAllocator<int32_t>(&arena_));  // root
}

CountTree::CountTree(const std::vector<std::vector<int32_t>>& records, int m,
                     ThreadPool* pool)
    : CountTree() {
  m_ = m;
  size_t shards =
      pool == nullptr ? 1
                      : std::min(pool->num_threads() + 1,
                                 records.size() / kMinRecordsPerShard);
  if (shards < 2) {
    InsertRecords(records, 0, records.size());
    return;
  }
  // Each worker builds a private arena-backed subtree over its record slice;
  // the serial merge adds counts node-by-node. Children are kept sorted by
  // item everywhere, so the merged tree's shape does not depend on the shard
  // count — only internal node ids differ, which no query observes.
  std::vector<std::unique_ptr<CountTree>> subtrees;
  subtrees.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    subtrees.emplace_back(new CountTree());
    subtrees.back()->m_ = m;
  }
  size_t per_shard = (records.size() + shards - 1) / shards;
  ParallelFor(pool, shards, [&](size_t s) {
    size_t begin = s * per_shard;
    size_t end = std::min(records.size(), begin + per_shard);
    subtrees[s]->InsertRecords(records, begin, end);
  });
  for (const auto& subtree : subtrees) MergeFrom(*subtree);
}

void CountTree::InsertRecords(const std::vector<std::vector<int32_t>>& records,
                              size_t begin, size_t end) {
  // Insert every subset of size <= m of every record. The recursion mirrors
  // combination enumeration but shares prefixes through the tree.
  struct Frame {
    int32_t node;
    size_t start;
    int depth;
  };
  std::vector<Frame> stack;
  for (size_t r = begin; r < end; ++r) {
    const auto& rec = records[r];
    stack.clear();
    stack.push_back({0, 0, 0});
    while (!stack.empty()) {
      Frame frame = stack.back();
      stack.pop_back();
      if (frame.depth == m_) continue;
      for (size_t i = frame.start; i < rec.size(); ++i) {
        int32_t child = GetOrAddChild(frame.node, rec[i]);
        ++nodes_[static_cast<size_t>(child)].count;
        stack.push_back({child, i + 1, frame.depth + 1});
      }
    }
  }
}

void CountTree::MergeFrom(const CountTree& other) {
  struct Frame {
    int32_t theirs;
    int32_t mine;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Node& src = other.nodes_[static_cast<size_t>(frame.theirs)];
    for (int32_t their_child : src.children) {
      const Node& child = other.nodes_[static_cast<size_t>(their_child)];
      int32_t mine = GetOrAddChild(frame.mine, child.item);
      nodes_[static_cast<size_t>(mine)].count += child.count;
      stack.push_back({their_child, mine});
    }
  }
}

int32_t CountTree::FindChild(int32_t node, int32_t item) const {
  const auto& children = nodes_[static_cast<size_t>(node)].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), item, [&](int32_t child, int32_t key) {
        return nodes_[static_cast<size_t>(child)].item < key;
      });
  if (it != children.end() && nodes_[static_cast<size_t>(*it)].item == item) {
    return *it;
  }
  return -1;
}

int32_t CountTree::GetOrAddChild(int32_t node, int32_t item) {
  auto& children = nodes_[static_cast<size_t>(node)].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), item, [&](int32_t child, int32_t key) {
        return nodes_[static_cast<size_t>(child)].item < key;
      });
  if (it != children.end() && nodes_[static_cast<size_t>(*it)].item == item) {
    return *it;
  }
  int32_t id = static_cast<int32_t>(nodes_.size());
  ArenaAllocator<int32_t> alloc(&arena_);
  Node fresh(alloc);
  fresh.item = item;
  // Insert position index must be captured before nodes_ reallocates.
  size_t pos = static_cast<size_t>(it - children.begin());
  nodes_.push_back(std::move(fresh));
  auto& parent_children = nodes_[static_cast<size_t>(node)].children;
  parent_children.insert(parent_children.begin() + static_cast<ptrdiff_t>(pos),
                         id);
  return id;
}

size_t CountTree::Support(const std::vector<int32_t>& itemset) const {
  int32_t node = 0;
  for (int32_t item : itemset) {
    node = FindChild(node, item);
    if (node == -1) return 0;
  }
  return node == 0 ? 0 : nodes_[static_cast<size_t>(node)].count;
}

std::vector<KmViolation> CountTree::FindViolations(
    int k, size_t max_violations) const {
  std::vector<KmViolation> out;
  std::vector<int32_t> path;
  struct Frame {
    int32_t node;
    size_t next_child;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty() && out.size() < max_violations) {
    Frame& frame = stack.back();
    const Node& node = nodes_[static_cast<size_t>(frame.node)];
    if (frame.next_child == 0 && frame.node != 0 && node.count > 0 &&
        node.count < static_cast<size_t>(k)) {
      out.push_back({path, node.count});
      if (out.size() >= max_violations) break;
    }
    if (frame.next_child < node.children.size()) {
      int32_t child = node.children[frame.next_child++];
      path.push_back(nodes_[static_cast<size_t>(child)].item);
      stack.push_back({child, 0});
    } else {
      if (frame.node != 0) path.pop_back();
      stack.pop_back();
    }
  }
  // Prefer the most fragile violations (smallest support first).
  std::sort(out.begin(), out.end(),
            [](const KmViolation& a, const KmViolation& b) {
              return a.support < b.support;
            });
  return out;
}

}  // namespace secreta
