#include "algo/transaction/count_tree.h"

#include <algorithm>

namespace secreta {

CountTree::CountTree(const std::vector<std::vector<int32_t>>& records, int m)
    : m_(m) {
  nodes_.push_back(Node{});  // root
  // Insert every subset of size <= m of every record. The recursion mirrors
  // combination enumeration but shares prefixes through the tree.
  struct Frame {
    int32_t node;
    size_t start;
    int depth;
  };
  std::vector<Frame> stack;
  for (const auto& rec : records) {
    stack.clear();
    stack.push_back({0, 0, 0});
    while (!stack.empty()) {
      Frame frame = stack.back();
      stack.pop_back();
      if (frame.depth == m_) continue;
      for (size_t i = frame.start; i < rec.size(); ++i) {
        int32_t child = GetOrAddChild(frame.node, rec[i]);
        ++nodes_[static_cast<size_t>(child)].count;
        stack.push_back({child, i + 1, frame.depth + 1});
      }
    }
  }
}

int32_t CountTree::FindChild(int32_t node, int32_t item) const {
  const auto& children = nodes_[static_cast<size_t>(node)].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), item, [&](int32_t child, int32_t key) {
        return nodes_[static_cast<size_t>(child)].item < key;
      });
  if (it != children.end() && nodes_[static_cast<size_t>(*it)].item == item) {
    return *it;
  }
  return -1;
}

int32_t CountTree::GetOrAddChild(int32_t node, int32_t item) {
  auto& children = nodes_[static_cast<size_t>(node)].children;
  auto it = std::lower_bound(
      children.begin(), children.end(), item, [&](int32_t child, int32_t key) {
        return nodes_[static_cast<size_t>(child)].item < key;
      });
  if (it != children.end() && nodes_[static_cast<size_t>(*it)].item == item) {
    return *it;
  }
  int32_t id = static_cast<int32_t>(nodes_.size());
  Node fresh;
  fresh.item = item;
  // Insert position index must be captured before nodes_ reallocates.
  size_t pos = static_cast<size_t>(it - children.begin());
  nodes_.push_back(std::move(fresh));
  auto& parent_children = nodes_[static_cast<size_t>(node)].children;
  parent_children.insert(parent_children.begin() + static_cast<ptrdiff_t>(pos),
                         id);
  return id;
}

size_t CountTree::Support(const std::vector<int32_t>& itemset) const {
  int32_t node = 0;
  for (int32_t item : itemset) {
    node = FindChild(node, item);
    if (node == -1) return 0;
  }
  return node == 0 ? 0 : nodes_[static_cast<size_t>(node)].count;
}

std::vector<KmViolation> CountTree::FindViolations(
    int k, size_t max_violations) const {
  std::vector<KmViolation> out;
  std::vector<int32_t> path;
  struct Frame {
    int32_t node;
    size_t next_child;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty() && out.size() < max_violations) {
    Frame& frame = stack.back();
    const Node& node = nodes_[static_cast<size_t>(frame.node)];
    if (frame.next_child == 0 && frame.node != 0 && node.count > 0 &&
        node.count < static_cast<size_t>(k)) {
      out.push_back({path, node.count});
      if (out.size() >= max_violations) break;
    }
    if (frame.next_child < node.children.size()) {
      int32_t child = node.children[frame.next_child++];
      path.push_back(nodes_[static_cast<size_t>(child)].item);
      stack.push_back({child, 0});
    } else {
      if (frame.node != 0) path.pop_back();
      stack.pop_back();
    }
  }
  // Prefer the most fragile violations (smallest support first).
  std::sort(out.begin(), out.end(),
            [](const KmViolation& a, const KmViolation& b) {
              return a.support < b.support;
            });
  return out;
}

}  // namespace secreta
