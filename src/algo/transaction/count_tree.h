// Count-tree for itemset support counting (Terrovitis et al. [10], Sec. 5 of
// the VLDBJ paper): a prefix tree over (generalized) items, ordered by
// decreasing support, storing the support of every itemset of size <= m.
// Used by the AA loop in place of hash-based subset enumeration: building the
// tree is one pass, and violating itemsets are found by a DFS that prunes
// subtrees whose count already meets k (every descendant extends a subset
// whose support can only be lower or equal... the tree stores each itemset
// once, so the DFS simply reports nodes with 0 < count < k).
//
// Children vectors bump-allocate from a per-tree arena: tree build is
// millions of tiny sorted-insert allocations, and the arena turns each into
// a pointer bump freed wholesale with the tree. With a pool the build
// partitions the records into per-worker subtrees merged serially; children
// stay sorted by item, so the merged structure (and every DFS over it) is
// canonical — byte-identical violations regardless of worker count.

#ifndef SECRETA_ALGO_TRANSACTION_COUNT_TREE_H_
#define SECRETA_ALGO_TRANSACTION_COUNT_TREE_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "core/guarantees.h"
#include "kernels/arena.h"

namespace secreta {

/// \brief Prefix tree over sorted itemsets with per-node support counts.
class CountTree {
 public:
  /// Builds the tree of all itemsets of size <= m occurring in `records`
  /// (each record a sorted vector of gen ids). `pool` (may be null) fans the
  /// build out across per-worker subtrees; the result is identical.
  CountTree(const std::vector<std::vector<int32_t>>& records, int m,
            ThreadPool* pool = nullptr);

  /// Support of `itemset` (must be sorted); 0 if absent.
  size_t Support(const std::vector<int32_t>& itemset) const;

  /// Itemsets with support in (0, k), up to `max_violations`, smallest
  /// support first among those found in DFS order.
  std::vector<KmViolation> FindViolations(int k, size_t max_violations) const;

  size_t num_nodes() const { return nodes_.size(); }

  /// Arena bytes backing the children vectors (observability/bench).
  size_t arena_bytes() const { return arena_.reserved_bytes(); }

 private:
  using ChildVec = std::vector<int32_t, ArenaAllocator<int32_t>>;

  struct Node {
    explicit Node(const ArenaAllocator<int32_t>& alloc) : children(alloc) {}

    int32_t item = -1;
    size_t count = 0;
    ChildVec children;  // node ids, sorted by item
  };

  // Shard subtree shell: root node only. The public constructor delegates
  // here, then inserts.
  CountTree();

  // Inserts all itemsets of records[begin, end).
  void InsertRecords(const std::vector<std::vector<int32_t>>& records,
                     size_t begin, size_t end);
  // Adds `other`'s structure and counts into this tree.
  void MergeFrom(const CountTree& other);

  // Returns the child of `node` holding `item`, or -1.
  int32_t FindChild(int32_t node, int32_t item) const;
  // Returns the child of `node` holding `item`, creating it if needed.
  int32_t GetOrAddChild(int32_t node, int32_t item);

  Arena arena_;              // declared before nodes_: outlives the vectors
  std::vector<Node> nodes_;  // nodes_[0] is the root (item -1)
  int m_;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_TRANSACTION_COUNT_TREE_H_
