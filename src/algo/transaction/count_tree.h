// Count-tree for itemset support counting (Terrovitis et al. [10], Sec. 5 of
// the VLDBJ paper): a prefix tree over (generalized) items, ordered by
// decreasing support, storing the support of every itemset of size <= m.
// Used by the AA loop in place of hash-based subset enumeration: building the
// tree is one pass, and violating itemsets are found by a DFS that prunes
// subtrees whose count already meets k (every descendant extends a subset
// whose support can only be lower or equal... the tree stores each itemset
// once, so the DFS simply reports nodes with 0 < count < k).

#ifndef SECRETA_ALGO_TRANSACTION_COUNT_TREE_H_
#define SECRETA_ALGO_TRANSACTION_COUNT_TREE_H_

#include <cstdint>
#include <vector>

#include "core/guarantees.h"

namespace secreta {

/// \brief Prefix tree over sorted itemsets with per-node support counts.
class CountTree {
 public:
  /// Builds the tree of all itemsets of size <= m occurring in `records`
  /// (each record a sorted vector of gen ids).
  CountTree(const std::vector<std::vector<int32_t>>& records, int m);

  /// Support of `itemset` (must be sorted); 0 if absent.
  size_t Support(const std::vector<int32_t>& itemset) const;

  /// Itemsets with support in (0, k), up to `max_violations`, smallest
  /// support first among those found in DFS order.
  std::vector<KmViolation> FindViolations(int k, size_t max_violations) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int32_t item = -1;
    size_t count = 0;
    // Children stored as a sorted (by item) index range into child_index_.
    std::vector<int32_t> children;  // node ids, sorted by item
  };

  // Returns the child of `node` holding `item`, or -1.
  int32_t FindChild(int32_t node, int32_t item) const;
  // Returns the child of `node` holding `item`, creating it if needed.
  int32_t GetOrAddChild(int32_t node, int32_t item);

  std::vector<Node> nodes_;  // nodes_[0] is the root (item -1)
  int m_;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_TRANSACTION_COUNT_TREE_H_
