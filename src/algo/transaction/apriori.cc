#include "algo/transaction/apriori.h"

#include <algorithm>

#include "algo/transaction/count_tree.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"

namespace secreta {

Result<bool> RunAprioriLoop(HierarchyCut* cut, const std::vector<size_t>& subset,
                            int k, int m, int min_depth,
                            bool suppress_on_failure, ThreadPool* pool,
                            const CancellationToken* cancel) {
  const Hierarchy& h = cut->context().hierarchy();
  for (int i = 1; i <= m; ++i) {
    while (true) {
      SECRETA_RETURN_IF_ERROR(CheckCancelled(cancel, "apriori raise"));
      CutRecoding view = cut->Materialize(subset);
      // Count-tree support counting ([10] Sec. 5); one pass per iteration.
      CountTree tree(view.recoding.records, i, pool);
      auto violations = tree.FindViolations(k, 1);
      if (violations.empty()) break;
      // Candidate raises: the distinct cut nodes of the violating itemset
      // that are still below the raise ceiling.
      NodeId best_target = kNoNode;
      double best_cost = 0;
      for (int32_t gen : violations[0].itemset) {
        NodeId node = view.gen_nodes[static_cast<size_t>(gen)];
        if (h.depth(node) <= min_depth) continue;  // cannot raise further
        NodeId parent = h.parent(node);
        double cost = NodeNcp(h, parent);
        if (best_target == kNoNode || cost < best_cost) {
          best_target = parent;
          best_cost = cost;
        }
      }
      if (best_target == kNoNode) {
        // Every node of the violating itemset is at the ceiling.
        if (suppress_on_failure) {
          cut->SuppressAll();
          return true;
        }
        return false;
      }
      cut->RaiseTo(best_target);
    }
  }
  return true;
}

Result<TransactionRecoding> AprioriAnonymizer::AnonymizeSubset(
    const TransactionContext& context, const std::vector<size_t>& subset,
    const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.Apriori");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  if (!context.has_hierarchy()) {
    return Status::FailedPrecondition("Apriori requires an item hierarchy");
  }
  HierarchyCut cut(context);
  SECRETA_ASSIGN_OR_RETURN(
      bool done, RunAprioriLoop(&cut, subset, params.k, params.m,
                                /*min_depth=*/0, /*suppress_on_failure=*/true,
                                pool_, cancel_));
  (void)done;  // with suppress_on_failure the loop always succeeds
  return std::move(cut.Materialize(subset).recoding);
}

}  // namespace secreta
