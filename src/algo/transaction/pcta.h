// PCTA — Privacy-constrained Clustering-based Transaction Anonymization
// (Gkoulalas-Divanis & Loukides [5]). Agglomerative flavour of
// constraint-based anonymization: at every step the most fragile violated
// constraint is addressed with the globally cheapest merge of generalized
// items (utility-guided clustering of the item domain).

#ifndef SECRETA_ALGO_TRANSACTION_PCTA_H_
#define SECRETA_ALGO_TRANSACTION_PCTA_H_

#include "algo/transaction/gen_space.h"
#include "core/algorithm.h"
#include "policy/policy.h"

namespace secreta {

class PctaAnonymizer : public TransactionAnonymizer {
 public:
  PctaAnonymizer() = default;
  PctaAnonymizer(PrivacyPolicy privacy, UtilityPolicy utility)
      : privacy_(std::move(privacy)), utility_(std::move(utility)) {}

  std::string name() const override { return "PCTA"; }
  bool requires_hierarchy() const override { return false; }

  Result<TransactionRecoding> AnonymizeSubset(
      const TransactionContext& context, const std::vector<size_t>& subset,
      const AnonParams& params) override;

  /// Runs against GenSpace's reference ItemsetSupport scan (value-identical;
  /// the A/B baseline for kernels_bench and equivalence tests).
  void set_use_reference_impl(bool on) { use_reference_impl_ = on; }

 private:
  PrivacyPolicy privacy_;
  UtilityPolicy utility_;
  bool use_reference_impl_ = false;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_TRANSACTION_PCTA_H_
