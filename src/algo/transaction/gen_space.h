// GenSpace: mutable global recoding where a generalized item is an arbitrary
// set of original items (the model of COAT [7] and PCTA [5], which do not use
// hierarchies). Supports merge and suppress operations with incremental
// support maintenance.

#ifndef SECRETA_ALGO_TRANSACTION_GEN_SPACE_H_
#define SECRETA_ALGO_TRANSACTION_GEN_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/results.h"
#include "data/dictionary.h"

namespace secreta {

/// \brief Mutable set-generalization state over a record subset.
class GenSpace {
 public:
  /// Starts at the identity recoding of `transactions` (one entry per record
  /// of the subset, original ItemIds). `item_dict` provides labels.
  GenSpace(std::vector<std::vector<ItemId>> transactions,
           const Dictionary& item_dict);

  /// Initializes from an existing global recoding instead of the identity
  /// (used by VPA to continue from the per-part hierarchy cuts). `recoding`
  /// must have a full item_map.
  GenSpace(std::vector<std::vector<ItemId>> transactions,
           const Dictionary& item_dict, const TransactionRecoding& recoding);

  size_t num_items() const { return item_dict_->size(); }
  size_t num_records() const { return original_.size(); }

  /// Current gen id of `item`, or kSuppressedGen.
  int32_t GenOf(ItemId item) const {
    return item_gen_[static_cast<size_t>(item)];
  }
  /// Covered items of gen `g` (sorted).
  const std::vector<ItemId>& Covers(int32_t g) const {
    return covers_[static_cast<size_t>(g)];
  }
  /// Number of records currently containing gen `g`.
  size_t Support(int32_t g) const { return support_[static_cast<size_t>(g)]; }
  /// True if gen `g` is still live (covers at least one item).
  bool IsLive(int32_t g) const { return !covers_[static_cast<size_t>(g)].empty(); }
  /// Ids of all live gens.
  std::vector<int32_t> LiveGens() const;

  /// Merges gens `a` and `b` into a new gen (union of covers); returns its
  /// id. a and b become dead.
  int32_t Merge(int32_t a, int32_t b);

  /// Suppresses gen `g`: its items disappear from every record.
  void Suppress(int32_t g);

  /// Marginal utility-loss of merging `a` and `b` (increase in summed
  /// occurrence penalties, normalized by total original occurrences).
  double MergeCost(int32_t a, int32_t b) const;
  /// Marginal utility-loss of suppressing `g`.
  double SuppressCost(int32_t g) const;

  /// Number of records whose current generalized form contains every gen in
  /// `gens` (gens need not be live; dead gens yield 0). Computed from the
  /// per-gen row posting lists — a sorted-list intersection kernel call for
  /// pairs, probes from the rarest list otherwise — instead of scanning
  /// every record.
  size_t ItemsetSupport(const std::vector<int32_t>& gens) const;

  /// Sorted rows currently containing gen `g` (the posting list
  /// ItemsetSupport intersects; exposed for tests).
  const std::vector<uint32_t>& GenRows(int32_t g) const {
    return gen_rows_[static_cast<size_t>(g)];
  }

  /// Routes ItemsetSupport through the original full-record scan instead of
  /// the posting lists — the pre-kernel reference implementation, kept as the
  /// oracle for equivalence tests and A/B benchmarks. Value-identical.
  void set_use_reference_impl(bool on) { use_reference_impl_ = on; }

  /// Generalized records (sorted gen ids, one per subset record).
  const std::vector<std::vector<int32_t>>& records() const { return records_; }

  /// Exports the final TransactionRecoding (gens compacted to live ones).
  TransactionRecoding Export() const;

 private:
  void InitFromIdentity();
  std::string LabelFor(const std::vector<ItemId>& covers) const;
  /// Occurrence count of gen `g`: total original item occurrences mapped to it.
  size_t Occurrences(int32_t g) const {
    return occurrences_[static_cast<size_t>(g)];
  }

  const Dictionary* item_dict_;
  std::vector<std::vector<ItemId>> original_;     // subset transactions
  std::vector<std::vector<int32_t>> records_;     // generalized form (sorted)
  std::vector<int32_t> item_gen_;                 // item -> gen / suppressed
  std::vector<std::vector<ItemId>> covers_;       // per gen
  std::vector<size_t> support_;                   // per gen: #records with gen
  std::vector<size_t> occurrences_;               // per gen: #item occurrences
  std::vector<std::vector<size_t>> item_records_; // item -> rows containing it
  std::vector<std::vector<uint32_t>> gen_rows_;   // gen -> rows containing it
  bool use_reference_impl_ = false;
  size_t total_occurrences_ = 0;
  size_t suppressed_occurrences_ = 0;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_TRANSACTION_GEN_SPACE_H_
