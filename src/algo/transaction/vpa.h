// VPA — Vertical Partitioning Anonymization (Terrovitis et al. [10]). The
// item domain is split into contiguous groups of the hierarchy root's child
// subtrees; AA runs inside every part (never generalizing across parts), and
// a final global pass repairs any residual cross-part violations by merging
// generalized items (so the k^m guarantee always holds on the output).

#ifndef SECRETA_ALGO_TRANSACTION_VPA_H_
#define SECRETA_ALGO_TRANSACTION_VPA_H_

#include "core/algorithm.h"

namespace secreta {

class VpaAnonymizer : public TransactionAnonymizer {
 public:
  std::string name() const override { return "VPA"; }
  bool requires_hierarchy() const override { return true; }

  Result<TransactionRecoding> AnonymizeSubset(
      const TransactionContext& context, const std::vector<size_t>& subset,
      const AnonParams& params) override;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_TRANSACTION_VPA_H_
