// LRA — Local Recoding Anonymization (Terrovitis et al. [10]). Records are
// sorted by their item sets and split into horizontal partitions; AA runs in
// each partition independently, so the same item may generalize differently
// in different partitions (local recoding). Each partition being
// k^m-anonymous with partition-local generalized items makes the whole output
// k^m-anonymous.

#ifndef SECRETA_ALGO_TRANSACTION_LRA_H_
#define SECRETA_ALGO_TRANSACTION_LRA_H_

#include <cstdint>

#include "core/algorithm.h"

namespace secreta {

/// Position of bit pattern `gray` in the binary-reflected Gray sequence
/// (inverse Gray code). LRA sorts transactions by the Gray rank of their
/// top-item bitmap so consecutive partitions differ in few items ([10]).
uint64_t GrayRank(uint64_t gray);

class LraAnonymizer : public TransactionAnonymizer {
 public:
  std::string name() const override { return "LRA"; }
  bool requires_hierarchy() const override { return true; }

  Result<TransactionRecoding> AnonymizeSubset(
      const TransactionContext& context, const std::vector<size_t>& subset,
      const AnonParams& params) override;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_TRANSACTION_LRA_H_
