#include "algo/transaction/gen_space.h"

#include <algorithm>

#include "common/string_util.h"
#include "kernels/kernels.h"

namespace secreta {

GenSpace::GenSpace(std::vector<std::vector<ItemId>> transactions,
                   const Dictionary& item_dict)
    : item_dict_(&item_dict), original_(std::move(transactions)) {
  item_gen_.resize(item_dict.size());
  covers_.reserve(item_dict.size());
  for (size_t i = 0; i < item_dict.size(); ++i) {
    item_gen_[i] = static_cast<int32_t>(i);
    covers_.push_back({static_cast<ItemId>(i)});
  }
  InitFromIdentity();
}

GenSpace::GenSpace(std::vector<std::vector<ItemId>> transactions,
                   const Dictionary& item_dict,
                   const TransactionRecoding& recoding)
    : item_dict_(&item_dict), original_(std::move(transactions)) {
  item_gen_.assign(item_dict.size(), kSuppressedGen);
  for (const auto& gen : recoding.gens) covers_.push_back(gen.covers);
  for (size_t i = 0; i < recoding.item_map.size(); ++i) {
    item_gen_[i] = recoding.item_map[i];
  }
  InitFromIdentity();
}

void GenSpace::InitFromIdentity() {
  size_t num_items = item_dict_->size();
  item_records_.assign(num_items, {});
  support_.assign(covers_.size(), 0);
  occurrences_.assign(covers_.size(), 0);
  gen_rows_.assign(covers_.size(), {});
  records_.resize(original_.size());
  for (size_t r = 0; r < original_.size(); ++r) {
    auto& rec = records_[r];
    rec.clear();
    for (ItemId item : original_[r]) {
      item_records_[static_cast<size_t>(item)].push_back(r);
      ++total_occurrences_;
      int32_t g = item_gen_[static_cast<size_t>(item)];
      if (g == kSuppressedGen) {
        ++suppressed_occurrences_;
        continue;
      }
      rec.push_back(g);
      ++occurrences_[static_cast<size_t>(g)];
    }
    std::sort(rec.begin(), rec.end());
    rec.erase(std::unique(rec.begin(), rec.end()), rec.end());
    for (int32_t g : rec) {
      ++support_[static_cast<size_t>(g)];
      gen_rows_[static_cast<size_t>(g)].push_back(static_cast<uint32_t>(r));
    }
  }
}

std::vector<int32_t> GenSpace::LiveGens() const {
  std::vector<int32_t> live;
  for (size_t g = 0; g < covers_.size(); ++g) {
    if (!covers_[g].empty()) live.push_back(static_cast<int32_t>(g));
  }
  return live;
}

std::string GenSpace::LabelFor(const std::vector<ItemId>& covers) const {
  if (covers.size() == 1) return item_dict_->value(covers[0]);
  if (covers.size() <= 6) {
    std::string out = "{";
    for (size_t i = 0; i < covers.size(); ++i) {
      if (i > 0) out += ',';
      out += item_dict_->value(covers[i]);
    }
    out += '}';
    return out;
  }
  return StrFormat("{%s..%s|%zu}", item_dict_->value(covers.front()).c_str(),
                   item_dict_->value(covers.back()).c_str(), covers.size());
}

int32_t GenSpace::Merge(int32_t a, int32_t b) {
  int32_t g = static_cast<int32_t>(covers_.size());
  std::vector<ItemId> merged;
  merged.reserve(covers_[static_cast<size_t>(a)].size() +
                 covers_[static_cast<size_t>(b)].size());
  std::merge(covers_[static_cast<size_t>(a)].begin(),
             covers_[static_cast<size_t>(a)].end(),
             covers_[static_cast<size_t>(b)].begin(),
             covers_[static_cast<size_t>(b)].end(),
             std::back_inserter(merged));
  for (ItemId item : merged) item_gen_[static_cast<size_t>(item)] = g;
  // Collect the affected rows (any row containing a or b).
  std::vector<size_t> rows;
  for (ItemId item : merged) {
    rows.insert(rows.end(), item_records_[static_cast<size_t>(item)].begin(),
                item_records_[static_cast<size_t>(item)].end());
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  size_t new_support = 0;
  std::vector<uint32_t> new_rows;
  for (size_t r : rows) {
    auto& rec = records_[r];
    bool had = false;
    size_t w = 0;
    for (size_t i = 0; i < rec.size(); ++i) {
      if (rec[i] == a || rec[i] == b) {
        had = true;
        continue;
      }
      rec[w++] = rec[i];
    }
    if (!had) continue;  // row contained the items only as suppressed
    rec.resize(w);
    rec.insert(std::lower_bound(rec.begin(), rec.end(), g), g);
    ++new_support;
    new_rows.push_back(static_cast<uint32_t>(r));  // rows iterate ascending
  }
  covers_.push_back(std::move(merged));
  support_.push_back(new_support);
  gen_rows_.push_back(std::move(new_rows));
  gen_rows_[static_cast<size_t>(a)].clear();
  gen_rows_[static_cast<size_t>(b)].clear();
  occurrences_.push_back(occurrences_[static_cast<size_t>(a)] +
                         occurrences_[static_cast<size_t>(b)]);
  covers_[static_cast<size_t>(a)].clear();
  covers_[static_cast<size_t>(b)].clear();
  support_[static_cast<size_t>(a)] = 0;
  support_[static_cast<size_t>(b)] = 0;
  occurrences_[static_cast<size_t>(a)] = 0;
  occurrences_[static_cast<size_t>(b)] = 0;
  return g;
}

void GenSpace::Suppress(int32_t g) {
  std::vector<size_t> rows;
  for (ItemId item : covers_[static_cast<size_t>(g)]) {
    item_gen_[static_cast<size_t>(item)] = kSuppressedGen;
    rows.insert(rows.end(), item_records_[static_cast<size_t>(item)].begin(),
                item_records_[static_cast<size_t>(item)].end());
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  for (size_t r : rows) {
    auto& rec = records_[r];
    auto it = std::lower_bound(rec.begin(), rec.end(), g);
    if (it != rec.end() && *it == g) rec.erase(it);
  }
  suppressed_occurrences_ += occurrences_[static_cast<size_t>(g)];
  covers_[static_cast<size_t>(g)].clear();
  support_[static_cast<size_t>(g)] = 0;
  occurrences_[static_cast<size_t>(g)] = 0;
  gen_rows_[static_cast<size_t>(g)].clear();
}

double GenSpace::MergeCost(int32_t a, int32_t b) const {
  double denom = num_items() > 1 ? static_cast<double>(num_items() - 1) : 1.0;
  auto penalty = [&](size_t size) {
    return (static_cast<double>(size) - 1.0) / denom;
  };
  size_t sa = covers_[static_cast<size_t>(a)].size();
  size_t sb = covers_[static_cast<size_t>(b)].size();
  double delta =
      static_cast<double>(Occurrences(a)) * (penalty(sa + sb) - penalty(sa)) +
      static_cast<double>(Occurrences(b)) * (penalty(sa + sb) - penalty(sb));
  return total_occurrences_ > 0
             ? delta / static_cast<double>(total_occurrences_)
             : 0.0;
}

double GenSpace::SuppressCost(int32_t g) const {
  double denom = num_items() > 1 ? static_cast<double>(num_items() - 1) : 1.0;
  double p = (static_cast<double>(covers_[static_cast<size_t>(g)].size()) - 1.0) /
             denom;
  double delta = static_cast<double>(Occurrences(g)) * (1.0 - p);
  return total_occurrences_ > 0
             ? delta / static_cast<double>(total_occurrences_)
             : 0.0;
}

size_t GenSpace::ItemsetSupport(const std::vector<int32_t>& gens) const {
  for (int32_t g : gens) {
    if (covers_[static_cast<size_t>(g)].empty()) return 0;
  }
  if (gens.empty()) return records_.size();
  if (use_reference_impl_) {
    // Pre-kernel full record scan, kept as the oracle for equivalence tests
    // and A/B benchmarks.
    size_t count = 0;
    for (const auto& rec : records_) {
      bool all = true;
      for (int32_t g : gens) {
        if (!std::binary_search(rec.begin(), rec.end(), g)) {
          all = false;
          break;
        }
      }
      if (all) ++count;
    }
    return count;
  }
  // Posting-list intersection instead of a full record scan: the lists are
  // maintained sorted by Merge/Suppress.
  std::vector<const std::vector<uint32_t>*> lists;
  lists.reserve(gens.size());
  for (int32_t g : gens) lists.push_back(&gen_rows_[static_cast<size_t>(g)]);
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  if (lists.size() == 1) return lists[0]->size();
  if (lists.size() == 2) {
    return kernels::IntersectCount(lists[0]->data(), lists[0]->size(),
                                   lists[1]->data(), lists[1]->size());
  }
  size_t count = 0;
  for (uint32_t r : *lists[0]) {
    bool all = true;
    for (size_t i = 1; i < lists.size(); ++i) {
      if (!std::binary_search(lists[i]->begin(), lists[i]->end(), r)) {
        all = false;
        break;
      }
    }
    if (all) ++count;
  }
  return count;
}

TransactionRecoding GenSpace::Export() const {
  TransactionRecoding out;
  out.suppressed_occurrences = suppressed_occurrences_;
  std::vector<int32_t> remap(covers_.size(), kSuppressedGen);
  for (size_t g = 0; g < covers_.size(); ++g) {
    if (covers_[g].empty()) continue;
    remap[g] = out.AddGen(LabelFor(covers_[g]), covers_[g]);
  }
  out.item_map.resize(num_items());
  for (size_t i = 0; i < num_items(); ++i) {
    int32_t g = item_gen_[i];
    out.item_map[i] = g == kSuppressedGen ? kSuppressedGen
                                          : remap[static_cast<size_t>(g)];
  }
  out.records.reserve(records_.size());
  for (const auto& rec : records_) {
    std::vector<int32_t> mapped;
    mapped.reserve(rec.size());
    for (int32_t g : rec) mapped.push_back(remap[static_cast<size_t>(g)]);
    std::sort(mapped.begin(), mapped.end());
    out.records.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace secreta
