// HierarchyCut: the mutable state of full-subtree global recoding over an
// item hierarchy (Apriori/LRA/VPA of Terrovitis et al. [10]). A cut maps each
// leaf to one ancestor; raising the cut generalizes items.

#ifndef SECRETA_ALGO_TRANSACTION_CUT_H_
#define SECRETA_ALGO_TRANSACTION_CUT_H_

#include <vector>

#include "core/context.h"
#include "core/results.h"

namespace secreta {

/// Materialized view of a cut over a record subset.
struct CutRecoding {
  TransactionRecoding recoding;
  /// Hierarchy node of each gen in `recoding.gens`.
  std::vector<NodeId> gen_nodes;
};

/// \brief A full-subtree generalization cut over the item hierarchy.
class HierarchyCut {
 public:
  /// Starts with every leaf mapped to itself (identity recoding).
  explicit HierarchyCut(const TransactionContext& context);

  /// Replaces every cut node under `target` with `target` (raising the cut).
  void RaiseTo(NodeId target);

  /// Current cut node covering `item`.
  NodeId NodeOf(ItemId item) const;

  /// True if all items are suppressed (total-suppression fallback for the
  /// degenerate case where even the root generalization violates k^m).
  bool suppressed() const { return suppress_all_; }
  void SuppressAll() { suppress_all_ = true; }

  /// Builds the generalized transactions of `subset` under the current cut.
  /// `recoding.records[j]` corresponds to subset[j]. The gen pool contains
  /// only nodes actually used; item_map is filled (global recoding).
  CutRecoding Materialize(const std::vector<size_t>& subset) const;

  const TransactionContext& context() const { return *context_; }

 private:
  const TransactionContext* context_;
  /// Current cut node for each leaf DFS position.
  std::vector<NodeId> node_of_pos_;
  bool suppress_all_ = false;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_TRANSACTION_CUT_H_
