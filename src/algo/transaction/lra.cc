#include "algo/transaction/lra.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "algo/transaction/apriori.h"
#include "algo/transaction/cut.h"
#include "obs/trace.h"

namespace secreta {

uint64_t GrayRank(uint64_t gray) {
  // Inverse of g = b ^ (b >> 1): prefix-XOR over all shifts.
  uint64_t binary = gray;
  for (int shift = 1; shift < 64; shift <<= 1) binary ^= binary >> shift;
  return binary;
}

Result<TransactionRecoding> LraAnonymizer::AnonymizeSubset(
    const TransactionContext& context, const std::vector<size_t>& subset,
    const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.Lra");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  if (!context.has_hierarchy()) {
    return Status::FailedPrecondition("LRA requires an item hierarchy");
  }
  const Dataset& data = context.dataset();
  // Gray-order partitioning of [10]: sort transactions by the Gray rank of
  // their bitmap over the 64 most frequent items (most frequent item = most
  // significant bit), breaking ties by the full item set. Consecutive
  // transactions then differ in few frequent items, so partitions are
  // internally homogeneous and per-partition AA generalizes less.
  std::vector<size_t> support(context.num_items(), 0);
  for (size_t row : subset) {
    for (ItemId item : data.items(row).raw()) support[static_cast<size_t>(item)]++;
  }
  std::vector<size_t> freq_order(context.num_items());
  std::iota(freq_order.begin(), freq_order.end(), 0);
  std::sort(freq_order.begin(), freq_order.end(), [&](size_t a, size_t b) {
    if (support[a] != support[b]) return support[a] > support[b];
    return a < b;
  });
  std::vector<int> bit_of_item(context.num_items(), -1);
  for (size_t rank = 0; rank < freq_order.size() && rank < 64; ++rank) {
    bit_of_item[freq_order[rank]] = 63 - static_cast<int>(rank);
  }
  auto gray_key = [&](size_t row) {
    uint64_t bits = 0;
    for (ItemId item : data.items(row).raw()) {
      int bit = bit_of_item[static_cast<size_t>(item)];
      if (bit >= 0) bits |= uint64_t{1} << bit;
    }
    return GrayRank(bits);
  };
  std::vector<size_t> order(subset.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint64_t> keys(subset.size());
  for (size_t j = 0; j < subset.size(); ++j) keys[j] = gray_key(subset[j]);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return data.items(subset[a]).raw() < data.items(subset[b]).raw();
  });
  // Partition count: requested, but each partition needs >= 2k records to
  // have room to be k^m-anonymized without degenerating to suppression.
  size_t max_parts =
      std::max<size_t>(1, subset.size() / (2 * static_cast<size_t>(params.k)));
  size_t parts = std::min<size_t>(static_cast<size_t>(params.lra_partitions),
                                  max_parts);
  parts = std::max<size_t>(1, parts);
  size_t chunk = (order.size() + parts - 1) / parts;

  TransactionRecoding out;
  out.records.resize(subset.size());
  // Generalized items from different partitions that denote the same
  // hierarchy node are shared; distinct nodes stay distinct, which preserves
  // the per-partition k^m guarantee globally (see header).
  std::unordered_map<NodeId, int32_t> gen_of_node;
  for (size_t begin = 0; begin < order.size(); begin += chunk) {
    size_t end = std::min(begin + chunk, order.size());
    std::vector<size_t> part_rows;
    part_rows.reserve(end - begin);
    for (size_t j = begin; j < end; ++j) part_rows.push_back(subset[order[j]]);
    HierarchyCut cut(context);
    SECRETA_RETURN_IF_ERROR(
        RunAprioriLoop(&cut, part_rows, params.k, params.m, /*min_depth=*/0,
                       /*suppress_on_failure=*/true, pool_, cancel_)
            .status());
    CutRecoding part = cut.Materialize(part_rows);
    out.suppressed_occurrences += part.recoding.suppressed_occurrences;
    // Remap part gens into the shared pool and place records at their
    // original subset positions.
    std::vector<int32_t> remap(part.recoding.gens.size());
    for (size_t g = 0; g < part.recoding.gens.size(); ++g) {
      NodeId node = part.gen_nodes[g];
      auto [it, inserted] =
          gen_of_node.emplace(node, static_cast<int32_t>(out.gens.size()));
      if (inserted) out.gens.push_back(part.recoding.gens[g]);
      remap[g] = it->second;
    }
    for (size_t l = 0; l < part.recoding.records.size(); ++l) {
      std::vector<int32_t> rec;
      rec.reserve(part.recoding.records[l].size());
      for (int32_t g : part.recoding.records[l]) {
        rec.push_back(remap[static_cast<size_t>(g)]);
      }
      std::sort(rec.begin(), rec.end());
      out.records[order[begin + l]] = std::move(rec);
    }
  }
  // Local recoding: no single global item map exists.
  out.item_map.clear();
  return out;
}

}  // namespace secreta
