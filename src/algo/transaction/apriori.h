// Apriori Anonymization (AA) of Terrovitis et al. [10]: k^m-anonymity by
// global full-subtree generalization over the item hierarchy. For each
// itemset size i = 1..m, repeatedly finds an i-itemset with support in
// (0, k) and raises the cheapest cut node involved, until no violation
// remains.

#ifndef SECRETA_ALGO_TRANSACTION_APRIORI_H_
#define SECRETA_ALGO_TRANSACTION_APRIORI_H_

#include "algo/transaction/cut.h"
#include "core/algorithm.h"

namespace secreta {

class AprioriAnonymizer : public TransactionAnonymizer {
 public:
  std::string name() const override { return "Apriori"; }
  bool requires_hierarchy() const override { return true; }

  Result<TransactionRecoding> AnonymizeSubset(
      const TransactionContext& context, const std::vector<size_t>& subset,
      const AnonParams& params) override;
};

/// \brief The AA loop shared by Apriori, LRA and VPA.
///
/// Runs on `cut`, restricted to `subset`, never raising a node above depth
/// `min_depth` (0 allows the root; VPA uses 1 to stay inside the root's
/// child subtrees). Returns true if k^m-anonymity was established. When a
/// violation persists with every involved node unraisable:
/// `suppress_on_failure` true suppresses all items (guarantee preserved,
/// returns true); false leaves the cut as-is and returns false so the caller
/// can fix the residue by other means. `pool` (may be null) parallelizes the
/// count-tree builds; `cancel` (may be null) is polled once per raise
/// iteration.
Result<bool> RunAprioriLoop(HierarchyCut* cut, const std::vector<size_t>& subset,
                            int k, int m, int min_depth,
                            bool suppress_on_failure,
                            ThreadPool* pool = nullptr,
                            const CancellationToken* cancel = nullptr);

}  // namespace secreta

#endif  // SECRETA_ALGO_TRANSACTION_APRIORI_H_
