#include "algo/transaction/cut.h"

#include <algorithm>
#include <unordered_map>

namespace secreta {

HierarchyCut::HierarchyCut(const TransactionContext& context)
    : context_(&context) {
  const Hierarchy& h = context.hierarchy();
  node_of_pos_.resize(h.num_leaves());
  for (size_t item = 0; item < context.num_items(); ++item) {
    NodeId leaf = context.Leaf(static_cast<ItemId>(item));
    node_of_pos_[static_cast<size_t>(h.leaf_interval_begin(leaf))] = leaf;
  }
}

void HierarchyCut::RaiseTo(NodeId target) {
  const Hierarchy& h = context_->hierarchy();
  int32_t begin = h.leaf_interval_begin(target);
  int32_t end = h.leaf_interval_end(target);
  for (int32_t pos = begin; pos < end; ++pos) {
    node_of_pos_[static_cast<size_t>(pos)] = target;
  }
}

NodeId HierarchyCut::NodeOf(ItemId item) const {
  const Hierarchy& h = context_->hierarchy();
  NodeId leaf = context_->Leaf(item);
  return node_of_pos_[static_cast<size_t>(h.leaf_interval_begin(leaf))];
}

CutRecoding HierarchyCut::Materialize(const std::vector<size_t>& subset) const {
  const Hierarchy& h = context_->hierarchy();
  const Dataset& data = context_->dataset();
  CutRecoding out;
  out.recoding.item_map.assign(context_->num_items(), kSuppressedGen);
  if (suppress_all_) {
    out.recoding.records.assign(subset.size(), {});
    for (size_t j = 0; j < subset.size(); ++j) {
      out.recoding.suppressed_occurrences += data.items(subset[j]).raw().size();
    }
    return out;
  }
  std::unordered_map<NodeId, int32_t> gen_of_node;
  auto gen_for = [&](NodeId node) -> int32_t {
    auto [it, inserted] = gen_of_node.emplace(
        node, static_cast<int32_t>(out.recoding.gens.size()));
    if (inserted) {
      std::vector<ItemId> covers;
      for (NodeId leaf : h.LeavesUnder(node)) {
        covers.push_back(context_->ItemOfLeaf(leaf));
      }
      std::sort(covers.begin(), covers.end());
      out.recoding.gens.push_back({h.label(node), std::move(covers)});
      out.gen_nodes.push_back(node);
    }
    return it->second;
  };
  // Fill item_map for the whole domain so it reflects the global recoding.
  for (size_t item = 0; item < context_->num_items(); ++item) {
    out.recoding.item_map[item] = gen_for(NodeOf(static_cast<ItemId>(item)));
  }
  out.recoding.records.reserve(subset.size());
  std::vector<int32_t> rec;
  for (size_t row : subset) {
    rec.clear();
    for (ItemId item : data.items(row).raw()) {
      rec.push_back(out.recoding.item_map[static_cast<size_t>(item)]);
    }
    std::sort(rec.begin(), rec.end());
    rec.erase(std::unique(rec.begin(), rec.end()), rec.end());
    out.recoding.records.push_back(rec);
  }
  return out;
}

}  // namespace secreta
