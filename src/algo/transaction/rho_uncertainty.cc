#include "algo/transaction/rho_uncertainty.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <unordered_map>
#include "obs/trace.h"

namespace secreta {

namespace {

struct VecHash {
  size_t operator()(const std::vector<ItemId>& v) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (ItemId x : v) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(x));
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

using SupportMap = std::unordered_map<std::vector<ItemId>, size_t, VecHash>;

// Counts the support of every itemset of size <= max_size in `records`.
SupportMap CountItemsets(const std::vector<std::vector<ItemId>>& records,
                         int max_size) {
  SupportMap counts;
  std::vector<size_t> choice;
  std::vector<ItemId> current;
  for (const auto& rec : records) {
    choice.clear();
    std::function<void(size_t)> dfs = [&](size_t start) {
      if (!choice.empty()) {
        current.clear();
        for (size_t idx : choice) current.push_back(rec[idx]);
        ++counts[current];
      }
      if (choice.size() == static_cast<size_t>(max_size)) return;
      for (size_t i = start; i < rec.size(); ++i) {
        choice.push_back(i);
        dfs(i + 1);
        choice.pop_back();
      }
    };
    dfs(0);
  }
  return counts;
}

// The worst rule X -> s with confidence > rho, if any. Returns (itemset A =
// X + {s}, position of s in A) through out-params.
bool FindWorstRule(const SupportMap& counts,
                   const std::vector<char>& is_sensitive, double rho, int m,
                   std::vector<ItemId>* worst_set, ItemId* worst_consequent) {
  double worst_conf = rho;
  bool found = false;
  std::vector<ItemId> antecedent;
  for (const auto& [itemset, support] : counts) {
    if (itemset.size() < 2) continue;
    if (static_cast<int>(itemset.size()) > m + 1) continue;
    for (ItemId s : itemset) {
      if (!is_sensitive[static_cast<size_t>(s)]) continue;
      antecedent.clear();
      for (ItemId i : itemset) {
        if (i != s) antecedent.push_back(i);
      }
      auto it = counts.find(antecedent);
      if (it == counts.end() || it->second == 0) continue;
      double conf =
          static_cast<double>(support) / static_cast<double>(it->second);
      if (conf > worst_conf) {
        worst_conf = conf;
        *worst_set = itemset;
        *worst_consequent = s;
        found = true;
      }
    }
  }
  return found;
}

// Generalized records projected back to original items; multi-item gens are
// skipped (an adversary cannot pin the exact item). Suppression-only outputs
// keep every surviving item.
std::vector<std::vector<ItemId>> SingletonView(
    const TransactionRecoding& recoding) {
  std::vector<std::vector<ItemId>> out;
  out.reserve(recoding.records.size());
  for (const auto& rec : recoding.records) {
    std::vector<ItemId> items;
    for (int32_t g : rec) {
      const auto& covers = recoding.gens[static_cast<size_t>(g)].covers;
      if (covers.size() == 1) items.push_back(covers[0]);
    }
    std::sort(items.begin(), items.end());
    out.push_back(std::move(items));
  }
  return out;
}

}  // namespace

bool SatisfiesRhoUncertainty(const TransactionRecoding& recoding,
                             const std::vector<char>& is_sensitive, double rho,
                             int m) {
  SupportMap counts = CountItemsets(SingletonView(recoding), m + 1);
  std::vector<ItemId> worst_set;
  ItemId worst_consequent = kInvalidValue;
  return !FindWorstRule(counts, is_sensitive, rho, m, &worst_set,
                        &worst_consequent);
}

Result<TransactionRecoding> RhoUncertaintyAnonymizer::AnonymizeSubset(
    const TransactionContext& context, const std::vector<size_t>& subset,
    const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.RhoUncertainty");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  size_t num_items = context.num_items();
  std::vector<char> is_sensitive(num_items, 0);
  if (!sensitive_.empty()) {
    for (ItemId item : sensitive_) {
      if (item < 0 || static_cast<size_t>(item) >= num_items) {
        return Status::OutOfRange("sensitive item id out of range");
      }
      is_sensitive[static_cast<size_t>(item)] = 1;
    }
  } else {
    // Default: the least-frequent 20% of items are sensitive.
    std::vector<size_t> support(num_items, 0);
    for (size_t row : subset) {
      for (ItemId item : context.dataset().items(row).raw()) {
        support[static_cast<size_t>(item)]++;
      }
    }
    std::vector<size_t> order(num_items);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return support[a] < support[b]; });
    size_t take = std::max<size_t>(1, num_items / 5);
    for (size_t i = 0; i < take; ++i) is_sensitive[order[i]] = 1;
  }

  std::vector<std::vector<ItemId>> txns;
  txns.reserve(subset.size());
  for (size_t row : subset) txns.push_back(context.dataset().items(row).raw());
  GenSpace space(std::move(txns), context.dataset().item_dictionary());

  while (true) {
    SupportMap counts = CountItemsets(SingletonView(space.Export()), params.m + 1);
    std::vector<ItemId> worst_set;
    ItemId worst_consequent = kInvalidValue;
    if (!FindWorstRule(counts, is_sensitive, params.rho, params.m, &worst_set,
                       &worst_consequent)) {
      break;
    }
    // Suppress the lowest-support item of the violating rule (the global
    // suppression strategy of [2]: remove the least valuable side).
    ItemId victim = worst_consequent;
    size_t victim_support = counts[{worst_consequent}];
    for (ItemId item : worst_set) {
      size_t s = counts[{item}];
      if (s < victim_support) {
        victim = item;
        victim_support = s;
      }
    }
    int32_t gen = space.GenOf(victim);
    if (gen == kSuppressedGen) {
      return Status::Internal("rho-uncertainty tried to re-suppress an item");
    }
    space.Suppress(gen);
  }
  return space.Export();
}

}  // namespace secreta
