#include "algo/transaction/vpa.h"

#include <algorithm>

#include "algo/transaction/coat.h"
#include "algo/transaction/count_tree.h"
#include "algo/transaction/cut.h"
#include "algo/transaction/gen_space.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"

namespace secreta {

namespace {

// One vertical part: a contiguous leaf-position interval aligned with whole
// root-child subtrees.
struct Part {
  int32_t begin = 0;
  int32_t end = 0;
};

std::vector<Part> SplitDomain(const Hierarchy& h, int requested_parts) {
  const auto& children = h.children(h.root());
  size_t parts = std::min<size_t>(static_cast<size_t>(requested_parts),
                                  std::max<size_t>(children.size(), 1));
  std::vector<Part> out;
  if (children.empty()) {
    out.push_back({0, static_cast<int32_t>(h.num_leaves())});
    return out;
  }
  size_t per_part = (children.size() + parts - 1) / parts;
  for (size_t begin = 0; begin < children.size(); begin += per_part) {
    size_t end = std::min(begin + per_part, children.size());
    out.push_back({h.leaf_interval_begin(children[begin]),
                   h.leaf_interval_end(children[end - 1])});
  }
  return out;
}

}  // namespace

Result<TransactionRecoding> VpaAnonymizer::AnonymizeSubset(
    const TransactionContext& context, const std::vector<size_t>& subset,
    const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.Vpa");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  if (!context.has_hierarchy()) {
    return Status::FailedPrecondition("VPA requires an item hierarchy");
  }
  const Hierarchy& h = context.hierarchy();
  std::vector<Part> parts = SplitDomain(h, params.vpa_parts);
  HierarchyCut cut(context);
  // Phase 1: per-part AA, raising only inside the part (min_depth 1 keeps
  // every raise strictly below the root, and parts are unions of root-child
  // subtrees, so a raise never crosses a part boundary).
  for (const Part& part : parts) {
    for (int i = 1; i <= params.m; ++i) {
      while (true) {
        CutRecoding view = cut.Materialize(subset);
        // Project records onto this part's gens.
        std::vector<char> in_part(view.recoding.gens.size(), 0);
        for (size_t g = 0; g < view.gen_nodes.size(); ++g) {
          NodeId node = view.gen_nodes[g];
          in_part[g] = h.leaf_interval_begin(node) >= part.begin &&
                       h.leaf_interval_end(node) <= part.end;
        }
        std::vector<std::vector<int32_t>> projected;
        projected.reserve(view.recoding.records.size());
        for (const auto& rec : view.recoding.records) {
          std::vector<int32_t> p;
          for (int32_t g : rec) {
            if (in_part[static_cast<size_t>(g)]) p.push_back(g);
          }
          projected.push_back(std::move(p));
        }
        CountTree tree(projected, i, pool_);
        auto violations = tree.FindViolations(params.k, 1);
        if (violations.empty()) break;
        NodeId best_target = kNoNode;
        double best_cost = 0;
        for (int32_t g : violations[0].itemset) {
          NodeId node = view.gen_nodes[static_cast<size_t>(g)];
          if (h.depth(node) <= 1) continue;  // already at a part top
          NodeId parent = h.parent(node);
          double cost = NodeNcp(h, parent);
          if (best_target == kNoNode || cost < best_cost) {
            best_target = parent;
            best_cost = cost;
          }
        }
        if (best_target == kNoNode) break;  // residue left for phase 2
        cut.RaiseTo(best_target);
      }
    }
  }
  // Phase 2: global repair. Cross-part itemsets (and any per-part residue)
  // are fixed by merging generalized items in set space.
  CutRecoding view = cut.Materialize(subset);
  std::vector<std::vector<ItemId>> txns;
  txns.reserve(subset.size());
  for (size_t row : subset) txns.push_back(context.dataset().items(row).raw());
  GenSpace space(std::move(txns), context.dataset().item_dictionary(),
                 view.recoding);
  UtilityPolicy unrestricted =
      UtilityPolicy::Unrestricted(context.num_items());
  while (true) {
    SECRETA_RETURN_IF_ERROR(CheckCancel("vpa repair"));
    CountTree tree(space.records(), params.m, pool_);
    auto violations = tree.FindViolations(params.k, 1);
    if (violations.empty()) break;
    SECRETA_RETURN_IF_ERROR(FixItemsetSupport(
        &space, violations[0].itemset, params.k, &unrestricted,
        /*prefer_global_cheapest=*/true));
  }
  return space.Export();
}

}  // namespace secreta
