#include "algo/relational/topdown.h"

#include <algorithm>
#include <unordered_map>

#include "algo/relational/cut_state.h"
#include "core/equivalence.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"

namespace secreta {

Result<RelationalRecoding> TopDownAnonymizer::Anonymize(
    const RelationalContext& context, const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.TopDown");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  size_t n = context.num_records();
  if (n < static_cast<size_t>(params.k)) {
    return Status::FailedPrecondition(
        "dataset has fewer records than k; k-anonymity is unattainable");
  }
  size_t q = context.num_qi();
  RelationalCutState cut(context, /*at_leaves=*/false);

  while (true) {
    RelationalRecoding recoding = cut.BuildRecoding();
    EquivalenceClasses classes = GroupByRecoding(recoding);
    // Candidate specializations: every non-leaf cut node of every QI.
    bool found = false;
    size_t best_qi = 0;
    NodeId best_node = kNoNode;
    double best_gain = 0;
    for (size_t qi = 0; qi < q; ++qi) {
      const Hierarchy& h = context.hierarchy(qi);
      for (NodeId node : cut.CutNodes(qi)) {
        if (h.IsLeaf(node)) continue;
        // Validity: splitting every group whose value at `qi` is `node` by
        // the child subtree of each member must leave no group in (0, k).
        // Simultaneously accumulate the utility gain (record-weighted NCP
        // reduction).
        double node_ncp = NodeNcp(h, node);
        double gain = 0;
        bool valid = true;
        // (group, child) -> size; groups not containing `node` are unaffected.
        std::unordered_map<uint64_t, size_t> split_sizes;
        for (size_t r = 0; r < n && valid; ++r) {
          if (recoding.at(r, qi) != node) continue;
          NodeId leaf = context.Leaf(r, qi);
          // Child of `node` on the path to `leaf`.
          NodeId child = h.AncestorAtLevel(
              leaf, h.depth(leaf) - h.depth(node) - 1);
          gain += node_ncp - NodeNcp(h, child);
          uint64_t key = (static_cast<uint64_t>(classes.group_of[r]) << 32) |
                         static_cast<uint32_t>(child);
          ++split_sizes[key];
        }
        if (split_sizes.empty()) continue;  // node not used by any record
        for (const auto& [key, size] : split_sizes) {
          if (size < static_cast<size_t>(params.k)) {
            valid = false;
            break;
          }
        }
        if (!valid) continue;
        if (!found || gain > best_gain) {
          found = true;
          best_qi = qi;
          best_node = node;
          best_gain = gain;
        }
      }
    }
    if (!found) return recoding;
    cut.SpecializeNode(best_qi, best_node);
  }
}

}  // namespace secreta
