#include "algo/relational/topdown.h"

#include <algorithm>
#include <unordered_map>

#include "algo/relational/cut_state.h"
#include "common/parallel.h"
#include "core/equivalence.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"

namespace secreta {

Result<RelationalRecoding> TopDownAnonymizer::Anonymize(
    const RelationalContext& context, const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.TopDown");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  size_t n = context.num_records();
  if (n < static_cast<size_t>(params.k)) {
    return Status::FailedPrecondition(
        "dataset has fewer records than k; k-anonymity is unattainable");
  }
  size_t q = context.num_qi();
  RelationalCutState cut(context, /*at_leaves=*/false);

  // Iteration-invariant flattening: per-record leaves and per-node NCP, so
  // the inner candidate scans touch flat arrays only.
  std::vector<std::vector<NodeId>> leaf_cols(q);
  std::vector<std::vector<double>> node_ncp(q);
  // Per-(qi, node) record buckets, rebuilt each iteration in one O(n) pass
  // per QI: a candidate then scans only the records it would actually split
  // instead of the full dataset (the seed scanned all n records for every
  // candidate cut node).
  std::vector<std::vector<std::vector<uint32_t>>> buckets(q);
  for (size_t qi = 0; qi < q; ++qi) {
    const Hierarchy& h = context.hierarchy(qi);
    leaf_cols[qi].resize(n);
    for (size_t r = 0; r < n; ++r) leaf_cols[qi][r] = context.Leaf(r, qi);
    node_ncp[qi].resize(h.num_nodes());
    for (size_t node = 0; node < h.num_nodes(); ++node) {
      node_ncp[qi][node] = NodeNcp(h, static_cast<NodeId>(node));
    }
    buckets[qi].resize(h.num_nodes());
  }

  struct Candidate {
    size_t qi;
    NodeId node;
    bool valid = false;
    double gain = 0;
  };

  while (true) {
    SECRETA_RETURN_IF_ERROR(CheckCancel("topdown iteration"));
    RelationalRecoding recoding = cut.BuildRecoding();
    EquivalenceClasses classes = GroupByRecoding(recoding);
    // Bucket records by their current recode node, ascending record order
    // (the gain accumulation order of the sequential scan).
    std::vector<Candidate> candidates;
    for (size_t qi = 0; qi < q; ++qi) {
      const Hierarchy& h = context.hierarchy(qi);
      for (NodeId node : cut.CutNodes(qi)) {
        if (h.IsLeaf(node)) continue;
        candidates.push_back(Candidate{qi, node});
        buckets[qi][static_cast<size_t>(node)].clear();
      }
    }
    for (size_t qi = 0; qi < q; ++qi) {
      bool qi_has_candidate = false;
      for (const Candidate& c : candidates) qi_has_candidate |= (c.qi == qi);
      if (!qi_has_candidate) continue;
      auto& per_node = buckets[qi];
      for (size_t r = 0; r < n; ++r) {
        per_node[static_cast<size_t>(recoding.at(r, qi))].push_back(
            static_cast<uint32_t>(r));
      }
    }
    // Candidate specializations evaluate independently over immutable state;
    // the serial fold below applies the sequential first-max rule, so the
    // chosen split is identical with or without a pool.
    ParallelFor(pool_, candidates.size(), [&](size_t c) {
      Candidate& cand = candidates[c];
      const Hierarchy& h = context.hierarchy(cand.qi);
      const std::vector<uint32_t>& rows =
          buckets[cand.qi][static_cast<size_t>(cand.node)];
      if (rows.empty()) return;  // node not used by any record
      // Validity: splitting every group whose value at `qi` is `node` by
      // the child subtree of each member must leave no group in (0, k).
      // Simultaneously accumulate the utility gain (record-weighted NCP
      // reduction).
      double this_ncp = node_ncp[cand.qi][static_cast<size_t>(cand.node)];
      double gain = 0;
      int node_depth = h.depth(cand.node);
      std::unordered_map<uint64_t, size_t> split_sizes;
      for (uint32_t r : rows) {
        NodeId leaf = leaf_cols[cand.qi][r];
        // Child of `node` on the path to `leaf`.
        NodeId child =
            h.AncestorAtLevel(leaf, h.depth(leaf) - node_depth - 1);
        gain += this_ncp - node_ncp[cand.qi][static_cast<size_t>(child)];
        uint64_t key = (static_cast<uint64_t>(classes.group_of[r]) << 32) |
                       static_cast<uint32_t>(child);
        ++split_sizes[key];
      }
      bool valid = true;
      for (const auto& [key, size] : split_sizes) {
        if (size < static_cast<size_t>(params.k)) {
          valid = false;
          break;
        }
      }
      cand.valid = valid;
      cand.gain = gain;
    });
    bool found = false;
    size_t best_qi = 0;
    NodeId best_node = kNoNode;
    double best_gain = 0;
    for (const Candidate& cand : candidates) {
      if (!cand.valid) continue;
      if (!found || cand.gain > best_gain) {
        found = true;
        best_qi = cand.qi;
        best_node = cand.node;
        best_gain = cand.gain;
      }
    }
    if (!found) return recoding;
    cut.SpecializeNode(best_qi, best_node);
  }
}

}  // namespace secreta
