// Full-subtree bottom-up generalization (the paper's fourth relational
// algorithm). Starts at the original values and greedily applies the
// full-subtree generalization with the best loss/benefit ratio — preferring
// raises that cover many records still violating k-anonymity — until the
// dataset is k-anonymous.

#ifndef SECRETA_ALGO_RELATIONAL_BOTTOMUP_H_
#define SECRETA_ALGO_RELATIONAL_BOTTOMUP_H_

#include "core/algorithm.h"

namespace secreta {

class BottomUpAnonymizer : public RelationalAnonymizer {
 public:
  std::string name() const override { return "BottomUp"; }

  Result<RelationalRecoding> Anonymize(const RelationalContext& context,
                                       const AnonParams& params) override;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_RELATIONAL_BOTTOMUP_H_
