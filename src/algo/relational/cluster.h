// Cluster-based relational anonymization (the relational phase of Poulis et
// al. [9]). Greedy k-member clustering: grow clusters of exactly >= k records
// by repeatedly adding the record whose inclusion minimizes the cluster's
// NCP; each cluster's QI values are generalized to the per-attribute LCA of
// its members. Produces many small equivalence classes, which is what the RT
// pipeline wants as its starting partition.

#ifndef SECRETA_ALGO_RELATIONAL_CLUSTER_H_
#define SECRETA_ALGO_RELATIONAL_CLUSTER_H_

#include "core/algorithm.h"

namespace secreta {

class ClusterAnonymizer : public RelationalAnonymizer {
 public:
  /// Candidate pool scanned per greedy addition; larger = better clusters,
  /// slower. The full remaining set is scanned when it is below the cap.
  explicit ClusterAnonymizer(size_t candidate_cap = 192)
      : candidate_cap_(candidate_cap) {}

  std::string name() const override { return "Cluster"; }

  Result<RelationalRecoding> Anonymize(const RelationalContext& context,
                                       const AnonParams& params) override;

 private:
  size_t candidate_cap_;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_RELATIONAL_CLUSTER_H_
