#include "algo/relational/bottomup.h"

#include <algorithm>

#include "algo/relational/cut_state.h"
#include "core/equivalence.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"

namespace secreta {

Result<RelationalRecoding> BottomUpAnonymizer::Anonymize(
    const RelationalContext& context, const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.BottomUp");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  size_t n = context.num_records();
  if (n < static_cast<size_t>(params.k)) {
    return Status::FailedPrecondition(
        "dataset has fewer records than k; k-anonymity is unattainable");
  }
  size_t q = context.num_qi();
  RelationalCutState cut(context, /*at_leaves=*/true);

  // Per QI: record count per leaf position (fixed) for loss weighting.
  std::vector<std::vector<double>> pos_records(q);
  for (size_t qi = 0; qi < q; ++qi) {
    const Hierarchy& h = context.hierarchy(qi);
    pos_records[qi].assign(h.num_leaves() + 1, 0);
    for (size_t r = 0; r < n; ++r) {
      pos_records[qi][static_cast<size_t>(
          h.leaf_interval_begin(context.Leaf(r, qi)))] += 1;
    }
    // Prefix sums so any interval's record mass is O(1).
    for (size_t p = 1; p < pos_records[qi].size(); ++p) {
      pos_records[qi][p] += pos_records[qi][p - 1];
    }
  }
  auto records_under = [&](size_t qi, NodeId node) {
    const Hierarchy& h = context.hierarchy(qi);
    return pos_records[qi][static_cast<size_t>(h.leaf_interval_end(node))] -
           pos_records[qi][static_cast<size_t>(h.leaf_interval_begin(node))];
  };

  while (true) {
    RelationalRecoding recoding = cut.BuildRecoding();
    EquivalenceClasses classes = GroupByRecoding(recoding);
    if (classes.MinGroupSize() >= static_cast<size_t>(params.k)) {
      return recoding;
    }
    // Violating-record mass per leaf position, per QI (prefix-summed).
    std::vector<std::vector<double>> viol(q);
    for (size_t qi = 0; qi < q; ++qi) {
      viol[qi].assign(context.hierarchy(qi).num_leaves() + 1, 0);
    }
    for (const auto& group : classes.groups) {
      if (group.size() >= static_cast<size_t>(params.k)) continue;
      for (size_t r : group) {
        for (size_t qi = 0; qi < q; ++qi) {
          const Hierarchy& h = context.hierarchy(qi);
          viol[qi][static_cast<size_t>(
              h.leaf_interval_begin(context.Leaf(r, qi)))] += 1;
        }
      }
    }
    for (size_t qi = 0; qi < q; ++qi) {
      for (size_t p = 1; p < viol[qi].size(); ++p) {
        viol[qi][p] += viol[qi][p - 1];
      }
    }
    // Candidate raises: parents of current cut nodes. Score favours low
    // record-weighted NCP increase and high coverage of violating records.
    bool found = false;
    size_t best_qi = 0;
    NodeId best_target = kNoNode;
    double best_score = 0;
    for (size_t qi = 0; qi < q; ++qi) {
      const Hierarchy& h = context.hierarchy(qi);
      NodeId previous_parent = kNoNode;
      for (NodeId node : cut.CutNodes(qi)) {
        if (node == h.root()) continue;
        NodeId parent = h.parent(node);
        if (parent == previous_parent) continue;  // dedupe siblings
        previous_parent = parent;
        double parent_ncp = NodeNcp(h, parent);
        // Loss: every record under `parent` moves from its current node's
        // NCP to the parent's. Upper-bound the current NCP by the node's own
        // (other cut nodes under parent have NCP <= parent's as well).
        double loss = 0;
        for (NodeId sib : h.children(parent)) {
          double mass = records_under(qi, sib);
          // Current cut node for sib's leaves is at-or-below sib; use sib's
          // NCP as the pre-raise level (exact for full-subtree cuts created
          // by this algorithm after sib was raised; optimistic otherwise).
          loss += mass * (parent_ncp - NodeNcp(h, sib));
        }
        double covered_viol =
            viol[qi][static_cast<size_t>(h.leaf_interval_end(parent))] -
            viol[qi][static_cast<size_t>(h.leaf_interval_begin(parent))];
        if (covered_viol <= 0) continue;  // raise would not help anybody
        double score = loss / covered_viol;
        if (!found || score < best_score) {
          found = true;
          best_qi = qi;
          best_target = parent;
          best_score = score;
        }
      }
    }
    if (!found) {
      // No raise covers a violating record (can only happen when every QI of
      // every violator is already at the root), yet groups are still small:
      // impossible when n >= k because all-root means one single group.
      return Status::Internal("bottom-up generalization cannot progress");
    }
    cut.RaiseTo(best_qi, best_target);
  }
}

}  // namespace secreta
