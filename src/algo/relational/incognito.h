// Incognito (LeFevre, DeWitt & Ramakrishnan [6]): efficient full-domain
// k-anonymity. Iterates over QI subsets of growing size; within each subset
// it walks the lattice of per-attribute generalization levels bottom-up,
// keeping the frontier of minimal k-anonymous level vectors. Two prunings of
// the original algorithm are implemented:
//   - subset property: a level vector whose restriction to some smaller
//     subset is not anonymous cannot be anonymous, and is never scanned;
//   - rollup/generalization property: anything above a known-anonymous
//     vector is anonymous without scanning.
// Among the minimal anonymous full-domain recodings of the full QI set, the
// one with the lowest GCP is returned.

#ifndef SECRETA_ALGO_RELATIONAL_INCOGNITO_H_
#define SECRETA_ALGO_RELATIONAL_INCOGNITO_H_

#include "core/algorithm.h"

namespace secreta {

/// Work counters of one Incognito run, summed over every QI-subset lattice.
struct IncognitoStats {
  size_t lattice_nodes = 0;      ///< level vectors considered
  size_t scanned = 0;            ///< full dataset scans performed
  size_t inherited = 0;          ///< skipped via the rollup property
  size_t pruned_by_subset = 0;   ///< skipped via the subset property
};

class IncognitoAnonymizer : public RelationalAnonymizer {
 public:
  std::string name() const override { return "Incognito"; }

  Result<RelationalRecoding> Anonymize(const RelationalContext& context,
                                       const AnonParams& params) override;

  /// The minimal k-anonymous full-domain level vectors over the full QI set
  /// (one level per QI position). Exposed for tests and for ablation benches
  /// that inspect the whole frontier rather than the best pick. `stats` (may
  /// be null) receives the pruning counters.
  Result<std::vector<std::vector<int>>> MinimalAnonymousLevels(
      const RelationalContext& context, const AnonParams& params,
      IncognitoStats* stats = nullptr);

  /// Forces the original map-of-vector-keys scan instead of the packed-key
  /// open-addressing counter. The reference path is the oracle the property
  /// tests and speedup benches compare the optimized path against.
  void set_use_reference_impl(bool value) { use_reference_impl_ = value; }

 private:
  bool use_reference_impl_ = false;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_RELATIONAL_INCOGNITO_H_
