// Mutable full-subtree cut state over the QI hierarchies, shared by the
// bottom-up and top-down relational anonymizers.

#ifndef SECRETA_ALGO_RELATIONAL_CUT_STATE_H_
#define SECRETA_ALGO_RELATIONAL_CUT_STATE_H_

#include <vector>

#include "core/context.h"
#include "core/results.h"

namespace secreta {

/// \brief One full-subtree cut per QI attribute, mutable in both directions.
class RelationalCutState {
 public:
  /// `at_leaves` true starts each cut at the leaves (bottom-up), false at the
  /// root (top-down).
  RelationalCutState(const RelationalContext& context, bool at_leaves);

  /// Cut node of record `row` in QI `qi`.
  NodeId NodeOfRow(size_t row, size_t qi) const {
    const Hierarchy& h = context_->hierarchy(qi);
    return node_of_pos_[qi][static_cast<size_t>(
        h.leaf_interval_begin(context_->Leaf(row, qi)))];
  }

  /// Generalizes: every cut node under `target` becomes `target`.
  void RaiseTo(size_t qi, NodeId target);

  /// Specializes: the cut node `node` (which must currently cover its whole
  /// subtree) is replaced by its children.
  void SpecializeNode(size_t qi, NodeId node);

  /// Distinct cut nodes of `qi` in leaf order.
  std::vector<NodeId> CutNodes(size_t qi) const;

  /// Materializes the per-record recoding.
  RelationalRecoding BuildRecoding() const;

  const RelationalContext& context() const { return *context_; }

 private:
  const RelationalContext* context_;
  /// Per QI: cut node covering each leaf DFS position.
  std::vector<std::vector<NodeId>> node_of_pos_;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_RELATIONAL_CUT_STATE_H_
