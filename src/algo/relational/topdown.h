// Top-Down Specialization (Fung, Wang & Yu [4]). Starts fully generalized
// (every QI at its hierarchy root) and greedily applies the valid
// specialization — replacing one cut node with its children — with the best
// utility gain, until no specialization preserves k-anonymity.

#ifndef SECRETA_ALGO_RELATIONAL_TOPDOWN_H_
#define SECRETA_ALGO_RELATIONAL_TOPDOWN_H_

#include "core/algorithm.h"

namespace secreta {

class TopDownAnonymizer : public RelationalAnonymizer {
 public:
  std::string name() const override { return "TopDown"; }

  Result<RelationalRecoding> Anonymize(const RelationalContext& context,
                                       const AnonParams& params) override;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_RELATIONAL_TOPDOWN_H_
