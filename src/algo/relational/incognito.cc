#include "algo/relational/incognito.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "common/parallel.h"
#include "core/equivalence.h"
#include "core/recoding.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"

namespace secreta {

namespace {

using Levels = std::vector<int>;
using Subset = std::vector<size_t>;  // QI positions, sorted

// Frontier of minimal anonymous level vectors for one subset.
struct Frontier {
  std::vector<Levels> minimal;

  bool IsAnonymous(const Levels& levels) const {
    for (const Levels& f : minimal) {
      bool leq = true;
      for (size_t i = 0; i < f.size(); ++i) {
        if (f[i] > levels[i]) {
          leq = false;
          break;
        }
      }
      if (leq) return true;
    }
    return false;
  }
};

// Lazily computed leaf -> ancestor-at-level tables, one per (qi, level).
// Reference-path helper (the seed implementation, kept as the oracle).
class LevelTables {
 public:
  explicit LevelTables(const RelationalContext& context) : context_(&context) {
    tables_.resize(context.num_qi());
  }

  const std::vector<NodeId>& Table(size_t qi, int level) {
    auto& per_level = tables_[qi];
    if (per_level.size() <= static_cast<size_t>(level)) {
      per_level.resize(static_cast<size_t>(level) + 1);
    }
    auto& table = per_level[static_cast<size_t>(level)];
    if (table.empty()) {
      const Hierarchy& h = context_->hierarchy(qi);
      table.resize(h.num_nodes(), kNoNode);
      for (NodeId leaf : h.leaves()) {
        table[static_cast<size_t>(leaf)] = h.AncestorAtLevel(leaf, level);
      }
    }
    return table;
  }

 private:
  const RelationalContext* context_;
  std::vector<std::vector<std::vector<NodeId>>> tables_;
};

// Reference k-anonymity check: vector keys into an unordered_map. O(n)
// hashing of q-element vectors plus node allocations per distinct group.
bool CheckAnonymousReference(const RelationalContext& context,
                             LevelTables* tables, const Subset& subset,
                             const Levels& levels, int k) {
  struct VecHash {
    size_t operator()(const std::vector<NodeId>& v) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (NodeId x : v) {
        h ^= static_cast<size_t>(static_cast<uint32_t>(x));
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };
  std::vector<const std::vector<NodeId>*> maps(subset.size());
  for (size_t i = 0; i < subset.size(); ++i) {
    maps[i] = &tables->Table(subset[i], levels[i]);
  }
  std::unordered_map<std::vector<NodeId>, size_t, VecHash> counts;
  std::vector<NodeId> key(subset.size());
  size_t n = context.num_records();
  counts.reserve(n / 4);
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < subset.size(); ++i) {
      key[i] = (*maps[i])[static_cast<size_t>(context.Leaf(r, subset[i]))];
    }
    ++counts[key];
  }
  for (const auto& [_, count] : counts) {
    if (count < static_cast<size_t>(k)) return false;
  }
  return true;
}

// Optimized-path columns: for each (qi, level) a per-record column of dense
// codes in [0, radix). A group key over a QI subset then packs into one
// uint64 by mixed-radix arithmetic — no vector hashing, no per-group
// allocation — and the scan body is three array loads per (record, qi).
class RecodedColumns {
 public:
  static constexpr uint32_t kNoCode = ~uint32_t{0};

  struct Column {
    std::vector<uint32_t> codes;  // per record
    uint64_t radix = 0;           // 0 = not built yet
  };

  explicit RecodedColumns(const RelationalContext& context)
      : context_(&context) {
    size_t q = context.num_qi();
    size_t n = context.num_records();
    leaf_cols_.resize(q);
    cols_.resize(q);
    for (size_t qi = 0; qi < q; ++qi) {
      leaf_cols_[qi].resize(n);
      for (size_t r = 0; r < n; ++r) {
        leaf_cols_[qi][r] =
            static_cast<uint32_t>(context.Leaf(r, qi));
      }
      cols_[qi].resize(static_cast<size_t>(context.hierarchy(qi).height()) + 1);
    }
  }

  /// Builds (qi, level) if missing. Must run on one thread; Get() afterwards
  /// is safe concurrently.
  const Column& Ensure(size_t qi, int level) {
    Column& col = cols_[qi][static_cast<size_t>(level)];
    if (col.radix != 0) return col;
    const Hierarchy& h = context_->hierarchy(qi);
    // Dense-code the level's ancestor nodes in leaf order (deterministic).
    std::vector<uint32_t> node_code(h.num_nodes(), kNoCode);
    uint32_t next = 0;
    for (NodeId leaf : h.leaves()) {
      size_t anc = static_cast<size_t>(h.AncestorAtLevel(leaf, level));
      if (node_code[anc] == kNoCode) node_code[anc] = next++;
    }
    std::vector<uint32_t> leaf_code(h.num_nodes(), 0);
    for (NodeId leaf : h.leaves()) {
      leaf_code[static_cast<size_t>(leaf)] =
          node_code[static_cast<size_t>(h.AncestorAtLevel(leaf, level))];
    }
    size_t n = context_->num_records();
    col.codes.resize(n);
    const std::vector<uint32_t>& leaves = leaf_cols_[qi];
    for (size_t r = 0; r < n; ++r) col.codes[r] = leaf_code[leaves[r]];
    col.radix = next == 0 ? 1 : next;
    return col;
  }

  const Column& Get(size_t qi, int level) const {
    return cols_[qi][static_cast<size_t>(level)];
  }

 private:
  const RelationalContext* context_;
  std::vector<std::vector<uint32_t>> leaf_cols_;  // qi -> per-record leaf
  std::vector<std::vector<Column>> cols_;         // qi -> level -> column
};

// Mixed-radix packing of one (subset, levels) group key. ok = false when the
// combined key space overflows 64 bits (fall back to the reference scan).
struct PackedPlan {
  std::vector<const uint32_t*> codes;
  std::vector<uint64_t> strides;
  uint64_t space = 1;
  bool ok = true;
};

PackedPlan MakePlan(const RecodedColumns& columns, const Subset& subset,
                    const Levels& levels) {
  PackedPlan plan;
  plan.codes.reserve(subset.size());
  plan.strides.reserve(subset.size());
  for (size_t i = 0; i < subset.size(); ++i) {
    const RecodedColumns::Column& col = columns.Get(subset[i], levels[i]);
    if (col.radix != 0 &&
        plan.space > (~uint64_t{0} >> 1) / col.radix) {
      plan.ok = false;
      return plan;
    }
    plan.codes.push_back(col.codes.data());
    plan.strides.push_back(plan.space);
    plan.space *= col.radix;
  }
  return plan;
}

inline uint64_t MixKey(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// k-anonymity via packed keys: direct-address counts when the key space is
// small, linear-probing open addressing (flat arrays, no per-group
// allocation) otherwise.
bool CheckAnonymousPacked(const PackedPlan& plan, size_t n, int k) {
  size_t q = plan.codes.size();
  auto key_of = [&](size_t r) {
    uint64_t key = 0;
    for (size_t i = 0; i < q; ++i) {
      key += static_cast<uint64_t>(plan.codes[i][r]) * plan.strides[i];
    }
    return key;
  };
  if (plan.space <= 4 * static_cast<uint64_t>(n) + 1024) {
    std::vector<uint32_t> counts(static_cast<size_t>(plan.space), 0);
    for (size_t r = 0; r < n; ++r) ++counts[static_cast<size_t>(key_of(r))];
    for (uint32_t c : counts) {
      if (c != 0 && c < static_cast<uint32_t>(k)) return false;
    }
    return true;
  }
  constexpr uint64_t kEmpty = ~uint64_t{0};
  size_t cap = 1;
  while (cap < 2 * n) cap <<= 1;
  std::vector<uint64_t> slot_key(cap, kEmpty);
  std::vector<uint32_t> slot_count(cap, 0);
  size_t mask = cap - 1;
  for (size_t r = 0; r < n; ++r) {
    uint64_t key = key_of(r);  // < space <= 2^63, never the sentinel
    size_t idx = static_cast<size_t>(MixKey(key)) & mask;
    while (true) {
      if (slot_key[idx] == kEmpty) {
        slot_key[idx] = key;
        slot_count[idx] = 1;
        break;
      }
      if (slot_key[idx] == key) {
        ++slot_count[idx];
        break;
      }
      idx = (idx + 1) & mask;
    }
  }
  for (size_t i = 0; i < cap; ++i) {
    if (slot_key[i] != kEmpty && slot_count[i] < static_cast<uint32_t>(k)) {
      return false;
    }
  }
  return true;
}

int LevelSum(const Levels& levels) {
  return std::accumulate(levels.begin(), levels.end(), 0);
}

// All level vectors of the subset's lattice, ordered by level sum (BFS order).
std::vector<Levels> LatticeNodes(const std::vector<int>& heights) {
  std::vector<Levels> nodes;
  Levels current(heights.size(), 0);
  // Odometer enumeration.
  while (true) {
    nodes.push_back(current);
    size_t pos = 0;
    while (pos < current.size()) {
      if (current[pos] < heights[pos]) {
        ++current[pos];
        for (size_t i = 0; i < pos; ++i) current[i] = 0;
        break;
      }
      ++pos;
    }
    if (pos == current.size()) break;
  }
  std::stable_sort(nodes.begin(), nodes.end(),
                   [](const Levels& a, const Levels& b) {
                     return LevelSum(a) < LevelSum(b);
                   });
  return nodes;
}

// All subsets of {0..q-1} with `size` elements, lexicographic.
std::vector<Subset> Combinations(size_t q, size_t size) {
  std::vector<Subset> out;
  Subset current;
  std::function<void(size_t)> rec = [&](size_t start) {
    if (current.size() == size) {
      out.push_back(current);
      return;
    }
    for (size_t i = start; i + (size - current.size()) <= q; ++i) {
      current.push_back(i);
      rec(i + 1);
      current.pop_back();
    }
  };
  rec(0);
  return out;
}

}  // namespace

Result<std::vector<std::vector<int>>> IncognitoAnonymizer::MinimalAnonymousLevels(
    const RelationalContext& context, const AnonParams& params,
    IncognitoStats* stats) {
  SECRETA_RETURN_IF_ERROR(params.Validate());
  IncognitoStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  size_t q = context.num_qi();
  if (q > 12) {
    return Status::InvalidArgument(
        "Incognito enumerates QI subsets; more than 12 QIs is intractable");
  }
  size_t n = context.num_records();
  if (n < static_cast<size_t>(params.k)) {
    return Status::FailedPrecondition(
        "dataset has fewer records than k; k-anonymity is unattainable");
  }
  LevelTables tables(context);
  std::unique_ptr<RecodedColumns> columns;
  if (!use_reference_impl_) columns = std::make_unique<RecodedColumns>(context);
  std::map<Subset, Frontier> frontiers;
  for (size_t size = 1; size <= q; ++size) {
    for (const Subset& subset : Combinations(q, size)) {
      SECRETA_RETURN_IF_ERROR(CheckCancel("incognito subset"));
      std::vector<int> heights(size);
      for (size_t i = 0; i < size; ++i) {
        heights[i] = context.hierarchy(subset[i]).height();
      }
      Frontier& frontier = frontiers[subset];
      std::vector<Levels> nodes = LatticeNodes(heights);
      // Walk the lattice one level sum at a time. Equal-sum vectors cannot
      // dominate one another (equal sum + component-wise <= forces
      // equality), so the rollup check against the frontier at level entry
      // and a parallel scan of the level's survivors are both exact — the
      // frontier grows only between levels, in node order, which keeps the
      // result byte-identical to the serial walk.
      size_t begin = 0;
      while (begin < nodes.size()) {
        SECRETA_RETURN_IF_ERROR(CheckCancel("incognito level"));
        int sum = LevelSum(nodes[begin]);
        size_t end = begin + 1;
        while (end < nodes.size() && LevelSum(nodes[end]) == sum) ++end;
        std::vector<size_t> to_scan;
        for (size_t i = begin; i < end; ++i) {
          const Levels& levels = nodes[i];
          ++stats->lattice_nodes;
          if (frontier.IsAnonymous(levels)) {  // rollup property
            ++stats->inherited;
            continue;
          }
          if (size > 1) {
            // Subset property: every (size-1)-restriction must be anonymous.
            bool viable = true;
            for (size_t drop = 0; drop < size && viable; ++drop) {
              Subset sub;
              Levels sub_levels;
              for (size_t i2 = 0; i2 < size; ++i2) {
                if (i2 == drop) continue;
                sub.push_back(subset[i2]);
                sub_levels.push_back(levels[i2]);
              }
              viable = frontiers[sub].IsAnonymous(sub_levels);
            }
            if (!viable) {
              ++stats->pruned_by_subset;
              continue;
            }
          }
          ++stats->scanned;
          to_scan.push_back(i);
        }
        if (!to_scan.empty()) {
          std::vector<char> anonymous(to_scan.size(), 0);
          if (use_reference_impl_) {
            for (size_t t = 0; t < to_scan.size(); ++t) {
              anonymous[t] = CheckAnonymousReference(
                  context, &tables, subset, nodes[to_scan[t]], params.k);
            }
          } else {
            // Build the needed recode columns serially, then scan the
            // level's candidates in parallel over immutable state.
            std::vector<PackedPlan> plans(to_scan.size());
            for (size_t t = 0; t < to_scan.size(); ++t) {
              const Levels& levels = nodes[to_scan[t]];
              for (size_t i = 0; i < size; ++i) {
                columns->Ensure(subset[i], levels[i]);
              }
              plans[t] = MakePlan(*columns, subset, levels);
            }
            ParallelFor(pool_, to_scan.size(), [&](size_t t) {
              if (plans[t].ok) {
                anonymous[t] = CheckAnonymousPacked(plans[t], n, params.k);
              }
            });
            for (size_t t = 0; t < to_scan.size(); ++t) {
              if (!plans[t].ok) {  // key space > 2^63: degenerate, rare
                anonymous[t] = CheckAnonymousReference(
                    context, &tables, subset, nodes[to_scan[t]], params.k);
              }
            }
          }
          for (size_t t = 0; t < to_scan.size(); ++t) {
            if (anonymous[t]) frontier.minimal.push_back(nodes[to_scan[t]]);
          }
        }
        begin = end;
      }
    }
  }
  Subset full(q);
  std::iota(full.begin(), full.end(), 0);
  const Frontier& result = frontiers[full];
  if (result.minimal.empty()) {
    return Status::Internal(
        "no k-anonymous full-domain generalization found (unexpected: the "
        "all-roots vector is always k-anonymous when n >= k)");
  }
  return result.minimal;
}

Result<RelationalRecoding> IncognitoAnonymizer::Anonymize(
    const RelationalContext& context, const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.Incognito");
  SECRETA_ASSIGN_OR_RETURN(std::vector<std::vector<int>> frontier,
                           MinimalAnonymousLevels(context, params));
  // Pick the minimal anonymous vector with the lowest GCP.
  RelationalRecoding best;
  double best_gcp = 0;
  bool first = true;
  for (const auto& levels : frontier) {
    RelationalRecoding recoding = ApplyFullDomainLevels(context, levels);
    double gcp = RecodingGcp(context, recoding);
    if (first || gcp < best_gcp) {
      first = false;
      best_gcp = gcp;
      best = std::move(recoding);
    }
  }
  return best;
}

}  // namespace secreta
