#include "algo/relational/incognito.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <unordered_map>

#include "core/equivalence.h"
#include "core/recoding.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"

namespace secreta {

namespace {

using Levels = std::vector<int>;
using Subset = std::vector<size_t>;  // QI positions, sorted

// Frontier of minimal anonymous level vectors for one subset.
struct Frontier {
  std::vector<Levels> minimal;

  bool IsAnonymous(const Levels& levels) const {
    for (const Levels& f : minimal) {
      bool leq = true;
      for (size_t i = 0; i < f.size(); ++i) {
        if (f[i] > levels[i]) {
          leq = false;
          break;
        }
      }
      if (leq) return true;
    }
    return false;
  }
};

// Lazily computed leaf -> ancestor-at-level tables, one per (qi, level).
class LevelTables {
 public:
  explicit LevelTables(const RelationalContext& context) : context_(&context) {
    tables_.resize(context.num_qi());
  }

  const std::vector<NodeId>& Table(size_t qi, int level) {
    auto& per_level = tables_[qi];
    if (per_level.size() <= static_cast<size_t>(level)) {
      per_level.resize(static_cast<size_t>(level) + 1);
    }
    auto& table = per_level[static_cast<size_t>(level)];
    if (table.empty()) {
      const Hierarchy& h = context_->hierarchy(qi);
      table.resize(h.num_nodes(), kNoNode);
      for (NodeId leaf : h.leaves()) {
        table[static_cast<size_t>(leaf)] = h.AncestorAtLevel(leaf, level);
      }
    }
    return table;
  }

 private:
  const RelationalContext* context_;
  std::vector<std::vector<std::vector<NodeId>>> tables_;
};

// k-anonymity of the dataset generalized to `levels` over the QIs in
// `subset`.
bool CheckAnonymous(const RelationalContext& context, LevelTables* tables,
                    const Subset& subset, const Levels& levels, int k) {
  struct VecHash {
    size_t operator()(const std::vector<NodeId>& v) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (NodeId x : v) {
        h ^= static_cast<size_t>(static_cast<uint32_t>(x));
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };
  std::vector<const std::vector<NodeId>*> maps(subset.size());
  for (size_t i = 0; i < subset.size(); ++i) {
    maps[i] = &tables->Table(subset[i], levels[i]);
  }
  std::unordered_map<std::vector<NodeId>, size_t, VecHash> counts;
  std::vector<NodeId> key(subset.size());
  size_t n = context.num_records();
  counts.reserve(n / 4);
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < subset.size(); ++i) {
      key[i] = (*maps[i])[static_cast<size_t>(context.Leaf(r, subset[i]))];
    }
    ++counts[key];
  }
  for (const auto& [_, count] : counts) {
    if (count < static_cast<size_t>(k)) return false;
  }
  return true;
}

// All level vectors of the subset's lattice, ordered by level sum (BFS order).
std::vector<Levels> LatticeNodes(const std::vector<int>& heights) {
  std::vector<Levels> nodes;
  Levels current(heights.size(), 0);
  // Odometer enumeration.
  while (true) {
    nodes.push_back(current);
    size_t pos = 0;
    while (pos < current.size()) {
      if (current[pos] < heights[pos]) {
        ++current[pos];
        for (size_t i = 0; i < pos; ++i) current[i] = 0;
        break;
      }
      ++pos;
    }
    if (pos == current.size()) break;
  }
  std::stable_sort(nodes.begin(), nodes.end(),
                   [](const Levels& a, const Levels& b) {
                     int sa = std::accumulate(a.begin(), a.end(), 0);
                     int sb = std::accumulate(b.begin(), b.end(), 0);
                     return sa < sb;
                   });
  return nodes;
}

// All subsets of {0..q-1} with `size` elements, lexicographic.
std::vector<Subset> Combinations(size_t q, size_t size) {
  std::vector<Subset> out;
  Subset current;
  std::function<void(size_t)> rec = [&](size_t start) {
    if (current.size() == size) {
      out.push_back(current);
      return;
    }
    for (size_t i = start; i + (size - current.size()) <= q; ++i) {
      current.push_back(i);
      rec(i + 1);
      current.pop_back();
    }
  };
  rec(0);
  return out;
}

}  // namespace

Result<std::vector<std::vector<int>>> IncognitoAnonymizer::MinimalAnonymousLevels(
    const RelationalContext& context, const AnonParams& params,
    IncognitoStats* stats) {
  SECRETA_RETURN_IF_ERROR(params.Validate());
  IncognitoStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  size_t q = context.num_qi();
  if (q > 12) {
    return Status::InvalidArgument(
        "Incognito enumerates QI subsets; more than 12 QIs is intractable");
  }
  if (context.num_records() < static_cast<size_t>(params.k)) {
    return Status::FailedPrecondition(
        "dataset has fewer records than k; k-anonymity is unattainable");
  }
  LevelTables tables(context);
  std::map<Subset, Frontier> frontiers;
  for (size_t size = 1; size <= q; ++size) {
    for (const Subset& subset : Combinations(q, size)) {
      std::vector<int> heights(size);
      for (size_t i = 0; i < size; ++i) {
        heights[i] = context.hierarchy(subset[i]).height();
      }
      Frontier& frontier = frontiers[subset];
      for (const Levels& levels : LatticeNodes(heights)) {
        ++stats->lattice_nodes;
        if (frontier.IsAnonymous(levels)) {  // rollup property
          ++stats->inherited;
          continue;
        }
        if (size > 1) {
          // Subset property: every (size-1)-restriction must be anonymous.
          bool viable = true;
          for (size_t drop = 0; drop < size && viable; ++drop) {
            Subset sub;
            Levels sub_levels;
            for (size_t i = 0; i < size; ++i) {
              if (i == drop) continue;
              sub.push_back(subset[i]);
              sub_levels.push_back(levels[i]);
            }
            viable = frontiers[sub].IsAnonymous(sub_levels);
          }
          if (!viable) {
            ++stats->pruned_by_subset;
            continue;
          }
        }
        ++stats->scanned;
        if (CheckAnonymous(context, &tables, subset, levels, params.k)) {
          frontier.minimal.push_back(levels);
        }
      }
    }
  }
  Subset full(q);
  std::iota(full.begin(), full.end(), 0);
  const Frontier& result = frontiers[full];
  if (result.minimal.empty()) {
    return Status::Internal(
        "no k-anonymous full-domain generalization found (unexpected: the "
        "all-roots vector is always k-anonymous when n >= k)");
  }
  return result.minimal;
}

Result<RelationalRecoding> IncognitoAnonymizer::Anonymize(
    const RelationalContext& context, const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.Incognito");
  SECRETA_ASSIGN_OR_RETURN(std::vector<std::vector<int>> frontier,
                           MinimalAnonymousLevels(context, params));
  // Pick the minimal anonymous vector with the lowest GCP.
  RelationalRecoding best;
  double best_gcp = 0;
  bool first = true;
  for (const auto& levels : frontier) {
    RelationalRecoding recoding = ApplyFullDomainLevels(context, levels);
    double gcp = RecodingGcp(context, recoding);
    if (first || gcp < best_gcp) {
      first = false;
      best_gcp = gcp;
      best = std::move(recoding);
    }
  }
  return best;
}

}  // namespace secreta
