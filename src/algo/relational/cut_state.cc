#include "algo/relational/cut_state.h"

namespace secreta {

RelationalCutState::RelationalCutState(const RelationalContext& context,
                                       bool at_leaves)
    : context_(&context) {
  node_of_pos_.resize(context.num_qi());
  for (size_t qi = 0; qi < context.num_qi(); ++qi) {
    const Hierarchy& h = context.hierarchy(qi);
    node_of_pos_[qi].assign(h.num_leaves(), h.root());
    if (at_leaves) {
      for (NodeId leaf : h.leaves()) {
        node_of_pos_[qi][static_cast<size_t>(h.leaf_interval_begin(leaf))] =
            leaf;
      }
    }
  }
}

void RelationalCutState::RaiseTo(size_t qi, NodeId target) {
  const Hierarchy& h = context_->hierarchy(qi);
  int32_t begin = h.leaf_interval_begin(target);
  int32_t end = h.leaf_interval_end(target);
  for (int32_t pos = begin; pos < end; ++pos) {
    node_of_pos_[qi][static_cast<size_t>(pos)] = target;
  }
}

void RelationalCutState::SpecializeNode(size_t qi, NodeId node) {
  const Hierarchy& h = context_->hierarchy(qi);
  for (NodeId child : h.children(node)) {
    int32_t begin = h.leaf_interval_begin(child);
    int32_t end = h.leaf_interval_end(child);
    for (int32_t pos = begin; pos < end; ++pos) {
      node_of_pos_[qi][static_cast<size_t>(pos)] = child;
    }
  }
}

std::vector<NodeId> RelationalCutState::CutNodes(size_t qi) const {
  std::vector<NodeId> nodes;
  const auto& positions = node_of_pos_[qi];
  for (size_t pos = 0; pos < positions.size(); ++pos) {
    if (nodes.empty() || nodes.back() != positions[pos]) {
      nodes.push_back(positions[pos]);
    }
  }
  return nodes;
}

RelationalRecoding RelationalCutState::BuildRecoding() const {
  RelationalRecoding recoding(context_->num_records(), context_->num_qi());
  for (size_t r = 0; r < context_->num_records(); ++r) {
    for (size_t qi = 0; qi < context_->num_qi(); ++qi) {
      recoding.set(r, qi, NodeOfRow(r, qi));
    }
  }
  return recoding;
}

}  // namespace secreta
