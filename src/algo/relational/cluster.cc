#include "algo/relational/cluster.h"

#include <algorithm>

#include "common/random.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"

namespace secreta {

namespace {

// Incremental cluster head: per-QI LCA of all members so far.
struct ClusterHead {
  std::vector<NodeId> lca;       // per QI
  std::vector<size_t> members;   // record indices

  // NCP sum of the head after hypothetically adding `row` (lower = closer).
  double CostWith(const RelationalContext& context, size_t row) const {
    double cost = 0;
    for (size_t qi = 0; qi < lca.size(); ++qi) {
      const Hierarchy& h = context.hierarchy(qi);
      cost += NodeNcp(h, h.Lca(lca[qi], context.Leaf(row, qi)));
    }
    return cost;
  }

  void Add(const RelationalContext& context, size_t row) {
    for (size_t qi = 0; qi < lca.size(); ++qi) {
      const Hierarchy& h = context.hierarchy(qi);
      lca[qi] = h.Lca(lca[qi], context.Leaf(row, qi));
    }
    members.push_back(row);
  }
};

}  // namespace

Result<RelationalRecoding> ClusterAnonymizer::Anonymize(
    const RelationalContext& context, const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.Cluster");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  size_t n = context.num_records();
  size_t k = static_cast<size_t>(params.k);
  if (n < k) {
    return Status::FailedPrecondition(
        "dataset has fewer records than k; k-anonymity is unattainable");
  }
  size_t q = context.num_qi();
  Rng rng(params.seed);
  std::vector<size_t> remaining(n);
  for (size_t i = 0; i < n; ++i) remaining[i] = i;
  auto take = [&](size_t pos) {
    size_t row = remaining[pos];
    remaining[pos] = remaining.back();
    remaining.pop_back();
    return row;
  };

  std::vector<ClusterHead> clusters;
  while (remaining.size() >= k) {
    // Seed a new cluster with a random remaining record.
    size_t seed_pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(remaining.size() - 1)));
    ClusterHead head;
    head.lca.resize(q);
    size_t seed_row = take(seed_pos);
    for (size_t qi = 0; qi < q; ++qi) head.lca[qi] = context.Leaf(seed_row, qi);
    head.members.push_back(seed_row);
    // Greedily add the closest record until the cluster has k members,
    // scanning a bounded candidate pool for scalability.
    while (head.members.size() < k) {
      size_t pool = std::min(candidate_cap_, remaining.size());
      std::vector<size_t> candidates;
      if (pool == remaining.size()) {
        candidates.resize(pool);
        for (size_t i = 0; i < pool; ++i) candidates[i] = i;
      } else {
        candidates = rng.Sample(remaining.size(), pool);
      }
      size_t best_pos = candidates[0];
      double best_cost = head.CostWith(context, remaining[best_pos]);
      for (size_t ci = 1; ci < candidates.size(); ++ci) {
        double cost = head.CostWith(context, remaining[candidates[ci]]);
        if (cost < best_cost) {
          best_cost = cost;
          best_pos = candidates[ci];
        }
      }
      head.Add(context, take(best_pos));
    }
    clusters.push_back(std::move(head));
  }
  // Fewer than k records remain: each joins the cluster it dilates least.
  for (size_t row : remaining) {
    size_t best_cluster = 0;
    double best_cost = clusters[0].CostWith(context, row);
    for (size_t c = 1; c < clusters.size(); ++c) {
      double cost = clusters[c].CostWith(context, row);
      if (cost < best_cost) {
        best_cost = cost;
        best_cluster = c;
      }
    }
    clusters[best_cluster].Add(context, row);
  }
  RelationalRecoding recoding(n, q);
  for (const ClusterHead& cluster : clusters) {
    for (size_t row : cluster.members) {
      for (size_t qi = 0; qi < q; ++qi) {
        recoding.set(row, qi, cluster.lca[qi]);
      }
    }
  }
  return recoding;
}

}  // namespace secreta
