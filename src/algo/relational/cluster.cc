#include "algo/relational/cluster.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/random.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"

namespace secreta {

namespace {

// Flattened per-record context: record -> leaf per QI (skips the
// dataset-value + leaf-map double indirection in the O(clusters x k x pool)
// cost scans) and node -> NCP per hierarchy (NodeNcp is pure per node).
struct FlatContext {
  std::vector<std::vector<NodeId>> leaf_cols;  // qi -> per-record leaf
  std::vector<std::vector<double>> node_ncp;   // qi -> per-node NCP

  explicit FlatContext(const RelationalContext& context) {
    size_t q = context.num_qi();
    size_t n = context.num_records();
    leaf_cols.resize(q);
    node_ncp.resize(q);
    for (size_t qi = 0; qi < q; ++qi) {
      leaf_cols[qi].resize(n);
      for (size_t r = 0; r < n; ++r) leaf_cols[qi][r] = context.Leaf(r, qi);
      const Hierarchy& h = context.hierarchy(qi);
      node_ncp[qi].resize(h.num_nodes());
      for (size_t node = 0; node < h.num_nodes(); ++node) {
        node_ncp[qi][node] = NodeNcp(h, static_cast<NodeId>(node));
      }
    }
  }
};

// Incremental cluster head: per-QI LCA of all members so far.
struct ClusterHead {
  std::vector<NodeId> lca;       // per QI
  std::vector<size_t> members;   // record indices

  // NCP sum of the head after hypothetically adding `row` (lower = closer).
  double CostWith(const RelationalContext& context, const FlatContext& flat,
                  size_t row) const {
    double cost = 0;
    for (size_t qi = 0; qi < lca.size(); ++qi) {
      const Hierarchy& h = context.hierarchy(qi);
      NodeId joined = h.Lca(lca[qi], flat.leaf_cols[qi][row]);
      cost += flat.node_ncp[qi][static_cast<size_t>(joined)];
    }
    return cost;
  }

  void Add(const RelationalContext& context, const FlatContext& flat,
           size_t row) {
    for (size_t qi = 0; qi < lca.size(); ++qi) {
      const Hierarchy& h = context.hierarchy(qi);
      lca[qi] = h.Lca(lca[qi], flat.leaf_cols[qi][row]);
    }
    members.push_back(row);
  }
};

}  // namespace

Result<RelationalRecoding> ClusterAnonymizer::Anonymize(
    const RelationalContext& context, const AnonParams& params) {
  SECRETA_TRACE_SPAN("algo.Cluster");
  SECRETA_RETURN_IF_ERROR(params.Validate());
  size_t n = context.num_records();
  size_t k = static_cast<size_t>(params.k);
  if (n < k) {
    return Status::FailedPrecondition(
        "dataset has fewer records than k; k-anonymity is unattainable");
  }
  size_t q = context.num_qi();
  FlatContext flat(context);
  Rng rng(params.seed);
  std::vector<size_t> remaining(n);
  for (size_t i = 0; i < n; ++i) remaining[i] = i;
  auto take = [&](size_t pos) {
    size_t row = remaining[pos];
    remaining[pos] = remaining.back();
    remaining.pop_back();
    return row;
  };

  // Scratch for the parallel candidate scans: every candidate's cost is
  // computed independently, then a serial argmin applies the exact strict-<
  // first-minimum rule of the sequential loop — identical picks, identical
  // clusters, with or without a pool.
  std::vector<double> costs;
  std::vector<ClusterHead> clusters;
  while (remaining.size() >= k) {
    SECRETA_RETURN_IF_ERROR(CheckCancel("cluster seed"));
    // Seed a new cluster with a random remaining record.
    size_t seed_pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(remaining.size() - 1)));
    ClusterHead head;
    head.lca.resize(q);
    size_t seed_row = take(seed_pos);
    for (size_t qi = 0; qi < q; ++qi) {
      head.lca[qi] = flat.leaf_cols[qi][seed_row];
    }
    head.members.push_back(seed_row);
    // Greedily add the closest record until the cluster has k members,
    // scanning a bounded candidate pool for scalability.
    while (head.members.size() < k) {
      size_t pool = std::min(candidate_cap_, remaining.size());
      std::vector<size_t> candidates;
      if (pool == remaining.size()) {
        candidates.resize(pool);
        for (size_t i = 0; i < pool; ++i) candidates[i] = i;
      } else {
        candidates = rng.Sample(remaining.size(), pool);
      }
      costs.resize(candidates.size());
      ParallelFor(pool_, candidates.size(), [&](size_t ci) {
        costs[ci] = head.CostWith(context, flat, remaining[candidates[ci]]);
      });
      size_t best_pos = candidates[0];
      double best_cost = costs[0];
      for (size_t ci = 1; ci < candidates.size(); ++ci) {
        if (costs[ci] < best_cost) {
          best_cost = costs[ci];
          best_pos = candidates[ci];
        }
      }
      head.Add(context, flat, take(best_pos));
    }
    clusters.push_back(std::move(head));
  }
  // Fewer than k records remain: each joins the cluster it dilates least.
  for (size_t row : remaining) {
    costs.resize(clusters.size());
    ParallelFor(pool_, clusters.size(), [&](size_t c) {
      costs[c] = clusters[c].CostWith(context, flat, row);
    });
    size_t best_cluster = 0;
    double best_cost = costs[0];
    for (size_t c = 1; c < clusters.size(); ++c) {
      if (costs[c] < best_cost) {
        best_cost = costs[c];
        best_cluster = c;
      }
    }
    clusters[best_cluster].Add(context, flat, row);
  }
  RelationalRecoding recoding(n, q);
  for (const ClusterHead& cluster : clusters) {
    for (size_t row : cluster.members) {
      for (size_t qi = 0; qi < q; ++qi) {
        recoding.set(row, qi, cluster.lca[qi]);
      }
    }
  }
  return recoding;
}

}  // namespace secreta
