#include "algo/rt/rt_anonymizer.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "core/equivalence.h"
#include "metrics/information_loss.h"
#include "obs/trace.h"

namespace secreta {

const char* MergerKindToString(MergerKind kind) {
  switch (kind) {
    case MergerKind::kRmerger:
      return "Rmerger";
    case MergerKind::kTmerger:
      return "Tmerger";
    case MergerKind::kRTmerger:
      return "RTmerger";
  }
  return "?";
}

std::string RtAnonymizer::name() const {
  return relational_->name() + "+" + transaction_->name() + "/" +
         MergerKindToString(merger_);
}

namespace {

// A live cluster during the merging phase.
struct Cluster {
  std::vector<size_t> rows;
  std::vector<NodeId> nodes;        // per-QI generalized value
  std::vector<ItemId> item_union;   // sorted distinct items of the cluster
  TransactionRecoding txn;          // aligned with `rows`
  double ul = 0;                    // transaction utility loss of `txn`
  bool alive = true;
};

double JaccardDistance(const std::vector<ItemId>& a,
                       const std::vector<ItemId>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - common;
  return 1.0 - static_cast<double>(common) / static_cast<double>(uni);
}

double RelationalDistance(const RelationalContext& context,
                          const Cluster& a, const Cluster& b) {
  double total = 0;
  for (size_t qi = 0; qi < context.num_qi(); ++qi) {
    const Hierarchy& h = context.hierarchy(qi);
    total += NodeNcp(h, h.Lca(a.nodes[qi], b.nodes[qi]));
  }
  return total / static_cast<double>(context.num_qi());
}

std::vector<ItemId> ItemUnion(const Dataset& data,
                              const std::vector<size_t>& rows) {
  std::vector<ItemId> all;
  for (size_t row : rows) {
    const auto& txn = data.items(row).raw();
    all.insert(all.end(), txn.begin(), txn.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

}  // namespace

Result<RtResult> RtAnonymizer::Anonymize(const RelationalContext& rel_context,
                                         const TransactionContext& txn_context,
                                         const AnonParams& params,
                                         const CancellationToken* cancel) const {
  SECRETA_RETURN_IF_ERROR(params.Validate());
  const Dataset& data = rel_context.dataset();
  if (&data != &txn_context.dataset()) {
    return Status::InvalidArgument(
        "relational and transaction contexts must wrap the same dataset");
  }
  RtResult result;
  SECRETA_TRACE_SPAN("anonymize.rt");
  // One span per phase, rotated alongside the PhaseTimer (emplace closes the
  // previous span before opening the next).
  std::optional<ScopedSpan> phase_span;
  // Phase 1: relational clustering.
  SECRETA_RETURN_IF_ERROR(CheckCancelled(cancel, "rt relational phase"));
  result.phases.Begin("relational");
  phase_span.emplace(std::string_view("rt.relational"));
  SECRETA_ASSIGN_OR_RETURN(result.relational,
                           relational_->Anonymize(rel_context, params));
  EquivalenceClasses classes = GroupByRecoding(result.relational);
  result.initial_clusters = classes.num_groups();

  // Phase 2: per-cluster transaction anonymization.
  result.phases.Begin("transaction");
  phase_span.emplace(std::string_view("rt.transaction"));
  std::vector<Cluster> clusters(classes.num_groups());
  size_t num_items = data.item_dictionary().size();
  auto anonymize_cluster = [&](Cluster* cluster) -> Status {
    SECRETA_ASSIGN_OR_RETURN(
        cluster->txn,
        transaction_->AnonymizeSubset(txn_context, cluster->rows, params));
    std::vector<std::vector<ItemId>> original;
    original.reserve(cluster->rows.size());
    for (size_t row : cluster->rows) original.push_back(data.items(row).raw());
    cluster->ul = TransactionUl(cluster->txn, original, num_items);
    return Status::OK();
  };
  for (size_t c = 0; c < classes.num_groups(); ++c) {
    SECRETA_RETURN_IF_ERROR(CheckCancelled(cancel, "rt transaction phase"));
    Cluster& cluster = clusters[c];
    cluster.rows = classes.groups[c];
    cluster.nodes.resize(rel_context.num_qi());
    for (size_t qi = 0; qi < rel_context.num_qi(); ++qi) {
      cluster.nodes[qi] = result.relational.at(cluster.rows[0], qi);
    }
    cluster.item_union = ItemUnion(data, cluster.rows);
    SECRETA_RETURN_IF_ERROR(anonymize_cluster(&cluster));
  }

  // Phase 3: bounded merging. While some cluster's transaction loss exceeds
  // delta, merge it into the neighbour chosen by the bounding method.
  result.phases.Begin("merging");
  phase_span.emplace(std::string_view("rt.merging"));
  size_t alive = clusters.size();
  while (alive > 1) {
    SECRETA_RETURN_IF_ERROR(CheckCancelled(cancel, "rt merging phase"));
    // Worst offender first.
    size_t worst = SIZE_MAX;
    for (size_t c = 0; c < clusters.size(); ++c) {
      if (!clusters[c].alive || clusters[c].ul <= params.delta) continue;
      if (worst == SIZE_MAX || clusters[c].ul > clusters[worst].ul) worst = c;
    }
    if (worst == SIZE_MAX) break;
    // Partner by merger-specific distance.
    size_t partner = SIZE_MAX;
    double best_dist = 0;
    for (size_t c = 0; c < clusters.size(); ++c) {
      if (c == worst || !clusters[c].alive) continue;
      double dist = 0;
      switch (merger_) {
        case MergerKind::kRmerger:
          dist = RelationalDistance(rel_context, clusters[worst], clusters[c]);
          break;
        case MergerKind::kTmerger:
          dist = JaccardDistance(clusters[worst].item_union,
                                 clusters[c].item_union);
          break;
        case MergerKind::kRTmerger:
          dist = RelationalDistance(rel_context, clusters[worst], clusters[c]) +
                 JaccardDistance(clusters[worst].item_union,
                                 clusters[c].item_union);
          break;
      }
      if (partner == SIZE_MAX || dist < best_dist) {
        partner = c;
        best_dist = dist;
      }
    }
    Cluster& dst = clusters[worst];
    Cluster& src = clusters[partner];
    dst.rows.insert(dst.rows.end(), src.rows.begin(), src.rows.end());
    std::sort(dst.rows.begin(), dst.rows.end());
    for (size_t qi = 0; qi < rel_context.num_qi(); ++qi) {
      const Hierarchy& h = rel_context.hierarchy(qi);
      dst.nodes[qi] = h.Lca(dst.nodes[qi], src.nodes[qi]);
    }
    dst.item_union = ItemUnion(data, dst.rows);
    SECRETA_RETURN_IF_ERROR(anonymize_cluster(&dst));
    src.alive = false;
    src.rows.clear();
    src.txn = TransactionRecoding();
    --alive;
    ++result.merges;
  }
  result.phases.End();
  phase_span.reset();
  result.final_clusters = alive;

  // Assemble the global outputs.
  for (const Cluster& cluster : clusters) {
    if (!cluster.alive) continue;
    for (size_t row : cluster.rows) {
      for (size_t qi = 0; qi < rel_context.num_qi(); ++qi) {
        result.relational.set(row, qi, cluster.nodes[qi]);
      }
    }
  }
  // Combine per-cluster transaction recodings, sharing gens that cover the
  // same item set (keeps the per-cluster k^m guarantee valid globally).
  struct CoversHash {
    size_t operator()(const std::vector<ItemId>& v) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (ItemId x : v) {
        h ^= static_cast<size_t>(static_cast<uint32_t>(x));
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };
  std::unordered_map<std::vector<ItemId>, int32_t, CoversHash> gen_index;
  result.transaction.records.resize(data.num_records());
  for (const Cluster& cluster : clusters) {
    if (!cluster.alive) continue;
    std::vector<int32_t> remap(cluster.txn.gens.size());
    for (size_t g = 0; g < cluster.txn.gens.size(); ++g) {
      auto [it, inserted] = gen_index.emplace(
          cluster.txn.gens[g].covers,
          static_cast<int32_t>(result.transaction.gens.size()));
      if (inserted) result.transaction.gens.push_back(cluster.txn.gens[g]);
      remap[g] = it->second;
    }
    result.transaction.suppressed_occurrences +=
        cluster.txn.suppressed_occurrences;
    for (size_t j = 0; j < cluster.rows.size(); ++j) {
      std::vector<int32_t> rec;
      rec.reserve(cluster.txn.records[j].size());
      for (int32_t g : cluster.txn.records[j]) {
        rec.push_back(remap[static_cast<size_t>(g)]);
      }
      std::sort(rec.begin(), rec.end());
      rec.erase(std::unique(rec.begin(), rec.end()), rec.end());
      result.transaction.records[cluster.rows[j]] = std::move(rec);
    }
  }
  result.transaction.item_map.clear();
  return result;
}

}  // namespace secreta
