// (k, k^m)-anonymization of RT-datasets (Poulis et al. [9]): a relational
// algorithm builds clusters (equivalence classes), a transaction algorithm
// enforces k^m inside each cluster, and a bounding method merges clusters
// whose transaction-side utility loss exceeds delta — trading relational
// precision for transaction utility. Any of the 4 relational x 5 transaction
// algorithms can be combined (the paper's "20 different combinations"),
// bounded by one of Rmerger / Tmerger / RTmerger.

#ifndef SECRETA_ALGO_RT_RT_ANONYMIZER_H_
#define SECRETA_ALGO_RT_RT_ANONYMIZER_H_

#include <memory>

#include "common/cancellation.h"
#include "common/stopwatch.h"
#include "core/algorithm.h"

namespace secreta {

/// Cluster-merging strategy of the RT pipeline.
enum class MergerKind {
  kRmerger,   ///< merge the pair with the least relational (NCP) dilation
  kTmerger,   ///< merge the pair with the most similar item usage
  kRTmerger,  ///< balance both (normalized sum)
};

const char* MergerKindToString(MergerKind kind);

/// Output of an RT anonymization run.
struct RtResult {
  RelationalRecoding relational;
  /// Aligned with dataset record order; gens are shared across clusters when
  /// they cover identical item sets; item_map is empty (local recoding).
  TransactionRecoding transaction;
  PhaseTimer phases;
  size_t initial_clusters = 0;
  size_t final_clusters = 0;
  size_t merges = 0;
};

/// \brief The RT pipeline: relational algorithm + transaction algorithm +
/// bounding method.
class RtAnonymizer {
 public:
  RtAnonymizer(std::shared_ptr<RelationalAnonymizer> relational,
               std::shared_ptr<TransactionAnonymizer> transaction,
               MergerKind merger)
      : relational_(std::move(relational)),
        transaction_(std::move(transaction)),
        merger_(merger) {}

  std::string name() const;

  /// Runs the pipeline; the output satisfies (k, k^m)-anonymity. `cancel`
  /// (optional, non-owning) is polled at every phase boundary — before the
  /// relational phase, before each per-cluster transaction anonymization,
  /// and before each merge step — so a cancelled run stops within one phase
  /// boundary and returns Status::Cancelled.
  Result<RtResult> Anonymize(const RelationalContext& rel_context,
                             const TransactionContext& txn_context,
                             const AnonParams& params,
                             const CancellationToken* cancel = nullptr) const;

 private:
  std::shared_ptr<RelationalAnonymizer> relational_;
  std::shared_ptr<TransactionAnonymizer> transaction_;
  MergerKind merger_;
};

}  // namespace secreta

#endif  // SECRETA_ALGO_RT_RT_ANONYMIZER_H_
