// Attribute schema of a (possibly RT-) dataset: names, types and privacy
// roles. A dataset has any number of relational attributes and at most one
// transaction attribute (the model of [9] and of the SECRETA demo).

#ifndef SECRETA_DATA_SCHEMA_H_
#define SECRETA_DATA_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace secreta {

/// Physical type of an attribute.
enum class AttributeType {
  kCategorical,  ///< dictionary-encoded strings (e.g. Gender, Origin)
  kNumeric,      ///< dictionary-encoded distinct numbers (e.g. Age)
  kTransaction,  ///< set-valued item attribute (e.g. purchased items)
};

/// Privacy role of a relational attribute.
enum class AttributeRole {
  kQuasiIdentifier,  ///< part of the QI set; subject to generalization
  kInsensitive,      ///< published as-is, ignored by anonymizers
};

const char* AttributeTypeToString(AttributeType type);
const char* AttributeRoleToString(AttributeRole role);

/// One attribute's declaration.
struct AttributeSpec {
  std::string name;
  AttributeType type = AttributeType::kCategorical;
  AttributeRole role = AttributeRole::kQuasiIdentifier;
};

/// \brief Ordered attribute declarations for a dataset.
///
/// Relational attributes keep their declaration order; the optional
/// transaction attribute may appear at any position in a CSV file but is
/// stored separately in the Dataset.
class Schema {
 public:
  Schema() = default;

  /// Appends an attribute. Fails if the name duplicates an existing one or a
  /// second transaction attribute is declared.
  Status AddAttribute(const AttributeSpec& spec);

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeSpec& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<AttributeSpec>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, if any.
  std::optional<size_t> FindAttribute(const std::string& name) const;

  /// True if a transaction attribute is declared.
  bool has_transaction() const { return transaction_index_.has_value(); }
  /// Index (within attributes()) of the transaction attribute.
  std::optional<size_t> transaction_index() const { return transaction_index_; }

  /// Indices of relational attributes, in order.
  std::vector<size_t> RelationalIndices() const;
  /// Indices of relational quasi-identifier attributes, in order.
  std::vector<size_t> QuasiIdentifierIndices() const;

  /// Renames attribute `i`; fails on duplicate name.
  Status RenameAttribute(size_t i, const std::string& new_name);

  /// Removes attribute `i` from the declaration list.
  Status RemoveAttribute(size_t i);

 private:
  std::vector<AttributeSpec> attributes_;
  std::optional<size_t> transaction_index_;
};

}  // namespace secreta

#endif  // SECRETA_DATA_SCHEMA_H_
