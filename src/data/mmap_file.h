// RAII memory-mapped file views. This is the only translation unit in the
// repo allowed to call mmap/munmap directly (lint rule "raw-io"): everything
// else reads binary datasets through data/format.h readers, which hold one
// of these.
//
// Two mapping modes:
//   Open(path)                   maps the whole file (header/footer parsing,
//                                small files, tests).
//   OpenRange(path, off, len)    maps only [off, off+len) — the out-of-core
//                                path. Shard sections are mapped one at a
//                                time and unmapped on destruction, so peak
//                                resident memory is one shard window, not
//                                the whole dataset.
//
// Views are read-only (PROT_READ, MAP_PRIVATE) and move-only.

#ifndef SECRETA_DATA_MMAP_FILE_H_
#define SECRETA_DATA_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace secreta {

/// \brief Read-only memory-mapped view of (a range of) a file.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps the entire file.
  static Result<MmapFile> Open(const std::string& path);

  /// Maps only [offset, offset + length). The mapping is page-aligned
  /// internally; data() still points exactly at `offset`. Fails if the
  /// range does not lie within the file.
  static Result<MmapFile> OpenRange(const std::string& path, uint64_t offset,
                                    uint64_t length);

  /// Size of a file in bytes without mapping it.
  static Result<uint64_t> FileSize(const std::string& path);

  /// First byte of the requested range (nullptr for a default-constructed
  /// or moved-from view, or an empty range).
  const uint8_t* data() const { return data_; }
  /// Length of the requested range.
  size_t size() const { return size_; }
  /// Total size of the underlying file (== size() for Open()).
  uint64_t file_size() const { return file_size_; }

 private:
  void Reset() noexcept;

  void* map_ = nullptr;      // page-aligned mapping base
  size_t map_len_ = 0;       // mapped length
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  uint64_t file_size_ = 0;
};

}  // namespace secreta

#endif  // SECRETA_DATA_MMAP_FILE_H_
