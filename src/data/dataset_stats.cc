#include "data/dataset_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/string_util.h"

namespace secreta {

Histogram ValueHistogram(const Dataset& dataset, size_t col) {
  std::vector<size_t> counts(dataset.dictionary(col).size(), 0);
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    counts[static_cast<size_t>(dataset.value(r, col).raw())]++;
  }
  Histogram hist;
  for (ValueId id : dataset.SortedDomain(col)) {
    hist.push_back({dataset.dictionary(col).value(id),
                    counts[static_cast<size_t>(id)]});
  }
  return hist;
}

Result<Histogram> NumericHistogram(const Dataset& dataset, size_t col,
                                   size_t bins) {
  if (!dataset.is_numeric(col)) {
    return Status::InvalidArgument("column is not numeric");
  }
  if (bins == 0) return Status::InvalidArgument("bins must be positive");
  SECRETA_ASSIGN_OR_RETURN(NumericSummary summary, SummarizeNumeric(dataset, col));
  double lo = summary.min;
  double hi = summary.max;
  double width = (hi - lo) / static_cast<double>(bins);
  if (width <= 0) width = 1;
  Histogram hist(bins);
  for (size_t b = 0; b < bins; ++b) {
    double blo = lo + width * static_cast<double>(b);
    double bhi = blo + width;
    hist[b].label = StrFormat("[%g,%g)", blo, bhi);
  }
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    double v = dataset.numeric_value(col, dataset.value(r, col).raw()).raw();
    size_t b = static_cast<size_t>((v - lo) / width);
    if (b >= bins) b = bins - 1;  // max value lands in the last bucket
    hist[b].count++;
  }
  return hist;
}

Histogram ItemHistogram(const Dataset& dataset) {
  std::vector<size_t> counts(dataset.item_dictionary().size(), 0);
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    for (ItemId item : dataset.items(r).raw()) counts[static_cast<size_t>(item)]++;
  }
  Histogram hist;
  for (size_t i = 0; i < counts.size(); ++i) {
    hist.push_back({dataset.item_dictionary().value(static_cast<ItemId>(i)),
                    counts[i]});
  }
  return hist;
}

Result<NumericSummary> SummarizeNumeric(const Dataset& dataset, size_t col) {
  if (!dataset.is_numeric(col)) {
    return Status::InvalidArgument("column is not numeric");
  }
  if (dataset.num_records() == 0) {
    return Status::FailedPrecondition("dataset is empty");
  }
  NumericSummary out;
  out.min = out.max = dataset.numeric_value(col, dataset.value(0, col).raw()).raw();
  double sum = 0;
  double sum_sq = 0;
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    double v = dataset.numeric_value(col, dataset.value(r, col).raw()).raw();
    out.min = std::min(out.min, v);
    out.max = std::max(out.max, v);
    sum += v;
    sum_sq += v * v;
  }
  double n = static_cast<double>(dataset.num_records());
  out.mean = sum / n;
  double var = sum_sq / n - out.mean * out.mean;
  out.stddev = var > 0 ? std::sqrt(var) : 0;
  out.distinct = dataset.dictionary(col).size();
  return out;
}

std::vector<std::pair<std::string, double>> RelativeFrequencyDiff(
    const Histogram& reference, const Histogram& other) {
  std::unordered_map<std::string, size_t> other_counts;
  for (const auto& bucket : other) other_counts[bucket.label] = bucket.count;
  std::vector<std::pair<std::string, double>> out;
  out.reserve(reference.size());
  for (const auto& bucket : reference) {
    auto it = other_counts.find(bucket.label);
    double b = it == other_counts.end() ? 0.0 : static_cast<double>(it->second);
    double a = static_cast<double>(bucket.count);
    double denom = std::max(a, 1.0);
    out.emplace_back(bucket.label, std::fabs(a - b) / denom);
  }
  return out;
}

}  // namespace secreta
