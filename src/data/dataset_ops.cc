#include "data/dataset_ops.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"

namespace secreta {

namespace {

// Rebuilds a dataset from string rows under `schema`; the CSV layer already
// owns all the validation.
Result<Dataset> Rebuild(const Schema& schema, csv::CsvTable rows) {
  csv::CsvTable table;
  std::vector<std::string> header;
  for (const auto& spec : schema.attributes()) header.push_back(spec.name);
  table.push_back(std::move(header));
  for (auto& row : rows) table.push_back(std::move(row));
  return Dataset::FromCsv(table, schema);
}

std::vector<std::string> RowStrings(const Dataset& dataset, size_t row) {
  std::vector<std::string> out;
  size_t col = 0;
  for (size_t a = 0; a < dataset.schema().num_attributes(); ++a) {
    if (dataset.schema().attribute(a).type == AttributeType::kTransaction) {
      std::vector<std::string> items;
      for (ItemId item : dataset.items(row).raw()) {
        items.push_back(dataset.item_dictionary().value(item));
      }
      out.push_back(Join(items, " "));
    } else {
      out.push_back(std::string(dataset.value_string(row, col).raw()));
      ++col;
    }
  }
  return out;
}

}  // namespace

Result<Dataset> SelectRecords(const Dataset& dataset,
                              const std::vector<size_t>& rows) {
  csv::CsvTable out_rows;
  out_rows.reserve(rows.size());
  for (size_t row : rows) {
    if (row >= dataset.num_records()) {
      return Status::OutOfRange(StrFormat("record index %zu out of range", row));
    }
    out_rows.push_back(RowStrings(dataset, row));
  }
  return Rebuild(dataset.schema(), std::move(out_rows));
}

Result<Dataset> SampleRecords(const Dataset& dataset, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> rows = rng.Sample(dataset.num_records(), n);
  std::sort(rows.begin(), rows.end());  // keep original record order
  return SelectRecords(dataset, rows);
}

Result<Dataset> ProjectAttributes(const Dataset& dataset,
                                  const std::vector<std::string>& attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("projection needs at least one attribute");
  }
  Schema schema;
  std::vector<size_t> attr_indices;
  for (const std::string& name : attributes) {
    auto index = dataset.schema().FindAttribute(name);
    if (!index.has_value()) {
      return Status::NotFound("no attribute named " + name);
    }
    SECRETA_RETURN_IF_ERROR(
        schema.AddAttribute(dataset.schema().attribute(*index)));
    attr_indices.push_back(*index);
  }
  csv::CsvTable rows;
  rows.reserve(dataset.num_records());
  for (size_t r = 0; r < dataset.num_records(); ++r) {
    std::vector<std::string> full = RowStrings(dataset, r);
    std::vector<std::string> projected;
    projected.reserve(attr_indices.size());
    for (size_t a : attr_indices) projected.push_back(full[a]);
    rows.push_back(std::move(projected));
  }
  return Rebuild(schema, std::move(rows));
}

}  // namespace secreta
