#include "data/column_provider.h"

#include <utility>

#include "common/string_util.h"

namespace secreta {

namespace {

/// Shared decoded-dataset backend for memory, CSV and synthetic sources.
class MemoryColumnProvider : public ColumnProvider {
 public:
  MemoryColumnProvider(Dataset dataset, DataSource source)
      : dataset_(std::move(dataset)), source_(source) {
    for (size_t c = 0; c < dataset_.num_relational(); ++c) {
      dictionaries_.push_back(dataset_.dictionary(c));
    }
    item_supports_.assign(dataset_.item_dictionary().size(), 0);
    for (size_t r = 0; r < dataset_.num_records(); ++r) {
      for (ItemId item : dataset_.items(r).raw()) {
        ++item_supports_[static_cast<size_t>(item)];
      }
    }
    fingerprint_ = DatasetContentFingerprint(dataset_);
  }

  DataSource source() const override { return source_; }
  const Schema& schema() const override { return dataset_.schema(); }
  size_t num_records() const override { return dataset_.num_records(); }
  const std::vector<Dictionary>& dictionaries() const override {
    return dictionaries_;
  }
  const Dictionary& item_dictionary() const override {
    return dataset_.item_dictionary();
  }
  const std::vector<uint64_t>& item_supports() const override {
    return item_supports_;
  }
  uint64_t content_fingerprint() const override { return fingerprint_; }

  Result<Dataset> Materialize() const override { return dataset_; }

  Result<Dataset> MaterializeShard(const ShardPlan& plan,
                                   size_t shard) const override {
    if (plan.num_records() != dataset_.num_records()) {
      return Status::InvalidArgument(
          StrFormat("shard plan covers %zu records, dataset has %zu",
                    plan.num_records(), dataset_.num_records()));
    }
    if (shard >= plan.num_shards()) {
      return Status::OutOfRange(
          StrFormat("shard %zu of %zu", shard, plan.num_shards()));
    }
    const std::vector<uint32_t> rows = plan.Rows(shard);
    const size_t num_cols = dataset_.num_relational();
    Dataset::Parts parts;
    parts.schema = dataset_.schema();
    parts.dictionaries = dictionaries_;
    parts.numeric.resize(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      if (dataset_.is_numeric(c)) {
        auto& table = parts.numeric[c];
        table.reserve(dictionaries_[c].size());
        for (size_t id = 0; id < dictionaries_[c].size(); ++id) {
          table.push_back(
              dataset_.numeric_value(c, static_cast<ValueId>(id)).raw());
        }
      }
    }
    parts.num_records = rows.size();
    parts.cells.reserve(rows.size() * num_cols);
    for (uint32_t r : rows) {
      for (size_t c = 0; c < num_cols; ++c) {
        parts.cells.push_back(dataset_.value(r, c).raw());
      }
    }
    if (dataset_.has_transaction()) {
      parts.item_dictionary = dataset_.item_dictionary();
      parts.transactions.reserve(rows.size());
      for (uint32_t r : rows) parts.transactions.push_back(dataset_.items(r).raw());
    }
    return Dataset::FromParts(std::move(parts));
  }

 private:
  Dataset dataset_;
  DataSource source_;
  std::vector<Dictionary> dictionaries_;
  std::vector<uint64_t> item_supports_;
  uint64_t fingerprint_ = 0;
};

/// SBC1-backed provider; shard materialization maps one section window.
class BinaryColumnProvider : public ColumnProvider {
 public:
  explicit BinaryColumnProvider(BinaryDatasetReader reader)
      : reader_(std::move(reader)) {}

  DataSource source() const override { return DataSource::kBinary; }
  const Schema& schema() const override { return reader_.schema(); }
  size_t num_records() const override { return reader_.num_records(); }
  const std::vector<Dictionary>& dictionaries() const override {
    return reader_.dictionaries();
  }
  const Dictionary& item_dictionary() const override {
    return reader_.item_dictionary();
  }
  const std::vector<uint64_t>& item_supports() const override {
    return reader_.item_supports();
  }
  uint64_t content_fingerprint() const override {
    return reader_.content_fingerprint();
  }

  Result<Dataset> Materialize() const override { return reader_.ReadAll(); }

  Result<Dataset> MaterializeShard(const ShardPlan& plan,
                                   size_t shard) const override {
    const ShardPlan native = reader_.plan();
    if (plan.kind() != native.kind() ||
        plan.num_records() != native.num_records() ||
        plan.num_shards() != native.num_shards() ||
        plan.salt() != native.salt()) {
      return Status::FailedPrecondition(StrFormat(
          "binary dataset was converted with %zu %s shards; re-run "
          "`convert` to change the partition",
          native.num_shards(), ShardKindName(native.kind())));
    }
    return reader_.ReadShard(shard);
  }

  std::optional<ShardPlan> native_plan() const override {
    return reader_.plan();
  }

 private:
  BinaryDatasetReader reader_;
};

}  // namespace

const char* DataSourceName(DataSource source) {
  switch (source) {
    case DataSource::kMemory:
      return "memory";
    case DataSource::kCsv:
      return "csv";
    case DataSource::kBinary:
      return "binary";
    case DataSource::kSynthetic:
      return "synthetic";
  }
  return "unknown";
}

std::unique_ptr<ColumnProvider> MakeMemoryProvider(Dataset dataset,
                                                   DataSource source) {
  return std::make_unique<MemoryColumnProvider>(std::move(dataset), source);
}

Result<std::unique_ptr<ColumnProvider>> OpenCsvProvider(
    const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(Dataset dataset, Dataset::LoadFile(path));
  return std::unique_ptr<ColumnProvider>(new MemoryColumnProvider(
      std::move(dataset), DataSource::kCsv));
}

Result<std::unique_ptr<ColumnProvider>> OpenBinaryProvider(
    const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(BinaryDatasetReader reader,
                           BinaryDatasetReader::Open(path));
  return std::unique_ptr<ColumnProvider>(
      new BinaryColumnProvider(std::move(reader)));
}

Result<std::unique_ptr<ColumnProvider>> OpenColumnProvider(
    const std::string& path) {
  if (LooksLikeBinaryDataset(path)) return OpenBinaryProvider(path);
  return OpenCsvProvider(path);
}

}  // namespace secreta
