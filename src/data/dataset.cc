#include "data/dataset.h"

#include <algorithm>

#include "common/string_util.h"

namespace secreta {

namespace {

// A transaction cell is one whose trimmed content contains internal spaces.
bool LooksTransactional(std::string_view cell) {
  std::string_view t = Trim(cell);
  return t.find(' ') != std::string_view::npos;
}

}  // namespace

Result<Dataset> Dataset::FromCsv(const csv::CsvTable& table, const Schema& schema) {
  if (table.empty()) return Status::InvalidArgument("CSV table is empty");
  const auto& header = table[0];
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "header has %zu columns but schema declares %zu attributes",
        header.size(), schema.num_attributes()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (std::string(Trim(header[i])) != schema.attribute(i).name) {
      return Status::InvalidArgument(
          "header column '" + header[i] + "' does not match schema attribute '" +
          schema.attribute(i).name + "'");
    }
  }
  Dataset ds;
  ds.schema_ = schema;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (schema.attribute(i).type != AttributeType::kTransaction) {
      ds.columns_.emplace_back();
      ds.column_attr_.push_back(i);
    }
  }
  for (size_t r = 1; r < table.size(); ++r) {
    SECRETA_RETURN_IF_ERROR(ds.AddRow(table[r]));
  }
  return ds;
}

Result<Dataset> Dataset::FromCsvInferred(const csv::CsvTable& table) {
  if (table.empty()) return Status::InvalidArgument("CSV table is empty");
  const auto& header = table[0];
  size_t num_cols = header.size();
  Schema schema;
  std::optional<size_t> txn_col;
  for (size_t c = 0; c < num_cols; ++c) {
    bool any_transactional = false;
    bool all_numeric = true;
    bool any_data = false;
    for (size_t r = 1; r < table.size(); ++r) {
      if (c >= table[r].size()) continue;
      std::string_view cell = Trim(table[r][c]);
      if (cell.empty()) continue;
      any_data = true;
      if (LooksTransactional(cell)) any_transactional = true;
      if (!LooksNumeric(cell)) all_numeric = false;
    }
    AttributeSpec spec;
    spec.name = std::string(Trim(header[c]));
    if (any_transactional && !txn_col.has_value()) {
      spec.type = AttributeType::kTransaction;
      txn_col = c;
    } else if (any_data && all_numeric) {
      spec.type = AttributeType::kNumeric;
    } else {
      spec.type = AttributeType::kCategorical;
    }
    SECRETA_RETURN_IF_ERROR(schema.AddAttribute(spec));
  }
  return FromCsv(table, schema);
}

Result<Dataset> Dataset::LoadFile(const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(csv::CsvTable table, csv::ReadCsvFile(path));
  return FromCsvInferred(table);
}

Result<Dataset> Dataset::FromParts(Parts parts) {
  Dataset ds;
  ds.schema_ = std::move(parts.schema);
  size_t relational = 0;
  for (size_t i = 0; i < ds.schema_.num_attributes(); ++i) {
    if (ds.schema_.attribute(i).type != AttributeType::kTransaction) {
      ds.column_attr_.push_back(i);
      ++relational;
    }
  }
  if (parts.dictionaries.size() != relational) {
    return Status::InvalidArgument(
        StrFormat("FromParts: %zu dictionaries for %zu relational attributes",
                  parts.dictionaries.size(), relational));
  }
  if (parts.numeric.size() != relational) {
    return Status::InvalidArgument(
        StrFormat("FromParts: %zu numeric tables for %zu relational attributes",
                  parts.numeric.size(), relational));
  }
  if (parts.cells.size() != parts.num_records * relational) {
    return Status::InvalidArgument(
        StrFormat("FromParts: %zu cells, expected %zu records x %zu columns",
                  parts.cells.size(), parts.num_records, relational));
  }
  ds.columns_.resize(relational);
  for (size_t c = 0; c < relational; ++c) {
    const bool numeric =
        ds.schema_.attribute(ds.column_attr_[c]).type == AttributeType::kNumeric;
    if (numeric &&
        parts.numeric[c].size() != parts.dictionaries[c].size()) {
      return Status::InvalidArgument(StrFormat(
          "FromParts: numeric table of column %zu has %zu entries for a "
          "%zu-entry dictionary",
          c, parts.numeric[c].size(), parts.dictionaries[c].size()));
    }
    if (!numeric && !parts.numeric[c].empty()) {
      return Status::InvalidArgument(StrFormat(
          "FromParts: categorical column %zu carries a numeric table", c));
    }
    ds.columns_[c].dict = std::move(parts.dictionaries[c]);
    ds.columns_[c].numeric = std::move(parts.numeric[c]);
  }
  for (size_t i = 0; i < parts.cells.size(); ++i) {
    const size_t c = i % relational;
    const ValueId id = parts.cells[i];
    if (id < 0 || static_cast<size_t>(id) >= ds.columns_[c].dict.size()) {
      return Status::OutOfRange(StrFormat(
          "FromParts: cell %zu holds id %d outside dictionary of column %zu",
          i, id, c));
    }
  }
  ds.cells_ = std::move(parts.cells);
  if (ds.schema_.has_transaction()) {
    if (parts.transactions.size() != parts.num_records) {
      return Status::InvalidArgument(StrFormat(
          "FromParts: %zu transactions for %zu records",
          parts.transactions.size(), parts.num_records));
    }
    for (const auto& txn : parts.transactions) {
      for (size_t i = 0; i < txn.size(); ++i) {
        if (txn[i] < 0 ||
            static_cast<size_t>(txn[i]) >= parts.item_dictionary.size()) {
          return Status::OutOfRange("FromParts: item id outside dictionary");
        }
        if (i > 0 && txn[i] <= txn[i - 1]) {
          return Status::InvalidArgument(
              "FromParts: transaction items must be sorted and unique");
        }
      }
    }
  } else if (!parts.transactions.empty()) {
    return Status::InvalidArgument(
        "FromParts: transactions supplied without a transaction attribute");
  }
  ds.item_dict_ = std::move(parts.item_dictionary);
  ds.transactions_ = std::move(parts.transactions);
  ds.num_records_ = parts.num_records;
  return ds;
}

namespace {

size_t DictionaryBytes(const Dictionary& dict) {
  // values_ strings + the index entries; close enough for a budget baseline.
  size_t bytes = 0;
  for (const std::string& v : dict.values()) {
    bytes += sizeof(std::string) + v.capacity();
    bytes += v.size() + 2 * sizeof(void*) + sizeof(ValueId);  // hash node
  }
  return bytes;
}

}  // namespace

size_t Dataset::MemoryBytes() const {
  size_t bytes = cells_.capacity() * sizeof(ValueId);
  for (const Column& col : columns_) {
    bytes += DictionaryBytes(col.dict);
    bytes += col.numeric.capacity() * sizeof(double);
  }
  bytes += DictionaryBytes(item_dict_);
  bytes += transactions_.capacity() * sizeof(std::vector<ItemId>);
  for (const auto& txn : transactions_) {
    bytes += txn.capacity() * sizeof(ItemId);
  }
  return bytes;
}

Result<Dataset> Dataset::LoadFile(const std::string& path, const Schema& schema) {
  SECRETA_ASSIGN_OR_RETURN(csv::CsvTable table, csv::ReadCsvFile(path));
  return FromCsv(table, schema);
}

csv::CsvTable Dataset::ToCsv() const {
  csv::CsvTable table;
  std::vector<std::string> header;
  for (const auto& spec : schema_.attributes()) header.push_back(spec.name);
  table.push_back(std::move(header));
  for (size_t r = 0; r < num_records_; ++r) {
    table.push_back(CsvRow(r));
  }
  return table;
}

std::vector<std::string> Dataset::CsvRow(size_t row) const {
  std::vector<std::string> cells;
  cells.reserve(schema_.num_attributes());
  size_t col = 0;
  for (size_t a = 0; a < schema_.num_attributes(); ++a) {
    if (schema_.attribute(a).type == AttributeType::kTransaction) {
      std::vector<std::string> items;
      for (ItemId it : transactions_[row]) items.push_back(item_dict_.value(it));
      cells.push_back(Join(items, " "));
    } else {
      cells.push_back(std::string(value_string(row, col).raw()));
      ++col;
    }
  }
  return cells;
}

Result<size_t> Dataset::ColumnOf(size_t attr_index) const {
  for (size_t c = 0; c < column_attr_.size(); ++c) {
    if (column_attr_[c] == attr_index) return c;
  }
  return Status::NotFound(StrFormat(
      "attribute %zu is not a relational column", attr_index));
}

Result<size_t> Dataset::ColumnByName(const std::string& name) const {
  auto attr = schema_.FindAttribute(name);
  if (!attr.has_value()) return Status::NotFound("no attribute named " + name);
  return ColumnOf(*attr);
}

Status Dataset::EncodeCell(size_t col, const std::string& text, ValueId* out_id) {
  std::string cell(Trim(text));
  Column& column = columns_[col];
  bool is_num =
      schema_.attribute(column_attr_[col]).type == AttributeType::kNumeric;
  if (is_num && !column.dict.Contains(cell)) {
    auto parsed = ParseDouble(cell);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          "non-numeric value '" + cell + "' in numeric attribute '" +
          schema_.attribute(column_attr_[col]).name + "'");
    }
    ValueId id = column.dict.GetOrAdd(cell);
    column.numeric.resize(column.dict.size());
    column.numeric[static_cast<size_t>(id)] = parsed.value();
    *out_id = id;
    return Status::OK();
  }
  *out_id = column.dict.GetOrAdd(cell);
  return Status::OK();
}

Status Dataset::EncodeTransaction(const std::string& text,
                                  std::vector<ItemId>* out) {
  out->clear();
  for (const std::string& token : SplitWhitespace(text)) {
    out->push_back(item_dict_.GetOrAdd(token));
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return Status::OK();
}

Status Dataset::SetCell(size_t row, size_t attr_index, const std::string& text) {
  if (row >= num_records_) return Status::OutOfRange("row out of range");
  if (attr_index >= schema_.num_attributes()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (schema_.attribute(attr_index).type == AttributeType::kTransaction) {
    return EncodeTransaction(text, &transactions_[row]);
  }
  SECRETA_ASSIGN_OR_RETURN(size_t col, ColumnOf(attr_index));
  ValueId id = kInvalidValue;
  SECRETA_RETURN_IF_ERROR(EncodeCell(col, text, &id));
  cells_[row * columns_.size() + col] = id;
  return Status::OK();
}

Status Dataset::AddRow(const std::vector<std::string>& fields) {
  if (fields.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "row has %zu fields, schema has %zu attributes", fields.size(),
        schema_.num_attributes()));
  }
  std::vector<ValueId> encoded(columns_.size(), kInvalidValue);
  std::vector<ItemId> items;
  size_t col = 0;
  for (size_t a = 0; a < schema_.num_attributes(); ++a) {
    if (schema_.attribute(a).type == AttributeType::kTransaction) {
      SECRETA_RETURN_IF_ERROR(EncodeTransaction(fields[a], &items));
    } else {
      SECRETA_RETURN_IF_ERROR(EncodeCell(col, fields[a], &encoded[col]));
      ++col;
    }
  }
  cells_.insert(cells_.end(), encoded.begin(), encoded.end());
  transactions_.push_back(std::move(items));
  ++num_records_;
  return Status::OK();
}

Status Dataset::DeleteRow(size_t row) {
  if (row >= num_records_) return Status::OutOfRange("row out of range");
  size_t stride = columns_.size();
  cells_.erase(cells_.begin() + static_cast<ptrdiff_t>(row * stride),
               cells_.begin() + static_cast<ptrdiff_t>((row + 1) * stride));
  transactions_.erase(transactions_.begin() + static_cast<ptrdiff_t>(row));
  --num_records_;
  return Status::OK();
}

Status Dataset::RenameAttribute(size_t attr_index, const std::string& new_name) {
  return schema_.RenameAttribute(attr_index, new_name);
}

Status Dataset::RemoveAttribute(size_t attr_index) {
  if (attr_index >= schema_.num_attributes()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (schema_.attribute(attr_index).type == AttributeType::kTransaction) {
    for (auto& txn : transactions_) txn.clear();
    item_dict_ = Dictionary();
    return schema_.RemoveAttribute(attr_index);
  }
  SECRETA_ASSIGN_OR_RETURN(size_t col, ColumnOf(attr_index));
  size_t stride = columns_.size();
  std::vector<ValueId> next;
  next.reserve(num_records_ * (stride - 1));
  for (size_t r = 0; r < num_records_; ++r) {
    for (size_t c = 0; c < stride; ++c) {
      if (c != col) next.push_back(cells_[r * stride + c]);
    }
  }
  cells_ = std::move(next);
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(col));
  column_attr_.erase(column_attr_.begin() + static_cast<ptrdiff_t>(col));
  SECRETA_RETURN_IF_ERROR(schema_.RemoveAttribute(attr_index));
  for (auto& a : column_attr_) {
    if (a > attr_index) --a;
  }
  return Status::OK();
}

Status Dataset::AddAttribute(const AttributeSpec& spec, const std::string& fill) {
  if (spec.type == AttributeType::kTransaction) {
    return Status::InvalidArgument(
        "adding a transaction attribute after load is not supported");
  }
  SECRETA_RETURN_IF_ERROR(schema_.AddAttribute(spec));
  columns_.emplace_back();
  column_attr_.push_back(schema_.num_attributes() - 1);
  size_t col = columns_.size() - 1;
  ValueId id = kInvalidValue;
  SECRETA_RETURN_IF_ERROR(EncodeCell(col, fill, &id));
  size_t old_stride = columns_.size() - 1;
  std::vector<ValueId> next;
  next.reserve(num_records_ * columns_.size());
  for (size_t r = 0; r < num_records_; ++r) {
    for (size_t c = 0; c < old_stride; ++c) next.push_back(cells_[r * old_stride + c]);
    next.push_back(id);
  }
  cells_ = std::move(next);
  return Status::OK();
}

std::vector<ValueId> Dataset::SortedDomain(size_t col) const {
  const Column& column = columns_[col];
  std::vector<ValueId> ids(column.dict.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<ValueId>(i);
  if (is_numeric(col)) {
    std::sort(ids.begin(), ids.end(), [&](ValueId a, ValueId b) {
      return column.numeric[static_cast<size_t>(a)] <
             column.numeric[static_cast<size_t>(b)];
    });
  } else {
    std::sort(ids.begin(), ids.end(), [&](ValueId a, ValueId b) {
      return column.dict.value(a) < column.dict.value(b);
    });
  }
  return ids;
}

Status Dataset::SetTransactions(std::vector<std::vector<ItemId>> transactions) {
  if (transactions.size() != num_records_) {
    return Status::InvalidArgument("transaction count != record count");
  }
  transactions_ = std::move(transactions);
  return Status::OK();
}

}  // namespace secreta
