// Dataset-level operations used by benches and the frontend: row sampling
// (scaling experiments down), row selection, and attribute projection.

#ifndef SECRETA_DATA_DATASET_OPS_H_
#define SECRETA_DATA_DATASET_OPS_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace secreta {

/// New dataset containing exactly the records at `rows` (in the given order).
Result<Dataset> SelectRecords(const Dataset& dataset,
                              const std::vector<size_t>& rows);

/// Uniform sample of `n` records without replacement (n clamped to the
/// dataset size). Deterministic for a seed.
Result<Dataset> SampleRecords(const Dataset& dataset, size_t n, uint64_t seed);

/// New dataset keeping only the attributes named in `attributes` (order
/// preserved as listed).
Result<Dataset> ProjectAttributes(const Dataset& dataset,
                                  const std::vector<std::string>& attributes);

}  // namespace secreta

#endif  // SECRETA_DATA_DATASET_OPS_H_
