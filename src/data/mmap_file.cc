#include "data/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace secreta {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::IOError(StrFormat("%s failed for '%s': %s", op, path.c_str(),
                                   std::strerror(errno)));
}

}  // namespace

MmapFile::~MmapFile() { Reset(); }

void MmapFile::Reset() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
  }
  map_ = nullptr;
  map_len_ = 0;
  data_ = nullptr;
  size_ = 0;
  file_size_ = 0;
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : map_(other.map_),
      map_len_(other.map_len_),
      data_(other.data_),
      size_(other.size_),
      file_size_(other.file_size_) {
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.data_ = nullptr;
  other.size_ = 0;
  other.file_size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, size_t{0});
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, size_t{0});
    file_size_ = std::exchange(other.file_size_, uint64_t{0});
  }
  return *this;
}

Result<uint64_t> MmapFile::FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  if (!S_ISREG(st.st_mode)) {
    return Status::InvalidArgument(
        StrFormat("'%s' is not a regular file", path.c_str()));
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  return OpenRange(path, 0, size);
}

Result<MmapFile> MmapFile::OpenRange(const std::string& path, uint64_t offset,
                                     uint64_t length) {
  SECRETA_ASSIGN_OR_RETURN(uint64_t file_size, FileSize(path));
  if (offset > file_size || length > file_size - offset) {
    return Status::OutOfRange(StrFormat(
        "mmap range [%llu, %llu) exceeds '%s' (%llu bytes)",
        static_cast<unsigned long long>(offset),
        static_cast<unsigned long long>(offset + length), path.c_str(),
        static_cast<unsigned long long>(file_size)));
  }
  MmapFile view;
  view.file_size_ = file_size;
  if (length == 0) return view;

  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);

  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t aligned = offset - (offset % page);
  const uint64_t slack = offset - aligned;
  void* map = ::mmap(nullptr, static_cast<size_t>(length + slack), PROT_READ,
                     MAP_PRIVATE, fd, static_cast<off_t>(aligned));
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) return Errno("mmap", path);

  view.map_ = map;
  view.map_len_ = static_cast<size_t>(length + slack);
  view.data_ = static_cast<const uint8_t*>(map) + slack;
  view.size_ = static_cast<size_t>(length);
  return view;
}

}  // namespace secreta
