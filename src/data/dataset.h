// The dataset model: dictionary-encoded relational columns plus an optional
// transaction (set-valued) column. This is the backend of the paper's Dataset
// Editor: loading, cell edits, row/attribute add/delete, and CSV export.

#ifndef SECRETA_DATA_DATASET_H_
#define SECRETA_DATA_DATASET_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/sensitive.h"
#include "common/status.h"
#include "csv/csv.h"
#include "data/dictionary.h"
#include "data/schema.h"

namespace secreta {

/// \brief An in-memory dataset with relational and/or transaction attributes.
///
/// Relational cells are stored as dense `ValueId`s into per-attribute
/// dictionaries; numeric attributes additionally keep the parsed double for
/// each dictionary entry. The transaction attribute stores a sorted,
/// de-duplicated `ItemId` set per record. In CSV files the transaction cell
/// holds space-separated items ("flu cough fever").
class Dataset {
 public:
  Dataset() = default;

  /// Builds a dataset from parsed CSV rows. The first row must be a header
  /// whose names match `schema` (same order).
  static Result<Dataset> FromCsv(const csv::CsvTable& table, const Schema& schema);

  /// Builds a dataset from parsed CSV rows, inferring the schema: a column
  /// with any multi-item cell (space-separated) is the transaction attribute
  /// (at most one allowed), an all-numeric column is numeric, anything else
  /// is categorical. All relational attributes default to quasi-identifiers.
  static Result<Dataset> FromCsvInferred(const csv::CsvTable& table);

  /// Loads a CSV file (convenience: ReadCsvFile + FromCsvInferred/FromCsv).
  static Result<Dataset> LoadFile(const std::string& path);
  static Result<Dataset> LoadFile(const std::string& path, const Schema& schema);

  /// Pre-encoded building blocks, as produced by data/column_provider.h
  /// backends (binary readers, shard materialization). Dictionaries may be
  /// global supersets of the values actually referenced — a shard keeps the
  /// whole dataset's dictionaries so ids (and therefore algorithm decisions)
  /// are identical across every partitioning.
  struct Parts {
    Schema schema;
    /// One per relational attribute, schema order.
    std::vector<Dictionary> dictionaries;
    /// Parallel to `dictionaries`; one double per dictionary id for numeric
    /// attributes, empty for categorical ones.
    std::vector<std::vector<double>> numeric;
    /// Row-major ValueIds, stride = number of relational attributes.
    std::vector<ValueId> cells;
    Dictionary item_dictionary;
    /// One sorted unique ItemId set per record when the schema has a
    /// transaction attribute; empty otherwise.
    std::vector<std::vector<ItemId>> transactions;
    size_t num_records = 0;
  };

  /// Assembles a dataset from pre-encoded parts, validating id ranges,
  /// strides and numeric-table alignment.
  static Result<Dataset> FromParts(Parts parts);

  /// Approximate heap footprint of the decoded representation (cells,
  /// transactions, dictionaries, numeric tables). This is the in-memory
  /// baseline that out-of-core runs are gated against (bench/shard_bench.cc).
  size_t MemoryBytes() const;

  /// Serializes to CSV rows (header + data), inverse of FromCsv. Tainted at
  /// the annotation level only (the table type is shared with the CSV
  /// layer): callers are raw-side storage/export code by construction.
  SECRETA_SENSITIVE csv::CsvTable ToCsv() const;

  /// One data row of ToCsv() (schema order, transaction cells space-joined)
  /// without materializing the whole table — the out-of-core serialization
  /// path streams records through this instead of ToCsv().
  SECRETA_SENSITIVE std::vector<std::string> CsvRow(size_t row) const;

  // -- shape ----------------------------------------------------------------

  const Schema& schema() const { return schema_; }
  size_t num_records() const { return num_records_; }
  size_t num_relational() const { return columns_.size(); }
  bool has_transaction() const { return schema_.has_transaction(); }

  /// Relational column index for schema attribute `attr_index`; error if the
  /// attribute is the transaction attribute.
  Result<size_t> ColumnOf(size_t attr_index) const;
  /// Relational column index for the attribute named `name`.
  Result<size_t> ColumnByName(const std::string& name) const;
  /// Schema attribute index of relational column `col`.
  size_t AttributeOfColumn(size_t col) const { return column_attr_[col]; }

  // -- relational access ----------------------------------------------------
  //
  // Cell accessors return privacy-tainted values (common/sensitive.h): a
  // record's cells are the raw microdata the published guarantee protects.
  // Engine-side modules unwrap with .raw(); everything else receives only
  // declassified (recoded/published) values — enforced by the compiler (no
  // implicit conversions) plus tools/lint/check_privacy_flow.py.

  /// Dictionary-encoded value of record `row` in relational column `col`.
  SECRETA_SENSITIVE Sensitive<ValueId> value(size_t row, size_t col) const {
    return Sensitive<ValueId>(cells_[row * columns_.size() + col]);
  }
  /// String form of value(row, col); the view borrows dictionary storage.
  SECRETA_SENSITIVE Sensitive<std::string_view> value_string(
      size_t row, size_t col) const {
    return Sensitive<std::string_view>(
        columns_[col].dict.value(cells_[row * columns_.size() + col]));
  }
  /// Dictionary of relational column `col`.
  const Dictionary& dictionary(size_t col) const { return columns_[col].dict; }
  /// True if relational column `col` is numeric.
  bool is_numeric(size_t col) const {
    return schema_.attribute(column_attr_[col]).type == AttributeType::kNumeric;
  }
  /// Parsed numeric value of dictionary entry `id` in numeric column `col`.
  SECRETA_SENSITIVE Sensitive<double> numeric_value(size_t col,
                                                    ValueId id) const {
    return Sensitive<double>(columns_[col].numeric[static_cast<size_t>(id)]);
  }

  // -- transaction access ---------------------------------------------------

  /// Item dictionary shared by all transaction cells.
  const Dictionary& item_dictionary() const { return item_dict_; }
  /// Sorted unique items of record `row` (empty if no transaction attribute).
  SECRETA_SENSITIVE SensitiveSpan<ItemId> items(size_t row) const {
    return SensitiveSpan<ItemId>(transactions_[row]);
  }
  /// All transactions (size == num_records when has_transaction()).
  SECRETA_SENSITIVE SensitiveSpan<std::vector<ItemId>> transactions() const {
    return SensitiveSpan<std::vector<ItemId>>(transactions_);
  }

  // -- Dataset Editor operations ---------------------------------------------

  /// Replaces the cell of `row` / schema attribute `attr_index` with the value
  /// parsed from `text` (for the transaction attribute: space-separated items).
  Status SetCell(size_t row, size_t attr_index, const std::string& text);

  /// Appends a record given one string per schema attribute.
  Status AddRow(const std::vector<std::string>& fields);

  /// Deletes record `row`.
  Status DeleteRow(size_t row);

  /// Renames schema attribute `attr_index`.
  Status RenameAttribute(size_t attr_index, const std::string& new_name);

  /// Removes schema attribute `attr_index` and its data.
  Status RemoveAttribute(size_t attr_index);

  /// Appends a relational attribute, filling existing records with `fill`.
  Status AddAttribute(const AttributeSpec& spec, const std::string& fill);

  // -- helpers used by anonymizers -------------------------------------------

  /// Ids of numeric column `col` sorted ascending by numeric value; for
  /// categorical columns, ids sorted lexicographically by string.
  std::vector<ValueId> SortedDomain(size_t col) const;

  /// Replaces the stored transactions (used by RT pipelines when rebuilding
  /// outputs). `transactions` must have num_records() entries.
  Status SetTransactions(std::vector<std::vector<ItemId>> transactions);

 private:
  struct Column {
    Dictionary dict;
    std::vector<double> numeric;  // aligned with dict ids; numeric columns only
  };

  // Appends the encoded value of `text` for column `col` into `out_id`.
  Status EncodeCell(size_t col, const std::string& text, ValueId* out_id);
  Status EncodeTransaction(const std::string& text, std::vector<ItemId>* out);

  Schema schema_;
  std::vector<Column> columns_;     // relational columns in schema order
  std::vector<size_t> column_attr_; // schema attribute index per column
  std::vector<ValueId> cells_;      // row-major, stride = columns_.size()
  Dictionary item_dict_;
  std::vector<std::vector<ItemId>> transactions_;  // one per record
  size_t num_records_ = 0;
};

}  // namespace secreta

#endif  // SECRETA_DATA_DATASET_H_
