// Backend-neutral access to dataset columns. A ColumnProvider answers the
// questions a run needs before touching cell data (schema, global
// dictionaries, item supports, content fingerprint) and materializes either
// the whole dataset or one shard of it as a Dataset. The three backends are
// interchangeable — the DataSource::{Binary, CSV, Synthetic} split:
//
//   MemoryColumnProvider   wraps an already-decoded Dataset (synthetic
//                          generators, editor state). Materialization slices
//                          rows while keeping the global dictionaries.
//   CsvColumnProvider      parses the CSV once at open, then behaves like a
//                          memory provider (CSV has no random access).
//   BinaryColumnProvider   wraps an SBC1 BinaryDatasetReader; shards are
//                          decoded from per-shard mmap windows, so whole-
//                          dataset residency is never required.
//
// The invariant that makes backends interchangeable: for the same logical
// dataset, every provider reports identical dictionaries (same ids), and
// MaterializeShard(plan, s) yields byte-identical Datasets. Sharded
// anonymization is therefore reproducible no matter where the bytes live —
// asserted in tests/shard_test.cc.

#ifndef SECRETA_DATA_COLUMN_PROVIDER_H_
#define SECRETA_DATA_COLUMN_PROVIDER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/format.h"
#include "data/shard.h"

namespace secreta {

/// Where a provider's bytes come from.
enum class DataSource { kMemory, kCsv, kBinary, kSynthetic };

const char* DataSourceName(DataSource source);

/// \brief Uniform column access over in-memory, CSV and binary backends.
class ColumnProvider {
 public:
  virtual ~ColumnProvider() = default;

  virtual DataSource source() const = 0;
  virtual const Schema& schema() const = 0;
  virtual size_t num_records() const = 0;

  /// Global relational dictionaries, schema order. Shard materializations
  /// reference exactly these ids.
  virtual const std::vector<Dictionary>& dictionaries() const = 0;
  virtual const Dictionary& item_dictionary() const = 0;

  /// Global per-item record support, aligned with item_dictionary() ids
  /// (drives support-ordered item hierarchies without a full scan).
  virtual const std::vector<uint64_t>& item_supports() const = 0;

  /// Logical content fingerprint (== DatasetContentFingerprint of
  /// Materialize()'s result); pins caches and checkpoints across backends.
  virtual uint64_t content_fingerprint() const = 0;

  /// Decodes the entire dataset (defeats out-of-core on purpose). The
  /// result is raw microdata; its cell accessors re-taint on read
  /// (common/sensitive.h), and the annotation keeps whole-Dataset flows
  /// visible to the privacy-flow lint.
  SECRETA_SENSITIVE virtual Result<Dataset> Materialize() const = 0;

  /// Decodes shard `s` of `plan` with global dictionaries. Byte-identical
  /// across backends for the same logical dataset and plan. Binary
  /// providers only serve the plan the file was written with (native_plan())
  /// — one shard is one mmap window, not a re-partition.
  SECRETA_SENSITIVE virtual Result<Dataset> MaterializeShard(
      const ShardPlan& plan, size_t shard) const = 0;

  /// The partition physically baked into the backing store, if any. Memory
  /// and CSV backends slice any plan; binary files serve exactly one.
  virtual std::optional<ShardPlan> native_plan() const { return std::nullopt; }
};

/// Wraps a decoded dataset. `source` lets synthetic generators label their
/// provenance (DataSource::kSynthetic) without a separate class.
std::unique_ptr<ColumnProvider> MakeMemoryProvider(
    Dataset dataset, DataSource source = DataSource::kMemory);

/// Parses a CSV file (schema inferred) into a memory-backed provider.
Result<std::unique_ptr<ColumnProvider>> OpenCsvProvider(
    const std::string& path);

/// Opens an SBC1 file for shard-at-a-time access.
Result<std::unique_ptr<ColumnProvider>> OpenBinaryProvider(
    const std::string& path);

/// Sniffs the file magic and opens the matching backend (SBC1 → binary,
/// anything else → CSV).
Result<std::unique_ptr<ColumnProvider>> OpenColumnProvider(
    const std::string& path);

}  // namespace secreta

#endif  // SECRETA_DATA_COLUMN_PROVIDER_H_
