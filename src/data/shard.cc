#include "data/shard.h"

#include <algorithm>

#include "common/string_util.h"

namespace secreta {

namespace {

// Fixed-increment SplitMix64 finalizer (Steele, Lea, Flood). The full
// avalanche keeps hash shards balanced even for sequential row ids.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Range boundary: first row of shard `s` in an N-record S-shard plan.
size_t RangeStart(size_t s, size_t num_records, size_t num_shards) {
  return s * num_records / num_shards;
}

}  // namespace

const char* ShardKindName(ShardKind kind) {
  switch (kind) {
    case ShardKind::kRange:
      return "range";
    case ShardKind::kHash:
      return "hash";
  }
  return "unknown";
}

Result<ShardKind> ParseShardKind(std::string_view name) {
  if (name == "range") return ShardKind::kRange;
  if (name == "hash") return ShardKind::kHash;
  return Status::InvalidArgument("unknown shard kind: " + std::string(name) +
                                 " (expected range|hash)");
}

ShardPlan ShardPlan::Make(ShardKind kind, size_t num_records,
                          size_t num_shards, uint64_t salt) {
  ShardPlan plan;
  plan.kind_ = kind;
  plan.num_records_ = num_records;
  plan.num_shards_ =
      std::max<size_t>(1, std::min(num_shards, std::max<size_t>(1, num_records)));
  plan.salt_ = salt;
  return plan;
}

size_t ShardPlan::ShardOf(size_t row) const {
  if (kind_ == ShardKind::kHash) {
    return static_cast<size_t>(Mix64(static_cast<uint64_t>(row) ^ salt_) %
                               num_shards_);
  }
  // Invert RangeStart: the shard whose block contains `row`.
  size_t s = row * num_shards_ / num_records_;
  while (s + 1 < num_shards_ && RangeStart(s + 1, num_records_, num_shards_) <= row) {
    ++s;
  }
  while (s > 0 && RangeStart(s, num_records_, num_shards_) > row) {
    --s;
  }
  return s;
}

std::vector<uint32_t> ShardPlan::Rows(size_t shard) const {
  std::vector<uint32_t> rows;
  if (kind_ == ShardKind::kRange) {
    size_t begin = RangeStart(shard, num_records_, num_shards_);
    size_t end = RangeStart(shard + 1, num_records_, num_shards_);
    rows.reserve(end - begin);
    for (size_t r = begin; r < end; ++r) rows.push_back(static_cast<uint32_t>(r));
    return rows;
  }
  rows.reserve(num_records_ / num_shards_ + 16);
  for (size_t r = 0; r < num_records_; ++r) {
    if (ShardOf(r) == shard) rows.push_back(static_cast<uint32_t>(r));
  }
  return rows;
}

size_t ShardPlan::ShardSize(size_t shard) const {
  if (kind_ == ShardKind::kRange) {
    return RangeStart(shard + 1, num_records_, num_shards_) -
           RangeStart(shard, num_records_, num_shards_);
  }
  size_t count = 0;
  for (size_t r = 0; r < num_records_; ++r) count += (ShardOf(r) == shard);
  return count;
}

uint64_t ShardPlan::Fingerprint() const {
  uint64_t fp = Fnv1a64("secreta.shard_plan");
  fp = HashCombine(fp, static_cast<uint64_t>(kind_));
  fp = HashCombine(fp, static_cast<uint64_t>(num_records_));
  fp = HashCombine(fp, static_cast<uint64_t>(num_shards_));
  fp = HashCombine(fp, salt_);
  return fp;
}

uint64_t ShardSeed(uint64_t run_seed, size_t shard) {
  if (shard == 0) return run_seed;
  return Mix64(HashCombine(run_seed, static_cast<uint64_t>(shard)));
}

}  // namespace secreta
