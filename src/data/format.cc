#include "data/format.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>

#include "common/bytes.h"
#include "common/string_util.h"
#include "data/mmap_file.h"

namespace secreta {

namespace {

// Same FNV-1a 64 as common/string_util, restated incrementally so the file
// fingerprint can fold section buffers without concatenating them.
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvFold(uint64_t hash, std::string_view chunk) {
  for (char c : chunk) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t HashView(const uint8_t* data, size_t size) {
  return Fnv1a64(
      std::string_view(reinterpret_cast<const char*>(data), size));
}

void PutString(std::string* out, const std::string& s) {
  bytes::PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// On-disk attribute type/role codes are pinned independently of the C++
// enum order (docs/FORMATS.md "Schema block").
uint8_t TypeCode(AttributeType type) {
  switch (type) {
    case AttributeType::kCategorical:
      return 0;
    case AttributeType::kNumeric:
      return 1;
    case AttributeType::kTransaction:
      return 2;
  }
  return 0xff;
}

uint8_t RoleCode(AttributeRole role) {
  return role == AttributeRole::kInsensitive ? 1 : 0;
}

/// Bounds-checked little-endian cursor over a byte span. Every Read*
/// returns a Status so truncated or corrupt files surface as errors, never
/// as out-of-bounds reads.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  Status Need(size_t n) {
    if (remaining() < n) {
      return Status::InvalidArgument(
          StrFormat("truncated SBC1 data: need %zu bytes at offset %zu, "
                    "have %zu",
                    n, pos_, remaining()));
    }
    return Status::OK();
  }

  Status ReadU8(uint8_t* out) {
    SECRETA_RETURN_IF_ERROR(Need(1));
    *out = data_[pos_++];
    return Status::OK();
  }
  Status ReadU16(uint16_t* out) {
    SECRETA_RETURN_IF_ERROR(Need(2));
    *out = bytes::GetU16(data_ + pos_);
    pos_ += 2;
    return Status::OK();
  }
  Status ReadU32(uint32_t* out) {
    SECRETA_RETURN_IF_ERROR(Need(4));
    *out = bytes::GetU32(data_ + pos_);
    pos_ += 4;
    return Status::OK();
  }
  Status ReadU64(uint64_t* out) {
    SECRETA_RETURN_IF_ERROR(Need(8));
    *out = bytes::GetU64(data_ + pos_);
    pos_ += 8;
    return Status::OK();
  }
  Status ReadString(std::string* out) {
    uint32_t len = 0;
    SECRETA_RETURN_IF_ERROR(ReadU32(&len));
    SECRETA_RETURN_IF_ERROR(Need(len));
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }
  Status Skip(size_t n) {
    SECRETA_RETURN_IF_ERROR(Need(n));
    pos_ += n;
    return Status::OK();
  }
  /// Raw pointer to `n` bytes, advancing the cursor.
  Status ReadSpan(size_t n, const uint8_t** out) {
    SECRETA_RETURN_IF_ERROR(Need(n));
    *out = data_ + pos_;
    pos_ += n;
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("corrupt SBC1 file: " + what);
}

void AppendPosting(std::string* out, const RoaringBitmap& bm) {
  std::string payload;
  bm.AppendTo(&payload);
  bytes::PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Status ReadPosting(ByteReader* r, RoaringBitmap* out) {
  uint32_t len = 0;
  SECRETA_RETURN_IF_ERROR(r->ReadU32(&len));
  const uint8_t* span = nullptr;
  SECRETA_RETURN_IF_ERROR(r->ReadSpan(len, &span));
  size_t consumed = 0;
  if (!RoaringBitmap::FromBytes(span, len, out, &consumed) ||
      consumed != len) {
    return Corrupt("malformed posting-list bitmap");
  }
  return Status::OK();
}

}  // namespace

uint64_t DatasetContentFingerprint(const Dataset& dataset) {
  // The CSV serialization covers the schema header, every relational cell,
  // and every transaction — exactly the content a run depends on — and is
  // already deterministic (ToCsv preserves record and column order).
  return Fnv1a64(csv::WriteCsv(dataset.ToCsv()));
}

bool LooksLikeBinaryDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, 4);
  if (in.gcount() != 4) return false;
  return bytes::GetU32(reinterpret_cast<const uint8_t*>(magic)) == kSbcMagic;
}

// -- writer -------------------------------------------------------------------

Status WriteBinaryDataset(const Dataset& dataset, const std::string& path,
                          const BinaryWriteOptions& options) {
  const Schema& schema = dataset.schema();
  const size_t num_cols = dataset.num_relational();
  const bool has_txn = dataset.has_transaction();
  const ShardPlan plan = ShardPlan::Make(
      options.shard_kind, dataset.num_records(), options.num_shards,
      options.salt);

  uint16_t flags = 0;
  if (has_txn) flags |= kSbcFlagTransaction;
  if (options.write_postings) flags |= kSbcFlagPostings;

  // Preamble: header + schema block + dictionary pages.
  std::string preamble;
  bytes::PutU32(&preamble, kSbcMagic);
  bytes::PutU16(&preamble, kSbcVersion);
  bytes::PutU16(&preamble, flags);
  bytes::PutU64(&preamble, dataset.num_records());
  bytes::PutU32(&preamble, static_cast<uint32_t>(schema.num_attributes()));
  bytes::PutU32(&preamble, static_cast<uint32_t>(plan.num_shards()));
  preamble.push_back(static_cast<char>(plan.kind() == ShardKind::kHash));
  preamble.append(7, '\0');  // reserved
  bytes::PutU64(&preamble, plan.salt());

  bytes::PutU32(&preamble, static_cast<uint32_t>(schema.num_attributes()));
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    const AttributeSpec& spec = schema.attribute(i);
    PutString(&preamble, spec.name);
    preamble.push_back(static_cast<char>(TypeCode(spec.type)));
    preamble.push_back(static_cast<char>(RoleCode(spec.role)));
    bytes::PutU16(&preamble, 0);  // reserved
  }

  for (size_t c = 0; c < num_cols; ++c) {
    const Dictionary& dict = dataset.dictionary(c);
    bytes::PutU32(&preamble, static_cast<uint32_t>(dict.size()));
    for (const std::string& v : dict.values()) PutString(&preamble, v);
    if (dataset.is_numeric(c)) {
      for (size_t id = 0; id < dict.size(); ++id) {
        bytes::PutF64(&preamble,
                      dataset.numeric_value(c, static_cast<ValueId>(id)).raw());
      }
    }
  }
  if (has_txn) {
    const Dictionary& items = dataset.item_dictionary();
    bytes::PutU32(&preamble, static_cast<uint32_t>(items.size()));
    for (const std::string& v : items.values()) PutString(&preamble, v);
    std::vector<uint64_t> supports(items.size(), 0);
    for (size_t r = 0; r < dataset.num_records(); ++r) {
      for (ItemId item : dataset.items(r).raw()) {
        ++supports[static_cast<size_t>(item)];
      }
    }
    for (uint64_t s : supports) bytes::PutU64(&preamble, s);
  }

  const std::string tmp_path = path + ".tmp";
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + tmp_path + "' for write");

  uint64_t offset = 0;
  uint64_t file_hash = kFnvBasis;
  auto emit = [&](const std::string& buffer) {
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    file_hash = FnvFold(file_hash, buffer);
    offset += buffer.size();
  };
  emit(preamble);

  std::vector<uint64_t> shard_offsets;
  std::vector<uint64_t> shard_lengths;
  std::vector<uint64_t> shard_hashes;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    const std::vector<uint32_t> rows = plan.Rows(s);
    std::string section;
    bytes::PutU32(&section, kSbcShardMagic);
    bytes::PutU32(&section, static_cast<uint32_t>(s));
    bytes::PutU64(&section, rows.size());
    for (uint32_t r : rows) bytes::PutU32(&section, r);
    // Cells, column-major within the shard.
    for (size_t c = 0; c < num_cols; ++c) {
      for (uint32_t r : rows) {
        bytes::PutI32(&section, dataset.value(r, c).raw());
      }
    }
    if (has_txn) {
      uint64_t total = 0;
      bytes::PutU64(&section, 0);
      for (uint32_t r : rows) {
        total += dataset.items(r).raw().size();
        bytes::PutU64(&section, total);
      }
      for (uint32_t r : rows) {
        for (ItemId item : dataset.items(r).raw()) bytes::PutI32(&section, item);
      }
    }
    if (options.write_postings) {
      // Per-value bitmaps over shard-local positions. Positions ascend as we
      // scan the (ascending) row list, so FromSorted's contract holds.
      for (size_t c = 0; c < num_cols; ++c) {
        const size_t domain = dataset.dictionary(c).size();
        std::vector<std::vector<uint32_t>> per_value(domain);
        for (size_t pos = 0; pos < rows.size(); ++pos) {
          per_value[static_cast<size_t>(dataset.value(rows[pos], c).raw())]
              .push_back(static_cast<uint32_t>(pos));
        }
        bytes::PutU32(&section, static_cast<uint32_t>(domain));
        for (const auto& positions : per_value) {
          AppendPosting(&section, RoaringBitmap::FromSorted(positions));
        }
      }
      if (has_txn) {
        const size_t domain = dataset.item_dictionary().size();
        std::vector<std::vector<uint32_t>> per_item(domain);
        for (size_t pos = 0; pos < rows.size(); ++pos) {
          for (ItemId item : dataset.items(rows[pos]).raw()) {
            per_item[static_cast<size_t>(item)].push_back(
                static_cast<uint32_t>(pos));
          }
        }
        bytes::PutU32(&section, static_cast<uint32_t>(domain));
        for (const auto& positions : per_item) {
          AppendPosting(&section, RoaringBitmap::FromSorted(positions));
        }
      }
    }
    shard_offsets.push_back(offset);
    shard_lengths.push_back(section.size());
    shard_hashes.push_back(Fnv1a64(section));
    emit(section);
  }

  const uint64_t footer_offset = offset;
  std::string footer;
  bytes::PutU32(&footer, kSbcFooterMagic);
  bytes::PutU32(&footer, static_cast<uint32_t>(plan.num_shards()));
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    bytes::PutU64(&footer, shard_offsets[s]);
    bytes::PutU64(&footer, shard_lengths[s]);
    bytes::PutU64(&footer, shard_hashes[s]);
  }
  bytes::PutU64(&footer, DatasetContentFingerprint(dataset));
  bytes::PutU64(&footer, file_hash);  // physical hash of [0, footer_offset)
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));

  std::string trailer;
  bytes::PutU64(&trailer, footer_offset);
  bytes::PutU32(&trailer, static_cast<uint32_t>(footer.size()));
  bytes::PutU32(&trailer, kSbcEndMagic);
  out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out.flush();
  if (!out) return Status::IOError("write failed for '" + tmp_path + "'");
  out.close();

  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename '" + tmp_path + "' -> '" + path + "' failed");
  }
  return Status::OK();
}

// -- reader -------------------------------------------------------------------

Result<BinaryDatasetReader> BinaryDatasetReader::Open(const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  if (file.size() < kSbcHeaderBytes + kSbcTrailerBytes) {
    return Corrupt("file smaller than header + trailer");
  }

  BinaryDatasetReader reader;
  reader.path_ = path;

  ByteReader header(file.data(), file.size());
  uint32_t magic = 0;
  uint16_t version = 0;
  uint32_t num_attributes = 0;
  uint32_t num_shards = 0;
  uint8_t shard_kind = 0;
  uint64_t num_records = 0;
  SECRETA_RETURN_IF_ERROR(header.ReadU32(&magic));
  if (magic != kSbcMagic) {
    return Status::InvalidArgument(
        StrFormat("not an SBC1 file: bad magic 0x%08x", magic));
  }
  SECRETA_RETURN_IF_ERROR(header.ReadU16(&version));
  if (version == 0 || version > kSbcVersion) {
    return Status::Unimplemented(
        StrFormat("unsupported SBC1 version %u (reader supports <= %u)",
                  version, kSbcVersion));
  }
  SECRETA_RETURN_IF_ERROR(header.ReadU16(&reader.flags_));
  if ((reader.flags_ & ~(kSbcFlagTransaction | kSbcFlagPostings)) != 0) {
    return Status::Unimplemented(
        StrFormat("unknown SBC1 flags 0x%04x", reader.flags_));
  }
  SECRETA_RETURN_IF_ERROR(header.ReadU64(&num_records));
  SECRETA_RETURN_IF_ERROR(header.ReadU32(&num_attributes));
  SECRETA_RETURN_IF_ERROR(header.ReadU32(&num_shards));
  SECRETA_RETURN_IF_ERROR(header.ReadU8(&shard_kind));
  SECRETA_RETURN_IF_ERROR(header.Skip(7));  // reserved
  SECRETA_RETURN_IF_ERROR(header.ReadU64(&reader.salt_));
  if (shard_kind > 1) return Corrupt("unknown shard kind");
  reader.shard_kind_ = shard_kind == 1 ? ShardKind::kHash : ShardKind::kRange;
  reader.num_records_ = static_cast<size_t>(num_records);
  if (num_shards == 0) return Corrupt("zero shards");

  // Trailer → footer.
  ByteReader trailer(file.data() + file.size() - kSbcTrailerBytes,
                     kSbcTrailerBytes);
  uint64_t footer_offset = 0;
  uint32_t footer_length = 0;
  uint32_t end_magic = 0;
  SECRETA_RETURN_IF_ERROR(trailer.ReadU64(&footer_offset));
  SECRETA_RETURN_IF_ERROR(trailer.ReadU32(&footer_length));
  SECRETA_RETURN_IF_ERROR(trailer.ReadU32(&end_magic));
  if (end_magic != kSbcEndMagic) return Corrupt("bad end magic");
  if (footer_offset < kSbcHeaderBytes ||
      footer_offset + footer_length + kSbcTrailerBytes != file.size()) {
    return Corrupt("footer range does not line up with the file size");
  }
  reader.footer_offset_ = footer_offset;

  ByteReader footer(file.data() + footer_offset, footer_length);
  uint32_t footer_magic = 0;
  uint32_t footer_shards = 0;
  SECRETA_RETURN_IF_ERROR(footer.ReadU32(&footer_magic));
  if (footer_magic != kSbcFooterMagic) return Corrupt("bad footer magic");
  SECRETA_RETURN_IF_ERROR(footer.ReadU32(&footer_shards));
  if (footer_shards != num_shards) {
    return Corrupt("footer shard count disagrees with header");
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    uint64_t off = 0;
    uint64_t len = 0;
    uint64_t hash = 0;
    SECRETA_RETURN_IF_ERROR(footer.ReadU64(&off));
    SECRETA_RETURN_IF_ERROR(footer.ReadU64(&len));
    SECRETA_RETURN_IF_ERROR(footer.ReadU64(&hash));
    if (off < kSbcHeaderBytes || off + len > footer_offset) {
      return Corrupt(StrFormat("shard %u section out of bounds", s));
    }
    reader.shard_offsets_.push_back(off);
    reader.shard_lengths_.push_back(len);
    reader.shard_fingerprints_.push_back(hash);
  }
  SECRETA_RETURN_IF_ERROR(footer.ReadU64(&reader.content_fingerprint_));
  SECRETA_RETURN_IF_ERROR(footer.ReadU64(&reader.file_fingerprint_));

  // Schema block.
  ByteReader body(file.data() + kSbcHeaderBytes,
                  footer_offset - kSbcHeaderBytes);
  uint32_t attr_count = 0;
  SECRETA_RETURN_IF_ERROR(body.ReadU32(&attr_count));
  if (attr_count != num_attributes) {
    return Corrupt("schema block attribute count disagrees with header");
  }
  for (uint32_t i = 0; i < attr_count; ++i) {
    AttributeSpec spec;
    uint8_t type = 0;
    uint8_t role = 0;
    uint16_t reserved = 0;
    SECRETA_RETURN_IF_ERROR(body.ReadString(&spec.name));
    SECRETA_RETURN_IF_ERROR(body.ReadU8(&type));
    SECRETA_RETURN_IF_ERROR(body.ReadU8(&role));
    SECRETA_RETURN_IF_ERROR(body.ReadU16(&reserved));
    if (type > 2 || role > 1) return Corrupt("unknown attribute type/role");
    spec.type = type == 0 ? AttributeType::kCategorical
                          : (type == 1 ? AttributeType::kNumeric
                                       : AttributeType::kTransaction);
    spec.role = role == 1 ? AttributeRole::kInsensitive
                          : AttributeRole::kQuasiIdentifier;
    SECRETA_RETURN_IF_ERROR(reader.schema_.AddAttribute(spec));
  }
  const bool has_txn = (reader.flags_ & kSbcFlagTransaction) != 0;
  if (has_txn != reader.schema_.has_transaction()) {
    return Corrupt("transaction flag disagrees with schema block");
  }

  // Dictionary pages.
  for (size_t attr : reader.schema_.RelationalIndices()) {
    uint32_t count = 0;
    SECRETA_RETURN_IF_ERROR(body.ReadU32(&count));
    Dictionary dict;
    for (uint32_t v = 0; v < count; ++v) {
      std::string value;
      SECRETA_RETURN_IF_ERROR(body.ReadString(&value));
      if (dict.GetOrAdd(value) != static_cast<ValueId>(v)) {
        return Corrupt("duplicate dictionary entry");
      }
    }
    std::vector<double> numeric;
    if (reader.schema_.attribute(attr).type == AttributeType::kNumeric) {
      numeric.reserve(count);
      for (uint32_t v = 0; v < count; ++v) {
        uint64_t raw = 0;
        SECRETA_RETURN_IF_ERROR(body.ReadU64(&raw));
        double d = 0;
        static_assert(sizeof raw == sizeof d, "f64 width");
        std::memcpy(&d, &raw, sizeof d);
        numeric.push_back(d);
      }
    }
    reader.dictionaries_.push_back(std::move(dict));
    reader.numeric_.push_back(std::move(numeric));
  }
  if (has_txn) {
    uint32_t count = 0;
    SECRETA_RETURN_IF_ERROR(body.ReadU32(&count));
    for (uint32_t v = 0; v < count; ++v) {
      std::string value;
      SECRETA_RETURN_IF_ERROR(body.ReadString(&value));
      if (reader.item_dictionary_.GetOrAdd(value) != static_cast<ItemId>(v)) {
        return Corrupt("duplicate item dictionary entry");
      }
    }
    reader.item_supports_.reserve(count);
    for (uint32_t v = 0; v < count; ++v) {
      uint64_t support = 0;
      SECRETA_RETURN_IF_ERROR(body.ReadU64(&support));
      reader.item_supports_.push_back(support);
    }
  }
  // The mapping is dropped here; shard reads map their own windows.
  return reader;
}

Result<Dataset> BinaryDatasetReader::DecodeShard(
    size_t shard, const uint8_t* data, size_t size,
    std::vector<uint32_t>* rows_out) const {
  ByteReader r(data, size);
  uint32_t magic = 0;
  uint32_t index = 0;
  uint64_t row_count = 0;
  SECRETA_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kSbcShardMagic) return Corrupt("bad shard section magic");
  SECRETA_RETURN_IF_ERROR(r.ReadU32(&index));
  if (index != shard) return Corrupt("shard section index mismatch");
  SECRETA_RETURN_IF_ERROR(r.ReadU64(&row_count));
  if (row_count > num_records_) return Corrupt("shard larger than dataset");

  std::vector<uint32_t> rows;
  rows.reserve(static_cast<size_t>(row_count));
  int64_t prev = -1;
  for (uint64_t i = 0; i < row_count; ++i) {
    uint32_t row = 0;
    SECRETA_RETURN_IF_ERROR(r.ReadU32(&row));
    if (static_cast<int64_t>(row) <= prev || row >= num_records_) {
      return Corrupt("shard row ids not ascending in range");
    }
    prev = row;
    rows.push_back(row);
  }

  const size_t num_cols = dictionaries_.size();
  Dataset::Parts parts;
  parts.schema = schema_;
  parts.dictionaries = dictionaries_;
  parts.numeric = numeric_;
  parts.num_records = static_cast<size_t>(row_count);
  parts.cells.resize(static_cast<size_t>(row_count) * num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    const uint8_t* span = nullptr;
    SECRETA_RETURN_IF_ERROR(r.ReadSpan(4 * static_cast<size_t>(row_count), &span));
    for (uint64_t i = 0; i < row_count; ++i) {
      parts.cells[static_cast<size_t>(i) * num_cols + c] =
          bytes::GetI32(span + 4 * i);
    }
  }
  if ((flags_ & kSbcFlagTransaction) != 0) {
    parts.item_dictionary = item_dictionary_;
    std::vector<uint64_t> offsets;
    offsets.reserve(static_cast<size_t>(row_count) + 1);
    uint64_t prev_off = 0;
    for (uint64_t i = 0; i <= row_count; ++i) {
      uint64_t off = 0;
      SECRETA_RETURN_IF_ERROR(r.ReadU64(&off));
      if (i == 0 ? off != 0 : off < prev_off) {
        return Corrupt("transaction offsets not ascending from zero");
      }
      prev_off = off;
      offsets.push_back(off);
    }
    const uint8_t* span = nullptr;
    SECRETA_RETURN_IF_ERROR(
        r.ReadSpan(4 * static_cast<size_t>(offsets.back()), &span));
    parts.transactions.resize(static_cast<size_t>(row_count));
    for (uint64_t i = 0; i < row_count; ++i) {
      auto& txn = parts.transactions[static_cast<size_t>(i)];
      txn.reserve(static_cast<size_t>(offsets[i + 1] - offsets[i]));
      for (uint64_t j = offsets[i]; j < offsets[i + 1]; ++j) {
        txn.push_back(bytes::GetI32(span + 4 * j));
      }
    }
  }
  // Posting lists (if any) sit after the CSR block; ReadShardPostings
  // decodes them, materialization does not need them.
  if (rows_out != nullptr) *rows_out = std::move(rows);
  return Dataset::FromParts(std::move(parts));
}

Result<Dataset> BinaryDatasetReader::ReadShard(size_t shard) const {
  if (shard >= num_shards()) {
    return Status::OutOfRange(StrFormat("shard %zu of %zu", shard, num_shards()));
  }
  SECRETA_ASSIGN_OR_RETURN(
      MmapFile view, MmapFile::OpenRange(path_, shard_offsets_[shard],
                                         shard_lengths_[shard]));
  if (HashView(view.data(), view.size()) != shard_fingerprints_[shard]) {
    return Corrupt(StrFormat("shard %zu fingerprint mismatch", shard));
  }
  return DecodeShard(shard, view.data(), view.size(), nullptr);
}

Result<std::vector<uint32_t>> BinaryDatasetReader::ReadShardRows(
    size_t shard) const {
  if (shard >= num_shards()) {
    return Status::OutOfRange(StrFormat("shard %zu of %zu", shard, num_shards()));
  }
  SECRETA_ASSIGN_OR_RETURN(
      MmapFile view, MmapFile::OpenRange(path_, shard_offsets_[shard],
                                         shard_lengths_[shard]));
  ByteReader r(view.data(), view.size());
  uint32_t magic = 0;
  uint32_t index = 0;
  uint64_t row_count = 0;
  SECRETA_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kSbcShardMagic) return Corrupt("bad shard section magic");
  SECRETA_RETURN_IF_ERROR(r.ReadU32(&index));
  SECRETA_RETURN_IF_ERROR(r.ReadU64(&row_count));
  if (row_count > num_records_) return Corrupt("shard larger than dataset");
  std::vector<uint32_t> rows;
  rows.reserve(static_cast<size_t>(row_count));
  for (uint64_t i = 0; i < row_count; ++i) {
    uint32_t row = 0;
    SECRETA_RETURN_IF_ERROR(r.ReadU32(&row));
    rows.push_back(row);
  }
  return rows;
}

Result<BinaryDatasetReader::ShardPostings>
BinaryDatasetReader::ReadShardPostings(size_t shard) const {
  if (!has_postings()) {
    return Status::FailedPrecondition("file was written without postings");
  }
  if (shard >= num_shards()) {
    return Status::OutOfRange(StrFormat("shard %zu of %zu", shard, num_shards()));
  }
  SECRETA_ASSIGN_OR_RETURN(
      MmapFile view, MmapFile::OpenRange(path_, shard_offsets_[shard],
                                         shard_lengths_[shard]));
  ByteReader r(view.data(), view.size());
  uint32_t magic = 0;
  uint32_t index = 0;
  uint64_t row_count = 0;
  SECRETA_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kSbcShardMagic) return Corrupt("bad shard section magic");
  SECRETA_RETURN_IF_ERROR(r.ReadU32(&index));
  SECRETA_RETURN_IF_ERROR(r.ReadU64(&row_count));
  if (row_count > num_records_) return Corrupt("shard larger than dataset");
  SECRETA_RETURN_IF_ERROR(r.Skip(4 * static_cast<size_t>(row_count)));
  SECRETA_RETURN_IF_ERROR(
      r.Skip(4 * static_cast<size_t>(row_count) * dictionaries_.size()));
  if ((flags_ & kSbcFlagTransaction) != 0) {
    SECRETA_RETURN_IF_ERROR(r.Skip(8));  // offsets[0]
    uint64_t total = 0;
    for (uint64_t i = 0; i < row_count; ++i) {
      SECRETA_RETURN_IF_ERROR(r.ReadU64(&total));
    }
    SECRETA_RETURN_IF_ERROR(r.Skip(4 * static_cast<size_t>(total)));
  }

  ShardPostings postings;
  postings.columns.resize(dictionaries_.size());
  for (size_t c = 0; c < dictionaries_.size(); ++c) {
    uint32_t domain = 0;
    SECRETA_RETURN_IF_ERROR(r.ReadU32(&domain));
    if (domain != dictionaries_[c].size()) {
      return Corrupt("posting domain disagrees with dictionary");
    }
    postings.columns[c].resize(domain);
    for (uint32_t v = 0; v < domain; ++v) {
      SECRETA_RETURN_IF_ERROR(ReadPosting(&r, &postings.columns[c][v]));
    }
  }
  if ((flags_ & kSbcFlagTransaction) != 0) {
    uint32_t domain = 0;
    SECRETA_RETURN_IF_ERROR(r.ReadU32(&domain));
    if (domain != item_dictionary_.size()) {
      return Corrupt("item posting domain disagrees with dictionary");
    }
    postings.items.resize(domain);
    for (uint32_t v = 0; v < domain; ++v) {
      SECRETA_RETURN_IF_ERROR(ReadPosting(&r, &postings.items[v]));
    }
  }
  return postings;
}

Result<Dataset> BinaryDatasetReader::ReadAll() const {
  const size_t num_cols = dictionaries_.size();
  Dataset::Parts parts;
  parts.schema = schema_;
  parts.dictionaries = dictionaries_;
  parts.numeric = numeric_;
  parts.item_dictionary = item_dictionary_;
  parts.num_records = num_records_;
  parts.cells.assign(num_records_ * num_cols, 0);
  if ((flags_ & kSbcFlagTransaction) != 0) {
    parts.transactions.resize(num_records_);
  }
  std::vector<bool> seen(num_records_, false);
  for (size_t s = 0; s < num_shards(); ++s) {
    std::vector<uint32_t> rows;
    SECRETA_ASSIGN_OR_RETURN(
        MmapFile view, MmapFile::OpenRange(path_, shard_offsets_[s],
                                           shard_lengths_[s]));
    if (HashView(view.data(), view.size()) != shard_fingerprints_[s]) {
      return Corrupt(StrFormat("shard %zu fingerprint mismatch", s));
    }
    SECRETA_ASSIGN_OR_RETURN(Dataset piece,
                             DecodeShard(s, view.data(), view.size(), &rows));
    if (piece.num_records() != rows.size()) {
      return Corrupt("shard row list disagrees with cell block");
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      const size_t row = rows[i];
      if (seen[row]) return Corrupt("row owned by two shards");
      seen[row] = true;
      for (size_t c = 0; c < num_cols; ++c) {
        parts.cells[row * num_cols + c] = piece.value(i, c).raw();
      }
      if ((flags_ & kSbcFlagTransaction) != 0) {
        parts.transactions[row] = piece.items(i).raw();
      }
    }
  }
  for (size_t row = 0; row < num_records_; ++row) {
    if (!seen[row]) return Corrupt("row not covered by any shard");
  }
  return Dataset::FromParts(std::move(parts));
}

Status BinaryDatasetReader::VerifyFile() const {
  SECRETA_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path_));
  if (HashView(file.data(), static_cast<size_t>(footer_offset_)) !=
      file_fingerprint_) {
    return Corrupt("file fingerprint mismatch");
  }
  for (size_t s = 0; s < num_shards(); ++s) {
    if (HashView(file.data() + shard_offsets_[s],
                 static_cast<size_t>(shard_lengths_[s])) !=
        shard_fingerprints_[s]) {
      return Corrupt(StrFormat("shard %zu fingerprint mismatch", s));
    }
  }
  SECRETA_ASSIGN_OR_RETURN(Dataset all, ReadAll());
  if (DatasetContentFingerprint(all) != content_fingerprint_) {
    return Corrupt("content fingerprint mismatch");
  }
  return Status::OK();
}

}  // namespace secreta
