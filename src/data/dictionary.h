// Dictionary encoding for attribute values and transaction items. Every
// categorical value, numeric distinct value and transaction item is mapped to
// a dense int32 id; algorithms operate on ids only.

#ifndef SECRETA_DATA_DICTIONARY_H_
#define SECRETA_DATA_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace secreta {

/// Dense id of a value within one attribute's dictionary.
using ValueId = int32_t;
/// Dense id of a transaction item.
using ItemId = int32_t;

inline constexpr ValueId kInvalidValue = -1;

/// Bidirectional string <-> dense-id mapping for one attribute domain.
class Dictionary {
 public:
  /// Returns the id of `value`, inserting it if absent.
  ValueId GetOrAdd(const std::string& value) {
    auto it = index_.find(value);
    if (it != index_.end()) return it->second;
    ValueId id = static_cast<ValueId>(values_.size());
    values_.push_back(value);
    index_.emplace(values_.back(), id);
    return id;
  }

  /// Returns the id of `value` or an error if it is not in the dictionary.
  Result<ValueId> Lookup(const std::string& value) const {
    auto it = index_.find(value);
    if (it == index_.end()) {
      return Status::NotFound("value not in dictionary: '" + value + "'");
    }
    return it->second;
  }

  bool Contains(const std::string& value) const {
    return index_.count(value) > 0;
  }

  /// The string for id `id`; id must be valid.
  const std::string& value(ValueId id) const {
    return values_[static_cast<size_t>(id)];
  }

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// All values in id order.
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, ValueId> index_;
};

}  // namespace secreta

#endif  // SECRETA_DATA_DICTIONARY_H_
