// SBC1 — the SECRETA binary columnar dataset format. Normative byte-level
// spec: docs/FORMATS.md §"SBC1 binary columnar datasets"; this header is the
// reference implementation of that document, not the other way round.
//
// A file is written once by WriteBinaryDataset (the `convert` CLI verb) and
// then read shard-at-a-time through mmap windows by BinaryDatasetReader:
//
//   header            magic "SBC1", version, flags, counts, shard plan
//   schema block      attribute names/types/roles
//   dictionary pages  per-column value dictionaries (+ f64 tables for
//                     numeric columns), item dictionary with global
//                     per-item support counts
//   shard sections    per shard: global row ids, column-major cells,
//                     transaction CSR, optional Roaring posting lists
//                     (serialized via RoaringBitmap::AppendTo)
//   footer            per-shard {offset, length, fingerprint}, logical
//                     content fingerprint, physical file fingerprint
//   trailer           footer offset/length + end magic (last 16 bytes)
//
// Dictionaries are global: a shard's cells reference the same ValueId/ItemId
// space regardless of partitioning, so algorithms see identical ids on every
// backend. All integers are little-endian; all multi-byte fields are
// unaligned (readers decode via common/bytes.h, never by pointer casts).

#ifndef SECRETA_DATA_FORMAT_H_
#define SECRETA_DATA_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/shard.h"
#include "kernels/roaring.h"

namespace secreta {

// -- format constants (see docs/FORMATS.md) -----------------------------------

inline constexpr uint32_t kSbcMagic = 0x31434253;       // "SBC1"
inline constexpr uint32_t kSbcShardMagic = 0x44524853;  // "SHRD"
inline constexpr uint32_t kSbcFooterMagic = 0x46434253; // "SBCF"
inline constexpr uint32_t kSbcEndMagic = 0x53424331;    // "1CBS"
inline constexpr uint16_t kSbcVersion = 1;
inline constexpr uint16_t kSbcFlagTransaction = 1u << 0;
inline constexpr uint16_t kSbcFlagPostings = 1u << 1;
inline constexpr size_t kSbcHeaderBytes = 40;
inline constexpr size_t kSbcTrailerBytes = 16;

/// Logical content fingerprint of a dataset: FNV-1a 64 over the canonical
/// CSV serialization (header + every cell + every transaction, in record
/// order). Identical for every backend that decodes to the same Dataset;
/// stored in the SBC1 footer and used to pin caches and checkpoints.
uint64_t DatasetContentFingerprint(const Dataset& dataset);

struct BinaryWriteOptions {
  ShardKind shard_kind = ShardKind::kRange;
  size_t num_shards = 1;
  uint64_t salt = 0;
  /// Write per-shard Roaring posting lists (per column value and per item,
  /// over shard-local row positions). Costs file size, buys index builds.
  bool write_postings = true;
};

/// Serializes `dataset` to an SBC1 file at `path` (atomic: written to a
/// temp file and renamed into place).
Status WriteBinaryDataset(const Dataset& dataset, const std::string& path,
                          const BinaryWriteOptions& options = {});

/// True if the file at `path` starts with the SBC1 magic (cheap sniff used
/// by `load` to pick a backend).
bool LooksLikeBinaryDataset(const std::string& path);

/// \brief Shard-at-a-time reader over an SBC1 file.
///
/// Open() maps the file once to parse header, schema, dictionaries and
/// footer (touching only those pages), then drops the mapping. ReadShard()
/// maps exactly one shard section, verifies its footer fingerprint,
/// materializes a Dataset carrying the global dictionaries, and unmaps —
/// peak resident memory is one shard window plus the decoded shard.
class BinaryDatasetReader {
 public:
  /// Per-value posting lists of one shard, decoded from the postings block.
  struct ShardPostings {
    /// postings[col][value] over shard-local row positions [0, shard rows).
    std::vector<std::vector<RoaringBitmap>> columns;
    /// items[item] over shard-local row positions; empty without flag/txn.
    std::vector<RoaringBitmap> items;
  };

  static Result<BinaryDatasetReader> Open(const std::string& path);

  const std::string& path() const { return path_; }
  const Schema& schema() const { return schema_; }
  size_t num_records() const { return num_records_; }
  size_t num_shards() const { return shard_offsets_.size(); }
  bool has_postings() const { return (flags_ & kSbcFlagPostings) != 0; }

  /// The partition the file was written with.
  ShardPlan plan() const {
    return ShardPlan::Make(shard_kind_, num_records_, num_shards(), salt_);
  }

  /// Global relational dictionaries, schema order.
  const std::vector<Dictionary>& dictionaries() const { return dictionaries_; }
  const Dictionary& item_dictionary() const { return item_dictionary_; }
  /// Global per-item record support (records containing the item), aligned
  /// with item_dictionary() ids. Feeds support-ordered item hierarchies
  /// without a full scan.
  const std::vector<uint64_t>& item_supports() const { return item_supports_; }

  /// Logical content fingerprint from the footer (== DatasetContentFingerprint
  /// of the decoded dataset).
  uint64_t content_fingerprint() const { return content_fingerprint_; }

  /// Materializes shard `s` as a Dataset with global dictionaries. Verifies
  /// the section fingerprint against the footer before decoding. Raw
  /// microdata: see the SECRETA_SENSITIVE contract in common/annotations.h.
  SECRETA_SENSITIVE Result<Dataset> ReadShard(size_t shard) const;

  /// Global row ids of shard `s`, ascending (read from the section, equal to
  /// plan().Rows(s)).
  Result<std::vector<uint32_t>> ReadShardRows(size_t shard) const;

  /// Decodes shard `s`'s posting lists; error unless has_postings().
  /// Posting lists are per-value record memberships — raw microdata in
  /// inverted form.
  SECRETA_SENSITIVE Result<ShardPostings> ReadShardPostings(size_t shard) const;

  /// Materializes the whole dataset in global record order (oracle/testing
  /// path — defeats the out-of-core property on purpose).
  SECRETA_SENSITIVE Result<Dataset> ReadAll() const;

  /// Re-hashes the physical bytes and checks both fingerprints in the
  /// footer (touches every page; used by tests and `convert verify=`).
  Status VerifyFile() const;

 private:
  /// Decodes one mapped shard section; optionally returns its global row ids.
  Result<Dataset> DecodeShard(size_t shard, const uint8_t* data, size_t size,
                              std::vector<uint32_t>* rows_out) const;

  std::string path_;
  Schema schema_;
  uint16_t flags_ = 0;
  size_t num_records_ = 0;
  ShardKind shard_kind_ = ShardKind::kRange;
  uint64_t salt_ = 0;
  std::vector<Dictionary> dictionaries_;
  std::vector<std::vector<double>> numeric_;
  Dictionary item_dictionary_;
  std::vector<uint64_t> item_supports_;
  std::vector<uint64_t> shard_offsets_;
  std::vector<uint64_t> shard_lengths_;
  std::vector<uint64_t> shard_fingerprints_;
  uint64_t content_fingerprint_ = 0;
  uint64_t file_fingerprint_ = 0;
  uint64_t footer_offset_ = 0;
};

}  // namespace secreta

#endif  // SECRETA_DATA_FORMAT_H_
