// Deterministic partitioning of a dataset's rows into shards. A ShardPlan is
// a pure function of (kind, num_records, num_shards, salt) — it never looks
// at cell values — so every backend (in-memory, CSV, binary/mmap) and every
// process derives the identical partition, which is what makes sharded runs
// byte-identical across backends and resumable from checkpoints.
//
//   kRange  shard s covers the contiguous block [floor(s·N/S), floor((s+1)·N/S))
//           — the out-of-core default: each shard is one contiguous file
//           section, mapped and unmapped as a window.
//   kHash   row r lands in shard SplitMix64(r ⊕ salt) mod S — decorrelates
//           shard membership from record order (e.g. time-sorted inputs).
//
// Per-shard RNG seeds derive from the run seed via ShardSeed(); shard 0
// always receives the run seed itself, so a 1-shard plan reproduces the
// unsharded run byte-for-byte.

#ifndef SECRETA_DATA_SHARD_H_
#define SECRETA_DATA_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace secreta {

enum class ShardKind { kRange, kHash };

const char* ShardKindName(ShardKind kind);

/// Inverse of ShardKindName ("range" / "hash"), for CLI and config parsing.
Result<ShardKind> ParseShardKind(std::string_view name);

/// \brief Deterministic row → shard assignment.
class ShardPlan {
 public:
  /// `num_shards` is clamped to [1, max(1, num_records)].
  static ShardPlan Make(ShardKind kind, size_t num_records, size_t num_shards,
                        uint64_t salt = 0);

  ShardKind kind() const { return kind_; }
  size_t num_records() const { return num_records_; }
  size_t num_shards() const { return num_shards_; }
  uint64_t salt() const { return salt_; }

  /// Shard owning global row `row` (< num_records()).
  size_t ShardOf(size_t row) const;

  /// Global row ids of shard `s`, ascending. O(N) for hash plans.
  std::vector<uint32_t> Rows(size_t shard) const;

  /// Cardinality of shard `s` without materializing its rows.
  size_t ShardSize(size_t shard) const;

  /// Stable identity of the partition (folded into checkpoint keys).
  uint64_t Fingerprint() const;

 private:
  ShardKind kind_ = ShardKind::kRange;
  size_t num_records_ = 0;
  size_t num_shards_ = 1;
  uint64_t salt_ = 0;
};

/// Per-shard RNG seed: shard 0 keeps `run_seed` (1-shard == unsharded),
/// later shards get a decorrelated but deterministic derivation.
uint64_t ShardSeed(uint64_t run_seed, size_t shard);

}  // namespace secreta

#endif  // SECRETA_DATA_SHARD_H_
