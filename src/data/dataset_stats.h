// Attribute statistics and histograms — the backend of the visualizations in
// the paper's Fig. 2 (value-frequency histograms of any attribute) and the
// frequency plots of Evaluation mode.

#ifndef SECRETA_DATA_DATASET_STATS_H_
#define SECRETA_DATA_DATASET_STATS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace secreta {

/// One histogram bucket: a value label and its frequency.
struct FrequencyBucket {
  std::string label;
  size_t count = 0;
};

using Histogram = std::vector<FrequencyBucket>;

/// Value-frequency histogram of relational column `col`, ordered by the
/// column's natural domain order (numeric ascending / lexicographic).
Histogram ValueHistogram(const Dataset& dataset, size_t col);

/// Equi-width histogram of numeric column `col` with `bins` buckets; labels
/// are "[lo,hi)" ranges. Fails if the column is not numeric or bins == 0.
Result<Histogram> NumericHistogram(const Dataset& dataset, size_t col,
                                   size_t bins);

/// Support (number of records containing each item) of every transaction
/// item, ordered by item id.
Histogram ItemHistogram(const Dataset& dataset);

/// Summary statistics of a numeric column.
struct NumericSummary {
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  size_t distinct = 0;
};

Result<NumericSummary> SummarizeNumeric(const Dataset& dataset, size_t col);

/// Relative difference between the frequency of each label in `reference` and
/// `other` (paper: "relative difference of the frequency between an original
/// and a generalized value"). Labels absent from one side count as frequency
/// zero; the difference is |a-b| / max(a, 1).
std::vector<std::pair<std::string, double>> RelativeFrequencyDiff(
    const Histogram& reference, const Histogram& other);

}  // namespace secreta

#endif  // SECRETA_DATA_DATASET_STATS_H_
