#include "data/schema.h"

namespace secreta {

const char* AttributeTypeToString(AttributeType type) {
  switch (type) {
    case AttributeType::kCategorical:
      return "categorical";
    case AttributeType::kNumeric:
      return "numeric";
    case AttributeType::kTransaction:
      return "transaction";
  }
  return "?";
}

const char* AttributeRoleToString(AttributeRole role) {
  switch (role) {
    case AttributeRole::kQuasiIdentifier:
      return "qid";
    case AttributeRole::kInsensitive:
      return "insensitive";
  }
  return "?";
}

Status Schema::AddAttribute(const AttributeSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("attribute name must not be empty");
  }
  if (FindAttribute(spec.name).has_value()) {
    return Status::AlreadyExists("duplicate attribute name: " + spec.name);
  }
  if (spec.type == AttributeType::kTransaction) {
    if (transaction_index_.has_value()) {
      return Status::InvalidArgument(
          "at most one transaction attribute is supported");
    }
    transaction_index_ = attributes_.size();
  }
  attributes_.push_back(spec);
  return Status::OK();
}

std::optional<size_t> Schema::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<size_t> Schema::RelationalIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].type != AttributeType::kTransaction) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Schema::QuasiIdentifierIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].type != AttributeType::kTransaction &&
        attributes_[i].role == AttributeRole::kQuasiIdentifier) {
      out.push_back(i);
    }
  }
  return out;
}

Status Schema::RenameAttribute(size_t i, const std::string& new_name) {
  if (i >= attributes_.size()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (new_name.empty()) {
    return Status::InvalidArgument("attribute name must not be empty");
  }
  auto existing = FindAttribute(new_name);
  if (existing.has_value() && *existing != i) {
    return Status::AlreadyExists("duplicate attribute name: " + new_name);
  }
  attributes_[i].name = new_name;
  return Status::OK();
}

Status Schema::RemoveAttribute(size_t i) {
  if (i >= attributes_.size()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (transaction_index_.has_value()) {
    if (*transaction_index_ == i) {
      transaction_index_.reset();
    } else if (*transaction_index_ > i) {
      transaction_index_ = *transaction_index_ - 1;
    }
  }
  attributes_.erase(attributes_.begin() + static_cast<ptrdiff_t>(i));
  return Status::OK();
}

}  // namespace secreta
