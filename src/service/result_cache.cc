#include "service/result_cache.h"

#include "common/string_util.h"
#include "data/format.h"
#include "engine/config_io.h"
#include "query/query.h"

namespace secreta {

uint64_t DatasetFingerprint(const Dataset& dataset) {
  // Delegates to the data layer so the cache, checkpoints and the SBC1
  // footer all pin the same logical fingerprint (docs/FORMATS.md).
  return DatasetContentFingerprint(dataset);
}

uint64_t WorkloadFingerprint(const Workload* workload) {
  if (workload == nullptr || workload->empty()) {
    return 0x5ec7e7a0'00000000ULL;  // sentinel: "no workload"
  }
  return Fnv1a64(workload->Format());
}

uint64_t RunCacheKey(const AlgorithmConfig& config, uint64_t dataset_fp,
                     uint64_t workload_fp) {
  uint64_t key = CanonicalConfigHash(config);
  key = HashCombine(key, dataset_fp);
  key = HashCombine(key, workload_fp);
  return key;
}

std::shared_ptr<const EvaluationReport> ResultCache::Lookup(uint64_t key) {
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return lru_.front().second;
}

void ResultCache::Insert(uint64_t key,
                         std::shared_ptr<const EvaluationReport> report) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(report);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(report));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t ResultCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

uint64_t ResultCache::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

double ResultCache::hit_rate() const {
  MutexLock lock(mutex_);
  uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

}  // namespace secreta
