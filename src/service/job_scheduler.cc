#include "service/job_scheduler.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"
#include "export/json_export.h"
#include "obs/metric_names.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace secreta {

namespace {

double ToSeconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

const char* JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kFailed:
      return "failed";
    case JobState::kTimedOut:
      return "timed-out";
  }
  return "?";
}

bool IsTerminalJobState(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

JobScheduler::JobScheduler(const SchedulerOptions& options)
    : options_(options), cache_(options.cache_capacity) {
  pool_ = std::make_unique<ThreadPool>(options.num_workers, "jobs");
  reaper_ = std::thread([this] { ReaperLoop(); });
}

JobScheduler::~JobScheduler() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
    std::vector<std::shared_ptr<Job>> queued;
    queued.reserve(queue_.size());
    for (const QueueEntry& entry : queue_) queued.push_back(entry.job);
    queue_.clear();
    UpdateQueueGauges();
    for (const auto& job : queued) {
      job->token.Cancel();
      Finalize(job.get(), JobState::kCancelled,
               Status::Cancelled("scheduler shutdown"));
    }
    for (const auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) job->token.Cancel();
      // Jobs parked in a retry backoff are kQueued but live outside queue_.
      if (job->retry_waiting && job->state == JobState::kQueued) {
        job->token.Cancel();
        Finalize(job.get(), JobState::kCancelled,
                 Status::Cancelled("scheduler shutdown"));
      }
    }
  }
  reaper_wake_.NotifyAll();
  // Joins the workers; leftover pool tasks find an empty queue and return.
  pool_.reset();
  if (reaper_.joinable()) reaper_.join();
}

Result<uint64_t> JobScheduler::Submit(const EngineInputs& inputs,
                                      const AlgorithmConfig& config,
                                      const Workload* workload,
                                      const JobOptions& options) {
  if (inputs.dataset == nullptr) {
    return Status::InvalidArgument("EngineInputs.dataset is required");
  }
  auto job = std::make_shared<Job>();
  job->label = config.Label();
  job->priority = options.priority;
  job->timeout_seconds = options.timeout_seconds;
  job->export_path = options.export_json_path;
  job->max_retries = options.max_retries;
  job->retry_initial_backoff = options.retry_initial_backoff_seconds;
  job->retry_max_backoff = options.retry_max_backoff_seconds;
  if (options.use_cache && options_.cache_capacity > 0) {
    uint64_t dataset_fp = options.dataset_fingerprint != 0
                              ? options.dataset_fingerprint
                              : DatasetFingerprint(*inputs.dataset);
    job->cache_key =
        RunCacheKey(config, dataset_fp, WorkloadFingerprint(workload));
    job->cacheable = true;
    if (std::shared_ptr<const EvaluationReport> hit =
            cache_.Lookup(job->cache_key)) {
      metrics_.IncrCacheHit();
      Status export_status;
      if (!job->export_path.empty()) {
        export_status =
            WriteJsonFile(EvaluationReportToJson(*hit), job->export_path);
      }
      MutexLock lock(mutex_);
      if (shutdown_) {
        return Status::FailedPrecondition("scheduler is shutting down");
      }
      job->id = next_id_++;
      job->submitted_at = Clock::now();
      job->from_cache = true;
      metrics_.IncrSubmitted();
      jobs_[job->id] = job;
      if (export_status.ok()) {
        job->report = std::move(hit);
        Finalize(job.get(), JobState::kDone, Status::OK());
      } else {
        Finalize(job.get(), JobState::kFailed, std::move(export_status));
      }
      return job->id;
    }
    metrics_.IncrCacheMiss();
  }
  EngineInputs captured = inputs;
  job->fn = [captured, config,
             workload](const CancellationToken& token) -> Result<EvaluationReport> {
    EngineInputs in = captured;
    in.cancel = &token;
    return EvaluateMethod(in, config, workload);
  };
  return Enqueue(std::move(job));
}

Result<uint64_t> JobScheduler::SubmitFn(JobFn fn, std::string label,
                                        const JobOptions& options) {
  if (!fn) return Status::InvalidArgument("SubmitFn requires a callable");
  auto job = std::make_shared<Job>();
  job->label = std::move(label);
  job->priority = options.priority;
  job->timeout_seconds = options.timeout_seconds;
  job->export_path = options.export_json_path;
  job->max_retries = options.max_retries;
  job->retry_initial_backoff = options.retry_initial_backoff_seconds;
  job->retry_max_backoff = options.retry_max_backoff_seconds;
  job->fn = std::move(fn);
  return Enqueue(std::move(job));
}

Result<uint64_t> JobScheduler::Enqueue(std::shared_ptr<Job> job) {
  MutexLock lock(mutex_);
  if (shutdown_) {
    return Status::FailedPrecondition("scheduler is shutting down");
  }
  if (queue_.size() >= options_.max_queue) {
    metrics_.IncrRejected();
    // Backpressure hint: roughly how long until a queue slot frees up —
    // mean execution time scaled by the queue depth per worker. Callers
    // serving clients surface it as an HTTP-429-style retry-after instead
    // of hammering a full queue. Clamped so a cold scheduler (no samples
    // yet) still suggests a sane pause.
    double mean_run = metrics_.Snapshot().execution.mean_seconds();
    double per_worker =
        static_cast<double>(queue_.size()) /
        static_cast<double>(std::max<size_t>(1, options_.num_workers));
    double hint = std::clamp(mean_run * per_worker, 0.05, 10.0);
    return Status::ResourceExhausted(
               StrFormat("job queue full (%zu queued, max %zu)", queue_.size(),
                         options_.max_queue))
        .WithRetryAfter(hint);
  }
  job->id = next_id_++;
  job->seq = next_seq_++;
  job->submitted_at = Clock::now();
  if (job->timeout_seconds > 0) {
    job->has_deadline = true;
    job->deadline =
        job->submitted_at + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(
                                    job->timeout_seconds));
  }
  metrics_.IncrSubmitted();
  jobs_[job->id] = job;
  queue_.insert(QueueEntry{job->priority, job->seq, job});
  UpdateQueueGauges();
  pool_->Submit([this] { RunNext(); });
  if (job->has_deadline) reaper_wake_.NotifyAll();
  return job->id;
}

void JobScheduler::RunNext() {
  std::shared_ptr<Job> job;
  {
    MutexLock lock(mutex_);
    // The queue may have shrunk since this pool task was enqueued (cancel,
    // queued-timeout, shutdown drain): one task per Submit is an upper
    // bound, not a 1:1 pairing.
    if (queue_.empty()) return;
    auto it = queue_.begin();
    job = it->job;
    queue_.erase(it);
    UpdateQueueGauges();
    Clock::time_point now = Clock::now();
    job->queue_seconds = ToSeconds(now - job->submitted_at);
    if (job->token.cancelled()) {
      Finalize(job.get(),
               job->timeout_fired ? JobState::kTimedOut : JobState::kCancelled,
               job->timeout_fired
                   ? Status::DeadlineExceeded("deadline expired in queue")
                   : Status::Cancelled("cancelled while queued"));
      return;
    }
    if (job->has_deadline && now >= job->deadline) {
      job->timeout_fired = true;
      job->token.Cancel();
      Finalize(job.get(), JobState::kTimedOut,
               Status::DeadlineExceeded("deadline expired in queue"));
      return;
    }
    job->state = JobState::kRunning;
    job->dispatch_order = ++dispatch_counter_;
    ++job->attempts;
    ++running_;
    metrics_.RecordQueueWait(job->queue_seconds);
  }
  Clock::time_point start = Clock::now();
  Result<EvaluationReport> result = [&]() -> Result<EvaluationReport> {
    // One span per attempt; retries are visible as separate "job.retry"
    // spans in the trace.
    ScopedSpan span(job->attempts > 1
                        ? StrFormat("job.retry #%d %s", job->attempts,
                                    job->label.c_str())
                        : "job.run " + job->label);
    return job->fn(job->token);
  }();
  double run_seconds = ToSeconds(Clock::now() - start);
  // Success-only export, outside the lock (file IO). Failure paths — and in
  // particular cancellation — never touch the export file.
  Status export_status;
  if (result.ok() && !job->export_path.empty()) {
    export_status = WriteJsonFile(EvaluationReportToJson(result.value()),
                                  job->export_path);
  }
  MutexLock lock(mutex_);
  job->run_seconds = run_seconds;
  metrics_.RecordExecution(run_seconds);
  if (result.ok() && export_status.ok()) {
    job->report =
        std::make_shared<const EvaluationReport>(std::move(result).value());
    if (job->cacheable) cache_.Insert(job->cache_key, job->report);
    if (job->attempts > 1) {
      MetricsRegistry::Global()
          .counter(metric_names::kRetrySucceeded)
          ->Increment();
    }
    Finalize(job.get(), JobState::kDone, Status::OK());
  } else if (!result.ok()) {
    const Status& st = result.status();
    if (st.code() == StatusCode::kCancelled && job->timeout_fired) {
      Finalize(job.get(), JobState::kTimedOut,
               Status::DeadlineExceeded(st.message()));
    } else if (st.code() == StatusCode::kCancelled) {
      Finalize(job.get(), JobState::kCancelled, st);
    } else if (st.code() == StatusCode::kDeadlineExceeded) {
      Finalize(job.get(), JobState::kTimedOut, st);
    } else if (st.code() == StatusCode::kResourceExhausted &&
               job->attempts <= job->max_retries && !shutdown_ &&
               !job->token.cancelled()) {
      ScheduleRetry(job, st);
    } else {
      if (st.code() == StatusCode::kResourceExhausted &&
          job->max_retries > 0) {
        MetricsRegistry::Global()
            .counter(metric_names::kRetryExhausted)
            ->Increment();
      }
      Finalize(job.get(), JobState::kFailed, st);
    }
  } else {
    Finalize(job.get(), JobState::kFailed, std::move(export_status));
  }
}

void JobScheduler::ScheduleRetry(const std::shared_ptr<Job>& job,
                                 const Status& cause) {
  Clock::time_point now = Clock::now();
  // attempts has already been incremented for the failed attempt: the first
  // retry (attempts == 1) waits the initial backoff, each further one
  // doubles it up to the cap.
  double backoff = job->retry_initial_backoff;
  for (int i = 1; i < job->attempts; ++i) backoff *= 2;
  backoff = std::min(backoff, job->retry_max_backoff);
  // Deterministic ±15% jitter: decorrelates retry storms across jobs while
  // keeping any single run reproducible.
  Rng rng(job->id * 0x9e3779b97f4a7c15ULL +
          static_cast<uint64_t>(job->attempts));
  backoff *= 0.85 + 0.3 * rng.UniformDouble(0.0, 1.0);
  Clock::duration delay = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(backoff));
  if (job->has_deadline && now + delay >= job->deadline) {
    // Deadline-aware: waiting out the backoff would blow the deadline
    // anyway; give up now and surface the deadline, not the transient.
    job->timeout_fired = true;
    job->token.Cancel();
    MetricsRegistry::Global()
        .counter(metric_names::kRetryDeadlineAbandoned)
        ->Increment();
    Finalize(job.get(), JobState::kTimedOut,
             Status::DeadlineExceeded(StrFormat(
                 "deadline would expire during the %.3fs backoff after "
                 "attempt %d (%s)",
                 backoff, job->attempts, cause.message().c_str())));
    return;
  }
  --running_;
  job->state = JobState::kQueued;
  job->status = Status::OK();
  job->retry_waiting = true;
  job->retry_at = now + delay;
  ++retry_waiting_;
  MetricsRegistry::Global().counter(metric_names::kRetryAttempts)->Increment();
  MetricsRegistry::Global()
      .histogram(metric_names::kRetryBackoffSeconds)
      ->Record(backoff);
  reaper_wake_.NotifyAll();
}

void JobScheduler::Finalize(Job* job, JobState state, Status status) {
  if (job->state == JobState::kRunning) --running_;
  if (job->retry_waiting) {
    job->retry_waiting = false;
    --retry_waiting_;
  }
  job->state = state;
  job->status = std::move(status);
  switch (state) {
    case JobState::kDone:
      metrics_.IncrCompleted();
      break;
    case JobState::kCancelled:
      metrics_.IncrCancelled();
      break;
    case JobState::kFailed:
      metrics_.IncrFailed();
      break;
    case JobState::kTimedOut:
      metrics_.IncrTimedOut();
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;  // not terminal; never passed here
  }
  job_changed_.NotifyAll();
}

void JobScheduler::ReaperLoop() {
  MutexLock lock(mutex_);
  while (!shutdown_) {
    bool have_wake = false;
    Clock::time_point next{};
    for (const auto& [id, job] : jobs_) {
      if (IsTerminalJobState(job->state)) continue;
      if (job->has_deadline && !job->timeout_fired &&
          (!have_wake || job->deadline < next)) {
        next = job->deadline;
        have_wake = true;
      }
      if (job->retry_waiting && (!have_wake || job->retry_at < next)) {
        next = job->retry_at;
        have_wake = true;
      }
    }
    if (!have_wake) {
      reaper_wake_.Wait(lock);
      continue;
    }
    reaper_wake_.WaitUntil(lock, next);
    if (shutdown_) break;
    Clock::time_point now = Clock::now();
    // Deadlines first: a deadline that passed during a retry backoff must
    // time the job out, not grant it another attempt.
    for (const auto& [id, job] : jobs_) {
      if (IsTerminalJobState(job->state) || !job->has_deadline ||
          job->timeout_fired || now < job->deadline) {
        continue;
      }
      job->timeout_fired = true;
      job->token.Cancel();
      if (job->state == JobState::kQueued) {
        queue_.erase(QueueEntry{job->priority, job->seq, nullptr});
        UpdateQueueGauges();
        job->queue_seconds = ToSeconds(now - job->submitted_at);
        Finalize(job.get(), JobState::kTimedOut,
                 Status::DeadlineExceeded(StrFormat(
                     "deadline of %.3fs expired while queued",
                     job->timeout_seconds)));
      }
      // Running jobs finalize in RunNext when the engine unwinds with
      // Status::Cancelled at its next phase boundary.
    }
    // Re-queue retries whose backoff has elapsed.
    for (const auto& [id, job] : jobs_) {
      if (!job->retry_waiting || job->state != JobState::kQueued ||
          now < job->retry_at) {
        continue;
      }
      if (job->token.cancelled()) {
        Finalize(job.get(),
                 job->timeout_fired ? JobState::kTimedOut
                                    : JobState::kCancelled,
                 job->timeout_fired
                     ? Status::DeadlineExceeded("deadline expired in backoff")
                     : Status::Cancelled("cancelled during retry backoff"));
        continue;
      }
      job->retry_waiting = false;
      --retry_waiting_;
      job->seq = next_seq_++;
      queue_.insert(QueueEntry{job->priority, job->seq, job});
      pool_->Submit([this] { RunNext(); });
      MetricsRegistry::Global()
          .counter(metric_names::kRetryRequeued)
          ->Increment();
    }
    UpdateQueueGauges();
  }
}

void JobScheduler::UpdateQueueGauges() const {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.gauge(metric_names::kJobsQueueDepth)
      ->Set(static_cast<double>(queue_.size()));
  double oldest = 0;
  if (!queue_.empty()) {
    Clock::time_point now = Clock::now();
    for (const QueueEntry& entry : queue_) {
      oldest = std::max(oldest, ToSeconds(now - entry.job->submitted_at));
    }
  }
  metrics.gauge(metric_names::kJobsQueueAgeSeconds)->Set(oldest);
}

JobInfo JobScheduler::Snapshot(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.label = job.label;
  info.state = job.state;
  info.priority = job.priority;
  info.dispatch_order = job.dispatch_order;
  info.from_cache = job.from_cache;
  info.attempts = job.attempts;
  info.queue_seconds = job.queue_seconds;
  info.run_seconds = job.run_seconds;
  info.status = job.status;
  info.report = job.report;
  return info;
}

Result<JobInfo> JobScheduler::GetJob(uint64_t id) const {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat("no job %llu",
                                      static_cast<unsigned long long>(id)));
  }
  return Snapshot(*it->second);
}

std::vector<JobInfo> JobScheduler::ListJobs() const {
  MutexLock lock(mutex_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(Snapshot(*job));
  std::sort(out.begin(), out.end(),
            [](const JobInfo& a, const JobInfo& b) { return a.id < b.id; });
  return out;
}

Status JobScheduler::CancelJob(uint64_t id) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat("no job %llu",
                                      static_cast<unsigned long long>(id)));
  }
  Job* job = it->second.get();
  if (IsTerminalJobState(job->state)) {
    return Status::FailedPrecondition(
        StrFormat("job %llu already %s",
                  static_cast<unsigned long long>(id),
                  JobStateToString(job->state)));
  }
  job->token.Cancel();
  if (job->state == JobState::kQueued) {
    queue_.erase(QueueEntry{job->priority, job->seq, nullptr});
    UpdateQueueGauges();
    job->queue_seconds = ToSeconds(Clock::now() - job->submitted_at);
    Finalize(job, JobState::kCancelled,
             Status::Cancelled("cancelled while queued"));
  }
  return Status::OK();
}

Result<JobInfo> JobScheduler::WaitJob(uint64_t id) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat("no job %llu",
                                      static_cast<unsigned long long>(id)));
  }
  std::shared_ptr<Job> job = it->second;
  while (!IsTerminalJobState(job->state)) job_changed_.Wait(lock);
  return Snapshot(*job);
}

void JobScheduler::WaitAll() {
  MutexLock lock(mutex_);
  while (!(queue_.empty() && running_ == 0 && retry_waiting_ == 0)) {
    job_changed_.Wait(lock);
  }
}

size_t JobScheduler::num_queued() const {
  MutexLock lock(mutex_);
  // Jobs parked in a retry backoff are queued, just not in queue_ yet.
  return queue_.size() + retry_waiting_;
}

size_t JobScheduler::num_running() const {
  MutexLock lock(mutex_);
  return running_;
}

}  // namespace secreta
