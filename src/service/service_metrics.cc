#include "service/service_metrics.h"

#include <algorithm>

namespace secreta {

const std::vector<double>& LatencyHistogram::BucketBounds() {
  static const std::vector<double> kBounds = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
      0.2,   0.5,   1.0,   2.0,  5.0,  10.0};
  return kBounds;
}

LatencyHistogram::LatencyHistogram()
    : buckets_(BucketBounds().size() + 1, 0) {}

void LatencyHistogram::Record(double seconds) {
  seconds = std::max(0.0, seconds);
  const std::vector<double>& bounds = BucketBounds();
  size_t bucket =
      std::upper_bound(bounds.begin(), bounds.end(), seconds) - bounds.begin();
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (seconds > max_) max_ = seconds;
  ++count_;
  sum_ += seconds;
  ++buckets_[bucket];
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum_seconds = sum_;
  snap.min_seconds = min_;
  snap.max_seconds = max_;
  snap.buckets = buckets_;
  return snap;
}

ServiceMetricsSnapshot ServiceMetrics::Snapshot() const {
  ServiceMetricsSnapshot snap;
  snap.jobs_submitted = submitted_.load(std::memory_order_relaxed);
  snap.jobs_completed = completed_.load(std::memory_order_relaxed);
  snap.jobs_cancelled = cancelled_.load(std::memory_order_relaxed);
  snap.jobs_failed = failed_.load(std::memory_order_relaxed);
  snap.jobs_timed_out = timed_out_.load(std::memory_order_relaxed);
  snap.jobs_rejected = rejected_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snap.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  uint64_t lookups = snap.cache_hits + snap.cache_misses;
  snap.cache_hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(snap.cache_hits) / lookups;
  snap.queue_wait = queue_wait_.Snapshot();
  snap.execution = execution_.Snapshot();
  return snap;
}

}  // namespace secreta
