#include "service/service_metrics.h"

#include "obs/metric_names.h"

namespace secreta {

ServiceMetrics::ServiceMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    owned_ = std::make_unique<MetricsRegistry>();
    registry = owned_.get();
  }
  registry_ = registry;
  submitted_ = registry->counter(metric_names::kJobsSubmitted);
  completed_ = registry->counter(metric_names::kJobsCompleted);
  cancelled_ = registry->counter(metric_names::kJobsCancelled);
  failed_ = registry->counter(metric_names::kJobsFailed);
  timed_out_ = registry->counter(metric_names::kJobsTimedOut);
  rejected_ = registry->counter(metric_names::kJobsRejected);
  cache_hits_ = registry->counter(metric_names::kResultCacheHits);
  cache_misses_ = registry->counter(metric_names::kResultCacheMisses);
  queue_wait_ = registry->histogram(metric_names::kJobQueueWaitSeconds);
  execution_ = registry->histogram(metric_names::kJobExecutionSeconds);
}

ServiceMetricsSnapshot ServiceMetrics::Snapshot() const {
  ServiceMetricsSnapshot snap;
  snap.jobs_submitted = submitted_->value();
  snap.jobs_completed = completed_->value();
  snap.jobs_cancelled = cancelled_->value();
  snap.jobs_failed = failed_->value();
  snap.jobs_timed_out = timed_out_->value();
  snap.jobs_rejected = rejected_->value();
  snap.cache_hits = cache_hits_->value();
  snap.cache_misses = cache_misses_->value();
  uint64_t lookups = snap.cache_hits + snap.cache_misses;
  snap.cache_hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(snap.cache_hits) / lookups;
  snap.queue_wait = queue_wait_->Snapshot();
  snap.execution = execution_->Snapshot();
  return snap;
}

}  // namespace secreta
