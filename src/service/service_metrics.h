// Run metrics for the job service: monotonic lifecycle counters plus latency
// histograms separating queue wait from execution time. Everything is
// thread-safe and cheap enough to record on every job transition; snapshots
// are exported as JSON via export/json_export (ServiceMetricsToJson).

#ifndef SECRETA_SERVICE_SERVICE_METRICS_H_
#define SECRETA_SERVICE_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace secreta {

/// Immutable copy of one histogram's state.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum_seconds = 0;
  double min_seconds = 0;  ///< 0 when count == 0
  double max_seconds = 0;
  /// counts[i] = samples with latency < bounds()[i]; the last bucket is
  /// unbounded (+inf).
  std::vector<uint64_t> buckets;

  double mean_seconds() const { return count == 0 ? 0 : sum_seconds / count; }
};

/// \brief Fixed-bucket latency histogram (log-scale bounds, 1ms .. 10s).
class LatencyHistogram {
 public:
  /// Upper bounds (seconds) of the finite buckets; one overflow bucket
  /// follows.
  static const std::vector<double>& BucketBounds();

  LatencyHistogram();

  void Record(double seconds);
  HistogramSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<uint64_t> buckets_;
};

/// Point-in-time copy of every service metric, safe to serialize or compare
/// without holding any lock.
struct ServiceMetricsSnapshot {
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  uint64_t jobs_cancelled = 0;
  uint64_t jobs_failed = 0;
  uint64_t jobs_timed_out = 0;
  uint64_t jobs_rejected = 0;  ///< backpressure (queue full)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0;
  HistogramSnapshot queue_wait;
  HistogramSnapshot execution;
};

/// \brief The job service's metric registry.
///
/// Counters are lock-free atomics; histograms take a short mutex. One
/// instance lives inside each JobScheduler, but the type is independent so
/// other serving layers can reuse it.
class ServiceMetrics {
 public:
  void IncrSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void IncrCompleted() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void IncrCancelled() { cancelled_.fetch_add(1, std::memory_order_relaxed); }
  void IncrFailed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void IncrTimedOut() { timed_out_.fetch_add(1, std::memory_order_relaxed); }
  void IncrRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void IncrCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void IncrCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordQueueWait(double seconds) { queue_wait_.Record(seconds); }
  void RecordExecution(double seconds) { execution_.Record(seconds); }

  ServiceMetricsSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  LatencyHistogram queue_wait_;
  LatencyHistogram execution_;
};

}  // namespace secreta

#endif  // SECRETA_SERVICE_SERVICE_METRICS_H_
