// Run metrics for the job service, as a thin adapter over the unified
// obs::MetricsRegistry: monotonic lifecycle counters plus latency histograms
// separating queue wait from execution time. Each ServiceMetrics owns a
// private registry so schedulers count independently; the typed Snapshot()
// keeps the stable shape exported by ServiceMetricsToJson.

#ifndef SECRETA_SERVICE_SERVICE_METRICS_H_
#define SECRETA_SERVICE_SERVICE_METRICS_H_

#include <cstdint>

#include "obs/metrics_registry.h"

namespace secreta {

/// Point-in-time copy of every service metric, safe to serialize or compare
/// without holding any lock.
struct ServiceMetricsSnapshot {
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  uint64_t jobs_cancelled = 0;
  uint64_t jobs_failed = 0;
  uint64_t jobs_timed_out = 0;
  uint64_t jobs_rejected = 0;  ///< backpressure (queue full)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0;
  HistogramSnapshot queue_wait;
  HistogramSnapshot execution;
};

/// \brief The job service's metric facade.
///
/// Counters are lock-free registry atomics; histograms take a short mutex.
/// One instance lives inside each JobScheduler with its own private registry
/// (scheduler metrics never bleed into each other); pass an external
/// registry to aggregate several services into one.
class ServiceMetrics {
 public:
  /// Registers the service metrics in `registry`, or in a private registry
  /// when `registry` is null.
  explicit ServiceMetrics(MetricsRegistry* registry = nullptr);

  void IncrSubmitted() { submitted_->Increment(); }
  void IncrCompleted() { completed_->Increment(); }
  void IncrCancelled() { cancelled_->Increment(); }
  void IncrFailed() { failed_->Increment(); }
  void IncrTimedOut() { timed_out_->Increment(); }
  void IncrRejected() { rejected_->Increment(); }
  void IncrCacheHit() { cache_hits_->Increment(); }
  void IncrCacheMiss() { cache_misses_->Increment(); }

  void RecordQueueWait(double seconds) { queue_wait_->Record(seconds); }
  void RecordExecution(double seconds) { execution_->Record(seconds); }

  ServiceMetricsSnapshot Snapshot() const;

  /// The registry the metrics live in (the private one unless injected).
  const MetricsRegistry& registry() const { return *registry_; }

 private:
  std::unique_ptr<MetricsRegistry> owned_;
  MetricsRegistry* registry_;
  Counter* submitted_;
  Counter* completed_;
  Counter* cancelled_;
  Counter* failed_;
  Counter* timed_out_;
  Counter* rejected_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  LatencyHistogram* queue_wait_;
  LatencyHistogram* execution_;
};

}  // namespace secreta

#endif  // SECRETA_SERVICE_SERVICE_METRICS_H_
