// The job service: turns the one-shot, blocking engine entry points into a
// long-running, multi-client execution core (the harness layer the SECRETA
// Fig. 1 architecture fans runs out over). A JobScheduler owns
//   - a priority FIFO queue layered over the common ThreadPool (higher
//     priority first, FIFO within a priority),
//   - bounded-queue backpressure (Submit fails with
//     Status::ResourceExhausted when the queue is full),
//   - per-job deadline enforcement (a reaper thread fires the job's
//     CancellationToken at the deadline; the job lands in state kTimedOut
//     with Status::DeadlineExceeded),
//   - cooperative cancellation (CancelJob fires the token; running engine
//     code unwinds at its next phase boundary),
//   - a content-addressed ResultCache (identical submissions replay the
//     cached report without executing),
//   - retry with exponential backoff for retryable failures
//     (Status::ResourceExhausted — transient overload and injected
//     transients): a failed attempt re-queues after a jittered,
//     deadline-aware delay until the attempt cap is reached (retry.*
//     counters land in the global MetricsRegistry), and
//   - a ServiceMetrics registry (lifecycle counters + queue-wait/execution
//     latency histograms).

#ifndef SECRETA_SERVICE_JOB_SCHEDULER_H_
#define SECRETA_SERVICE_JOB_SCHEDULER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "engine/evaluator.h"
#include "service/result_cache.h"
#include "service/service_metrics.h"

namespace secreta {

/// Lifecycle of a job. Queued/Running are live; the other states are
/// terminal and never change again.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kCancelled,
  kFailed,
  kTimedOut,
};

const char* JobStateToString(JobState state);
bool IsTerminalJobState(JobState state);

/// Per-job knobs.
struct JobOptions {
  /// Higher runs first; ties dispatch FIFO (submission order).
  int priority = 0;
  /// Wall-clock budget from submission; 0 = none. Enforced cooperatively:
  /// the deadline fires the job's cancellation token, and the engine unwinds
  /// at its next phase boundary.
  double timeout_seconds = 0;
  /// Serve/populate the ResultCache for this job (engine jobs only).
  bool use_cache = true;
  /// Precomputed DatasetFingerprint() of the submitted inputs' dataset;
  /// 0 = let the scheduler compute it (O(dataset) per submission).
  uint64_t dataset_fingerprint = 0;
  /// When non-empty, the full report JSON is written here on success — and
  /// only on success: a cancelled, failed, or timed-out job never leaves a
  /// partially-written export behind.
  std::string export_json_path;
  /// Additional attempts after a retryable failure (ResourceExhausted);
  /// 0 = fail fast. Retries re-enter the queue (skipping the backpressure
  /// check — the job was already admitted) after the backoff below.
  int max_retries = 0;
  /// Backoff before retry attempt N (N >= 2): initial * 2^(N-2), capped at
  /// the max, then scaled by a deterministic ±15% jitter derived from the
  /// job id — reproducible, but uncorrelated across jobs. A job whose
  /// deadline would expire during the backoff gives up immediately as
  /// kTimedOut instead of waiting.
  double retry_initial_backoff_seconds = 0.05;
  double retry_max_backoff_seconds = 2.0;
};

/// Snapshot of one job, safe to hold after the scheduler moved on.
struct JobInfo {
  uint64_t id = 0;
  std::string label;
  JobState state = JobState::kQueued;
  int priority = 0;
  /// 1-based order in which the job started executing; 0 = never dispatched
  /// (still queued, served from cache, or cancelled/timed out while queued).
  uint64_t dispatch_order = 0;
  bool from_cache = false;
  /// Executed attempts so far (1 for a job that never retried; 0 while
  /// queued or when served from cache).
  int attempts = 0;
  double queue_seconds = 0;  ///< submission -> dispatch
  double run_seconds = 0;    ///< dispatch -> completion
  /// Terminal outcome (OK for kDone; Cancelled / DeadlineExceeded / the
  /// engine error otherwise). OK while the job is still live.
  Status status;
  /// The completed report (kDone only). Shared with the cache: bit-identical
  /// replay for cache hits.
  std::shared_ptr<const EvaluationReport> report;
};

/// Scheduler-wide configuration.
struct SchedulerOptions {
  /// Concurrent workers (clamped to >= 1, the ThreadPool contract).
  size_t num_workers = 2;
  /// Maximum jobs waiting in the queue (running jobs excluded). Submissions
  /// beyond this are rejected with Status::ResourceExhausted.
  size_t max_queue = 64;
  /// ResultCache capacity in entries; 0 disables caching.
  size_t cache_capacity = 128;
};

/// \brief Priority job queue + workers + cache + metrics. Thread-safe.
///
/// Engine jobs submitted via Submit() capture EngineInputs by value: the
/// pointed-to dataset, contexts, policies, and workload must stay alive and
/// unmodified until the job reaches a terminal state.
class JobScheduler {
 public:
  /// A generic unit of work. Receives the job's cancellation token; expected
  /// to poll it and return Status::Cancelled when it fires.
  using JobFn =
      std::function<Result<EvaluationReport>(const CancellationToken&)>;

  explicit JobScheduler(const SchedulerOptions& options = {});
  /// Cancels every queued job, fires the tokens of running jobs, and waits
  /// for the workers to drain before returning.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Submits one evaluation run. Returns the job id, or ResourceExhausted
  /// under backpressure. A cache hit completes the job immediately (state
  /// kDone, from_cache=true) without consuming a queue slot.
  Result<uint64_t> Submit(const EngineInputs& inputs,
                          const AlgorithmConfig& config,
                          const Workload* workload,
                          const JobOptions& options = {})
      SECRETA_EXCLUDES(mutex_);

  /// Submits an arbitrary work item (never cached). The scheduler machinery
  /// — priorities, backpressure, deadlines, cancellation, metrics — applies
  /// unchanged; this is also the seam tests use to inject controllable jobs.
  Result<uint64_t> SubmitFn(JobFn fn, std::string label,
                            const JobOptions& options = {})
      SECRETA_EXCLUDES(mutex_);

  /// Snapshot of one job.
  Result<JobInfo> GetJob(uint64_t id) const SECRETA_EXCLUDES(mutex_);

  /// Snapshots of every job this scheduler has accepted, in id order.
  std::vector<JobInfo> ListJobs() const SECRETA_EXCLUDES(mutex_);

  /// Requests cancellation: a queued job is removed and finalized as
  /// kCancelled immediately; a running job's token is fired and the job
  /// finalizes when the work unwinds (within one engine phase boundary).
  /// NotFound for unknown ids, FailedPrecondition for finished jobs.
  Status CancelJob(uint64_t id) SECRETA_EXCLUDES(mutex_);

  /// Blocks until the job is terminal; returns its final snapshot.
  Result<JobInfo> WaitJob(uint64_t id) SECRETA_EXCLUDES(mutex_);

  /// Blocks until no job is queued or running.
  void WaitAll() SECRETA_EXCLUDES(mutex_);

  /// Live-job counts (snapshots).
  size_t num_queued() const SECRETA_EXCLUDES(mutex_);
  size_t num_running() const SECRETA_EXCLUDES(mutex_);

  ServiceMetricsSnapshot MetricsSnapshot() const { return metrics_.Snapshot(); }
  const ResultCache& cache() const { return cache_; }
  const SchedulerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    uint64_t id = 0;
    std::string label;
    JobState state = JobState::kQueued;
    int priority = 0;
    uint64_t seq = 0;  // FIFO tiebreaker within a priority
    JobFn fn;
    CancellationToken token;
    bool timeout_fired = false;  // token fired by the deadline reaper
    bool cacheable = false;
    uint64_t cache_key = 0;
    std::string export_path;
    double timeout_seconds = 0;
    bool has_deadline = false;
    Clock::time_point deadline{};
    Clock::time_point submitted_at{};
    int max_retries = 0;
    double retry_initial_backoff = 0;
    double retry_max_backoff = 0;
    int attempts = 0;            // executed attempts
    bool retry_waiting = false;  // kQueued, parked until retry_at
    Clock::time_point retry_at{};
    uint64_t dispatch_order = 0;
    bool from_cache = false;
    double queue_seconds = 0;
    double run_seconds = 0;
    Status status;
    std::shared_ptr<const EvaluationReport> report;
  };

  struct QueueEntry {
    int priority;
    uint64_t seq;
    std::shared_ptr<Job> job;
    bool operator<(const QueueEntry& other) const {
      if (priority != other.priority) return priority > other.priority;
      return seq < other.seq;
    }
  };

  Result<uint64_t> Enqueue(std::shared_ptr<Job> job) SECRETA_EXCLUDES(mutex_);
  /// One worker turn: picks the best queued job and runs it to completion.
  void RunNext() SECRETA_EXCLUDES(mutex_);
  /// Parks a job that failed retryably until its backoff elapses (the reaper
  /// re-queues it), or times it out when the deadline would expire first.
  /// The job must be kRunning.
  void ScheduleRetry(const std::shared_ptr<Job>& job, const Status& cause)
      SECRETA_REQUIRES(mutex_);
  /// Marks a live job terminal and wakes waiters.
  void Finalize(Job* job, JobState state, Status status)
      SECRETA_REQUIRES(mutex_);
  void ReaperLoop() SECRETA_EXCLUDES(mutex_);
  /// Copies one job's state; the job is owned by jobs_, hence the lock.
  JobInfo Snapshot(const Job& job) const SECRETA_REQUIRES(mutex_);
  /// Refreshes the jobs.queue_depth / jobs.queue_age_seconds gauges; called
  /// wherever queue_ changes and on every reaper pass so the age keeps
  /// advancing while a job sits queued.
  void UpdateQueueGauges() const SECRETA_REQUIRES(mutex_);

  const SchedulerOptions options_;
  ServiceMetrics metrics_;
  ResultCache cache_;

  mutable Mutex mutex_;
  CondVar job_changed_;  // job reached a terminal state
  CondVar reaper_wake_;  // new deadline / shutdown
  std::unordered_map<uint64_t, std::shared_ptr<Job>> jobs_
      SECRETA_GUARDED_BY(mutex_);
  std::set<QueueEntry> queue_ SECRETA_GUARDED_BY(mutex_);
  uint64_t next_id_ SECRETA_GUARDED_BY(mutex_) = 1;
  uint64_t next_seq_ SECRETA_GUARDED_BY(mutex_) = 1;
  uint64_t dispatch_counter_ SECRETA_GUARDED_BY(mutex_) = 0;
  size_t running_ SECRETA_GUARDED_BY(mutex_) = 0;
  // Jobs parked in a retry backoff.
  size_t retry_waiting_ SECRETA_GUARDED_BY(mutex_) = 0;
  bool shutdown_ SECRETA_GUARDED_BY(mutex_) = false;

  std::thread reaper_;
  // Declared last: destroyed (joined) first, while the state above is alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace secreta

#endif  // SECRETA_SERVICE_JOB_SCHEDULER_H_
