// Content-addressed result cache for the job service. A run is fully
// determined by (algorithm configuration, dataset contents, query workload):
// the engine is deterministic for a fixed seed, so a completed
// EvaluationReport can be replayed for any later job with the same key.
// Bounded LRU with hit/miss counters; safe for concurrent use.

#ifndef SECRETA_SERVICE_RESULT_CACHE_H_
#define SECRETA_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/annotations.h"
#include "common/mutex.h"
#include "engine/evaluator.h"

namespace secreta {

/// Stable fingerprint of a dataset's full contents (schema + every cell +
/// every transaction). O(dataset size); callers submitting many jobs against
/// one dataset should compute it once and pass it through JobOptions.
uint64_t DatasetFingerprint(const Dataset& dataset);

/// Stable fingerprint of a query workload. Null/empty workloads hash to a
/// fixed sentinel distinct from any real workload.
uint64_t WorkloadFingerprint(const Workload* workload);

/// Combines the canonical config hash with the dataset and workload
/// fingerprints into the cache key of one run.
uint64_t RunCacheKey(const AlgorithmConfig& config, uint64_t dataset_fp,
                     uint64_t workload_fp);

/// \brief Bounded LRU cache from run key to completed report.
///
/// Reports are held via shared_ptr-to-const: a Lookup hit hands out the very
/// object that was inserted (bit-identical replay, no copy), and eviction
/// never invalidates a report a caller still holds.
class ResultCache {
 public:
  /// `capacity` = maximum retained entries; 0 disables caching entirely
  /// (every Lookup misses, Insert is a no-op).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached report (promoting it to most-recently-used) or null.
  /// Counts one hit or one miss.
  std::shared_ptr<const EvaluationReport> Lookup(uint64_t key)
      SECRETA_EXCLUDES(mutex_);

  /// Inserts/overwrites the entry, evicting least-recently-used entries
  /// beyond capacity.
  void Insert(uint64_t key, std::shared_ptr<const EvaluationReport> report)
      SECRETA_EXCLUDES(mutex_);

  size_t size() const SECRETA_EXCLUDES(mutex_);
  size_t capacity() const { return capacity_; }
  uint64_t hits() const SECRETA_EXCLUDES(mutex_);
  uint64_t misses() const SECRETA_EXCLUDES(mutex_);
  /// hits / (hits + misses); 0 before any lookup.
  double hit_rate() const SECRETA_EXCLUDES(mutex_);

 private:
  using Entry = std::pair<uint64_t, std::shared_ptr<const EvaluationReport>>;

  const size_t capacity_;
  mutable Mutex mutex_;
  std::list<Entry> lru_ SECRETA_GUARDED_BY(mutex_);  // front = MRU
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_
      SECRETA_GUARDED_BY(mutex_);
  uint64_t hits_ SECRETA_GUARDED_BY(mutex_) = 0;
  uint64_t misses_ SECRETA_GUARDED_BY(mutex_) = 0;
};

}  // namespace secreta

#endif  // SECRETA_SERVICE_RESULT_CACHE_H_
