// Dataset Editor backend (paper Fig. 2): load/edit/store datasets and render
// the attribute histograms shown in the GUI's bottom pane.

#ifndef SECRETA_FRONTEND_DATASET_EDITOR_H_
#define SECRETA_FRONTEND_DATASET_EDITOR_H_

#include <string>

#include "data/dataset.h"
#include "data/dataset_stats.h"

namespace secreta {

/// \brief Stateful wrapper over a Dataset with the GUI's edit operations.
class DatasetEditor {
 public:
  DatasetEditor() = default;
  explicit DatasetEditor(Dataset dataset) : dataset_(std::move(dataset)) {}

  /// Loads a CSV file with schema inference.
  Status Load(const std::string& path);
  /// Overwrites (or exports) the dataset as CSV.
  Status Save(const std::string& path) const;

  const Dataset& dataset() const { return dataset_; }
  Dataset& mutable_dataset() { return dataset_; }

  // GUI edit operations (thin forwards with name-based addressing).
  Status RenameAttribute(const std::string& old_name,
                         const std::string& new_name);
  Status SetCell(size_t row, const std::string& attribute,
                 const std::string& value);
  Status AddRow(const std::vector<std::string>& fields);
  Status DeleteRow(size_t row);
  Status DeleteAttribute(const std::string& name);

  /// Value-frequency histogram of the named attribute (transaction attribute
  /// yields the item histogram).
  Result<Histogram> HistogramOf(const std::string& attribute) const;

  /// Renders HistogramOf as ASCII bars (the Fig. 2 bottom pane).
  Result<std::string> HistogramText(const std::string& attribute,
                                    size_t width = 48) const;

 private:
  Result<size_t> AttrIndex(const std::string& name) const;

  Dataset dataset_;
};

}  // namespace secreta

#endif  // SECRETA_FRONTEND_DATASET_EDITOR_H_
