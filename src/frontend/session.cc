#include "frontend/session.h"

#include "data/column_provider.h"
#include "data/format.h"
#include "hierarchy/hierarchy_io.h"
#include "policy/policy_io.h"
#include "robust/checkpoint.h"

namespace secreta {

Status SecretaSession::LoadDatasetFile(const std::string& path) {
  if (LooksLikeBinaryDataset(path)) {
    // SBC1 binary columnar file (docs/FORMATS.md): decode through the
    // binary provider so dictionaries and ids match every other backend,
    // then hand the editor the same in-memory Dataset a CSV load produces.
    SECRETA_ASSIGN_OR_RETURN(std::unique_ptr<ColumnProvider> provider,
                             OpenBinaryProvider(path));
    SECRETA_ASSIGN_OR_RETURN(Dataset dataset, provider->Materialize());
    editor_ = DatasetEditor(std::move(dataset));
  } else {
    SECRETA_RETURN_IF_ERROR(editor_.Load(path));
  }
  column_hierarchies_.clear();
  item_hierarchy_.reset();
  privacy_ = PrivacyPolicy{};
  utility_ = UtilityPolicy{};
  rel_context_.reset();
  txn_context_.reset();
  return Status::OK();
}

Status SecretaSession::SetDataset(Dataset dataset) {
  editor_ = DatasetEditor(std::move(dataset));
  column_hierarchies_.clear();
  item_hierarchy_.reset();
  privacy_ = PrivacyPolicy{};
  utility_ = UtilityPolicy{};
  rel_context_.reset();
  txn_context_.reset();
  return Status::OK();
}

Status SecretaSession::LoadHierarchyFile(const std::string& attribute,
                                         const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(size_t col, dataset().ColumnByName(attribute));
  SECRETA_ASSIGN_OR_RETURN(Hierarchy h,
                           ::secreta::LoadHierarchyFile(path, attribute));
  if (column_hierarchies_.size() != dataset().num_relational()) {
    column_hierarchies_.assign(dataset().num_relational(), Hierarchy());
  }
  column_hierarchies_[col] = std::move(h);
  rel_context_.reset();
  return Status::OK();
}

Status SecretaSession::LoadItemHierarchyFile(const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(Hierarchy h, ::secreta::LoadHierarchyFile(path, "items"));
  item_hierarchy_ = std::move(h);
  txn_context_.reset();
  return Status::OK();
}

Status SecretaSession::AutoGenerateHierarchies(
    const HierarchyBuildOptions& options) {
  if (column_hierarchies_.size() != dataset().num_relational()) {
    column_hierarchies_.assign(dataset().num_relational(), Hierarchy());
  }
  for (size_t col = 0; col < dataset().num_relational(); ++col) {
    if (column_hierarchies_[col].finalized()) continue;  // keep loaded ones
    size_t attr = dataset().AttributeOfColumn(col);
    if (dataset().schema().attribute(attr).role !=
        AttributeRole::kQuasiIdentifier) {
      continue;
    }
    SECRETA_ASSIGN_OR_RETURN(column_hierarchies_[col],
                             BuildHierarchyForColumn(dataset(), col, options));
  }
  if (dataset().has_transaction() && !item_hierarchy_.has_value()) {
    SECRETA_ASSIGN_OR_RETURN(Hierarchy h, BuildItemHierarchy(dataset(), options));
    item_hierarchy_ = std::move(h);
  }
  rel_context_.reset();
  txn_context_.reset();
  return Status::OK();
}

Status SecretaSession::LoadPrivacyPolicyFile(const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(privacy_, ::secreta::LoadPrivacyPolicyFile(path, dataset()));
  return Status::OK();
}

Status SecretaSession::LoadUtilityPolicyFile(const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(utility_, ::secreta::LoadUtilityPolicyFile(path, dataset()));
  return Status::OK();
}

Status SecretaSession::GeneratePolicies(
    const PrivacyGenOptions& privacy_options,
    const UtilityGenOptions& utility_options) {
  SECRETA_ASSIGN_OR_RETURN(privacy_,
                           GeneratePrivacyPolicy(dataset(), privacy_options));
  const Hierarchy* item_h =
      item_hierarchy_.has_value() ? &*item_hierarchy_ : nullptr;
  SECRETA_ASSIGN_OR_RETURN(
      utility_, GenerateUtilityPolicy(dataset(), utility_options, item_h));
  return Status::OK();
}

Result<const Hierarchy*> SecretaSession::HierarchyOf(
    const std::string& attribute) const {
  SECRETA_ASSIGN_OR_RETURN(size_t col, dataset().ColumnByName(attribute));
  if (col >= column_hierarchies_.size() ||
      !column_hierarchies_[col].finalized()) {
    return Status::NotFound("no hierarchy configured for " + attribute);
  }
  return &column_hierarchies_[col];
}

Status SecretaSession::LoadWorkloadFile(const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(Workload workload, Workload::LoadFile(path));
  if (has_dataset()) {
    SECRETA_RETURN_IF_ERROR(workload.ValidateAgainst(dataset()));
  }
  workload_ = std::move(workload);
  return Status::OK();
}

Status SecretaSession::GenerateQueryWorkload(const WorkloadGenOptions& options) {
  SECRETA_ASSIGN_OR_RETURN(workload_, GenerateWorkload(dataset(), options));
  return Status::OK();
}

Status SecretaSession::BindContexts(bool need_relational,
                                    bool need_transaction) {
  rel_context_.reset();
  txn_context_.reset();
  if (need_relational) {
    if (column_hierarchies_.size() != dataset().num_relational()) {
      return Status::FailedPrecondition(
          "no hierarchies configured; load them or call "
          "AutoGenerateHierarchies()");
    }
    SECRETA_ASSIGN_OR_RETURN(
        RelationalContext ctx,
        RelationalContext::Create(dataset(), column_hierarchies_));
    rel_context_ = std::move(ctx);
  }
  if (need_transaction) {
    const Hierarchy* item_h =
        item_hierarchy_.has_value() ? &*item_hierarchy_ : nullptr;
    SECRETA_ASSIGN_OR_RETURN(TransactionContext ctx,
                             TransactionContext::Create(dataset(), item_h));
    txn_context_ = std::move(ctx);
  }
  return Status::OK();
}

Result<EngineInputs> SecretaSession::MakeInputs(const AlgorithmConfig& config) {
  bool need_rel = config.mode != AnonMode::kTransaction;
  bool need_txn = config.mode != AnonMode::kRelational;
  SECRETA_RETURN_IF_ERROR(BindContexts(need_rel, need_txn));
  EngineInputs inputs;
  inputs.dataset = &dataset();
  inputs.relational = rel_context_.has_value() ? &*rel_context_ : nullptr;
  inputs.transaction = txn_context_.has_value() ? &*txn_context_ : nullptr;
  inputs.privacy = privacy_.empty() ? nullptr : &privacy_;
  inputs.utility = utility_.empty() ? nullptr : &utility_;
  inputs.memory = memory_budget_;
  return inputs;
}

Result<EngineInputs> SecretaSession::PrepareInputs(
    const AlgorithmConfig& config) {
  bool need_rel = config.mode != AnonMode::kTransaction;
  bool need_txn = config.mode != AnonMode::kRelational;
  // Bind only what is missing: re-binding would move the context objects and
  // dangle the EngineInputs of jobs already in flight.
  if (need_rel && !rel_context_.has_value()) {
    if (column_hierarchies_.size() != dataset().num_relational()) {
      return Status::FailedPrecondition(
          "no hierarchies configured; load them or call "
          "AutoGenerateHierarchies()");
    }
    SECRETA_ASSIGN_OR_RETURN(
        RelationalContext ctx,
        RelationalContext::Create(dataset(), column_hierarchies_));
    rel_context_ = std::move(ctx);
  }
  if (need_txn && !txn_context_.has_value()) {
    const Hierarchy* item_h =
        item_hierarchy_.has_value() ? &*item_hierarchy_ : nullptr;
    SECRETA_ASSIGN_OR_RETURN(TransactionContext ctx,
                             TransactionContext::Create(dataset(), item_h));
    txn_context_ = std::move(ctx);
  }
  EngineInputs inputs;
  inputs.dataset = &dataset();
  inputs.relational =
      need_rel && rel_context_.has_value() ? &*rel_context_ : nullptr;
  inputs.transaction =
      need_txn && txn_context_.has_value() ? &*txn_context_ : nullptr;
  inputs.privacy = privacy_.empty() ? nullptr : &privacy_;
  inputs.utility = utility_.empty() ? nullptr : &utility_;
  inputs.memory = memory_budget_;
  return inputs;
}

Result<EvaluationReport> SecretaSession::Evaluate(const AlgorithmConfig& config) {
  SECRETA_ASSIGN_OR_RETURN(EngineInputs inputs, MakeInputs(config));
  const Workload* workload = workload_.empty() ? nullptr : &workload_;
  return EvaluateMethod(inputs, config, workload);
}

Result<SweepResult> SecretaSession::EvaluateSweep(
    const AlgorithmConfig& config, const ParamSweep& sweep,
    const ProgressCallback& progress, const std::string& checkpoint_path) {
  SECRETA_ASSIGN_OR_RETURN(EngineInputs inputs, MakeInputs(config));
  const Workload* workload = workload_.empty() ? nullptr : &workload_;
  std::unique_ptr<CheckpointLog> checkpoint;
  if (!checkpoint_path.empty()) {
    SECRETA_ASSIGN_OR_RETURN(
        checkpoint, OpenCheckpointForRun(checkpoint_path, inputs, workload));
  }
  return RunSweep(inputs, config, sweep, workload, progress,
                  /*config_index=*/0, /*shared_eval=*/nullptr,
                  checkpoint.get());
}

Result<Dataset> SecretaSession::Materialize(const EvaluationReport& report) {
  SECRETA_ASSIGN_OR_RETURN(EngineInputs inputs, MakeInputs(report.run.config));
  return MaterializeRun(inputs, report.run);
}

Result<std::vector<MappingEntry>> SecretaSession::CollectMappings(
    const EvaluationReport& report) {
  SECRETA_ASSIGN_OR_RETURN(EngineInputs inputs, MakeInputs(report.run.config));
  std::vector<MappingEntry> entries;
  if (report.run.relational.has_value() && inputs.relational != nullptr) {
    auto rel = CollectRelationalMapping(*inputs.relational,
                                        *report.run.relational);
    entries.insert(entries.end(), rel.begin(), rel.end());
  }
  if (report.run.transaction.has_value()) {
    std::vector<std::vector<ItemId>> original;
    original.reserve(dataset().num_records());
    for (size_t r = 0; r < dataset().num_records(); ++r) {
      original.push_back(dataset().items(r).raw());
    }
    auto txn = CollectTransactionMapping(*report.run.transaction, original,
                                         dataset().item_dictionary());
    entries.insert(entries.end(), txn.begin(), txn.end());
  }
  if (entries.empty()) {
    return Status::FailedPrecondition("the run produced no mappings");
  }
  return entries;
}

Result<std::vector<SweepResult>> SecretaSession::Compare(
    const std::vector<AlgorithmConfig>& configs, const ParamSweep& sweep,
    const CompareOptions& options) {
  if (configs.empty()) {
    return Status::InvalidArgument("no configurations to compare");
  }
  bool need_rel = false;
  bool need_txn = false;
  for (const auto& config : configs) {
    need_rel = need_rel || config.mode != AnonMode::kTransaction;
    need_txn = need_txn || config.mode != AnonMode::kRelational;
  }
  SECRETA_RETURN_IF_ERROR(BindContexts(need_rel, need_txn));
  EngineInputs inputs;
  inputs.dataset = &dataset();
  inputs.relational = rel_context_.has_value() ? &*rel_context_ : nullptr;
  inputs.transaction = txn_context_.has_value() ? &*txn_context_ : nullptr;
  inputs.privacy = privacy_.empty() ? nullptr : &privacy_;
  inputs.utility = utility_.empty() ? nullptr : &utility_;
  inputs.memory = memory_budget_;
  const Workload* workload = workload_.empty() ? nullptr : &workload_;
  return CompareMethods(inputs, configs, sweep, workload, options);
}

}  // namespace secreta
