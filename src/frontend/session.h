// SecretaSession: the headless counterpart of the SECRETA GUI. It holds the
// loaded dataset, hierarchies (Configuration Editor), policies, and query
// workload (Queries Editor), and exposes the two operation modes selected by
// the Experimentation Interface Selector: Evaluation (one method) and
// Comparison (several methods side by side).

#ifndef SECRETA_FRONTEND_SESSION_H_
#define SECRETA_FRONTEND_SESSION_H_

#include <optional>
#include <string>
#include <vector>

#include "engine/comparator.h"
#include "engine/evaluator.h"
#include "engine/experiment.h"
#include "export/mapping_export.h"
#include "frontend/dataset_editor.h"
#include "hierarchy/hierarchy_builder.h"
#include "policy/policy_generator.h"
#include "query/workload_generator.h"

namespace secreta {

class SecretaSession {
 public:
  // ---- Dataset Editor -------------------------------------------------------

  /// Loads a dataset, sniffing the backend from the file magic: SBC1 binary
  /// columnar files decode through the binary provider, anything else parses
  /// as CSV (schema inferred). Invalidates hierarchies/policies.
  Status LoadDatasetFile(const std::string& path);
  /// Installs an in-memory dataset. Invalidates hierarchies/policies.
  Status SetDataset(Dataset dataset);

  bool has_dataset() const { return editor_.dataset().num_records() > 0; }
  const Dataset& dataset() const { return editor_.dataset(); }
  DatasetEditor& editor() { return editor_; }

  // ---- Configuration Editor -------------------------------------------------

  /// Loads the hierarchy of one relational attribute from a file.
  Status LoadHierarchyFile(const std::string& attribute,
                           const std::string& path);
  /// Loads the transaction item hierarchy from a file.
  Status LoadItemHierarchyFile(const std::string& path);
  /// Auto-generates all missing hierarchies (QID columns + item domain).
  Status AutoGenerateHierarchies(const HierarchyBuildOptions& options = {});

  Status LoadPrivacyPolicyFile(const std::string& path);
  Status LoadUtilityPolicyFile(const std::string& path);
  Status GeneratePolicies(const PrivacyGenOptions& privacy_options,
                          const UtilityGenOptions& utility_options);
  const PrivacyPolicy& privacy_policy() const { return privacy_; }
  const UtilityPolicy& utility_policy() const { return utility_; }

  /// Hierarchy of a relational attribute (after load/generate).
  Result<const Hierarchy*> HierarchyOf(const std::string& attribute) const;
  const std::optional<Hierarchy>& item_hierarchy() const {
    return item_hierarchy_;
  }

  // ---- Queries Editor --------------------------------------------------------

  Status LoadWorkloadFile(const std::string& path);
  Status GenerateQueryWorkload(const WorkloadGenOptions& options);
  Workload& mutable_workload() { return workload_; }
  const Workload& workload() const { return workload_; }

  // ---- Evaluation mode -------------------------------------------------------

  /// Runs one configuration with all metrics (single-parameter execution).
  Result<EvaluationReport> Evaluate(const AlgorithmConfig& config);
  /// Varying-parameter execution for one configuration. `progress`
  /// (optional) fires after every finished point — the GUI's progressive
  /// plotting hook. `checkpoint_path` (optional) enables crash-resume: every
  /// finished point is appended to the file, and a restart with the same
  /// path replays completed points bit-identically instead of recomputing
  /// them (see robust/checkpoint.h for the fingerprint validation rules).
  Result<SweepResult> EvaluateSweep(const AlgorithmConfig& config,
                                    const ParamSweep& sweep,
                                    const ProgressCallback& progress = nullptr,
                                    const std::string& checkpoint_path = "");

  /// Materializes the anonymized dataset of a report (for display/export).
  Result<Dataset> Materialize(const EvaluationReport& report);

  /// Collects the generalization mapping (original value/item -> published
  /// label, with counts) of a report, for export via ExportMapping().
  Result<std::vector<MappingEntry>> CollectMappings(
      const EvaluationReport& report);

  // ---- Comparison mode -------------------------------------------------------

  Result<std::vector<SweepResult>> Compare(
      const std::vector<AlgorithmConfig>& configs, const ParamSweep& sweep,
      const CompareOptions& options = {});

  // ---- Job service -----------------------------------------------------------

  /// Engine inputs for asynchronous execution (JobScheduler::Submit). Unlike
  /// the synchronous entry points — which rebuild contexts on every call so
  /// edits are always reflected — this binds only the contexts that are
  /// missing, keeping previously returned pointers stable across
  /// submissions. The returned pointers reference session-owned state: they
  /// stay valid until the dataset or a hierarchy is (re)loaded, edited, or
  /// regenerated; don't do any of that while jobs using them are in flight.
  Result<EngineInputs> PrepareInputs(const AlgorithmConfig& config);

  /// The session's query workload for job submission, or null when empty.
  /// Same lifetime rules as PrepareInputs.
  const Workload* workload_or_null() const {
    return workload_.empty() ? nullptr : &workload_;
  }

  // ---- Robustness ------------------------------------------------------------

  /// Installs a soft memory budget applied to every subsequent engine entry
  /// (see robust/memory_budget.h): when a charge is rejected the engine
  /// sheds optional work and flags the report as degraded instead of
  /// failing. Not owned; pass nullptr to remove. The budget must outlive
  /// every run that uses it.
  void set_memory_budget(MemoryBudget* budget) { memory_budget_ = budget; }
  MemoryBudget* memory_budget() const { return memory_budget_; }

 private:
  /// (Re)binds contexts to the current dataset + hierarchies. Called before
  /// every engine entry so edits are always reflected.
  Status BindContexts(bool need_relational, bool need_transaction);
  Result<EngineInputs> MakeInputs(const AlgorithmConfig& config);

  DatasetEditor editor_;
  std::vector<Hierarchy> column_hierarchies_;  // per relational column
  std::optional<Hierarchy> item_hierarchy_;
  PrivacyPolicy privacy_;
  UtilityPolicy utility_;
  Workload workload_;
  // Rebuilt by BindContexts; must not outlive dataset/hierarchy edits.
  std::optional<RelationalContext> rel_context_;
  std::optional<TransactionContext> txn_context_;
  MemoryBudget* memory_budget_ = nullptr;  // not owned
};

}  // namespace secreta

#endif  // SECRETA_FRONTEND_SESSION_H_
