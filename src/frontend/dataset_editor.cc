#include "frontend/dataset_editor.h"

#include "export/exporter.h"
#include "viz/ascii_plot.h"

namespace secreta {

Status DatasetEditor::Load(const std::string& path) {
  SECRETA_ASSIGN_OR_RETURN(dataset_, Dataset::LoadFile(path));
  return Status::OK();
}

Status DatasetEditor::Save(const std::string& path) const {
  return ExportDataset(dataset_, path);
}

Result<size_t> DatasetEditor::AttrIndex(const std::string& name) const {
  auto index = dataset_.schema().FindAttribute(name);
  if (!index.has_value()) return Status::NotFound("no attribute named " + name);
  return *index;
}

Status DatasetEditor::RenameAttribute(const std::string& old_name,
                                      const std::string& new_name) {
  SECRETA_ASSIGN_OR_RETURN(size_t index, AttrIndex(old_name));
  return dataset_.RenameAttribute(index, new_name);
}

Status DatasetEditor::SetCell(size_t row, const std::string& attribute,
                              const std::string& value) {
  SECRETA_ASSIGN_OR_RETURN(size_t index, AttrIndex(attribute));
  return dataset_.SetCell(row, index, value);
}

Status DatasetEditor::AddRow(const std::vector<std::string>& fields) {
  return dataset_.AddRow(fields);
}

Status DatasetEditor::DeleteRow(size_t row) { return dataset_.DeleteRow(row); }

Status DatasetEditor::DeleteAttribute(const std::string& name) {
  SECRETA_ASSIGN_OR_RETURN(size_t index, AttrIndex(name));
  return dataset_.RemoveAttribute(index);
}

Result<Histogram> DatasetEditor::HistogramOf(const std::string& attribute) const {
  SECRETA_ASSIGN_OR_RETURN(size_t index, AttrIndex(attribute));
  if (dataset_.schema().attribute(index).type == AttributeType::kTransaction) {
    return ItemHistogram(dataset_);
  }
  SECRETA_ASSIGN_OR_RETURN(size_t col, dataset_.ColumnOf(index));
  return ValueHistogram(dataset_, col);
}

Result<std::string> DatasetEditor::HistogramText(const std::string& attribute,
                                                 size_t width) const {
  SECRETA_ASSIGN_OR_RETURN(Histogram hist, HistogramOf(attribute));
  PlotOptions options;
  options.width = width;
  options.title = "frequency of " + attribute;
  return RenderHistogram(hist, options);
}

}  // namespace secreta
