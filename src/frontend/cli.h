// Command-line frontend: a scriptable REPL exposing the complete SECRETA
// workflow (Dataset / Configuration / Queries Editors, Evaluation and
// Comparison modes, export). This is the executable face of the reproduction
// — the published system's Qt GUI mapped 1:1 onto commands.

#ifndef SECRETA_FRONTEND_CLI_H_
#define SECRETA_FRONTEND_CLI_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "frontend/session.h"
#include "service/job_scheduler.h"

namespace secreta {

/// \brief Parses and executes SECRETA commands against a session.
///
/// Commands (one per line; `#` starts a comment):
///   help                               list commands
///   quit                               leave the REPL
///   generate <n> [seed]                synthesize an RT-dataset
///   load <path> / save <path>          dataset I/O (load sniffs the file
///                                      magic: SBC1 binary or CSV)
///   convert <in> <out> [shards=N] [by=range|hash] [salt=S] [no-postings]
///                                      write an SBC1 binary columnar file
///                                      (docs/FORMATS.md) partitioned for
///                                      out-of-core sharded runs
///   info                               dataset summary
///   hist <attribute>                   ASCII histogram
///   set-cell <row> <attr> <value...>   edit a cell
///   rename-attr <old> <new>            rename an attribute
///   del-row <row>                      delete a record
///   hierarchies auto [fanout]          auto-generate all hierarchies
///   hierarchy load <attr> <path>       load one hierarchy
///   hierarchy save <attr> <path>       export one hierarchy
///   policies auto                      generate privacy+utility policies
///   policy load-privacy <path> / load-utility <path>
///   workload gen <queries> / load <path> / save <path>
///   mode rt|relational|transaction     select what to anonymize
///   algo rel <name> / algo txn <name>  pick algorithms
///   merger <Rmerger|Tmerger|RTmerger>  pick the bounding method
///   param <name> <value>               set k / m / delta / ...
///   algorithms                         list registered algorithms
///   run                                Evaluation mode, single execution
///   shard-run [shards=N] [by=range|hash] [salt=S] [input=PATH]
///             [checkpoint=PATH] [output=PATH] [no-materialize] [no-audit]
///                                      partition-parallel anonymization of
///                                      the current config: each shard runs
///                                      independently, outputs merge into
///                                      one release in row order; input=
///                                      reads straight from a CSV/SBC1 file
///                                      (SBC1 = out-of-core, one mmap window
///                                      per shard), checkpoint= resumes
///                                      interrupted runs byte-identically
///   audit <k> <m> [global]             recipient-side guarantee audit of
///                                      the last run's output
///   sweep <param> <start> <end> <step> [checkpoint=PATH]
///                                      Evaluation mode, varying parameter;
///                                      with a checkpoint file, completed
///                                      points are replayed on restart
///   add-config                         push current config to the
///                                      experimenter area
///   configs                            list queued configs
///   compare <param> <start> <end> <step> [checkpoint=PATH]
///                                      Comparison mode over the queue
///                                      (checkpoint covers the whole grid)
///   save-output <path>                 export last anonymized dataset
///   export-json <path>                 export last report/comparison as JSON
///   submit [prio=P] [timeout=S] [retries=N] [backoff=S] [key=value ...]
///                                      queue an async evaluation job (uses
///                                      the current config unless overridden;
///                                      retries re-queue transient failures
///                                      with exponential backoff)
///   jobs                               list submitted jobs
///   job <id>                           one job's status (+ report when done)
///   cancel <id>                        cancel a queued/running job
///   wait [<id>]                        block until one job / all jobs finish
///   metrics [text]                     unified metrics (global registry +
///                                      job service) as JSON, or plain text
///   metrics --watch <s> [n]            n rounds of per-interval deltas and
///                                      rates (counters/s, gauge moves)
///   trace on|off                       toggle the span tracer
///   trace save <path>                  write collected spans as Chrome
///                                      trace-event JSON (Perfetto-ready)
class CommandLineInterface {
 public:
  explicit CommandLineInterface(std::ostream* out) : out_(out) {}

  /// Executes one command line. Parse errors and failed operations return a
  /// non-OK status (the REPL prints and continues; scripts may abort).
  Status Execute(const std::string& line);

  /// True once `quit` has been executed.
  bool done() const { return done_; }

  /// Reads commands from `in` until EOF or `quit`. Returns the number of
  /// failed commands.
  size_t RunScript(std::istream& in, bool stop_on_error);

  SecretaSession& session() { return session_; }
  static std::string HelpText();

 private:
  Status Dispatch(const std::vector<std::string>& args);
  Status RequireDataset() const;
  /// Engine inputs handed to async jobs point into session state; refuse to
  /// mutate that state while jobs are queued or running.
  Status RequireNoLiveJobs() const;
  Status CmdGenerate(const std::vector<std::string>& args);
  Status CmdHierarchy(const std::vector<std::string>& args);
  Status CmdPolicy(const std::vector<std::string>& args);
  Status CmdWorkload(const std::vector<std::string>& args);
  Status CmdRun();
  Status CmdConvert(const std::vector<std::string>& args);
  Status CmdShardRun(const std::vector<std::string>& args);
  Status CmdSweep(const std::vector<std::string>& args);
  Status CmdCompare(const std::vector<std::string>& args);
  Status CmdSubmit(const std::vector<std::string>& args);
  Status CmdJob(const std::vector<std::string>& args);
  Status CmdWaitJobs(const std::vector<std::string>& args);
  Status CmdMetrics(const std::vector<std::string>& args);
  Status CmdTrace(const std::vector<std::string>& args);
  void PrintJobLine(const JobInfo& info);
  void PrintReport(const EvaluationReport& report);

  SecretaSession session_;
  std::ostream* out_;
  bool done_ = false;
  AlgorithmConfig current_;
  std::vector<AlgorithmConfig> queued_;
  std::optional<EvaluationReport> last_report_;
  std::optional<SweepResult> last_sweep_;
  std::vector<SweepResult> last_comparison_;
  // Created lazily by the first `submit`; lives for the session.
  std::unique_ptr<JobScheduler> scheduler_;
};

}  // namespace secreta

#endif  // SECRETA_FRONTEND_CLI_H_
