#include "frontend/cli.h"

#include <chrono>
#include <istream>
#include <ostream>
#include <thread>

#include "common/string_util.h"
#include "core/audit.h"
#include "data/column_provider.h"
#include "data/format.h"
#include "data/mmap_file.h"
#include "datagen/synthetic.h"
#include "engine/sharded_runner.h"
#include "engine/config_io.h"
#include "engine/registry.h"
#include "export/mapping_export.h"
#include "metrics/frequency.h"
#include "export/exporter.h"
#include "export/json_export.h"
#include "hierarchy/hierarchy_io.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "viz/ascii_plot.h"

namespace secreta {

namespace {

Status Arity(const std::vector<std::string>& args, size_t min_args,
             size_t max_args = SIZE_MAX) {
  size_t given = args.size() - 1;  // exclude the command itself
  if (given < min_args || given > max_args) {
    return Status::InvalidArgument(
        StrFormat("'%s' expects %zu%s argument(s), got %zu", args[0].c_str(),
                  min_args, max_args == min_args ? "" : "+", given));
  }
  return Status::OK();
}

}  // namespace

std::string CommandLineInterface::HelpText() {
  return
      "dataset:   generate <n> [seed] | load <path> | save <path> | info |\n"
      "           hist <attr> | set-cell <row> <attr> <value...> |\n"
      "           rename-attr <old> <new> | del-row <row> |\n"
      "           convert <in> <out> [shards=N] [by=range|hash] [salt=S]\n"
      "                   [no-postings]\n"
      "config:    hierarchies auto [fanout] | hierarchy load <attr> <path> |\n"
      "           hierarchy save <attr> <path> | hierarchy show <attr> |\n"
      "           policies auto | policy load-privacy <path> |\n"
      "           policy load-utility <path>\n"
      "queries:   workload gen <n> | workload load <path> | workload save "
      "<path>\n"
      "method:    mode rt|relational|transaction | algo rel <name> |\n"
      "           algo txn <name> | merger <name> | param <name> <value> |\n"
      "           config [key=value ...] | algorithms\n"
      "evaluate:  run | sweep <param> <start> <end> <step> "
      "[checkpoint=PATH] |\n"
      "           audit <k> <m> [global] | classes\n"
      "sharded:   shard-run [shards=N] [by=range|hash] [salt=S]\n"
      "                     [input=PATH] [checkpoint=PATH] [output=PATH]\n"
      "                     [no-materialize] [no-audit]\n"
      "compare:   add-config | configs |\n"
      "           compare <param> <start> <end> <step> [checkpoint=PATH]\n"
      "export:    save-output <path> | export-json <path> |\n"
      "           save-mapping <path>\n"
      "service:   submit [prio=P] [timeout=S] [retries=N] [backoff=S]\n"
      "                  [key=value ...] | jobs |\n"
      "           job <id> | cancel <id> | wait [<id>] |\n"
      "           metrics [text | --watch <seconds> [iterations]]\n"
      "observe:   trace on | trace off | trace save <path>\n"
      "misc:      demo | help | quit\n";
}

Status CommandLineInterface::Execute(const std::string& line) {
  std::string trimmed(Trim(line));
  if (trimmed.empty() || trimmed[0] == '#') return Status::OK();
  return Dispatch(SplitWhitespace(trimmed));
}

size_t CommandLineInterface::RunScript(std::istream& in, bool stop_on_error) {
  size_t failures = 0;
  std::string line;
  while (!done_ && std::getline(in, line)) {
    Status status = Execute(line);
    if (!status.ok()) {
      ++failures;
      *out_ << "error: " << status.ToString() << "\n";
      if (stop_on_error) break;
    }
  }
  return failures;
}

Status CommandLineInterface::RequireDataset() const {
  if (!session_.has_dataset()) {
    return Status::FailedPrecondition("no dataset loaded (use load/generate)");
  }
  return Status::OK();
}

Status CommandLineInterface::RequireNoLiveJobs() const {
  if (scheduler_ != nullptr &&
      scheduler_->num_queued() + scheduler_->num_running() > 0) {
    return Status::FailedPrecondition(
        "jobs are in flight and hold pointers into the session; 'wait' for "
        "them or 'cancel' them first");
  }
  return Status::OK();
}

Status CommandLineInterface::Dispatch(const std::vector<std::string>& args) {
  const std::string& cmd = args[0];
  // These commands rebuild or mutate the session state that in-flight jobs
  // point into; refuse them while jobs are live.
  for (const char* mutating :
       {"generate", "load", "set-cell", "rename-attr", "del-row",
        "hierarchies", "hierarchy", "policies", "policy", "workload", "run",
        "sweep", "compare"}) {
    if (cmd == mutating) {
      SECRETA_RETURN_IF_ERROR(RequireNoLiveJobs());
      break;
    }
  }
  if (cmd == "help") {
    *out_ << HelpText();
    return Status::OK();
  }
  if (cmd == "quit" || cmd == "exit") {
    done_ = true;
    return Status::OK();
  }
  if (cmd == "demo") {
    // The paper's Sec. 3 walkthrough as one command: data, configuration,
    // queries, one evaluation, one sweep.
    for (const char* step :
         {"generate 800 2014", "hierarchies auto", "workload gen 40",
          "config mode=rt rel=Cluster txn=Apriori merger=RTmerger k=5 m=2 "
          "delta=0.35",
          "run", "classes", "sweep delta 0.15 0.55 0.2"}) {
      *out_ << "demo> " << step << "\n";
      SECRETA_RETURN_IF_ERROR(Execute(step));
    }
    return Status::OK();
  }
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "load") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    SECRETA_RETURN_IF_ERROR(session_.LoadDatasetFile(args[1]));
    *out_ << "loaded " << session_.dataset().num_records() << " records\n";
    return Status::OK();
  }
  if (cmd == "save") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    SECRETA_RETURN_IF_ERROR(RequireDataset());
    return session_.editor().Save(args[1]);
  }
  if (cmd == "info") {
    SECRETA_RETURN_IF_ERROR(RequireDataset());
    const Dataset& ds = session_.dataset();
    *out_ << ds.num_records() << " records, "
          << ds.schema().num_attributes() << " attributes\n";
    for (const auto& spec : ds.schema().attributes()) {
      *out_ << "  " << spec.name << " (" << AttributeTypeToString(spec.type)
            << ", " << AttributeRoleToString(spec.role) << ")\n";
    }
    if (ds.has_transaction()) {
      *out_ << "  item domain: " << ds.item_dictionary().size() << " items\n";
    }
    return Status::OK();
  }
  if (cmd == "hist") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    SECRETA_RETURN_IF_ERROR(RequireDataset());
    SECRETA_ASSIGN_OR_RETURN(std::string text,
                             session_.editor().HistogramText(args[1]));
    *out_ << text;
    return Status::OK();
  }
  if (cmd == "set-cell") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 3));
    SECRETA_RETURN_IF_ERROR(RequireDataset());
    SECRETA_ASSIGN_OR_RETURN(int64_t row, ParseInt(args[1]));
    std::vector<std::string> value_parts(args.begin() + 3, args.end());
    return session_.editor().SetCell(static_cast<size_t>(row), args[2],
                                     Join(value_parts, " "));
  }
  if (cmd == "rename-attr") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 2, 2));
    SECRETA_RETURN_IF_ERROR(RequireDataset());
    return session_.editor().RenameAttribute(args[1], args[2]);
  }
  if (cmd == "del-row") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    SECRETA_RETURN_IF_ERROR(RequireDataset());
    SECRETA_ASSIGN_OR_RETURN(int64_t row, ParseInt(args[1]));
    return session_.editor().DeleteRow(static_cast<size_t>(row));
  }
  if (cmd == "hierarchies" || cmd == "hierarchy") return CmdHierarchy(args);
  if (cmd == "policies" || cmd == "policy") return CmdPolicy(args);
  if (cmd == "workload") return CmdWorkload(args);
  if (cmd == "mode") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    if (args[1] == "rt") {
      current_.mode = AnonMode::kRt;
    } else if (args[1] == "relational") {
      current_.mode = AnonMode::kRelational;
    } else if (args[1] == "transaction") {
      current_.mode = AnonMode::kTransaction;
    } else {
      return Status::InvalidArgument("unknown mode: " + args[1]);
    }
    return Status::OK();
  }
  if (cmd == "algo") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 2, 2));
    if (args[1] == "rel") {
      SECRETA_RETURN_IF_ERROR(MakeRelationalAnonymizer(args[2]).status());
      current_.relational_algorithm = args[2];
    } else if (args[1] == "txn") {
      SECRETA_RETURN_IF_ERROR(MakeTransactionAnonymizer(args[2]).status());
      current_.transaction_algorithm = args[2];
    } else {
      return Status::InvalidArgument("usage: algo rel|txn <name>");
    }
    return Status::OK();
  }
  if (cmd == "merger") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    SECRETA_ASSIGN_OR_RETURN(current_.merger, ParseMergerKind(args[1]));
    return Status::OK();
  }
  if (cmd == "param") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 2, 2));
    SECRETA_ASSIGN_OR_RETURN(double value, ParseDouble(args[2]));
    SECRETA_RETURN_IF_ERROR(current_.params.Set(args[1], value));
    return current_.params.Validate();
  }
  if (cmd == "config") {
    if (args.size() == 1) {
      *out_ << FormatAlgorithmConfig(current_) << "\n";
      return Status::OK();
    }
    std::vector<std::string> spec_parts(args.begin() + 1, args.end());
    SECRETA_ASSIGN_OR_RETURN(current_,
                             ParseAlgorithmConfig(Join(spec_parts, " ")));
    *out_ << "config: " << current_.Label() << "\n";
    return Status::OK();
  }
  if (cmd == "classes") {
    if (!last_report_.has_value() ||
        !last_report_->run.relational.has_value()) {
      return Status::FailedPrecondition(
          "no relational run to analyze: run a method first");
    }
    EquivalenceClasses classes =
        GroupByRecoding(*last_report_->run.relational);
    PlotOptions options;
    options.title = StrFormat("equivalence-class sizes (%zu classes)",
                              classes.num_groups());
    *out_ << RenderHistogram(ClassSizeHistogram(classes), options);
    return Status::OK();
  }
  if (cmd == "algorithms") {
    *out_ << "relational:";
    for (const auto& name : RelationalAlgorithmNames()) *out_ << " " << name;
    *out_ << "\ntransaction:";
    for (const auto& name : TransactionAlgorithmNames()) *out_ << " " << name;
    *out_ << "\nbounding:";
    for (const auto& name : MergerNames()) *out_ << " " << name;
    *out_ << "\n";
    return Status::OK();
  }
  if (cmd == "audit") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 2, 3));
    if (!last_report_.has_value()) {
      return Status::FailedPrecondition("nothing to audit: run a method first");
    }
    SECRETA_ASSIGN_OR_RETURN(int64_t k, ParseInt(args[1]));
    SECRETA_ASSIGN_OR_RETURN(int64_t m, ParseInt(args[2]));
    bool per_class = args.size() <= 3 || args[3] != "global";
    SECRETA_ASSIGN_OR_RETURN(Dataset anonymized,
                             session_.Materialize(*last_report_));
    SECRETA_ASSIGN_OR_RETURN(
        AuditReport audit,
        AuditAnonymizedDataset(anonymized, static_cast<int>(k),
                               static_cast<int>(m), per_class));
    *out_ << "audit: k-anonymity " << (audit.k_anonymous ? "OK" : "VIOLATED")
          << ", k^m " << (audit.km_anonymous ? "OK" : "VIOLATED")
          << " (min class " << audit.min_class_size << ") — " << audit.details
          << "\n";
    return Status::OK();
  }
  if (cmd == "run") return CmdRun();
  if (cmd == "convert") return CmdConvert(args);
  if (cmd == "shard-run") return CmdShardRun(args);
  if (cmd == "sweep") return CmdSweep(args);
  if (cmd == "add-config") {
    queued_.push_back(current_);
    *out_ << "queued config " << queued_.size() << ": " << current_.Label()
          << "\n";
    return Status::OK();
  }
  if (cmd == "configs") {
    for (size_t i = 0; i < queued_.size(); ++i) {
      *out_ << "  [" << i + 1 << "] " << queued_[i].Label() << "\n";
    }
    if (queued_.empty()) *out_ << "  (none)\n";
    return Status::OK();
  }
  if (cmd == "compare") return CmdCompare(args);
  if (cmd == "save-output") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    if (!last_report_.has_value()) {
      return Status::FailedPrecondition("nothing to save: run a method first");
    }
    SECRETA_ASSIGN_OR_RETURN(Dataset anonymized,
                             session_.Materialize(*last_report_));
    SECRETA_RETURN_IF_ERROR(ExportDataset(anonymized, args[1]));
    *out_ << "anonymized dataset written to " << args[1] << "\n";
    return Status::OK();
  }
  if (cmd == "save-mapping") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    if (!last_report_.has_value()) {
      return Status::FailedPrecondition("nothing to export: run a method first");
    }
    SECRETA_ASSIGN_OR_RETURN(std::vector<MappingEntry> entries,
                             session_.CollectMappings(*last_report_));
    SECRETA_RETURN_IF_ERROR(ExportMapping(entries, args[1]));
    *out_ << entries.size() << " mapping rows written to " << args[1] << "\n";
    return Status::OK();
  }
  if (cmd == "export-json") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    std::string json;
    if (!last_comparison_.empty()) {
      json = ComparisonToJson(last_comparison_);
    } else if (last_sweep_.has_value()) {
      json = SweepResultToJson(*last_sweep_);
    } else if (last_report_.has_value()) {
      json = EvaluationReportToJson(*last_report_);
    } else {
      return Status::FailedPrecondition("nothing to export: run a method first");
    }
    SECRETA_RETURN_IF_ERROR(WriteJsonFile(json, args[1]));
    *out_ << "results written to " << args[1] << "\n";
    return Status::OK();
  }
  if (cmd == "submit") return CmdSubmit(args);
  if (cmd == "jobs") {
    if (scheduler_ == nullptr) {
      *out_ << "  (no jobs submitted)\n";
      return Status::OK();
    }
    for (const JobInfo& info : scheduler_->ListJobs()) PrintJobLine(info);
    return Status::OK();
  }
  if (cmd == "job") return CmdJob(args);
  if (cmd == "cancel") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    if (scheduler_ == nullptr) {
      return Status::FailedPrecondition("no jobs submitted yet");
    }
    SECRETA_ASSIGN_OR_RETURN(int64_t id, ParseInt(args[1]));
    SECRETA_RETURN_IF_ERROR(scheduler_->CancelJob(static_cast<uint64_t>(id)));
    *out_ << "cancellation requested for job " << id << "\n";
    return Status::OK();
  }
  if (cmd == "wait") return CmdWaitJobs(args);
  if (cmd == "metrics") return CmdMetrics(args);
  if (cmd == "trace") return CmdTrace(args);
  return Status::NotFound("unknown command: " + cmd + " (try 'help')");
}

Status CommandLineInterface::CmdGenerate(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(Arity(args, 1, 2));
  SECRETA_ASSIGN_OR_RETURN(int64_t n, ParseInt(args[1]));
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  SyntheticOptions options;
  options.num_records = static_cast<size_t>(n);
  if (args.size() > 2) {
    SECRETA_ASSIGN_OR_RETURN(int64_t seed, ParseInt(args[2]));
    options.seed = static_cast<uint64_t>(seed);
  }
  SECRETA_ASSIGN_OR_RETURN(Dataset dataset, GenerateRtDataset(options));
  SECRETA_RETURN_IF_ERROR(session_.SetDataset(std::move(dataset)));
  *out_ << "generated " << session_.dataset().num_records() << " records\n";
  return Status::OK();
}

Status CommandLineInterface::CmdHierarchy(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(RequireDataset());
  if (args[0] == "hierarchies") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 2));
    if (args[1] != "auto") {
      return Status::InvalidArgument("usage: hierarchies auto [fanout]");
    }
    HierarchyBuildOptions options;
    if (args.size() > 2) {
      SECRETA_ASSIGN_OR_RETURN(int64_t fanout, ParseInt(args[2]));
      options.fanout = static_cast<size_t>(fanout);
    }
    SECRETA_RETURN_IF_ERROR(session_.AutoGenerateHierarchies(options));
    *out_ << "hierarchies ready\n";
    return Status::OK();
  }
  if (args.size() >= 3 && args[1] == "show") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 2, 2));
    SECRETA_ASSIGN_OR_RETURN(const Hierarchy* h, session_.HierarchyOf(args[2]));
    *out_ << RenderHierarchyTree(*h);
    return Status::OK();
  }
  SECRETA_RETURN_IF_ERROR(Arity(args, 3, 3));
  if (args[1] == "load") {
    return session_.LoadHierarchyFile(args[2], args[3]);
  }
  if (args[1] == "save") {
    SECRETA_ASSIGN_OR_RETURN(const Hierarchy* h, session_.HierarchyOf(args[2]));
    return SaveHierarchyFile(*h, args[3]);
  }
  return Status::InvalidArgument(
      "usage: hierarchy load|save <attr> <path> | hierarchy show <attr>");
}

Status CommandLineInterface::CmdPolicy(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(RequireDataset());
  if (args[0] == "policies") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
    if (args[1] != "auto") {
      return Status::InvalidArgument("usage: policies auto");
    }
    PrivacyGenOptions pg;
    pg.strategy = PrivacyStrategy::kFrequentItems;
    UtilityGenOptions ug;
    ug.strategy = UtilityStrategy::kFrequencyBands;
    SECRETA_RETURN_IF_ERROR(session_.GeneratePolicies(pg, ug));
    *out_ << session_.privacy_policy().size() << " privacy constraints, "
          << session_.utility_policy().constraints.size()
          << " utility constraints\n";
    return Status::OK();
  }
  SECRETA_RETURN_IF_ERROR(Arity(args, 2, 2));
  if (args[1] == "load-privacy") return session_.LoadPrivacyPolicyFile(args[2]);
  if (args[1] == "load-utility") return session_.LoadUtilityPolicyFile(args[2]);
  return Status::InvalidArgument("usage: policy load-privacy|load-utility <path>");
}

Status CommandLineInterface::CmdWorkload(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(RequireDataset());
  SECRETA_RETURN_IF_ERROR(Arity(args, 2, 2));
  if (args[1] == "gen") {
    SECRETA_ASSIGN_OR_RETURN(int64_t n, ParseInt(args[2]));
    WorkloadGenOptions options;
    options.num_queries = static_cast<size_t>(n);
    SECRETA_RETURN_IF_ERROR(session_.GenerateQueryWorkload(options));
    *out_ << session_.workload().size() << " queries\n";
    return Status::OK();
  }
  if (args[1] == "load") return session_.LoadWorkloadFile(args[2]);
  if (args[1] == "save") return session_.workload().SaveFile(args[2]);
  return Status::InvalidArgument("usage: workload gen|load|save <arg>");
}

void CommandLineInterface::PrintReport(const EvaluationReport& report) {
  *out_ << "== " << report.run.config.Label() << " ==\n"
        << "guarantee " << report.guarantee_name << ": "
        << (report.guarantee_checked ? (report.guarantee_ok ? "OK" : "VIOLATED")
                                     : "(not checked)")
        << "\n"
        << StrFormat("GCP %.4f | UL %.4f | ARE %.4f | runtime %.3fs\n",
                     report.gcp, report.ul, report.are,
                     report.run.runtime_seconds)
        << StrFormat("evaluation %.3fs", report.evaluation_seconds);
  if (report.queries_per_second > 0) {
    *out_ << StrFormat(" | %.0f queries/s", report.queries_per_second);
  }
  *out_ << "\n";
  if (report.degraded) {
    *out_ << "DEGRADED: " << report.degraded_detail << "\n";
  }
  for (const auto& [phase, seconds] : report.run.phases.phases()) {
    *out_ << StrFormat("  %-12s %.3fs\n", phase.c_str(), seconds);
  }
}

Status CommandLineInterface::CmdConvert(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(Arity(args, 2, 6));
  BinaryWriteOptions options;
  for (size_t i = 3; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("shards=", 0) == 0) {
      SECRETA_ASSIGN_OR_RETURN(int64_t shards, ParseInt(arg.substr(7)));
      if (shards < 1) return Status::InvalidArgument("shards must be >= 1");
      options.num_shards = static_cast<size_t>(shards);
    } else if (arg.rfind("by=", 0) == 0) {
      SECRETA_ASSIGN_OR_RETURN(options.shard_kind,
                               ParseShardKind(arg.substr(3)));
    } else if (arg.rfind("salt=", 0) == 0) {
      SECRETA_ASSIGN_OR_RETURN(int64_t salt, ParseInt(arg.substr(5)));
      options.salt = static_cast<uint64_t>(salt);
    } else if (arg == "no-postings") {
      options.write_postings = false;
    } else {
      return Status::InvalidArgument("unknown convert option: " + arg);
    }
  }
  // Any readable backend converts: CSV (the common case) or an existing
  // SBC1 file being re-partitioned.
  SECRETA_ASSIGN_OR_RETURN(std::unique_ptr<ColumnProvider> provider,
                           OpenColumnProvider(args[1]));
  SECRETA_ASSIGN_OR_RETURN(Dataset dataset, provider->Materialize());
  SECRETA_RETURN_IF_ERROR(WriteBinaryDataset(dataset, args[2], options));
  SECRETA_ASSIGN_OR_RETURN(size_t bytes, MmapFile::FileSize(args[2]));
  *out_ << "converted " << dataset.num_records() << " records ("
        << DataSourceName(provider->source()) << ") to " << args[2] << ": "
        << options.num_shards << " " << ShardKindName(options.shard_kind)
        << " shard(s), " << bytes << " bytes\n";
  return Status::OK();
}

Status CommandLineInterface::CmdShardRun(const std::vector<std::string>& args) {
  ShardedRunOptions options;
  options.memory = session_.memory_budget();
  std::string input_path;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("shards=", 0) == 0) {
      SECRETA_ASSIGN_OR_RETURN(int64_t shards, ParseInt(arg.substr(7)));
      if (shards < 1) return Status::InvalidArgument("shards must be >= 1");
      options.num_shards = static_cast<size_t>(shards);
    } else if (arg.rfind("by=", 0) == 0) {
      SECRETA_ASSIGN_OR_RETURN(options.shard_kind,
                               ParseShardKind(arg.substr(3)));
    } else if (arg.rfind("salt=", 0) == 0) {
      SECRETA_ASSIGN_OR_RETURN(int64_t salt, ParseInt(arg.substr(5)));
      options.salt = static_cast<uint64_t>(salt);
    } else if (arg.rfind("input=", 0) == 0) {
      input_path = arg.substr(6);
    } else if (arg.rfind("checkpoint=", 0) == 0) {
      options.checkpoint_path = arg.substr(11);
    } else if (arg.rfind("output=", 0) == 0) {
      options.output_path = arg.substr(7);
    } else if (arg == "no-materialize") {
      options.materialize_result = false;
      options.audit = false;  // auditing needs the materialized release
    } else if (arg == "no-audit") {
      options.audit = false;
    } else {
      return Status::InvalidArgument("unknown shard-run option: " + arg);
    }
  }
  std::unique_ptr<ColumnProvider> provider;
  if (!input_path.empty()) {
    // Straight from the file: with an SBC1 input the whole dataset is never
    // resident — each shard is one mmap window.
    SECRETA_ASSIGN_OR_RETURN(provider, OpenColumnProvider(input_path));
  } else {
    SECRETA_RETURN_IF_ERROR(RequireDataset());
    provider = MakeMemoryProvider(session_.dataset());
  }
  SECRETA_ASSIGN_OR_RETURN(ShardedRunResult result,
                           RunShardedAnonymization(*provider, current_, options));
  *out_ << "shard-run " << current_.Label() << ": "
        << result.plan.num_shards() << " "
        << ShardKindName(result.plan.kind()) << " shard(s), "
        << result.num_records << " records\n";
  for (const ShardRunStats& stats : result.shards) {
    *out_ << StrFormat("  shard %zu: %zu rows, gcp %.4f, %.3fs%s\n",
                       stats.shard, stats.rows, stats.gcp, stats.seconds,
                       stats.resumed ? " (checkpoint)" : "");
  }
  *out_ << StrFormat(
      "weighted GCP %.4f | anonymize %.3fs | total %.3fs | release %016llx\n",
      result.weighted_gcp, result.anonymize_seconds, result.total_seconds,
      static_cast<unsigned long long>(result.release_fingerprint));
  if (result.audit.has_value()) {
    *out_ << "merged audit: k-anonymity "
          << (result.audit->k_anonymous ? "OK" : "VIOLATED") << ", k^m "
          << (result.audit->km_anonymous ? "OK" : "VIOLATED")
          << " (min class " << result.audit->min_class_size << ") — "
          << result.audit->details << "\n";
  }
  if (!options.output_path.empty()) {
    *out_ << "release written to " << options.output_path << "\n";
  }
  return Status::OK();
}

Status CommandLineInterface::CmdRun() {
  SECRETA_RETURN_IF_ERROR(RequireDataset());
  SECRETA_ASSIGN_OR_RETURN(EvaluationReport report, session_.Evaluate(current_));
  PrintReport(report);
  last_report_ = std::move(report);
  last_sweep_.reset();
  last_comparison_.clear();
  return Status::OK();
}

Status CommandLineInterface::CmdSweep(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(Arity(args, 4, 5));
  SECRETA_RETURN_IF_ERROR(RequireDataset());
  ParamSweep sweep;
  sweep.parameter = args[1];
  SECRETA_ASSIGN_OR_RETURN(sweep.start, ParseDouble(args[2]));
  SECRETA_ASSIGN_OR_RETURN(sweep.end, ParseDouble(args[3]));
  SECRETA_ASSIGN_OR_RETURN(sweep.step, ParseDouble(args[4]));
  std::string checkpoint_path;
  if (args.size() > 5) {
    if (args[5].rfind("checkpoint=", 0) != 0) {
      return Status::InvalidArgument(
          "usage: sweep <param> <start> <end> <step> [checkpoint=PATH]");
    }
    checkpoint_path = args[5].substr(11);
  }
  ProgressCallback progress = [this](const ProgressEvent& event) {
    *out_ << StrFormat("  [%zu/%zu] %s=%g done (%.3fs)%s\n",
                       event.point_index + 1, event.total_points,
                       "point", event.value,
                       event.report->run.runtime_seconds,
                       event.from_checkpoint ? " (checkpoint)" : "");
  };
  SECRETA_ASSIGN_OR_RETURN(
      SweepResult result,
      session_.EvaluateSweep(current_, sweep, progress, checkpoint_path));
  std::vector<Series> series;
  for (const char* metric : {"are", "gcp", "ul"}) {
    SECRETA_ASSIGN_OR_RETURN(Series s, result.Extract(metric));
    s.name = metric;
    series.push_back(std::move(s));
  }
  PlotOptions options;
  options.title = current_.Label() + " vs " + sweep.parameter;
  *out_ << RenderLineChart(series, options);
  last_sweep_ = std::move(result);
  last_comparison_.clear();
  return Status::OK();
}

Status CommandLineInterface::CmdCompare(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(Arity(args, 4, 5));
  SECRETA_RETURN_IF_ERROR(RequireDataset());
  if (queued_.empty()) {
    return Status::FailedPrecondition(
        "no configurations queued (use add-config)");
  }
  ParamSweep sweep;
  sweep.parameter = args[1];
  SECRETA_ASSIGN_OR_RETURN(sweep.start, ParseDouble(args[2]));
  SECRETA_ASSIGN_OR_RETURN(sweep.end, ParseDouble(args[3]));
  SECRETA_ASSIGN_OR_RETURN(sweep.step, ParseDouble(args[4]));
  CompareOptions compare_options;
  if (args.size() > 5) {
    if (args[5].rfind("checkpoint=", 0) != 0) {
      return Status::InvalidArgument(
          "usage: compare <param> <start> <end> <step> [checkpoint=PATH]");
    }
    compare_options.checkpoint_path = args[5].substr(11);
  }
  compare_options.progress = [this](const ProgressEvent& event) {
    *out_ << StrFormat("  config %zu: [%zu/%zu] value %g done%s\n",
                       event.config_index + 1, event.point_index + 1,
                       event.total_points, event.value,
                       event.from_checkpoint ? " (checkpoint)" : "");
  };
  SECRETA_ASSIGN_OR_RETURN(std::vector<SweepResult> results,
                           session_.Compare(queued_, sweep, compare_options));
  for (const char* metric : {"are", "runtime"}) {
    std::vector<Series> series;
    for (const auto& result : results) {
      SECRETA_ASSIGN_OR_RETURN(Series s, result.Extract(metric));
      s.name = result.base.Label();
      series.push_back(std::move(s));
    }
    PlotOptions options;
    options.title = std::string(metric) + " vs " + sweep.parameter;
    *out_ << RenderLineChart(series, options);
  }
  last_comparison_ = std::move(results);
  last_sweep_.reset();
  return Status::OK();
}

void CommandLineInterface::PrintJobLine(const JobInfo& info) {
  *out_ << StrFormat("  [%llu] %-9s prio=%d%s queue=%.3fs run=%.3fs %s",
                     static_cast<unsigned long long>(info.id),
                     JobStateToString(info.state), info.priority,
                     info.from_cache ? " (cache)" : "", info.queue_seconds,
                     info.run_seconds, info.label.c_str());
  if (info.attempts > 1) *out_ << StrFormat(" attempts=%d", info.attempts);
  if (!info.status.ok()) *out_ << " — " << info.status.ToString();
  *out_ << "\n";
}

Status CommandLineInterface::CmdSubmit(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(RequireDataset());
  JobOptions options;
  std::vector<std::string> spec_parts;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("prio=", 0) == 0) {
      SECRETA_ASSIGN_OR_RETURN(int64_t priority, ParseInt(arg.substr(5)));
      options.priority = static_cast<int>(priority);
    } else if (arg.rfind("timeout=", 0) == 0) {
      SECRETA_ASSIGN_OR_RETURN(options.timeout_seconds,
                               ParseDouble(arg.substr(8)));
    } else if (arg.rfind("retries=", 0) == 0) {
      SECRETA_ASSIGN_OR_RETURN(int64_t retries, ParseInt(arg.substr(8)));
      options.max_retries = static_cast<int>(retries);
    } else if (arg.rfind("backoff=", 0) == 0) {
      SECRETA_ASSIGN_OR_RETURN(options.retry_initial_backoff_seconds,
                               ParseDouble(arg.substr(8)));
    } else {
      spec_parts.push_back(arg);
    }
  }
  AlgorithmConfig config = current_;
  if (!spec_parts.empty()) {
    SECRETA_ASSIGN_OR_RETURN(config,
                             ParseAlgorithmConfig(Join(spec_parts, " ")));
  }
  SECRETA_ASSIGN_OR_RETURN(EngineInputs inputs, session_.PrepareInputs(config));
  if (scheduler_ == nullptr) {
    scheduler_ = std::make_unique<JobScheduler>();
  }
  SECRETA_ASSIGN_OR_RETURN(
      uint64_t id, scheduler_->Submit(inputs, config,
                                      session_.workload_or_null(), options));
  SECRETA_ASSIGN_OR_RETURN(JobInfo info, scheduler_->GetJob(id));
  *out_ << "job " << id << " " << JobStateToString(info.state)
        << (info.from_cache ? " (cache hit)" : "") << ": " << info.label
        << "\n";
  return Status::OK();
}

Status CommandLineInterface::CmdMetrics(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(Arity(args, 0, 3));
  if (args.size() > 1 && args[1] == "text") {
    *out_ << MetricsRegistry::Global().ToText();
    return Status::OK();
  }
  if (args.size() > 1 && args[1] == "--watch") {
    // metrics --watch <seconds> [iterations]: print per-interval deltas and
    // rates instead of absolute values — the live view of a long sweep or a
    // busy job scheduler.
    double interval = 2.0;
    int64_t iterations = 1;
    if (args.size() > 2) {
      SECRETA_ASSIGN_OR_RETURN(interval, ParseDouble(args[2]));
    }
    if (args.size() > 3) {
      SECRETA_ASSIGN_OR_RETURN(iterations, ParseInt(args[3]));
    }
    if (interval <= 0) {
      return Status::InvalidArgument("watch interval must be positive");
    }
    if (iterations < 1) {
      return Status::InvalidArgument("watch iterations must be >= 1");
    }
    MetricsSnapshot prev = MetricsRegistry::Global().Snapshot();
    for (int64_t round = 0; round < iterations; ++round) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
      MetricsSnapshot now = MetricsRegistry::Global().Snapshot();
      *out_ << StrFormat("-- watch %lld/%lld (%.1fs) --\n",
                         static_cast<long long>(round + 1),
                         static_cast<long long>(iterations), interval)
            << MetricsSnapshotDeltaToText(prev, now, interval);
      prev = std::move(now);
    }
    return Status::OK();
  }
  if (args.size() > 1) {
    return Status::InvalidArgument(
        "usage: metrics [text | --watch <seconds> [iterations]]");
  }
  // One JSON object: the process-wide registry (pools, engine, caches) plus
  // the job service's private metrics when a scheduler exists.
  *out_ << "{\"registry\":"
        << MetricsSnapshotToJson(MetricsRegistry::Global().Snapshot())
        << ",\"service\":";
  if (scheduler_ != nullptr) {
    *out_ << ServiceMetricsToJson(scheduler_->MetricsSnapshot());
  } else {
    *out_ << "null";
  }
  *out_ << "}\n";
  return Status::OK();
}

Status CommandLineInterface::CmdTrace(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(Arity(args, 1, 2));
  if (args[1] == "on") {
    Tracer::Get().Enable();
    *out_ << "tracing enabled\n";
    return Status::OK();
  }
  if (args[1] == "off") {
    Tracer::Get().Disable();
    *out_ << "tracing disabled\n";
    return Status::OK();
  }
  if (args[1] == "save") {
    SECRETA_RETURN_IF_ERROR(Arity(args, 2, 2));
    SECRETA_RETURN_IF_ERROR(Tracer::Get().WriteChromeTrace(args[2]));
    *out_ << Tracer::Get().num_events() << " spans written to " << args[2]
          << " (open in chrome://tracing or ui.perfetto.dev)\n";
    return Status::OK();
  }
  return Status::InvalidArgument("usage: trace on|off|save <path>");
}

Status CommandLineInterface::CmdJob(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(Arity(args, 1, 1));
  if (scheduler_ == nullptr) {
    return Status::FailedPrecondition("no jobs submitted yet");
  }
  SECRETA_ASSIGN_OR_RETURN(int64_t id, ParseInt(args[1]));
  SECRETA_ASSIGN_OR_RETURN(JobInfo info,
                           scheduler_->GetJob(static_cast<uint64_t>(id)));
  PrintJobLine(info);
  if (info.state == JobState::kDone && info.report != nullptr) {
    PrintReport(*info.report);
  }
  return Status::OK();
}

Status CommandLineInterface::CmdWaitJobs(const std::vector<std::string>& args) {
  SECRETA_RETURN_IF_ERROR(Arity(args, 0, 1));
  if (scheduler_ == nullptr) {
    return Status::FailedPrecondition("no jobs submitted yet");
  }
  if (args.size() > 1) {
    SECRETA_ASSIGN_OR_RETURN(int64_t id, ParseInt(args[1]));
    SECRETA_ASSIGN_OR_RETURN(JobInfo info,
                             scheduler_->WaitJob(static_cast<uint64_t>(id)));
    PrintJobLine(info);
    if (info.state == JobState::kDone && info.report != nullptr) {
      PrintReport(*info.report);
      last_report_ = *info.report;
      last_sweep_.reset();
      last_comparison_.clear();
    }
    return Status::OK();
  }
  scheduler_->WaitAll();
  for (const JobInfo& info : scheduler_->ListJobs()) PrintJobLine(info);
  return Status::OK();
}

}  // namespace secreta
