#include "kernels/kernels.h"

// NEON backend (aarch64). AdvSIMD is mandatory on aarch64, so availability
// is a compile-time fact — no runtime CPU probe needed. The popcount kernels
// fuse the load, the AND/BIC and vcntq_u8 + pairwise widening adds; the
// sorted-list intersection stays on the scalar galloping merge (NEON lacks a
// cheap 32-bit all-pairs compare, and the merge is branch-predictable).

#if defined(__aarch64__)

#include <arm_neon.h>

namespace secreta::kernels {
namespace {

inline uint64_t HorizontalPopcount(uint8x16_t bytes) {
  return vaddvq_u64(vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(bytes)))));
}

uint64_t NeonAndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t va = vld1q_u64(a + i);
    uint64x2_t vb = vld1q_u64(b + i);
    total += HorizontalPopcount(vreinterpretq_u8_u64(vandq_u64(va, vb)));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

uint64_t NeonAndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t va = vld1q_u64(a + i);
    uint64x2_t vb = vld1q_u64(b + i);
    // vbicq computes first & ~second.
    total += HorizontalPopcount(vreinterpretq_u8_u64(vbicq_u64(va, vb)));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[i] & ~b[i]));
  }
  return total;
}

uint64_t NeonPopcountRange(const uint64_t* w, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += HorizontalPopcount(vreinterpretq_u8_u64(vld1q_u64(w + i)));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

const KernelTable kNeonTable = {
    Tier::kNeon,      &NeonAndPopcount,        &NeonAndNotPopcount,
    &NeonPopcountRange, &scalar::IntersectCount,
};

}  // namespace

const KernelTable* NeonTable() { return &kNeonTable; }

}  // namespace secreta::kernels

#else  // !aarch64

namespace secreta::kernels {
const KernelTable* NeonTable() { return nullptr; }
}  // namespace secreta::kernels

#endif
