#include "kernels/roaring.h"

#include <algorithm>

#include "common/bytes.h"
#include "kernels/kernels.h"

namespace secreta {

namespace {

constexpr size_t kArrayMax = 4096;    // max array-container cardinality
constexpr size_t kBitsetWords = 1024; // 65536 bits

size_t ContainerBytes(const RoaringBitmap::ContainerType type,
                      size_t cardinality, size_t num_runs) {
  switch (type) {
    case RoaringBitmap::ContainerType::kArray:
      return 2 * cardinality;
    case RoaringBitmap::ContainerType::kBitset:
      return 8 * kBitsetWords;
    case RoaringBitmap::ContainerType::kRun:
      return 4 * num_runs;
  }
  return 0;
}

// Bits set in `bits` within [start, end] inclusive (low-16-bit positions).
size_t BitsetRangeCount(const std::vector<uint64_t>& bits, uint32_t start,
                        uint32_t end) {
  size_t first_word = start >> 6;
  size_t last_word = end >> 6;
  uint64_t first_mask = ~uint64_t{0} << (start & 63);
  uint64_t last_mask = (end & 63) == 63
                           ? ~uint64_t{0}
                           : ((uint64_t{1} << ((end & 63) + 1)) - 1);
  if (first_word == last_word) {
    uint64_t masked = bits[first_word] & first_mask & last_mask;
    return kernels::PopcountRange(&masked, 1);
  }
  uint64_t head = bits[first_word] & first_mask;
  uint64_t tail = bits[last_word] & last_mask;
  size_t count = kernels::PopcountRange(&head, 1) +
                 kernels::PopcountRange(&tail, 1);
  if (last_word > first_word + 1) {
    count += kernels::PopcountRange(bits.data() + first_word + 1,
                                    last_word - first_word - 1);
  }
  return count;
}

size_t CountRunsInArray(const std::vector<uint16_t>& values) {
  size_t runs = values.empty() ? 0 : 1;
  for (size_t i = 1; i < values.size(); ++i) {
    runs += (values[i] != values[i - 1] + 1);
  }
  return runs;
}

size_t CountRunsInBitset(const std::vector<uint64_t>& bits) {
  size_t runs = 0;
  uint64_t carry = 0;  // bit 63 of the previous word
  for (uint64_t w : bits) {
    uint64_t starts = w & ~((w << 1) | carry);
    runs += kernels::PopcountRange(&starts, 1);
    carry = w >> 63;
  }
  return runs;
}

}  // namespace

void RoaringBitmap::Append(uint32_t value) {
  uint16_t key = static_cast<uint16_t>(value >> 16);
  uint16_t low = static_cast<uint16_t>(value & 0xffff);
  if (has_last_ && value <= last_) {
    // Strictly-increasing contract violated; ignore to keep the bitmap
    // consistent (builders always feed sorted unique ids).
    return;
  }
  if (containers_.empty() || containers_.back().key != key) {
    if (!containers_.empty()) Seal(&containers_.back());
    Container fresh;
    fresh.key = key;
    containers_.push_back(std::move(fresh));
  }
  Container& c = containers_.back();
  if (c.type == ContainerType::kArray) {
    if (c.cardinality < kArrayMax) {
      c.values.push_back(low);
    } else {
      // Overflowing array: promote to bitset mid-build.
      c.bits.assign(kBitsetWords, 0);
      for (uint16_t v : c.values) c.bits[v >> 6] |= uint64_t{1} << (v & 63);
      c.values.clear();
      c.values.shrink_to_fit();
      c.type = ContainerType::kBitset;
      c.bits[low >> 6] |= uint64_t{1} << (low & 63);
    }
  } else {
    c.bits[low >> 6] |= uint64_t{1} << (low & 63);
  }
  ++c.cardinality;
  ++cardinality_;
  has_last_ = true;
  last_ = value;
}

void RoaringBitmap::Finish() {
  if (!containers_.empty()) Seal(&containers_.back());
}

void RoaringBitmap::Seal(Container* c) {
  // Decide the cheapest representation: the build left either a sorted
  // array (<= 4096) or a bitset; a run container wins when few runs cover
  // the chunk (contiguous id ranges).
  size_t runs = c->type == ContainerType::kArray
                    ? CountRunsInArray(c->values)
                    : CountRunsInBitset(c->bits);
  size_t current_bytes = ContainerBytes(c->type, c->cardinality, runs);
  if (ContainerBytes(ContainerType::kRun, c->cardinality, runs) >=
      current_bytes) {
    c->values.shrink_to_fit();
    return;
  }
  std::vector<uint16_t> run_pairs;
  run_pairs.reserve(runs * 2);
  if (c->type == ContainerType::kArray) {
    for (size_t i = 0; i < c->values.size();) {
      size_t j = i + 1;
      while (j < c->values.size() && c->values[j] == c->values[j - 1] + 1) ++j;
      run_pairs.push_back(c->values[i]);
      run_pairs.push_back(static_cast<uint16_t>(j - i - 1));
      i = j;
    }
  } else {
    int32_t run_start = -1;
    for (uint32_t v = 0; v < 65536; ++v) {
      bool set = (c->bits[v >> 6] >> (v & 63)) & 1;
      if (set && run_start < 0) run_start = static_cast<int32_t>(v);
      if (!set && run_start >= 0) {
        run_pairs.push_back(static_cast<uint16_t>(run_start));
        run_pairs.push_back(static_cast<uint16_t>(v - 1 -
                                                  static_cast<uint32_t>(run_start)));
        run_start = -1;
      }
    }
    if (run_start >= 0) {
      run_pairs.push_back(static_cast<uint16_t>(run_start));
      run_pairs.push_back(
          static_cast<uint16_t>(65535 - static_cast<uint32_t>(run_start)));
    }
    c->bits.clear();
    c->bits.shrink_to_fit();
  }
  c->type = ContainerType::kRun;
  c->values = std::move(run_pairs);
}

RoaringBitmap RoaringBitmap::FromSorted(const uint32_t* data, size_t n) {
  RoaringBitmap bm;
  for (size_t i = 0; i < n; ++i) bm.Append(data[i]);
  bm.Finish();
  return bm;
}

bool RoaringBitmap::ContainerContains(const Container& c, uint16_t low) {
  switch (c.type) {
    case ContainerType::kArray:
      return std::binary_search(c.values.begin(), c.values.end(), low);
    case ContainerType::kBitset:
      return (c.bits[low >> 6] >> (low & 63)) & 1;
    case ContainerType::kRun: {
      // Find the last run starting at or before `low`.
      size_t lo = 0;
      size_t hi = c.values.size() / 2;
      while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (c.values[2 * mid] <= low) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == 0) return false;
      uint32_t start = c.values[2 * (lo - 1)];
      uint32_t len = c.values[2 * (lo - 1) + 1];
      return low <= start + len;
    }
  }
  return false;
}

bool RoaringBitmap::Contains(uint32_t value) const {
  uint16_t key = static_cast<uint16_t>(value >> 16);
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint16_t k) { return c.key < k; });
  if (it == containers_.end() || it->key != key) return false;
  return ContainerContains(*it, static_cast<uint16_t>(value & 0xffff));
}

size_t RoaringBitmap::AndCardinalityPair(const Container& a,
                                         const Container& b) {
  // Canonicalize pair order: array < bitset < run by enum value.
  const Container* x = &a;
  const Container* y = &b;
  if (static_cast<int>(a.type) > static_cast<int>(b.type)) std::swap(x, y);
  if (x->type == ContainerType::kArray && y->type == ContainerType::kArray) {
    // uint16 two-pointer merge; arrays are <= 4096 elements, the 32-bit
    // kernels::IntersectCount kernel serves the full-width posting lists.
    size_t i = 0;
    size_t j = 0;
    size_t count = 0;
    while (i < x->values.size() && j < y->values.size()) {
      uint16_t u = x->values[i];
      uint16_t v = y->values[j];
      count += (u == v);
      i += (u <= v);
      j += (v <= u);
    }
    return count;
  }
  if (x->type == ContainerType::kArray) {
    size_t count = 0;
    for (uint16_t v : x->values) count += ContainerContains(*y, v);
    return count;
  }
  if (x->type == ContainerType::kBitset && y->type == ContainerType::kBitset) {
    return kernels::AndPopcount(x->bits.data(), y->bits.data(), kBitsetWords);
  }
  if (x->type == ContainerType::kBitset) {  // y is run
    size_t count = 0;
    for (size_t i = 0; i + 1 < y->values.size(); i += 2) {
      uint32_t start = y->values[i];
      uint32_t end = start + y->values[i + 1];
      count += BitsetRangeCount(x->bits, start, end);
    }
    return count;
  }
  // run x run: two-pointer interval overlap.
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i + 1 < x->values.size() && j + 1 < y->values.size()) {
    uint32_t xs = x->values[i];
    uint32_t xe = xs + x->values[i + 1];
    uint32_t ys = y->values[j];
    uint32_t ye = ys + y->values[j + 1];
    uint32_t lo = std::max(xs, ys);
    uint32_t hi = std::min(xe, ye);
    if (lo <= hi) count += hi - lo + 1;
    if (xe <= ye) i += 2;
    if (ye <= xe) j += 2;
  }
  return count;
}

size_t RoaringBitmap::AndCardinality(const RoaringBitmap& other) const {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    uint16_t ka = containers_[i].key;
    uint16_t kb = other.containers_[j].key;
    if (ka == kb) {
      count += AndCardinalityPair(containers_[i], other.containers_[j]);
      ++i;
      ++j;
    } else if (ka < kb) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

void RoaringBitmap::IntersectPair(const Container& a, const Container& b,
                                  std::vector<uint16_t>* out) {
  if (a.type == ContainerType::kBitset && b.type == ContainerType::kBitset) {
    for (size_t w = 0; w < kBitsetWords; ++w) {
      uint64_t word = a.bits[w] & b.bits[w];
      while (word != 0) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        out->push_back(static_cast<uint16_t>((w << 6) + bit));
        word &= word - 1;
      }
    }
    return;
  }
  if (a.type == ContainerType::kArray && b.type == ContainerType::kArray) {
    size_t i = 0;
    size_t j = 0;
    while (i < a.values.size() && j < b.values.size()) {
      uint16_t u = a.values[i];
      uint16_t v = b.values[j];
      if (u == v) out->push_back(u);
      i += (u <= v);
      j += (v <= u);
    }
    return;
  }
  // Mixed pair: walk the sparser container's values in order, filter through
  // the other. Runs expand lazily.
  const Container* probe = &a;
  const Container* filter = &b;
  if (a.cardinality > b.cardinality) std::swap(probe, filter);
  switch (probe->type) {
    case ContainerType::kArray:
      for (uint16_t v : probe->values) {
        if (ContainerContains(*filter, v)) out->push_back(v);
      }
      break;
    case ContainerType::kRun:
      for (size_t i = 0; i + 1 < probe->values.size(); i += 2) {
        uint32_t start = probe->values[i];
        uint32_t end = start + probe->values[i + 1];
        for (uint32_t v = start; v <= end; ++v) {
          if (ContainerContains(*filter, static_cast<uint16_t>(v))) {
            out->push_back(static_cast<uint16_t>(v));
          }
        }
      }
      break;
    case ContainerType::kBitset:
      for (size_t w = 0; w < kBitsetWords; ++w) {
        uint64_t word = probe->bits[w];
        while (word != 0) {
          unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
          uint16_t v = static_cast<uint16_t>((w << 6) + bit);
          if (ContainerContains(*filter, v)) out->push_back(v);
          word &= word - 1;
        }
      }
      break;
  }
}

RoaringBitmap RoaringBitmap::And(const RoaringBitmap& other) const {
  RoaringBitmap result;
  size_t i = 0;
  size_t j = 0;
  std::vector<uint16_t> values;
  while (i < containers_.size() && j < other.containers_.size()) {
    uint16_t ka = containers_[i].key;
    uint16_t kb = other.containers_[j].key;
    if (ka == kb) {
      values.clear();
      IntersectPair(containers_[i], other.containers_[j], &values);
      uint32_t base = static_cast<uint32_t>(ka) << 16;
      for (uint16_t v : values) result.Append(base | v);
      ++i;
      ++j;
    } else if (ka < kb) {
      ++i;
    } else {
      ++j;
    }
  }
  result.Finish();
  return result;
}

std::vector<uint32_t> RoaringBitmap::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(cardinality_);
  ForEachSet([&](uint32_t v) { out.push_back(v); });
  return out;
}

void RoaringBitmap::AppendTo(std::string* out) const {
  bytes::PutU32(out, static_cast<uint32_t>(containers_.size()));
  for (const Container& c : containers_) {
    bytes::PutU16(out, c.key);
    out->push_back(static_cast<char>(c.type));
    out->push_back(0);  // reserved
    bytes::PutU32(out, c.cardinality);
    if (c.type == ContainerType::kBitset) {
      bytes::PutU32(out, static_cast<uint32_t>(c.bits.size()));
      for (uint64_t w : c.bits) bytes::PutU64(out, w);
    } else {
      bytes::PutU32(out, static_cast<uint32_t>(c.values.size()));
      for (uint16_t v : c.values) bytes::PutU16(out, v);
    }
  }
}

bool RoaringBitmap::FromBytes(const uint8_t* data, size_t size,
                              RoaringBitmap* out, size_t* consumed) {
  RoaringBitmap bm;
  size_t pos = 0;
  if (size < 4) return false;
  uint32_t container_count = bytes::GetU32(data);
  pos += 4;
  bm.containers_.reserve(container_count);
  int64_t prev_key = -1;
  for (uint32_t ci = 0; ci < container_count; ++ci) {
    if (size - pos < 12) return false;
    Container c;
    c.key = bytes::GetU16(data + pos);
    uint8_t type_byte = data[pos + 2];
    c.cardinality = bytes::GetU32(data + pos + 4);
    uint32_t word_count = bytes::GetU32(data + pos + 8);
    pos += 12;
    if (static_cast<int64_t>(c.key) <= prev_key) return false;
    prev_key = c.key;
    if (type_byte > static_cast<uint8_t>(ContainerType::kRun)) return false;
    c.type = static_cast<ContainerType>(type_byte);
    switch (c.type) {
      case ContainerType::kArray: {
        if (word_count != c.cardinality || word_count > 65536) return false;
        if (size - pos < 2 * static_cast<size_t>(word_count)) return false;
        c.values.reserve(word_count);
        int64_t prev = -1;
        for (uint32_t i = 0; i < word_count; ++i) {
          uint16_t v = bytes::GetU16(data + pos + 2 * i);
          if (static_cast<int64_t>(v) <= prev) return false;
          prev = v;
          c.values.push_back(v);
        }
        pos += 2 * static_cast<size_t>(word_count);
        break;
      }
      case ContainerType::kBitset: {
        if (word_count != kBitsetWords) return false;
        if (size - pos < 8 * kBitsetWords) return false;
        c.bits.resize(kBitsetWords);
        for (size_t w = 0; w < kBitsetWords; ++w) {
          c.bits[w] = bytes::GetU64(data + pos + 8 * w);
        }
        pos += 8 * kBitsetWords;
        if (kernels::PopcountRange(c.bits.data(), kBitsetWords) !=
            c.cardinality) {
          return false;
        }
        break;
      }
      case ContainerType::kRun: {
        if (word_count % 2 != 0 || word_count > 2 * 65536) return false;
        if (size - pos < 2 * static_cast<size_t>(word_count)) return false;
        c.values.reserve(word_count);
        int64_t prev_end = -2;  // a first run may start at 0
        uint64_t total = 0;
        for (uint32_t i = 0; i < word_count; i += 2) {
          uint16_t start = bytes::GetU16(data + pos + 2 * i);
          uint16_t len = bytes::GetU16(data + pos + 2 * (i + 1));
          // Runs must be sorted and non-adjacent (adjacent runs would have
          // been coalesced by the writer).
          if (static_cast<int64_t>(start) <= prev_end + 1) return false;
          prev_end = static_cast<int64_t>(start) + len;
          if (prev_end > 65535) return false;
          total += static_cast<uint64_t>(len) + 1;
          c.values.push_back(start);
          c.values.push_back(len);
        }
        pos += 2 * static_cast<size_t>(word_count);
        if (total != c.cardinality) return false;
        break;
      }
    }
    if (c.cardinality == 0) return false;
    bm.cardinality_ += c.cardinality;
    bm.containers_.push_back(std::move(c));
  }
  bm.has_last_ = !bm.containers_.empty();
  if (consumed != nullptr) *consumed = pos;
  *out = std::move(bm);
  return true;
}

size_t RoaringBitmap::MemoryBytes() const {
  size_t bytes = containers_.size() * sizeof(Container);
  for (const Container& c : containers_) {
    bytes += c.values.capacity() * sizeof(uint16_t) +
             c.bits.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace secreta
