// Chunked bump-pointer arena + STL-compatible allocator. The transaction
// count-tree allocates one small children vector per node — millions of
// short-lived malloc/free pairs per tree build. Backing them with an arena
// turns each allocation into a pointer bump and frees the whole tree in one
// shot when the arena dies. Deallocate is a no-op (grown-past vector blocks
// are abandoned inside the chunk), which is the standard arena trade:
// peak memory for allocation throughput.
//
// Not thread-safe: one arena per owner. The parallel count-tree build gives
// every worker its own arena-backed subtree and merges serially.

#ifndef SECRETA_KERNELS_ARENA_H_
#define SECRETA_KERNELS_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace secreta {

/// \brief Chunked bump allocator. Chunks double up to a cap; memory is
/// released only when the arena is destroyed (or Reset).
class Arena {
 public:
  explicit Arena(size_t first_chunk_bytes = 4096)
      : next_chunk_bytes_(first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (power of two).
  void* Allocate(size_t bytes, size_t align) {
    size_t p = (cursor_ + (align - 1)) & ~(align - 1);
    if (p + bytes > limit_) {
      Grow(bytes + align);
      p = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = p + bytes;
    allocated_bytes_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Drops every chunk; all memory handed out becomes invalid.
  void Reset() {
    chunks_.clear();
    cursor_ = 0;
    limit_ = 0;
    allocated_bytes_ = 0;
  }

  /// Total bytes handed out (not counting alignment padding or chunk slack).
  size_t allocated_bytes() const { return allocated_bytes_; }
  /// Total bytes reserved from the system.
  size_t reserved_bytes() const { return reserved_bytes_; }

 private:
  void Grow(size_t min_bytes) {
    size_t bytes = next_chunk_bytes_;
    while (bytes < min_bytes) bytes *= 2;
    if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ = bytes * 2;
    chunks_.push_back(std::make_unique<char[]>(bytes));
    reserved_bytes_ += bytes;
    cursor_ = reinterpret_cast<uintptr_t>(chunks_.back().get());
    limit_ = cursor_ + bytes;
  }

  static constexpr size_t kMaxChunkBytes = 1 << 22;  // 4 MiB

  std::vector<std::unique_ptr<char[]>> chunks_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t next_chunk_bytes_;
  size_t allocated_bytes_ = 0;
  size_t reserved_bytes_ = 0;
};

/// \brief std::allocator drop-in that bump-allocates from an Arena.
///
/// The arena must outlive every container using it. Copy/move of a container
/// keeps pointing at the same arena (allocators always compare equal only
/// when their arenas match).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}  // arena memory dies with the arena

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_;
};

}  // namespace secreta

#endif  // SECRETA_KERNELS_ARENA_H_
