// Roaring-style compressed bitmap (Chambi, Lemire, Kaser, Godin: "Better
// bitmap performance with Roaring bitmaps"). The 32-bit value space is
// chunked by the high 16 bits; each populated chunk holds one container
// chosen by density:
//
//   array   sorted uint16 list            (cardinality <= 4096)
//   bitset  1024-word fixed bitmap        (cardinality  > 4096)
//   run     sorted (start, length-1) pairs when that beats both
//
// Sparse posting lists (an item held by 0.1% of records) shrink from 4 bytes
// per record to 2, dense ones to ~1 bit, and contiguous id ranges (sorted
// inserts, shard-local ids) to a handful of runs — while intersections run
// on the SIMD kernels (kernels::AndPopcount word blocks for bitset pairs,
// galloping/8-lane kernels::IntersectCount for array pairs).
//
// Immutable after Finish()/FromSorted(); thread-safe for concurrent const
// use. Values must be appended in strictly increasing order.

#ifndef SECRETA_KERNELS_ROARING_H_
#define SECRETA_KERNELS_ROARING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace secreta {

/// \brief Compressed bitmap over uint32 ids with per-chunk containers.
class RoaringBitmap {
 public:
  enum class ContainerType { kArray, kBitset, kRun };

  RoaringBitmap() = default;

  /// Builds from a strictly-increasing id list.
  static RoaringBitmap FromSorted(const uint32_t* data, size_t n);
  static RoaringBitmap FromSorted(const std::vector<uint32_t>& data) {
    return FromSorted(data.data(), data.size());
  }

  /// Appends `value`; must exceed every previously appended value.
  void Append(uint32_t value);
  /// Seals the bitmap: packs the trailing chunk and run-optimizes every
  /// container. Append must not be called afterwards.
  void Finish();

  /// Number of set ids. O(1) after Finish().
  size_t Cardinality() const { return cardinality_; }
  bool Empty() const { return cardinality_ == 0; }

  bool Contains(uint32_t value) const;

  /// |this ∩ other| without materializing the intersection.
  size_t AndCardinality(const RoaringBitmap& other) const;

  /// this ∩ other as a new (finished) bitmap.
  RoaringBitmap And(const RoaringBitmap& other) const;

  /// All ids, ascending.
  std::vector<uint32_t> ToVector() const;

  /// Calls fn(id) for every set id in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (const Container& c : containers_) {
      uint32_t base = static_cast<uint32_t>(c.key) << 16;
      switch (c.type) {
        case ContainerType::kArray:
          for (uint16_t v : c.values) fn(base | v);
          break;
        case ContainerType::kRun:
          for (size_t i = 0; i + 1 < c.values.size(); i += 2) {
            uint32_t start = c.values[i];
            uint32_t len = c.values[i + 1];
            for (uint32_t v = start; v <= start + len; ++v) fn(base | v);
          }
          break;
        case ContainerType::kBitset:
          for (size_t w = 0; w < c.bits.size(); ++w) {
            uint64_t word = c.bits[w];
            while (word != 0) {
              unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
              fn(base | static_cast<uint32_t>((w << 6) + bit));
              word &= word - 1;
            }
          }
          break;
      }
    }
  }

  /// Heap bytes of the container payloads (the compression win to report).
  size_t MemoryBytes() const;

  // -- serialization (the SBC1 posting-list page payload) ---------------------
  //
  // Little-endian, self-delimiting:
  //   u32 container_count, then per container
  //   { u16 key, u8 type, u8 reserved(0), u32 cardinality, u32 word_count,
  //     payload } where payload is word_count × u16 (array: sorted values;
  //     run: (start, length-1) pairs) or word_count × u64 (bitset, always
  //     1024 words). Byte-level layout: docs/FORMATS.md §"Posting-list pages".

  /// Appends the serialized finished bitmap to `out`.
  void AppendTo(std::string* out) const;

  /// Parses one serialized bitmap from the front of [data, data+size).
  /// On success stores the finished bitmap in `out`, the encoded length in
  /// `consumed`, and returns true; returns false on truncation or a
  /// malformed container (unknown type, wrong bitset word count,
  /// cardinality/payload mismatch, unsorted keys).
  static bool FromBytes(const uint8_t* data, size_t size, RoaringBitmap* out,
                        size_t* consumed);

  // -- container introspection (tests, stats) --------------------------------
  size_t num_containers() const { return containers_.size(); }
  ContainerType container_type(size_t i) const { return containers_[i].type; }
  uint16_t container_key(size_t i) const { return containers_[i].key; }

 private:
  /// One chunk: `values` holds sorted uint16s (kArray), (start, length-1)
  /// pairs (kRun), or is empty with `bits` populated (kBitset, 1024 words).
  struct Container {
    uint16_t key = 0;
    ContainerType type = ContainerType::kArray;
    uint32_t cardinality = 0;
    std::vector<uint16_t> values;
    std::vector<uint64_t> bits;
  };

  static void Seal(Container* c);
  static size_t AndCardinalityPair(const Container& a, const Container& b);
  /// Appends the sorted intersection of `a` and `b` (low 16 bits) to `out`.
  static void IntersectPair(const Container& a, const Container& b,
                            std::vector<uint16_t>* out);
  static bool ContainerContains(const Container& c, uint16_t low);

  std::vector<Container> containers_;  // sorted by key
  size_t cardinality_ = 0;
  bool has_last_ = false;
  uint32_t last_ = 0;
};

}  // namespace secreta

#endif  // SECRETA_KERNELS_ROARING_H_
