#include "kernels/kernels.h"

#include <atomic>
#include <cstdlib>

namespace secreta::kernels {

namespace scalar {

// The scalar tier deliberately uses __builtin_popcountll: on baseline x86-64
// (no -mpopcnt) the compiler lowers it to the portable SWAR sequence, which
// is the honest "no ISA extensions" baseline the AVX2/NEON speedup gates in
// bench/kernels_bench.cc compare against.
uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

uint64_t AndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(a[i] & ~b[i]));
  }
  return total;
}

uint64_t PopcountRange(const uint64_t* w, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

size_t IntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb) {
  // Galloping merge: when one list is much shorter, binary-search strides
  // through the longer one; otherwise a plain two-pointer merge.
  if (na > nb) {
    const uint32_t* t = a;
    a = b;
    b = t;
    size_t tn = na;
    na = nb;
    nb = tn;
  }
  size_t count = 0;
  if (na == 0) return 0;
  if (nb / na >= 32) {
    size_t lo = 0;
    for (size_t i = 0; i < na; ++i) {
      uint32_t key = a[i];
      // Gallop to an upper bound, then bisect.
      size_t step = 1;
      size_t hi = lo;
      while (hi < nb && b[hi] < key) {
        lo = hi;
        hi += step;
        step <<= 1;
      }
      if (hi > nb) hi = nb;
      while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (b[mid] < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < nb && b[lo] == key) {
        ++count;
        ++lo;
      }
    }
    return count;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    uint32_t x = a[i];
    uint32_t y = b[j];
    count += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return count;
}

}  // namespace scalar

namespace {

const KernelTable kScalarTable = {
    Tier::kScalar,
    &scalar::AndPopcount,
    &scalar::AndNotPopcount,
    &scalar::PopcountRange,
    &scalar::IntersectCount,
};

Tier BestTier() {
  if (TableFor(Tier::kAvx2) != nullptr) return Tier::kAvx2;
  if (TableFor(Tier::kNeon) != nullptr) return Tier::kNeon;
  return Tier::kScalar;
}

// The active table, published with release semantics. Initialization runs
// once (std::atomic first-use race is benign: every initializer computes the
// same value).
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* ActiveTable() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table != nullptr) return table;
  Tier tier = BestTier();
  // SECRETA_KERNELS pins the startup tier (the --kernels flag calls SetTier
  // later and wins). An unknown or unavailable name falls back to auto.
  if (const char* env = std::getenv("SECRETA_KERNELS")) {
    for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kNeon}) {
      if (std::string(env) == TierName(t) && TierAvailable(t)) tier = t;
    }
  }
  table = TableFor(tier);
  g_active.store(table, std::memory_order_release);
  return table;
}

}  // namespace

const KernelTable* TableFor(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return &kScalarTable;
    case Tier::kAvx2:
      return Avx2Table();
    case Tier::kNeon:
      return NeonTable();
  }
  return nullptr;
}

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
  }
  return "unknown";
}

Tier ActiveTier() { return ActiveTable()->tier; }

const char* ActiveTierName() { return TierName(ActiveTier()); }

bool TierAvailable(Tier tier) { return TableFor(tier) != nullptr; }

Status SetTier(const std::string& name) {
  for (Tier tier : {Tier::kScalar, Tier::kAvx2, Tier::kNeon}) {
    if (name != TierName(tier)) continue;
    const KernelTable* table = TableFor(tier);
    if (table == nullptr) {
      return Status::FailedPrecondition("kernel tier '" + name +
                                        "' is not available on this machine");
    }
    g_active.store(table, std::memory_order_release);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown kernel tier '" + name + "' (expected scalar, avx2 or neon)");
}

uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  return ActiveTable()->and_popcount(a, b, n);
}

uint64_t AndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  return ActiveTable()->andnot_popcount(a, b, n);
}

uint64_t PopcountRange(const uint64_t* w, size_t n) {
  return ActiveTable()->popcount_range(w, n);
}

size_t IntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb) {
  return ActiveTable()->intersect_count(a, na, b, nb);
}

}  // namespace secreta::kernels
