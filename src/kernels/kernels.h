// Runtime-dispatched SIMD kernels for the bitmap / posting-list hot paths.
//
// Every bitwise hot loop in the tree goes through this header instead of
// hand-rolling `__builtin_popcountll` (the repo linter enforces it): the four
// fused kernels below are the entire vocabulary the query index, the Roaring
// containers and the evaluators need. A backend (scalar, AVX2, NEON) is
// selected once at startup from CPU feature detection; tests, benchmarks and
// the `--kernels=` CLI flag can pin a specific tier, and the scalar
// reference implementations stay reachable under kernels::scalar so property
// tests can assert bit-identity of every tier against them.
//
// Thread-safety: the active backend is published through an atomic pointer;
// concurrent kernel calls and SetTier are race-free (callers in flight keep
// the table they loaded).

#ifndef SECRETA_KERNELS_KERNELS_H_
#define SECRETA_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace secreta::kernels {

/// Backend tiers, in dispatch-preference order.
enum class Tier {
  kScalar = 0,  // portable C++, always available
  kAvx2 = 1,    // x86-64 AVX2 (Harley-Seal popcount, 8-lane intersection)
  kNeon = 2,    // aarch64 NEON (vcnt + pairwise adds)
};

/// Human-readable tier name ("scalar", "avx2", "neon").
const char* TierName(Tier tier);

/// The tier all kernel calls currently dispatch to. Resolved once at first
/// use: the best tier the CPU supports, unless the SECRETA_KERNELS
/// environment variable names another available tier.
Tier ActiveTier();

/// Name of the active tier (for logs, metrics and bench output).
const char* ActiveTierName();

/// True if `tier` can run on this machine (scalar always can).
bool TierAvailable(Tier tier);

/// Pins the dispatch to the named tier ("scalar", "avx2", "neon").
/// InvalidArgument for unknown names; FailedPrecondition when the CPU lacks
/// the tier. Used by the `--kernels=` flag and by the property tests.
SECRETA_MUST_USE_RESULT Status SetTier(const std::string& name);

// ---------------------------------------------------------------------------
// Fused kernels. `n` counts 64-bit words (bitmap kernels) or 32-bit elements
// (sorted-list kernels). All are pure functions of their inputs and return
// bit-identical results on every tier.
// ---------------------------------------------------------------------------

/// popcount(a[i] & b[i]) summed over i in [0, n).
uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t n);

/// popcount(a[i] & ~b[i]) summed over i in [0, n).
uint64_t AndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n);

/// popcount(w[i]) summed over i in [0, n).
uint64_t PopcountRange(const uint64_t* w, size_t n);

/// |a ∩ b| for strictly-increasing sorted u32 lists.
size_t IntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb);

// ---------------------------------------------------------------------------
// Scalar reference implementations (the oracle every tier is tested
// against). Also the bodies of the scalar tier itself.
// ---------------------------------------------------------------------------

namespace scalar {
uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t AndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t PopcountRange(const uint64_t* w, size_t n);
size_t IntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb);
}  // namespace scalar

// ---------------------------------------------------------------------------
// Backend tables (internal; exposed so the per-ISA translation units can
// register themselves and the tests can enumerate available tiers).
// ---------------------------------------------------------------------------

struct KernelTable {
  Tier tier;
  uint64_t (*and_popcount)(const uint64_t*, const uint64_t*, size_t);
  uint64_t (*andnot_popcount)(const uint64_t*, const uint64_t*, size_t);
  uint64_t (*popcount_range)(const uint64_t*, size_t);
  size_t (*intersect_count)(const uint32_t*, size_t, const uint32_t*, size_t);
};

/// Table for `tier`, or nullptr when this build/CPU cannot run it.
const KernelTable* TableFor(Tier tier);

/// Per-ISA tables, defined in kernels_avx2.cc / kernels_neon.cc. Each
/// returns nullptr when the build target or the running CPU lacks the ISA,
/// so the dispatcher never calls into an illegal instruction.
const KernelTable* Avx2Table();
const KernelTable* NeonTable();

}  // namespace secreta::kernels

#endif  // SECRETA_KERNELS_KERNELS_H_
