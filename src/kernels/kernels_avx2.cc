#include "kernels/kernels.h"

// AVX2 backend. This translation unit is compiled with -mavx2 -mpopcnt (see
// src/CMakeLists.txt) on x86-64 targets only; the dispatcher calls in only
// after __builtin_cpu_supports("avx2") confirmed the CPU executes it.
//
// The popcount kernels fuse the load, the AND/ANDNOT and a Harley-Seal
// carry-save adder network (Muła, Kurz, Lemire: "Faster population counts
// using AVX2 instructions"): 16 x 256-bit words per iteration accumulate
// into a 16x-weighted counter via in-register full adders, with the in-lane
// nibble-LUT popcount run once per 16 words instead of once per word.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace secreta::kernels {
namespace {

inline __m256i PopcountNibbleLut(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());  // 4 x u64 sums
}

// Carry-save adder: (h, l) = a + b + c with l the sum and h the carry.
inline void Csa(__m256i a, __m256i b, __m256i c, __m256i* h, __m256i* l) {
  __m256i u = _mm256_xor_si256(a, b);
  *h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  *l = _mm256_xor_si256(u, c);
}

// Harley-Seal over a stream of 256-bit values produced by `load(i)`, for i
// in [0, n256). `Load` must be cheap and pure.
template <typename Load>
inline uint64_t HarleySeal(size_t n256, Load load) {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n256; i += 16) {
    __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
    Csa(ones, load(i + 0), load(i + 1), &twos_a, &ones);
    Csa(ones, load(i + 2), load(i + 3), &twos_b, &ones);
    Csa(twos, twos_a, twos_b, &fours_a, &twos);
    Csa(ones, load(i + 4), load(i + 5), &twos_a, &ones);
    Csa(ones, load(i + 6), load(i + 7), &twos_b, &ones);
    Csa(twos, twos_a, twos_b, &fours_b, &twos);
    Csa(fours, fours_a, fours_b, &eights_a, &fours);
    Csa(ones, load(i + 8), load(i + 9), &twos_a, &ones);
    Csa(ones, load(i + 10), load(i + 11), &twos_b, &ones);
    Csa(twos, twos_a, twos_b, &fours_a, &twos);
    Csa(ones, load(i + 12), load(i + 13), &twos_a, &ones);
    Csa(ones, load(i + 14), load(i + 15), &twos_b, &ones);
    Csa(twos, twos_a, twos_b, &fours_b, &twos);
    Csa(fours, fours_a, fours_b, &eights_b, &fours);
    Csa(eights, eights_a, eights_b, &sixteens, &eights);
    total = _mm256_add_epi64(total, PopcountNibbleLut(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(PopcountNibbleLut(eights), 3));
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(PopcountNibbleLut(fours), 2));
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(PopcountNibbleLut(twos), 1));
  total = _mm256_add_epi64(total, PopcountNibbleLut(ones));
  for (; i < n256; ++i) {
    total = _mm256_add_epi64(total, PopcountNibbleLut(load(i)));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), total);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

uint64_t Avx2AndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t n256 = n / 4;
  uint64_t total = HarleySeal(n256, [&](size_t i) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a) + i);
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b) + i);
    return _mm256_and_si256(va, vb);
  });
  for (size_t i = n256 * 4; i < n; ++i) {
    total += static_cast<uint64_t>(_mm_popcnt_u64(a[i] & b[i]));
  }
  return total;
}

uint64_t Avx2AndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t n256 = n / 4;
  uint64_t total = HarleySeal(n256, [&](size_t i) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a) + i);
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b) + i);
    // andnot computes ~first & second: pass b first for a & ~b.
    return _mm256_andnot_si256(vb, va);
  });
  for (size_t i = n256 * 4; i < n; ++i) {
    total += static_cast<uint64_t>(_mm_popcnt_u64(a[i] & ~b[i]));
  }
  return total;
}

uint64_t Avx2PopcountRange(const uint64_t* w, size_t n) {
  size_t n256 = n / 4;
  uint64_t total = HarleySeal(n256, [&](size_t i) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w) + i);
  });
  for (size_t i = n256 * 4; i < n; ++i) {
    total += static_cast<uint64_t>(_mm_popcnt_u64(w[i]));
  }
  return total;
}

size_t Avx2IntersectCount(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb) {
  // Very asymmetric lists gallop better than they vectorize.
  if (na > nb) {
    const uint32_t* t = a;
    a = b;
    b = t;
    size_t tn = na;
    na = nb;
    nb = tn;
  }
  if (na == 0) return 0;
  if (nb / na >= 32) return scalar::IntersectCount(a, na, b, nb);
  // Block-wise all-pairs compare: an 8-element block of `a` against an
  // 8-element block of `b` through all 8 cyclic rotations, then advance the
  // block with the smaller maximum (both when equal).
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i matches = _mm256_setzero_si256();
    __m256i rot = vb;
    const __m256i rotate_left1 =
        _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    for (int r = 0; r < 8; ++r) {
      matches =
          _mm256_or_si256(matches, _mm256_cmpeq_epi32(va, rot));
      rot = _mm256_permutevar8x32_epi32(rot, rotate_left1);
    }
    unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(matches)));
    count += static_cast<size_t>(_mm_popcnt_u32(mask));
    uint32_t a_max = a[i + 7];
    uint32_t b_max = b[j + 7];
    i += (a_max <= b_max) ? 8 : 0;
    j += (b_max <= a_max) ? 8 : 0;
  }
  // Scalar tail merge.
  while (i < na && j < nb) {
    uint32_t x = a[i];
    uint32_t y = b[j];
    count += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return count;
}

const KernelTable kAvx2Table = {
    Tier::kAvx2,     &Avx2AndPopcount,   &Avx2AndNotPopcount,
    &Avx2PopcountRange, &Avx2IntersectCount,
};

}  // namespace

const KernelTable* Avx2Table() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported ? &kAvx2Table : nullptr;
}

}  // namespace secreta::kernels

#else  // !x86-64

namespace secreta::kernels {
const KernelTable* Avx2Table() { return nullptr; }
}  // namespace secreta::kernels

#endif
