// JSON serialization of experiment results (Data Export Module). The GUI of
// the published system stores results to disk; this reproduction adds a
// machine-readable JSON form alongside CSV so downstream tooling (dashboards,
// notebooks) can ingest full reports. Dependency-free writer.

#ifndef SECRETA_EXPORT_JSON_EXPORT_H_
#define SECRETA_EXPORT_JSON_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/experiment.h"
#include "export/json_writer.h"
#include "service/service_metrics.h"

namespace secreta {

/// Serializes a full evaluation report (config, metrics, phases, guarantee).
std::string EvaluationReportToJson(const EvaluationReport& report);

/// Serializes a sweep (config, parameter, per-point metrics).
std::string SweepResultToJson(const SweepResult& sweep);

/// Serializes a set of comparison sweeps.
std::string ComparisonToJson(const std::vector<SweepResult>& results);

/// Serializes a job-service metrics snapshot (counters, cache hit rate, and
/// the queue-wait / execution latency histograms with their bucket bounds).
std::string ServiceMetricsToJson(const ServiceMetricsSnapshot& snapshot);

/// Serializes a unified-registry snapshot: {"counters":{...},"gauges":{...},
/// "histograms":{name:{count,...,bucket_counts}}}.
std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot);

/// Writes any of the above to a file.
Status WriteJsonFile(const std::string& json, const std::string& path);

}  // namespace secreta

#endif  // SECRETA_EXPORT_JSON_EXPORT_H_
