// JSON serialization of experiment results (Data Export Module). The GUI of
// the published system stores results to disk; this reproduction adds a
// machine-readable JSON form alongside CSV so downstream tooling (dashboards,
// notebooks) can ingest full reports. Dependency-free writer.

#ifndef SECRETA_EXPORT_JSON_EXPORT_H_
#define SECRETA_EXPORT_JSON_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/experiment.h"
#include "service/service_metrics.h"

namespace secreta {

/// \brief Minimal JSON value builder (objects, arrays, scalars).
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("are"); w.Number(0.5);
///   w.Key("tags"); w.BeginArray(); w.String("x"); w.EndArray();
///   w.EndObject();
///   std::string out = w.TakeString();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  /// Writes an object key (must be inside an object).
  void Key(const std::string& key);
  void String(const std::string& value);
  void Number(double value);
  void Int(int64_t value);
  void Bool(bool value);
  void Null();

  /// The serialized document.
  std::string TakeString() { return std::move(out_); }

 private:
  void Separate();
  void Escape(const std::string& raw);

  std::string out_;
  std::vector<bool> needs_comma_;  // per open container
  bool after_key_ = false;
};

/// Serializes a full evaluation report (config, metrics, phases, guarantee).
std::string EvaluationReportToJson(const EvaluationReport& report);

/// Serializes a sweep (config, parameter, per-point metrics).
std::string SweepResultToJson(const SweepResult& sweep);

/// Serializes a set of comparison sweeps.
std::string ComparisonToJson(const std::vector<SweepResult>& results);

/// Serializes a job-service metrics snapshot (counters, cache hit rate, and
/// the queue-wait / execution latency histograms with their bucket bounds).
std::string ServiceMetricsToJson(const ServiceMetricsSnapshot& snapshot);

/// Serializes a unified-registry snapshot: {"counters":{...},"gauges":{...},
/// "histograms":{name:{count,...,bucket_counts}}}.
std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot);

/// Writes any of the above to a file.
Status WriteJsonFile(const std::string& json, const std::string& path);

}  // namespace secreta

#endif  // SECRETA_EXPORT_JSON_EXPORT_H_
