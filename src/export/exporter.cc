#include "export/exporter.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "csv/csv.h"
#include "viz/ascii_plot.h"

namespace secreta {

Status ExportDataset(const Dataset& dataset, const std::string& path) {
  return csv::WriteFile(path, csv::WriteCsv(dataset.ToCsv()));
}

std::string SeriesToCsv(const std::vector<Series>& series) {
  // Collect the union of x values, keeping numeric order.
  std::map<double, std::vector<std::string>> rows;
  for (size_t si = 0; si < series.size(); ++si) {
    for (size_t p = 0; p < series[si].size(); ++p) {
      auto& row = rows[series[si].x[p]];
      row.resize(series.size());
      row[si] = StrFormat("%.10g", series[si].y[p]);
    }
  }
  csv::CsvTable table;
  std::vector<std::string> header{"x"};
  for (const auto& s : series) header.push_back(s.name);
  table.push_back(std::move(header));
  for (const auto& [x, values] : rows) {
    std::vector<std::string> row{StrFormat("%.10g", x)};
    for (size_t si = 0; si < series.size(); ++si) {
      row.push_back(si < values.size() ? values[si] : "");
    }
    table.push_back(std::move(row));
  }
  return csv::WriteCsv(table);
}

Status ExportSeries(const std::vector<Series>& series,
                    const std::string& csv_path,
                    const std::string& gnuplot_path, const std::string& title) {
  SECRETA_RETURN_IF_ERROR(csv::WriteFile(csv_path, SeriesToCsv(series)));
  if (!gnuplot_path.empty()) {
    SECRETA_RETURN_IF_ERROR(
        csv::WriteFile(gnuplot_path, GnuplotScript(series, csv_path, title)));
  }
  return Status::OK();
}

Status ExportSweepTable(const SweepResult& sweep, const std::string& path) {
  static const char* kMetrics[] = {
      "are",  "gcp",          "ul",           "runtime",
      "cavg", "discernibility", "item_freq_error", "entropy_loss",
      "kl_relational", "kl_items", "suppressed"};
  csv::CsvTable table;
  std::vector<std::string> header{sweep.sweep.parameter};
  for (const char* metric : kMetrics) header.push_back(metric);
  table.push_back(std::move(header));
  for (const SweepPoint& point : sweep.points) {
    std::vector<std::string> row{StrFormat("%.10g", point.value)};
    for (const char* metric : kMetrics) {
      auto value = point.report.Metric(metric);
      row.push_back(value.ok() ? StrFormat("%.10g", value.value()) : "");
    }
    table.push_back(std::move(row));
  }
  return csv::WriteFile(path, csv::WriteCsv(table));
}

}  // namespace secreta
