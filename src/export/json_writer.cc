#include "export/json_writer.h"

#include <cmath>

#include "common/string_util.h"

namespace secreta {

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
}

void JsonWriter::Key(const std::string& key) {
  Separate();
  Escape(key);
  out_ += ':';
  after_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  Separate();
  Escape(value);
}

void JsonWriter::Number(double value) {
  Separate();
  if (std::isfinite(value)) {
    out_ += StrFormat("%.12g", value);
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
}

void JsonWriter::Int(int64_t value) {
  Separate();
  out_ += StrFormat("%lld", static_cast<long long>(value));
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

void JsonWriter::Escape(const std::string& raw) {
  out_ += '"';
  for (char c : raw) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += StrFormat("\\u%04x", c);
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

}  // namespace secreta
